"""Property-based tests on the access-pattern generators."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.instructions import MEM, count_instructions
from repro.workloads.base import BYTES_PER_MEM_INSTR, Layout, stream_ops, sweep_ops

page_sizes = st.sampled_from([4096, 64 * 1024, 2 * 1024 * 1024])


def mem_pages(ops):
    return [vpn for op in ops if op[0] == MEM for vpn in op[1]]


class TestStreamProperties:
    @given(page_sizes, st.integers(1, 64))
    @settings(max_examples=30)
    def test_each_page_covered_exactly_once(self, page_size, num_pages):
        layout = Layout(page_size)
        nbytes = num_pages * page_size
        pages = mem_pages(stream_ops(layout, layout.region_base(0), nbytes))
        base = layout.vpn(layout.region_base(0))
        expected = list(range(base, base + num_pages))
        assert sorted(set(pages)) == expected

    @given(page_sizes, st.integers(1, 32))
    @settings(max_examples=30)
    def test_instruction_count_tracks_bytes(self, page_size, num_pages):
        layout = Layout(page_size)
        nbytes = num_pages * page_size
        ops = list(stream_ops(layout, layout.region_base(0), nbytes))
        assert count_instructions(ops) == nbytes // BYTES_PER_MEM_INSTR

    @given(page_sizes)
    @settings(max_examples=10)
    def test_ops_bounded(self, page_size):
        layout = Layout(page_size)
        ops = list(stream_ops(layout, layout.region_base(0), 4 * page_size))
        assert all(op[2] <= 2048 for op in ops if op[0] == MEM)


class TestSweepProperties:
    @given(
        page_sizes,
        st.integers(1, 500),
        st.integers(1, 1 << 24),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=30)
    def test_touch_count_and_bounds(self, page_size, touches, ws_bytes, seed):
        layout = Layout(page_size)
        base = layout.region_base(1)
        ops = list(
            sweep_ops(layout, base, ws_bytes, touches, random.Random(seed))
        )
        pages = mem_pages(ops)
        assert len(pages) == touches
        low = layout.vpn(base)
        high = layout.vpn(base + ws_bytes) + 1
        assert all(low <= vpn <= high for vpn in pages)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20)
    def test_deterministic_given_seed(self, seed):
        layout = Layout()
        a = list(sweep_ops(layout, layout.region_base(0), 1 << 20, 64,
                           random.Random(seed)))
        b = list(sweep_ops(layout, layout.region_base(0), 1 << 20, 64,
                           random.Random(seed)))
        assert a == b
