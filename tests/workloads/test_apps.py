"""Tests for the ten Table 2 application generators and the survey suite."""

import pytest

from repro.gpu.instructions import LDS, MEM, count_instructions
from repro.workloads.base import ProgramContext
from repro.workloads.registry import (
    CATEGORIES,
    HIGH_APPS,
    LOW_APPS,
    MEDIUM_APPS,
    all_apps,
    app_names,
    make_app,
)
from repro.workloads.survey import make_survey_suite

SMALL = 0.1


def first_wave_ops(app, kernel_index=0):
    kernel = app.kernels[kernel_index]
    context = ProgramContext(
        app_name=app.name, kernel_name=kernel.name, invocation=0,
        wg_id=0, wave_id=0, num_workgroups=kernel.num_workgroups,
        waves_per_workgroup=kernel.waves_per_workgroup,
    )
    return list(kernel.program_factory(context))


class TestRegistry:
    def test_ten_apps(self):
        assert len(app_names()) == 10

    def test_categories_cover_all(self):
        assert set(CATEGORIES) == set(app_names())
        assert set(HIGH_APPS) == {"ATAX", "GEV", "MVT", "BICG", "GUPS"}
        assert set(MEDIUM_APPS) == {"NW", "BFS"}
        assert set(LOW_APPS) == {"SSSP", "PRK", "SRAD"}

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError):
            make_app("NOPE")

    def test_all_apps_builds_everything(self):
        apps = all_apps(scale=SMALL)
        assert [app.name for app in apps] == app_names()


class TestTable2Structure:
    """Kernel-count / B2B structure straight from Table 2."""

    @pytest.mark.parametrize(
        "name,kernels,b2b",
        [
            ("ATAX", 2, False),
            ("GEV", 1, False),
            ("MVT", 2, False),
            ("BICG", 2, False),
            ("GUPS", 3, False),
            ("BFS", 24, False),
        ],
    )
    def test_kernel_counts(self, name, kernels, b2b):
        app = make_app(name, scale=SMALL)
        assert len(app.kernels) == kernels
        assert app.has_back_to_back_kernels == b2b

    def test_nw_is_back_to_back(self):
        app = make_app("NW", scale=1.0)
        assert app.has_back_to_back_kernels
        assert len(app.unique_kernel_names) == 1
        assert app.unique_kernel_names[0] == "nw_kernel1"
        assert len(app.kernels) == 255

    def test_sssp_many_launches_never_b2b(self):
        app = make_app("SSSP", scale=1.0)
        assert len(app.kernels) >= 100
        assert not app.has_back_to_back_kernels

    def test_prk_alternates(self):
        app = make_app("PRK", scale=1.0)
        assert not app.has_back_to_back_kernels
        assert len(app.kernels) == 41

    def test_srad_single_kernel(self):
        app = make_app("SRAD", scale=SMALL)
        assert len(app.kernels) == 1


class TestLdsUsage:
    def test_polybench_and_gups_request_no_lds(self):
        for name in ("ATAX", "GEV", "MVT", "BICG", "GUPS"):
            app = make_app(name, scale=SMALL)
            assert all(k.lds_bytes_per_workgroup == 0 for k in app.kernels)

    def test_nw_requests_its_real_lds_footprint(self):
        app = make_app("NW", scale=SMALL)
        assert app.kernels[0].lds_bytes_per_workgroup == 2112

    def test_lds_users_emit_lds_ops(self):
        app = make_app("SRAD", scale=SMALL)
        ops = first_wave_ops(app)
        assert any(op[0] == LDS for op in ops)


class TestPrograms:
    @pytest.mark.parametrize("name", app_names())
    def test_programs_are_deterministic(self, name):
        a = first_wave_ops(make_app(name, scale=SMALL))
        b = first_wave_ops(make_app(name, scale=SMALL))
        assert a == b

    @pytest.mark.parametrize("name", app_names())
    def test_programs_touch_memory(self, name):
        ops = first_wave_ops(make_app(name, scale=SMALL))
        assert any(op[0] == MEM for op in ops)
        assert count_instructions(ops) > 0

    @pytest.mark.parametrize("name", app_names())
    def test_page_size_shrinks_unique_pages(self, name):
        small = first_wave_ops(make_app(name, scale=SMALL, page_size=4096))
        large = first_wave_ops(make_app(name, scale=SMALL, page_size=2 * 1024 * 1024))

        def unique_pages(ops):
            return len({vpn for op in ops if op[0] == MEM for vpn in op[1]})

        assert unique_pages(large) <= unique_pages(small)

    def test_scale_reduces_work(self):
        big = first_wave_ops(make_app("ATAX", scale=1.0))
        small = first_wave_ops(make_app("ATAX", scale=0.1))
        assert count_instructions(small) < count_instructions(big)


class TestSurveySuite:
    def test_suite_size(self):
        assert len(make_survey_suite(scale=SMALL)) == 20

    def test_lds_distribution_shape(self):
        # Paper: ~70% of surveyed apps request no LDS.
        suite = make_survey_suite(scale=SMALL)
        no_lds = [
            app
            for app in suite
            if all(k.lds_bytes_per_workgroup == 0 for k in app.kernels)
        ]
        assert 0.6 <= len(no_lds) / len(suite) <= 0.8

    def test_some_apps_fill_the_icache(self):
        suite = make_survey_suite(scale=SMALL)
        full = [
            app
            for app in suite
            if any(k.static_lines >= 256 for k in app.kernels)
        ]
        assert full  # at least some kernels span the whole 256-line I-cache

    def test_no_app_requests_full_lds(self):
        for app in make_survey_suite(scale=SMALL):
            for kernel in app.kernels:
                assert kernel.lds_bytes_per_workgroup < 16 * 1024
