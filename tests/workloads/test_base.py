"""Unit tests for workload abstractions and pattern generators."""

import random

import pytest

from repro.gpu.instructions import MEM, count_instructions
from repro.workloads.base import (
    AppSpec,
    KernelSpec,
    Layout,
    ProgramContext,
    blocked_sweep_ops,
    code_walk_ops,
    interleave,
    launch_sequence,
    prologue_ops,
    random_ops,
    stream_ops,
    sweep_ops,
)


def ctx(wave=0, wg=0, invocation=0):
    return ProgramContext(
        app_name="a", kernel_name="k", invocation=invocation,
        wg_id=wg, wave_id=wave, num_workgroups=4, waves_per_workgroup=2,
    )


class TestProgramContext:
    def test_global_wave(self):
        assert ctx(wave=1, wg=2).global_wave == 5

    def test_total_waves(self):
        assert ctx().total_waves == 8

    def test_rng_deterministic(self):
        assert ctx().rng().random() == ctx().rng().random()

    def test_rng_varies_by_wave(self):
        assert ctx(wave=0).rng().random() != ctx(wave=1).rng().random()

    def test_rng_varies_by_invocation(self):
        assert ctx(invocation=0).rng().random() != ctx(invocation=1).rng().random()


class TestSpecs:
    def test_kernel_validation(self):
        with pytest.raises(ValueError):
            KernelSpec("k", 0, 1, 0, 1, lambda c: [])

    def test_app_needs_kernels(self):
        with pytest.raises(ValueError):
            AppSpec(name="a", kernels=())

    def test_back_to_back_detection(self):
        k = KernelSpec("k", 1, 1, 0, 1, lambda c: [])
        j = KernelSpec("j", 1, 1, 0, 1, lambda c: [])
        assert AppSpec(name="a", kernels=(k, k)).has_back_to_back_kernels
        assert not AppSpec(name="a", kernels=(k, j, k)).has_back_to_back_kernels

    def test_unique_kernel_names(self):
        k = KernelSpec("k", 1, 1, 0, 1, lambda c: [])
        j = KernelSpec("j", 1, 1, 0, 1, lambda c: [])
        app = AppSpec(name="a", kernels=(k, j, k))
        assert app.unique_kernel_names == ["k", "j"]

    def test_launch_sequence_expansion(self):
        k = KernelSpec("k", 1, 1, 0, 1, lambda c: [])
        j = KernelSpec("j", 1, 1, 0, 1, lambda c: [])
        seq = launch_sequence(k, (j, 3), k)
        assert [spec.name for spec in seq] == ["k", "j", "j", "j", "k"]


class TestLayout:
    def test_page_shift(self):
        assert Layout(4096).page_shift == 12
        assert Layout(2 * 1024 * 1024).page_shift == 21

    def test_regions_do_not_overlap(self):
        layout = Layout()
        assert layout.region_base(1) - layout.region_base(0) >= (1 << 36) // 2

    def test_region_bases_not_aligned_to_index_period(self):
        layout = Layout()
        vpns = {layout.vpn(layout.region_base(i)) % 512 for i in range(4)}
        assert len(vpns) > 1  # not all aliasing to segment 0

    def test_pages_rounds_up(self):
        assert Layout(4096).pages(4097) == 2
        assert Layout(4096).pages(1) == 1

    def test_instr_per_page(self):
        assert Layout(4096).instr_per_page == 16


class TestStreamOps:
    def test_covers_all_pages_once(self):
        layout = Layout()
        ops = list(stream_ops(layout, layout.region_base(0), 64 * 4096))
        pages = [vpn for op in ops for vpn in op[1]]
        assert len(pages) == 64
        assert len(set(pages)) == 64

    def test_instruction_budget_matches_bytes(self):
        layout = Layout()
        nbytes = 32 * 4096
        ops = list(stream_ops(layout, layout.region_base(0), nbytes))
        assert count_instructions(ops) == nbytes // 256

    def test_lines_per_page_full_page(self):
        layout = Layout()
        op = next(iter(stream_ops(layout, layout.region_base(0), 4096)))
        assert op[4] == 64

    def test_large_pages_split_into_bounded_ops(self):
        layout = Layout(2 * 1024 * 1024)
        ops = list(stream_ops(layout, layout.region_base(0), 2 * 1024 * 1024))
        assert all(op[2] <= 2048 for op in ops)
        assert count_instructions(ops) == (2 * 1024 * 1024) // 256


class TestSweepOps:
    def test_touch_count(self):
        layout = Layout()
        ops = list(sweep_ops(layout, layout.region_base(0), 1 << 20, 100,
                             random.Random(1)))
        assert sum(len(op[1]) for op in ops) == 100

    def test_pages_within_working_set(self):
        layout = Layout()
        base = layout.region_base(0)
        ws = 1 << 20  # 256 pages
        ops = sweep_ops(layout, base, ws, 500, random.Random(2))
        low, high = layout.vpn(base), layout.vpn(base + ws)
        for op in ops:
            for vpn in op[1]:
                assert low <= vpn <= high

    def test_scattered_touches_move_one_line(self):
        layout = Layout()
        op = next(iter(sweep_ops(layout, layout.region_base(0), 1 << 20, 8,
                                 random.Random(3))))
        assert op[4] == 1


class TestBlockedSweepOps:
    def test_epochs_visit_different_blocks(self):
        layout = Layout()
        base = layout.region_base(0)
        ops = list(
            blocked_sweep_ops(
                layout, base, 4 << 20, 1 << 20,
                lambda epoch, blocks: epoch, 64, 4, random.Random(4),
            )
        )
        block_ids = {
            (vpn - layout.vpn(base)) // 256 for op in ops for vpn in op[1]
        }
        assert len(block_ids) == 4

    def test_cu_slice_bias(self):
        layout = Layout()
        base = layout.region_base(0)
        ops = list(
            blocked_sweep_ops(
                layout, base, 4 << 20, 4 << 20,
                lambda epoch, blocks: 0, 400, 1, random.Random(5),
                cu_slice=(0, 4, 1.0),  # all touches in slice 0
            )
        )
        slice_pages = 256  # (4MB / 4) / 4KB
        for op in ops:
            for vpn in op[1]:
                assert vpn - layout.vpn(base) < slice_pages


class TestRandomOps:
    def test_op_count(self):
        layout = Layout()
        ops = list(
            random_ops(layout, layout.region_base(0), 1 << 24, 10, 16,
                       random.Random(6), instr_per_op=16, alu_per_op=8)
        )
        mem_ops = [op for op in ops if op[0] == MEM]
        assert len(mem_ops) == 10
        assert all(len(op[1]) == 16 for op in mem_ops)

    def test_write_flag(self):
        layout = Layout()
        op = next(iter(random_ops(layout, layout.region_base(0), 1 << 20, 1, 4,
                                  random.Random(7), instr_per_op=4,
                                  is_write=True)))
        assert op[3] is True


class TestCodeWalkOps:
    def test_line_sequence(self):
        ops = list(code_walk_ops(static_lines=10, body_lines=3, iterations=2))
        assert [op[1] for op in ops] == [0, 1, 2, 0, 1, 2]

    def test_body_capped_at_static(self):
        ops = list(code_walk_ops(static_lines=2, body_lines=5, iterations=1))
        assert max(op[1] for op in ops) <= 1

    def test_zero_iterations(self):
        assert list(code_walk_ops(5, 3, 0)) == []


class TestInterleaveAndPrologue:
    def test_round_robin(self):
        merged = list(interleave(iter("ab"), iter("xyz")))
        assert merged == ["a", "x", "b", "y", "z"]

    def test_prologue_is_single_alu(self):
        ops = list(prologue_ops(random.Random(8)))
        assert len(ops) == 1
        assert ops[0][0] == "alu"

    def test_prologue_varies_with_rng(self):
        a = list(prologue_ops(random.Random(1)))[0][1]
        b = list(prologue_ops(random.Random(2)))[0][1]
        assert a != b
