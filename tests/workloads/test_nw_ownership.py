"""Tests for NW's block-ownership sweep (the Figure 14a low-sharing fix)."""

import random

from repro.gpu.instructions import MEM
from repro.workloads.base import Layout
from repro.workloads.rodinia import (
    _NW_BLOCK_BYTES,
    _NW_OWNERS,
    _NW_WINDOW_BYTES,
    _nw_owned_sweep,
)


def touched_blocks(ops):
    return {
        (vpn * 4096) // _NW_BLOCK_BYTES
        for op in ops
        if op[0] == MEM
        for vpn in op[1]
    }


class TestOwnedSweep:
    def test_majority_of_touches_stay_in_owned_blocks(self):
        layout = Layout()
        base = layout.region_base(0)
        owner = 3
        ops = list(
            _nw_owned_sweep(layout, base, 400, owner, random.Random(1))
        )
        in_owned = 0
        total = 0
        for op in ops:
            for vpn in op[1]:
                total += 1
                if ((vpn * 4096) // _NW_BLOCK_BYTES) % _NW_OWNERS == owner:
                    in_owned += 1
        assert total == 400
        # 90% owned, 10% boundary-halo touches by construction.
        assert in_owned / total > 0.8

    def test_halo_touches_cross_owners(self):
        layout = Layout()
        base = layout.region_base(0)
        blocks = touched_blocks(
            _nw_owned_sweep(layout, base, 2000, 0, random.Random(2))
        )
        owners = {block % _NW_OWNERS for block in blocks}
        assert len(owners) > 1  # halo reaches other owners' blocks

    def test_touches_stay_within_window(self):
        layout = Layout()
        base = layout.region_base(0)
        low = base // _NW_BLOCK_BYTES
        high = (base + _NW_WINDOW_BYTES) // _NW_BLOCK_BYTES + 1
        blocks = touched_blocks(
            _nw_owned_sweep(layout, base, 500, 1, random.Random(3))
        )
        assert all(low <= block <= high for block in blocks)

    def test_distinct_owners_concentrate_on_distinct_blocks(self):
        from collections import Counter

        layout = Layout()
        base = layout.region_base(0)

        def hottest_block(owner, seed):
            counts = Counter()
            for op in _nw_owned_sweep(layout, base, 500, owner, random.Random(seed)):
                for vpn in op[1]:
                    counts[(vpn * 4096) // _NW_BLOCK_BYTES] += 1
            return counts.most_common(1)[0][0]

        assert hottest_block(0, 4) != hottest_block(5, 5)

    def test_owner_with_no_blocks_falls_back(self):
        # A window smaller than one block still yields valid touches.
        layout = Layout()
        base = layout.region_base(0)
        ops = list(_nw_owned_sweep(layout, base, 16, 7, random.Random(6)))
        assert sum(len(op[1]) for op in ops) == 16
