"""Unit tests for the split page-walk caches (PGD/PUD/PMD)."""

from repro.config import IOMMUConfig
from repro.pagetable.walk_cache import SplitPageWalkCache, _PrefixCache


class TestPrefixCache:
    def test_miss_then_hit(self):
        cache = _PrefixCache(2)
        assert not cache.lookup("a")
        cache.fill("a")
        assert cache.lookup("a")

    def test_lru_eviction(self):
        cache = _PrefixCache(2)
        cache.fill("a")
        cache.fill("b")
        cache.fill("c")
        assert not cache.lookup("a")
        assert cache.lookup("b")

    def test_lookup_refreshes(self):
        cache = _PrefixCache(2)
        cache.fill("a")
        cache.fill("b")
        cache.lookup("a")
        cache.fill("c")
        assert cache.lookup("a")
        assert not cache.lookup("b")

    def test_flush(self):
        cache = _PrefixCache(2)
        cache.fill("a")
        cache.flush()
        assert len(cache) == 0


class TestSplitPageWalkCache:
    def make(self, levels=4):
        return SplitPageWalkCache(IOMMUConfig(), levels=levels)

    def test_cold_lookup_skips_nothing(self):
        assert self.make().lookup(0, 12345) == 0

    def test_full_walk_fill_enables_max_skip(self):
        pwc = self.make()
        pwc.fill(0, 12345)
        assert pwc.lookup(0, 12345) == 3  # PMD hit: only the PTE remains

    def test_pmd_hit_covers_512_page_neighbourhood(self):
        pwc = self.make()
        pwc.fill(0, 0)
        assert pwc.lookup(0, 511) == 3
        assert pwc.lookup(0, 512) < 3

    def test_pud_hit_after_pmd_capacity_overflow(self):
        config = IOMMUConfig()
        pwc = SplitPageWalkCache(config, levels=4)
        # Fill more distinct PMD regions than the PMD cache holds, within
        # one PUD region; the PMD entries thrash but the PUD entry stays.
        for region in range(config.pmd_cache_entries + 4):
            pwc.fill(0, region * 512)
        assert pwc.lookup(0, 0) == 2  # PMD evicted, PUD survives

    def test_three_level_walk_skips_at_most_two(self):
        pwc = self.make(levels=3)
        pwc.fill(0, 999)
        assert pwc.lookup(0, 999) == 2

    def test_vmid_isolation(self):
        pwc = self.make()
        pwc.fill(0, 777)
        assert pwc.lookup(1, 777) == 0

    def test_flush(self):
        pwc = self.make()
        pwc.fill(0, 42)
        pwc.flush()
        assert pwc.lookup(0, 42) == 0

    def test_stats_hit_counters(self):
        pwc = self.make()
        pwc.fill(0, 1)
        pwc.lookup(0, 1)
        assert pwc.stats.get("pwc.pmd_hits") == 1
        pwc.lookup(0, 1 << 30)
        assert pwc.stats.get("pwc.misses") == 1
