"""Unit tests for the walker and IOMMU (device TLBs, walker pool, queuing)."""

import pytest

from repro.config import DRAMConfig, DataCacheConfig, IOMMUConfig
from repro.memory.dram import DRAM
from repro.memory.hierarchy import SharedL2
from repro.pagetable.iommu import IOMMU
from repro.pagetable.page_table import PageTable
from repro.pagetable.walker import PageWalker
from repro.sim.stats import Stats


@pytest.fixture
def shared_l2():
    return SharedL2(DataCacheConfig(), DRAM(DRAMConfig()))


@pytest.fixture
def iommu(shared_l2):
    return IOMMU(IOMMUConfig(), PageTable(), shared_l2, stats=Stats())


class TestPageWalker:
    def test_cold_walk_touches_all_levels(self, shared_l2):
        walker = PageWalker(IOMMUConfig(), PageTable(), shared_l2)
        latency, pfn = walker.walk(0, 1234, anchor=0)
        assert pfn == walker.page_table.translate(0, 1234)
        assert walker.stats.get("walker.pte_accesses") == 4
        assert latency > 4 * 100  # four serial DRAM accesses

    def test_warm_walk_is_shorter(self, shared_l2):
        walker = PageWalker(IOMMUConfig(), PageTable(), shared_l2)
        cold, _ = walker.walk(0, 1234, anchor=0)
        warm, _ = walker.walk(0, 1235, anchor=10_000)
        assert warm < cold

    def test_walk_latency_distribution_collected(self, shared_l2):
        walker = PageWalker(IOMMUConfig(), PageTable(), shared_l2)
        walker.walk(0, 1, anchor=0)
        walker.walk(0, 2, anchor=0)
        assert walker.walk_latency.count == 2


class TestIOMMU:
    def test_cold_translation_walks(self, iommu):
        latency, entry = iommu.translate(0, 555, anchor=0)
        assert entry.vpn == 555
        assert iommu.stats.get("iommu.walks") == 1
        assert latency > iommu.config.request_overhead

    def test_device_l1_tlb_hit_avoids_walk(self, iommu):
        iommu.translate(0, 555, anchor=0)
        latency, _ = iommu.translate(0, 555, anchor=1000)
        assert iommu.stats.get("iommu.walks") == 1
        assert latency == (
            iommu.config.request_overhead + iommu.config.l1_tlb_latency
        )

    def test_device_l2_tlb_backstops_l1(self, iommu):
        # Blow out the 32-entry device L1; older entries hit the device L2.
        for vpn in range(100):
            iommu.translate(0, vpn, anchor=0)
        walks_before = iommu.stats.get("iommu.walks")
        iommu.translate(0, 0, anchor=10**6)
        assert iommu.stats.get("iommu.walks") == walks_before
        assert iommu.stats.get("iommu.l2_tlb.hits") >= 1

    def test_walker_pool_queues_under_storm(self, iommu):
        # Far more concurrent walks than walkers, all at the same anchor.
        for vpn in range(10_000, 10_000 + 4 * iommu.config.num_walkers):
            iommu.translate(0, vpn, anchor=0)
        assert iommu.stats.get("iommu.walk_queue_cycles") > 0

    def test_no_queue_when_spread_out(self, iommu):
        for index, vpn in enumerate(range(20_000, 20_004)):
            iommu.translate(0, vpn, anchor=index * 100_000)
        assert iommu.stats.get("iommu.walk_queue_cycles") == 0

    def test_invalidate_vpn_clears_device_tlbs(self, iommu):
        iommu.translate(0, 7, anchor=0)
        assert iommu.invalidate_vpn(7) >= 1
        iommu.translate(0, 7, anchor=10**6)
        assert iommu.stats.get("iommu.walks") == 2
