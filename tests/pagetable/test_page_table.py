"""Unit tests for the four-level page table."""

import pytest

from repro.pagetable.page_table import PageTable


class TestTranslation:
    def test_first_touch_allocates(self):
        table = PageTable()
        pfn = table.translate(0, 42)
        assert pfn > 0
        assert table.is_mapped(0, 42)

    def test_translation_is_stable(self):
        table = PageTable()
        assert table.translate(0, 42) == table.translate(0, 42)

    def test_distinct_pages_get_distinct_frames(self):
        table = PageTable()
        frames = {table.translate(0, vpn) for vpn in range(1000)}
        assert len(frames) == 1000

    def test_address_spaces_are_isolated(self):
        table = PageTable()
        assert table.translate(0, 7) != table.translate(1, 7)

    def test_negative_vpn_rejected(self):
        with pytest.raises(ValueError):
            PageTable().translate(0, -1)

    def test_unmap(self):
        table = PageTable()
        table.translate(0, 9)
        assert table.unmap(0, 9)
        assert not table.unmap(0, 9)
        assert not table.is_mapped(0, 9)

    def test_entry_for(self):
        table = PageTable()
        entry = table.entry_for(2, 30)
        assert entry.vpn == 30
        assert entry.vmid == 2
        assert entry.pfn == table.translate(2, 30)

    def test_len_counts_mappings(self):
        table = PageTable()
        for vpn in range(5):
            table.translate(0, vpn)
        assert len(table) == 5


class TestPageSizes:
    def test_4k_walks_four_levels(self):
        assert PageTable(4096).levels == 4

    def test_64k_walks_four_levels(self):
        assert PageTable(64 * 1024).levels == 4

    def test_2m_walks_three_levels(self):
        assert PageTable(2 * 1024 * 1024).levels == 3

    def test_page_offset_bits(self):
        assert PageTable(4096).page_offset_bits == 12
        assert PageTable(2 * 1024 * 1024).page_offset_bits == 21

    def test_unsupported_page_size_rejected(self):
        with pytest.raises(ValueError):
            PageTable(8192)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            PageTable(5000)


class TestWalkAddresses:
    def test_one_address_per_level(self):
        table = PageTable()
        assert len(table.walk_addresses(0, 123)) == 4

    def test_three_levels_for_2m(self):
        table = PageTable(2 * 1024 * 1024)
        assert len(table.walk_addresses(0, 123)) == 3

    def test_deterministic(self):
        a = PageTable().walk_addresses(0, 555)
        b = PageTable().walk_addresses(0, 555)
        assert a == b

    def test_adjacent_pages_share_upper_levels(self):
        table = PageTable()
        a = table.walk_addresses(0, 1000)
        b = table.walk_addresses(0, 1001)
        # Same PGD/PUD/PMD entries, different (or same-line) PTE.
        assert a[:3] == b[:3]

    def test_distant_pages_diverge_at_the_top(self):
        table = PageTable()
        a = table.walk_addresses(0, 0)
        b = table.walk_addresses(0, 1 << 30)
        assert a[0] != b[0]

    def test_addresses_live_in_pt_region(self):
        table = PageTable()
        for address in table.walk_addresses(0, 77):
            assert address >= (1 << 36)

    def test_vmid_changes_table_pages(self):
        table = PageTable()
        assert table.walk_addresses(0, 5) != table.walk_addresses(1, 5)
