"""Simulation-free unit tests for Figure 4/5 utilization helpers."""

from repro.experiments.fig04_05_utilization import _box, kernel_icache_utilization
from repro.sim.results import KernelResult, SimResult


def sim_with_kernels(total_lines, fills_per_kernel):
    kernels = [
        KernelResult("k", i, 0, 10, counters={"icache.fills": fills})
        for i, fills in enumerate(fills_per_kernel)
    ]
    return SimResult(
        app_name="a",
        scheme="baseline",
        cycles=10,
        counters={"icache.total_lines": float(total_lines)},
        kernels=kernels,
    )


class TestKernelUtilization:
    def test_equation1(self):
        sim = sim_with_kernels(512, [256.0, 512.0])
        assert kernel_icache_utilization(sim) == [0.5, 1.0]

    def test_capped_at_one(self):
        # Equation 1: fills beyond the line count count as 100%.
        sim = sim_with_kernels(512, [2048.0])
        assert kernel_icache_utilization(sim) == [1.0]

    def test_missing_lines_counter(self):
        sim = sim_with_kernels(0, [100.0])
        assert kernel_icache_utilization(sim) == []

    def test_kernel_without_fills(self):
        sim = sim_with_kernels(512, [])
        sim.kernels.append(KernelResult("k", 0, 0, 10, counters={}))
        assert kernel_icache_utilization(sim) == [0.0]


class TestBoxHelper:
    def test_empty(self):
        box = _box([])
        assert box == {"min": 0.0, "median": 0.0, "max": 0.0, "mean": 0.0}

    def test_order_statistics(self):
        box = _box([3.0, 1.0, 2.0])
        assert box["min"] == 1.0
        assert box["median"] == 2.0
        assert box["max"] == 3.0
        assert box["mean"] == 2.0
