"""CPU-free tests of harness aggregation logic via a stubbed runner.

These patch ``repro.experiments.common.run_app`` with a synthetic-results
factory, so the arithmetic each figure harness performs (normalization,
gmeans, category splits) is verified exactly and instantly.
"""

from typing import Dict, Tuple

import pytest

import repro.experiments.common as common
from repro.config import SystemConfig, TxScheme
from repro.experiments import (
    export,
    fig13_main,
    fig14_sharing_walks_pagesize,
    fig15_entries,
)
from repro.sim.results import SimResult
from repro.workloads.registry import app_names


class StubRunner:
    """Deterministic fake simulations keyed by (app, scheme, page_size)."""

    def __init__(self):
        self.cycles: Dict[Tuple, int] = {}
        self.counters: Dict[Tuple, Dict[str, float]] = {}

    def set(self, app, scheme, cycles, page_size=4096, **counters):
        key = (app, scheme, page_size)
        self.cycles[key] = cycles
        self.counters[key] = counters

    def __call__(self, app_name, config=None, scale=None, use_cache=True):
        if config is None:
            config = common.table1_config()
        key = (app_name, config.scheme, config.page_size)
        if key not in self.cycles:
            # Default: baseline-equal behaviour.
            key = (app_name, TxScheme.BASELINE, config.page_size)
        return SimResult(
            app_name=app_name,
            scheme=config.scheme.value,
            cycles=self.cycles.get(key, 1000),
            counters=dict(self.counters.get(key, {})),
        )


@pytest.fixture
def stub(monkeypatch):
    runner = StubRunner()
    for app in app_names():
        runner.set(app, TxScheme.BASELINE, 1000, **{"iommu.walks": 100.0})
    for module in (fig13_main, fig14_sharing_walks_pagesize, fig15_entries):
        monkeypatch.setattr(module, "run_app", runner)
        # The harnesses prefetch their grid through the sweep runner before
        # assembling rows; with run_app stubbed that would launch real
        # simulations, so neutralize it too.
        if hasattr(module, "run_sweep"):
            monkeypatch.setattr(module, "run_sweep", lambda jobs, **kwargs: [])
    return runner


class TestFig13bAggregation:
    def test_gmean_row_math(self, stub):
        for app in app_names():
            stub.set(app, TxScheme.LDS_ONLY, 500)       # 2x everywhere
            stub.set(app, TxScheme.ICACHE_ONLY, 1000)   # 1x
            stub.set(app, TxScheme.ICACHE_LDS, 250)     # 4x
        result = fig13_main.run_fig13b(scale=1.0)
        gmean = result.row_for("app", "GMEAN")
        assert gmean["lds"] == pytest.approx(2.0)
        assert gmean["icache"] == pytest.approx(1.0)
        assert gmean["icache+lds"] == pytest.approx(4.0)

    def test_hm_row_excludes_low_apps(self, stub):
        # Only High/Medium apps sped up: H+M gmean > all-apps gmean.
        from repro.workloads.registry import CATEGORIES

        for app in app_names():
            fast = 500 if CATEGORIES[app] in ("H", "M") else 1000
            stub.set(app, TxScheme.ICACHE_LDS, fast)
            stub.set(app, TxScheme.LDS_ONLY, 1000)
            stub.set(app, TxScheme.ICACHE_ONLY, 1000)
        result = fig13_main.run_fig13b(scale=1.0)
        hm = result.row_for("app", "GMEAN-H+M")
        assert hm["icache+lds"] == pytest.approx(2.0)
        assert result.row_for("app", "GMEAN")["icache+lds"] < 2.0


class TestFig14bAggregation:
    def test_walk_normalization(self, stub):
        for app in app_names():
            stub.set(app, TxScheme.ICACHE_LDS, 800, **{"iommu.walks": 25.0})
            stub.set(app, TxScheme.LDS_ONLY, 900, **{"iommu.walks": 50.0})
            stub.set(app, TxScheme.ICACHE_ONLY, 900, **{"iommu.walks": 40.0})
        result = fig14_sharing_walks_pagesize.run_fig14b(scale=1.0)
        mean = result.row_for("app", "MEAN")
        assert mean["icache+lds_walks"] == pytest.approx(0.25)
        assert mean["lds_walks"] == pytest.approx(0.50)

    def test_zero_baseline_walks_ratio_is_one(self, stub):
        for app in app_names():
            stub.set(app, TxScheme.BASELINE, 1000)  # no walks counter
            stub.set(app, TxScheme.ICACHE_LDS, 1000)
            stub.set(app, TxScheme.LDS_ONLY, 1000)
            stub.set(app, TxScheme.ICACHE_ONLY, 1000)
        result = fig14_sharing_walks_pagesize.run_fig14b(scale=1.0)
        assert result.rows[0]["icache+lds_walks"] == 1.0


class TestFig15Aggregation:
    def test_percent_of_max(self, stub):
        for app in app_names():
            stub.set(
                app, TxScheme.ICACHE_LDS, 1000,
                **{"tx_entries.lds_peak": 6144.0, "tx_entries.icache_peak": 2048.0},
            )
        result = fig15_entries.run(scale=1.0)
        row = result.rows[0]
        assert row["total_entries"] == 8192
        assert row["pct_of_max"] == pytest.approx(50.0)


class TestExport:
    def test_slugify(self):
        assert export.slugify("Figure 13b") == "figure_13b"
        assert export.slugify("Section 6.3.1") == "section_6_3_1"

    def test_export_result_files(self, tmp_path):
        result = common.ExperimentResult("Figure 13b", "title", paper_notes="note")
        result.rows.append({"app": "A", "speedup": 2.0})
        written = export.export_result(result, str(tmp_path))
        assert len(written) == 2
        csv_text = (tmp_path / "figure_13b.csv").read_text()
        assert "app,speedup" in csv_text
        md_text = (tmp_path / "figure_13b.md").read_text()
        assert "note" in md_text
