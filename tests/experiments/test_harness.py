"""Tests for the experiment harness (small scale, shared result cache).

These assert the *structure* of every reproduced table/figure plus the
qualitative properties that must hold at any scale. The full-scale shape
checks live in benchmarks/ (one per figure).
"""

import pytest

from repro.config import TxScheme, table1_config
from repro.experiments import common
from repro.experiments import (
    ablation_design_choices,
    ablation_lds_segment,
    fig02_03_tlb_sweep,
    fig04_05_utilization,
    fig11_icache_kernels,
    fig13_main,
    fig14_sharing_walks_pagesize,
    fig15_entries,
    fig16_sensitivity,
    table2_characterization,
)
from repro.workloads.registry import app_names

SCALE = 0.12


@pytest.fixture(autouse=True, scope="module")
def _shared_cache():
    # One in-process cache across this module keeps total sim time low.
    yield
    common.clear_cache()


class TestCommon:
    def test_run_app_caches(self):
        first = common.run_app("SRAD", table1_config(), SCALE)
        second = common.run_app("SRAD", table1_config(), SCALE)
        assert first is second

    def test_cache_distinguishes_configs(self):
        baseline = common.run_app("SRAD", table1_config(), SCALE)
        other = common.run_app("SRAD", table1_config(TxScheme.LDS_ONLY), SCALE)
        assert baseline is not other

    def test_experiment_result_table_formatting(self):
        result = common.ExperimentResult("X", "title")
        result.rows.append({"a": 1, "b": 2.5})
        text = result.format_table()
        assert "| a | b |" in text
        assert "2.500" in text

    def test_row_for(self):
        result = common.ExperimentResult("X", "t")
        result.rows.append({"app": "A", "v": 1})
        assert result.row_for("app", "A")["v"] == 1
        with pytest.raises(KeyError):
            result.row_for("app", "Z")


class TestTable2:
    def test_rows_cover_all_apps(self):
        result = table2_characterization.run(SCALE)
        assert result.column("app") == app_names()

    def test_kernel_counts_match_table2(self):
        result = table2_characterization.run(SCALE)
        assert result.row_for("app", "ATAX")["kernels"] == 2
        assert result.row_for("app", "GEV")["kernels"] == 1
        assert result.row_for("app", "BFS")["kernels"] == 24

    def test_only_nw_is_back_to_back(self):
        result = table2_characterization.run(SCALE)
        b2b = {row["app"] for row in result.rows if row["b2b"]}
        assert b2b == {"NW"}

    def test_high_apps_have_highest_pki(self):
        result = table2_characterization.run(SCALE)
        high = min(
            row["ptw_pki"] for row in result.rows if row["paper_category"] == "H"
        )
        low = max(
            row["ptw_pki"] for row in result.rows if row["paper_category"] == "L"
        )
        assert high > low

    def test_categorize_rule(self):
        assert table2_characterization.categorize(25) == "H"
        assert table2_characterization.categorize(5) == "M"
        assert table2_characterization.categorize(0.5) == "L"


class TestFig02_03:
    def test_bigger_tlb_never_more_walks(self):
        result = fig02_03_tlb_sweep.run(SCALE, sizes=[512, 8192])
        small = result.row_for("l2_entries", 512)
        big = result.row_for("l2_entries", 8192)
        assert big["mean_walk_ratio"] <= small["mean_walk_ratio"]
        assert big["gmean_speedup"] >= small["gmean_speedup"]

    def test_perfect_row_has_zero_walks(self):
        result = fig02_03_tlb_sweep.run(SCALE, sizes=[512])
        perfect = result.row_for("l2_entries", "perfect")
        assert perfect["mean_walk_ratio"] == 0.0
        assert perfect["gmean_speedup"] >= 1.0


class TestFig04_05:
    def test_survey_shapes(self):
        result = fig04_05_utilization.run(SCALE)
        summary = fig04_05_utilization.summarize(result)
        assert summary["apps"] == 30  # 10 benchmarks + 20 survey apps
        assert 0.5 <= summary["fraction_no_lds"] <= 0.85
        assert summary["fraction_never_full_icache"] > 0.3

    def test_polybench_requests_no_lds(self):
        result = fig04_05_utilization.run(SCALE)
        assert not result.row_for("app", "ATAX")["uses_lds"]
        assert result.row_for("app", "NW")["uses_lds"]

    def test_srad_fills_icache(self):
        result = fig04_05_utilization.run(SCALE)
        # At reduced scale only part of SRAD's loop body is walked.
        assert result.row_for("app", "SRAD")["icache_util_max"] >= 0.6

    def test_idle_gaps_positive(self):
        result = fig04_05_utilization.run(SCALE)
        row = result.row_for("app", "ATAX")
        assert row["icache_idle_median"] > 0


class TestFig11:
    def test_series_present_for_multikernel_apps(self):
        result = fig11_icache_kernels.run(SCALE)
        apps = {row["app"] for row in result.rows}
        assert "GEV" not in apps and "SRAD" not in apps
        for row in result.rows:
            assert row["launches"] >= 2
            assert len(row["util_series_head"]) >= 2


class TestFig13:
    def test_fig13b_structure(self):
        result = fig13_main.run_fig13b(SCALE)
        gmean = result.row_for("app", "GMEAN")
        for scheme in ("lds", "icache", "icache+lds"):
            assert gmean[scheme] > 0
        hm = result.row_for("app", "GMEAN-H+M")
        assert hm["icache+lds"] >= gmean["icache+lds"]

    def test_fig13a_variant_columns(self):
        result = fig13_main.run_fig13a(SCALE)
        gmean = result.row_for("app", "GMEAN")
        assert set(fig13_main.icache_variant_configs()) <= set(gmean)

    def test_fig13c_energy_ratios_positive(self):
        result = fig13_main.run_fig13c(SCALE)
        mean = result.row_for("app", "MEAN")
        for key, value in mean.items():
            if key.endswith("_energy"):
                assert 0.3 < value < 1.5


class TestFig14:
    def test_sharing_bounded(self):
        result = fig14_sharing_walks_pagesize.run_fig14a(SCALE)
        for row in result.rows:
            assert 0.0 <= row["shared_pct"] <= 100.0

    def test_gev_shares_less_than_atax(self):
        result = fig14_sharing_walks_pagesize.run_fig14a(SCALE)
        gev = result.row_for("app", "GEV")["shared_pct"]
        atax = result.row_for("app", "ATAX")["shared_pct"]
        assert gev < atax

    def test_combined_walk_reduction_strongest(self):
        result = fig14_sharing_walks_pagesize.run_fig14b(SCALE)
        mean = result.row_for("app", "MEAN")
        # At reduced scale cold misses compress the gap; allow slack.
        assert mean["icache+lds_walks"] <= mean["lds_walks"] + 0.07
        assert mean["icache+lds_walks"] <= mean["icache_walks"] + 0.10
        assert mean["icache+lds_walks"] < 1.0


class TestFig15:
    def test_theoretical_max_matches_paper(self):
        limits = fig15_entries.theoretical_max_entries()
        assert limits["lds"] == 12 * 1024
        assert limits["icache"] == 4 * 1024
        assert limits["total"] == 16 * 1024

    def test_peaks_within_bound(self):
        result = fig15_entries.run(SCALE)
        limits = fig15_entries.theoretical_max_entries()
        for row in result.rows:
            assert 0 <= row["total_entries"] <= limits["total"]

    def test_high_apps_gain_entries(self):
        result = fig15_entries.run(SCALE)
        assert result.row_for("app", "ATAX")["total_entries"] > 100


class TestFig16:
    def test_sharers_subset(self):
        result = fig16_sensitivity.run_fig16a(SCALE, apps=["ATAX"])
        assert [row["cus_per_icache"] for row in result.rows] == [1, 2, 4, 8]

    def test_wire_latency_monotone_degradation(self):
        result = fig16_sensitivity.run_fig16b(SCALE, apps=["ATAX"])
        no_extra = result.row_for("arm", "no_extra")["gmean_speedup"]
        worst = result.row_for("arm", "ic_lds_100")["gmean_speedup"]
        assert worst <= no_extra * 1.05

    def test_ducati_rows(self):
        result = fig16_sensitivity.run_fig16c(SCALE)
        gmean = result.row_for("app", "GMEAN")
        assert gmean["ducati_icache_lds"] >= gmean["ducati"] * 0.9


class TestDesignChoiceAblations:
    def test_lookup_order_rows(self):
        result = ablation_design_choices.run_lookup_order(SCALE, apps=["SRAD"])
        orders = [row["order"] for row in result.rows]
        assert orders == ["lds-first", "icache-first"]
        assert all(row["gmean_speedup"] > 0 for row in result.rows)

    def test_packing_density_rows(self):
        result = ablation_design_choices.run_packing_density(SCALE, apps=["SRAD"])
        densities = [row["tx_per_line"] for row in result.rows]
        assert densities == [1, 2, 4, 8, 16]
        assert result.rows[3]["total_ic_entries"] == 4096


class TestAblation:
    def test_segment_sizes_report_ways(self):
        result = ablation_lds_segment.run(SCALE)
        assert result.row_for("segment_bytes", 32)["tx_ways"] == 3
        assert result.row_for("segment_bytes", 64)["tx_ways"] == 6

    def test_no_large_change_from_segment_size(self):
        result = ablation_lds_segment.run(SCALE)
        small = result.row_for("segment_bytes", 32)["gmean_speedup"]
        large = result.row_for("segment_bytes", 64)["gmean_speedup"]
        assert abs(small - large) / small < 0.2
