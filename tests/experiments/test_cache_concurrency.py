"""Robustness battery for the hardened on-disk result cache.

Parallel sweeps mean multiple processes reading and writing the same cache
directory at once; these tests pin down the failure modes the hardening
closes: corrupt files must be quarantined (not silently swallowed),
concurrent writers must leave a single valid file, and payloads from a
different schema version must be re-simulated.
"""

import json
import logging
import os
import threading

import pytest

from repro.config import table1_config
from repro.experiments import common

SCALE = 0.05
APP = "SRAD"


@pytest.fixture(autouse=True)
def _fresh_cache(tmp_path, monkeypatch):
    monkeypatch.setattr(common, "_CACHE_DIR", str(tmp_path))
    common.clear_cache()
    yield tmp_path
    common.clear_cache()


def _walk_suffix(tmp_path, suffix):
    # The store shards entries into <d[:2]>/<d[2:4]>/ subdirectories;
    # return paths relative to the root so tests can reopen them.
    found = []
    for dirpath, _dirnames, filenames in os.walk(tmp_path):
        for name in filenames:
            if name.endswith(suffix):
                full = os.path.join(dirpath, name)
                found.append(os.path.relpath(full, tmp_path))
    return sorted(found)


def cache_files(tmp_path):
    return _walk_suffix(tmp_path, ".json")


def quarantined_files(tmp_path):
    return _walk_suffix(tmp_path, ".corrupt")


class TestCorruptFiles:
    def test_corrupt_file_quarantined_and_resimulated(self, tmp_path, caplog):
        first = common.run_app(APP, table1_config(), SCALE)
        (path,) = cache_files(tmp_path)
        (tmp_path / path).write_text("{definitely not json")
        common.clear_cache()

        with caplog.at_level(logging.WARNING, logger="repro.experiments.cache"):
            second = common.run_app(APP, table1_config(), SCALE)

        assert second.cycles == first.cycles  # re-simulated, not None/garbage
        assert any("quarantined" in record.message for record in caplog.records)
        assert quarantined_files(tmp_path)  # bad file kept for debugging
        # The fresh result was re-stored as a valid file.
        (path,) = cache_files(tmp_path)
        payload = json.loads((tmp_path / path).read_text())
        assert payload["schema"] == common.CACHE_SCHEMA

    def test_truncated_file_quarantined(self, tmp_path, caplog):
        common.run_app(APP, table1_config(), SCALE)
        (path,) = cache_files(tmp_path)
        full = (tmp_path / path).read_text()
        (tmp_path / path).write_text(full[: len(full) // 2])
        common.clear_cache()

        with caplog.at_level(logging.WARNING, logger="repro.experiments.cache"):
            result = common.run_app(APP, table1_config(), SCALE)

        assert result.cycles > 0
        assert quarantined_files(tmp_path)

    def test_valid_json_wrong_shape_quarantined(self, tmp_path, caplog):
        common.run_app(APP, table1_config(), SCALE)
        (path,) = cache_files(tmp_path)
        (tmp_path / path).write_text(
            json.dumps({"schema": common.CACHE_SCHEMA, "cycles": 1})
        )
        common.clear_cache()

        with caplog.at_level(logging.WARNING, logger="repro.experiments.cache"):
            result = common.run_app(APP, table1_config(), SCALE)

        assert result.cycles > 1
        assert quarantined_files(tmp_path)

    def test_non_object_payload_quarantined(self, tmp_path, caplog):
        common.run_app(APP, table1_config(), SCALE)
        (path,) = cache_files(tmp_path)
        (tmp_path / path).write_text("[1, 2, 3]")
        common.clear_cache()

        with caplog.at_level(logging.WARNING, logger="repro.experiments.cache"):
            result = common.run_app(APP, table1_config(), SCALE)

        assert result.cycles > 0
        assert quarantined_files(tmp_path)


class TestSchemaVersioning:
    def test_version_tag_mismatch_triggers_resimulation(self, tmp_path, caplog):
        first = common.run_app(APP, table1_config(), SCALE)
        (path,) = cache_files(tmp_path)
        payload = json.loads((tmp_path / path).read_text())
        payload["schema"] = "repro-simresult-v0"
        payload["cycles"] = 123456789  # poison: must NOT be returned
        (tmp_path / path).write_text(json.dumps(payload))
        common.clear_cache()

        with caplog.at_level(logging.WARNING, logger="repro.experiments.cache"):
            second = common.run_app(APP, table1_config(), SCALE)

        assert second.cycles == first.cycles
        assert any("schema" in record.message for record in caplog.records)
        # Stale file overwritten in place (no quarantine needed for stale).
        (path,) = cache_files(tmp_path)
        refreshed = json.loads((tmp_path / path).read_text())
        assert refreshed["schema"] == common.CACHE_SCHEMA

    def test_legacy_untagged_payload_resimulated(self, tmp_path):
        # Pre-hardening payloads had no schema tag at all.
        first = common.run_app(APP, table1_config(), SCALE)
        (path,) = cache_files(tmp_path)
        payload = json.loads((tmp_path / path).read_text())
        del payload["schema"]
        payload["cycles"] = 1
        (tmp_path / path).write_text(json.dumps(payload))
        common.clear_cache()

        second = common.run_app(APP, table1_config(), SCALE)
        assert second.cycles == first.cycles

    def test_round_trip_serialization_is_lossless(self):
        result = common.run_app(APP, table1_config(), SCALE)
        clone = common.deserialize_result(common.serialize_result(result))
        assert common.result_fingerprint(clone) == common.result_fingerprint(result)


class TestConcurrentWriters:
    def test_concurrent_writers_leave_single_valid_file(self, tmp_path):
        result = common.run_app(APP, table1_config(), SCALE, use_cache=False)
        key = common.cache_key(APP, table1_config(), SCALE)
        errors = []

        def writer():
            try:
                for _ in range(25):
                    common._store_disk(key, result)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        assert len(cache_files(tmp_path)) == 1
        # No orphaned temp files left behind by the atomic-replace dance.
        assert not _walk_suffix(tmp_path, ".tmp")
        loaded = common._load_disk(key)
        assert loaded is not None
        assert common.result_fingerprint(loaded) == common.result_fingerprint(result)

    def test_store_is_atomic_under_reader(self, tmp_path):
        """A reader never observes a half-written payload."""

        result = common.run_app(APP, table1_config(), SCALE, use_cache=False)
        key = common.cache_key(APP, table1_config(), SCALE)
        common._store_disk(key, result)
        stop = threading.Event()
        bad = []

        def reader():
            while not stop.is_set():
                loaded = common._load_disk(key)
                if loaded is None or loaded.cycles != result.cycles:
                    bad.append(loaded)
                    return

        thread = threading.Thread(target=reader)
        thread.start()
        for _ in range(200):
            common._store_disk(key, result)
        stop.set()
        thread.join()
        assert not bad

    def test_no_disk_cache_dir_is_noop(self, monkeypatch):
        monkeypatch.setattr(common, "_CACHE_DIR", "")
        result = common.run_app(APP, table1_config(), SCALE, use_cache=False)
        key = common.cache_key(APP, table1_config(), SCALE)
        common._store_disk(key, result)  # must not raise or create anything
        assert common._load_disk(key) is None
