"""Unit tests for the validation checklists (fed synthetic results)."""

from repro.experiments.common import ExperimentResult
from repro.experiments.validation import (
    Check,
    VALIDATORS,
    render_checklist,
    validate,
    validate_fig13b,
    validate_fig16c,
)
from repro.experiments.report import ALL_EXPERIMENTS


def fig13b_result(combined=1.45, lds=1.30, icache=1.35, hm=1.70, gups=1.05,
                  atax=2.2, bicg=2.1, low=1.0):
    result = ExperimentResult("Figure 13b", "t")
    apps = {
        "ATAX": atax, "GEV": 2.0, "MVT": 1.9, "BICG": bicg, "GUPS": gups,
        "NW": 1.08, "BFS": 1.5, "SSSP": low, "PRK": low, "SRAD": low,
    }
    for app, value in apps.items():
        result.rows.append(
            {"app": app, "lds": value * 0.9, "icache": value * 0.95,
             "icache+lds": value}
        )
    result.rows.append(
        {"app": "GMEAN", "lds": lds, "icache": icache, "icache+lds": combined}
    )
    result.rows.append(
        {"app": "GMEAN-H+M", "lds": lds, "icache": icache, "icache+lds": hm}
    )
    return result


class TestFig13bChecklist:
    def test_good_result_passes(self):
        checks = validate_fig13b(fig13b_result())
        assert all(check.passed for check in checks)

    def test_degraded_low_app_flagged(self):
        checks = validate_fig13b(fig13b_result(low=0.90))
        failed = [check for check in checks if not check.passed]
        assert any("not degraded" in check.claim for check in failed)

    def test_weak_combined_flagged(self):
        checks = validate_fig13b(fig13b_result(combined=1.05, hm=1.10))
        assert any(not check.passed for check in checks)


class TestFig16cChecklist:
    def test_ducati_ordering(self):
        result = ExperimentResult("Figure 16c", "t")
        result.rows.append(
            {"app": "GMEAN", "ducati": 1.05, "icache_lds": 1.45,
             "ducati_icache_lds": 1.55}
        )
        checks = validate_fig16c(result)
        assert all(check.passed for check in checks)

    def test_ducati_too_strong_flagged(self):
        result = ExperimentResult("Figure 16c", "t")
        result.rows.append(
            {"app": "GMEAN", "ducati": 2.0, "icache_lds": 1.45,
             "ducati_icache_lds": 2.1}
        )
        checks = validate_fig16c(result)
        assert not checks[0].passed


class TestPlumbing:
    def test_validators_cover_every_experiment(self):
        # Every harness in the report has a checklist (by experiment id).
        known_ids = set(VALIDATORS)
        # ids used by the runners, spot-checked by name mapping:
        assert "Figure 13b" in known_ids
        assert "Section 6.3.1" in known_ids
        # Fig 11 and the two extra ablations are descriptive-only.
        assert len(known_ids) == 14

    def test_validate_skips_unknown_ids(self):
        result = ExperimentResult("Figure 999", "t")
        assert validate([result]) == []

    def test_render_checklist(self):
        checks = [
            Check("Fig X", "claim holds", True, "detail"),
            Check("Fig Y", "claim fails", False),
        ]
        text = render_checklist(checks)
        assert "PASS" in text and "DIVERGE" in text
        assert "1/2 claims reproduced" in text
