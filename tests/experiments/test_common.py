"""Tests for experiment infrastructure: caching, serialization, report."""

import os

import pytest

from repro.config import table1_config
from repro.experiments import common
from repro.experiments.report import ALL_EXPERIMENTS


class TestDiskCache:
    def test_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setattr(common, "_CACHE_DIR", str(tmp_path))
        common.clear_cache()
        first = common.run_app("SRAD", table1_config(), scale=0.05)
        common.clear_cache()  # drop the in-process cache; hit the disk
        second = common.run_app("SRAD", table1_config(), scale=0.05)
        assert second.cycles == first.cycles
        assert second.counters == first.counters
        assert len(second.kernels) == len(first.kernels)
        assert second.kernels[0].counters == first.kernels[0].counters
        common.clear_cache()

    def test_distributions_survive_disk(self, tmp_path, monkeypatch):
        monkeypatch.setattr(common, "_CACHE_DIR", str(tmp_path))
        common.clear_cache()
        first = common.run_app("SRAD", table1_config(), scale=0.05)
        common.clear_cache()
        second = common.run_app("SRAD", table1_config(), scale=0.05)
        assert set(second.distributions) == set(first.distributions)
        walk = second.distributions["walk_latency"]
        assert walk is None or walk.count == first.distributions["walk_latency"].count
        common.clear_cache()

    def test_corrupt_cache_file_ignored(self, tmp_path, monkeypatch):
        monkeypatch.setattr(common, "_CACHE_DIR", str(tmp_path))
        common.clear_cache()
        common.run_app("SRAD", table1_config(), scale=0.05)
        for dirpath, _dirnames, filenames in os.walk(tmp_path):
            for name in filenames:
                (tmp_path / os.path.relpath(os.path.join(dirpath, name), tmp_path)
                 ).write_text("{broken json")
        common.clear_cache()
        result = common.run_app("SRAD", table1_config(), scale=0.05)
        assert result.cycles > 0
        common.clear_cache()

    def test_no_cache_mode(self):
        common.clear_cache()
        a = common.run_app("SRAD", table1_config(), scale=0.05, use_cache=False)
        b = common.run_app("SRAD", table1_config(), scale=0.05, use_cache=False)
        assert a is not b
        assert a.cycles == b.cycles  # but deterministic


class TestCacheKeyNormalization:
    def test_int_and_float_scale_share_one_identity(self):
        """Regression: ``cache_key(app, cfg, 1)`` and ``…, 1.0)`` used to
        interpolate different strings, so ``run_app(..., scale=1)`` missed
        every runner-warmed cache entry and re-simulated."""

        cfg = table1_config()
        assert common.cache_key("SRAD", cfg, 1) == common.cache_key("SRAD", cfg, 1.0)
        assert common.cache_key("SRAD", cfg, 2) == common.cache_key("SRAD", cfg, 2.0)
        # Distinct scales still get distinct identities.
        assert common.cache_key("SRAD", cfg, 1) != common.cache_key("SRAD", cfg, 2)

    def test_int_scale_run_app_hits_float_warmed_cache(self, monkeypatch):
        from repro.sim.results import SimResult

        common.clear_cache()
        cfg = table1_config()
        sentinel = SimResult(app_name="SRAD", scheme="baseline", cycles=7)
        common._CACHE[common.cache_key("SRAD", cfg, 3.0)] = sentinel

        def boom(self, app):
            raise AssertionError("cache miss: re-simulated a warmed scale")

        monkeypatch.setattr(common.GPUSystem, "run", boom)
        assert common.run_app("SRAD", cfg, scale=3) is sentinel
        common.clear_cache()


class TestConfigSignature:
    def test_signature_distinguishes_configs(self):
        a = common._config_signature(table1_config())
        b = common._config_signature(table1_config().with_l2_tlb_entries(1024))
        assert a != b

    def test_signature_stable(self):
        assert common._config_signature(table1_config()) == common._config_signature(
            table1_config()
        )


class TestReportRegistry:
    def test_all_experiments_registered(self):
        # Table 2 + 13 figure harnesses + 6.3.1 + two extra ablations +
        # the duplication-filter and subregion-coalescing extensions.
        assert len(ALL_EXPERIMENTS) == 19

    def test_paper_order(self):
        names = [name for name, _ in ALL_EXPERIMENTS]
        assert names[0] == "Table 2"
        assert names[-1] == "Extension: subregion coalescing"

    def test_runners_are_callable(self):
        for _, runner in ALL_EXPERIMENTS:
            assert callable(runner)
