"""Property-based tests (hypothesis) for the reconfigurable-structure rules.

Three paper-mandated invariants that must hold for *every* interleaving of
operations, not just the ones the figures exercise:

- Section 4.2.4: an application (LDS-mode) allocation may silently reclaim
  Tx-mode segments, but a translation fill may **never** claim an LDS-mode
  segment.
- Section 4.3.2: under the INSTRUCTION_AWARE policy, a translation fill may
  **never** evict a resident instruction line.
- Figures 7b/10c: base-delta tag compression is exact — a packable group
  reconstructs its tags bit-for-bit from (base, deltas), and packability is
  equivalent to every delta fitting the delta field.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    ICacheConfig,
    ICacheReplacement,
    ICacheTxConfig,
    LDSConfig,
    LDSTxConfig,
)
from repro.core.compression import BaseDeltaCodec
from repro.core.reconfig_icache import ReconfigurableICache
from repro.core.reconfig_lds import LDSTxCache
from repro.gpu.lds import LocalDataShare, SegmentMode
from repro.tlb.base import TranslationEntry


def _entry(vpn: int) -> TranslationEntry:
    return TranslationEntry(vpn=vpn, pfn=vpn + 1)


# ---------------------------------------------------------------------------
# Section 4.2.4: LDS-mode may overwrite Tx-mode, never vice versa
# ---------------------------------------------------------------------------

# A script step is either a translation fill (vpn), an allocation (nbytes)
# or a free of the oldest live allocation.
_lds_steps = st.lists(
    st.one_of(
        st.tuples(st.just("fill"), st.integers(0, 1 << 20)),
        st.tuples(st.just("alloc"), st.integers(1, 2048)),
        st.tuples(st.just("free"), st.just(0)),
    ),
    min_size=1,
    max_size=120,
)


class TestLdsModePrecedence:
    @given(_lds_steps)
    @settings(max_examples=60, deadline=None)
    def test_lds_mode_always_wins(self, steps):
        # A small LDS (16 segments) so allocations and Tx fills collide
        # constantly.
        lds = LocalDataShare(
            LDSConfig(size_bytes=16 * 32), LDSTxConfig(), track_idle=False
        )
        tx = LDSTxCache(lds, LDSTxConfig())
        live = []
        for action, value in steps:
            if action == "fill":
                segment = value % lds.num_segments
                mode_before = lds.mode[segment]
                accepted, _ = tx.fill(_entry(value), now=0)
                if mode_before == SegmentMode.LDS:
                    # Tx may never claim an application segment...
                    assert not accepted
                    assert lds.mode[segment] == SegmentMode.LDS
                else:
                    assert accepted
            elif action == "alloc":
                alloc_id = lds.allocate(value)
                if alloc_id is not None:
                    live.append(alloc_id)
            elif live:
                lds.free(live.pop(0))

            # ...and at no point may a Tx entry sit in an LDS-mode segment.
            for segment, entries in tx._segments.items():
                assert lds.mode[segment] == SegmentMode.TX
                assert entries
            assert tx.entry_count == sum(
                len(entries) for entries in tx._segments.values()
            )

    @given(st.integers(0, 1 << 20), st.integers(1, 512))
    @settings(max_examples=60, deadline=None)
    def test_allocation_reclaims_tx_segments(self, vpn, nbytes):
        lds = LocalDataShare(
            LDSConfig(size_bytes=16 * 32), LDSTxConfig(), track_idle=False
        )
        tx = LDSTxCache(lds, LDSTxConfig())
        accepted, _ = tx.fill(_entry(vpn), now=0)
        assert accepted
        alloc_id = lds.allocate(nbytes)
        # A fresh LDS always has room, and resident translations never
        # block the application (they are dropped, not protected).
        assert alloc_id is not None
        segment = vpn % lds.num_segments
        if lds.mode[segment] == SegmentMode.LDS:
            assert segment not in tx._segments
            hit, _ = tx.lookup(_entry(vpn).key, anchor=0)
            assert hit is None


# ---------------------------------------------------------------------------
# Section 4.3.2: instruction-aware replacement protects instructions
# ---------------------------------------------------------------------------

_icache_steps = st.lists(
    st.one_of(
        st.tuples(st.just("fetch"), st.integers(0, 4096)),
        st.tuples(st.just("tx"), st.integers(0, 1 << 20)),
    ),
    min_size=1,
    max_size=150,
)


def _instruction_lines(cache):
    return {
        (set_index, line.tag)
        for set_index, cache_set in enumerate(cache._sets)
        for line in cache_set
        if line.valid and not line.is_tx
    }


class TestInstructionAwareReplacement:
    @given(_icache_steps)
    @settings(max_examples=60, deadline=None)
    def test_tx_fill_never_evicts_instructions(self, steps):
        # A tiny cache (16 lines) so both kinds of fill fight over lines.
        cache = ReconfigurableICache(
            ICacheConfig(size_bytes=16 * 64),
            ICacheTxConfig(replacement=ICacheReplacement.INSTRUCTION_AWARE),
            track_idle=False,
        )
        for action, value in steps:
            if action == "fetch":
                cache.fetch(value, now=0)
            else:
                resident = _instruction_lines(cache)
                accepted, _ = cache.tx_fill(_entry(value), now=0)
                # Every instruction line resident before the fill is still
                # resident after it, whether or not the fill was accepted.
                assert _instruction_lines(cache) >= resident
        assert cache.stats.get("icache.instructions_evicted_by_tx") == 0

    @given(_icache_steps)
    @settings(max_examples=30, deadline=None)
    def test_tx_entry_count_matches_contents(self, steps):
        cache = ReconfigurableICache(
            ICacheConfig(size_bytes=16 * 64),
            ICacheTxConfig(replacement=ICacheReplacement.NAIVE),
            track_idle=False,
        )
        for action, value in steps:
            if action == "fetch":
                cache.fetch(value, now=0)
            else:
                cache.tx_fill(_entry(value), now=0)
            actual = sum(
                len(line.tx_entries)
                for cache_set in cache._sets
                for line in cache_set
                if line.is_tx and line.tx_entries
            )
            assert cache.tx_entry_count() == actual


# ---------------------------------------------------------------------------
# Figures 7b/10c: base-delta compression is exact
# ---------------------------------------------------------------------------

_tags = st.lists(st.integers(0, 1 << 40), min_size=1, max_size=8)


class TestBaseDeltaRoundTrip:
    @given(_tags, st.integers(1, 16))
    @settings(max_examples=200)
    def test_packable_groups_round_trip(self, tags, delta_bits):
        codec = BaseDeltaCodec(base_bits=32, delta_bits=delta_bits)
        base = min(tags)
        deltas = [tag - base for tag in tags]
        if codec.can_pack(tags):
            # Encode/decode is exact: every delta fits its field and the
            # reconstruction recovers the original tags bit-for-bit.
            assert all(0 <= delta < (1 << delta_bits) for delta in deltas)
            assert [base + delta for delta in deltas] == tags
        else:
            # Unpackable iff some delta overflows the field — the codec
            # never rejects a group the encoding could represent.
            assert any(delta >= (1 << delta_bits) for delta in deltas)

    @given(_tags, st.integers(0, 1 << 40))
    @settings(max_examples=200)
    def test_packable_subset_is_sound_and_complete(self, resident, incoming):
        codec = BaseDeltaCodec(base_bits=32, delta_bits=8)
        keep = codec.packable_subset(resident, incoming)
        # Sound: the kept residents really do pack with the incoming tag.
        assert codec.can_pack(keep + [incoming])
        # Subset: nothing invented.
        leftovers = list(resident)
        for tag in keep:
            leftovers.remove(tag)
        # Complete enough: if everything packed, nothing is evicted.
        if codec.can_pack(resident + [incoming]):
            assert not leftovers
