"""Integration tests: the assembled GPUSystem end to end."""

import pytest

from repro.config import TxScheme, table1_config
from repro.system import GPUSystem, simulate
from tests.conftest import make_tiny_app, make_tiny_kernel
from repro.workloads.base import AppSpec


class TestAssembly:
    def test_table1_shape(self, config):
        system = GPUSystem(config)
        assert len(system.cus) == 8
        assert len(system.icaches) == 2  # 8 CUs / 4 per I-cache
        assert system.l2_tlb.capacity == 512

    def test_baseline_has_no_tx_structures(self, config):
        system = GPUSystem(config)
        assert all(cu.translation.lds_tx is None for cu in system.cus)
        assert all(cu.translation.icache_tx is None for cu in system.cus)
        assert system.ducati is None

    def test_combined_scheme_wiring(self):
        system = GPUSystem(table1_config(TxScheme.ICACHE_LDS))
        for cu in system.cus:
            assert cu.translation.lds_tx is not None
            assert cu.translation.icache_tx is cu.icache

    def test_cu_groups_share_icache(self):
        system = GPUSystem(table1_config())
        assert system.cus[0].icache is system.cus[3].icache
        assert system.cus[0].icache is not system.cus[4].icache

    def test_ducati_reserves_l2_ways(self):
        system = GPUSystem(table1_config(TxScheme.DUCATI))
        assert system.ducati is not None
        assert system.shared_l2.cache.effective_ways < system.config.data_cache.l2_ways

    def test_invalid_sharer_count_rejected(self):
        with pytest.raises(ValueError):
            table1_config().with_icache_sharers(3)


class TestRun:
    def test_tiny_app_completes(self, config, tiny_app):
        result = GPUSystem(config).run(tiny_app)
        assert result.cycles > 0
        assert result.instructions > 0
        assert len(result.kernels) == 2

    def test_kernel_results_are_ordered(self, config, tiny_app):
        result = GPUSystem(config).run(tiny_app)
        assert result.kernels[0].end_cycle <= result.kernels[1].start_cycle

    def test_determinism(self, config):
        a = GPUSystem(config).run(make_tiny_app())
        b = GPUSystem(table1_config()).run(make_tiny_app())
        assert a.cycles == b.cycles
        assert a.counters == b.counters

    def test_simulate_convenience(self, tiny_app):
        result = simulate(tiny_app)
        assert result.scheme == "baseline"

    def test_instruction_conservation(self, config):
        # Instructions executed must match what the programs encode.
        from repro.gpu.instructions import count_instructions
        from repro.workloads.base import ProgramContext

        app = make_tiny_app(kernels=1)
        kernel = app.kernels[0]
        expected = 0
        for wg in range(kernel.num_workgroups):
            for wave in range(kernel.waves_per_workgroup):
                context = ProgramContext(
                    app_name=app.name, kernel_name=kernel.name, invocation=0,
                    wg_id=wg, wave_id=wave,
                    num_workgroups=kernel.num_workgroups,
                    waves_per_workgroup=kernel.waves_per_workgroup,
                )
                expected += count_instructions(kernel.program_factory(context))
        result = GPUSystem(config).run(app)
        assert result.instructions == expected

    def test_energy_counters_present(self, config, tiny_app):
        result = GPUSystem(config).run(tiny_app)
        assert result.counter("energy.total_nj") > 0

    def test_distributions_present(self, config, tiny_app):
        result = GPUSystem(config).run(tiny_app)
        assert "icache_port_idle" in result.distributions
        assert "walk_latency" in result.distributions

    def test_per_kernel_counters_sum(self, config, tiny_app):
        result = GPUSystem(config).run(tiny_app)
        per_kernel = sum(k.counters.get("instructions", 0) for k in result.kernels)
        assert per_kernel == result.instructions


class TestSchemesEndToEnd:
    def test_every_scheme_runs(self, tiny_app):
        for scheme in TxScheme:
            config = (
                table1_config().with_perfect_l2_tlb()
                if scheme is TxScheme.PERFECT_L2_TLB
                else table1_config(scheme)
            )
            result = GPUSystem(config).run(make_tiny_app())
            assert result.cycles > 0
            assert result.scheme == scheme.value

    def test_victim_caches_reduce_walks_on_thrashy_app(self):
        app_kwargs = dict(kernels=1, num_workgroups=16, waves_per_workgroup=4,
                          pages=3000, ops_per_wave=40)
        baseline = GPUSystem(table1_config()).run(make_tiny_app(**app_kwargs))
        combined = GPUSystem(table1_config(TxScheme.ICACHE_LDS)).run(
            make_tiny_app(**app_kwargs)
        )
        assert combined.page_walks <= baseline.page_walks

    def test_perfect_l2_never_walks(self, tiny_app):
        result = GPUSystem(table1_config().with_perfect_l2_tlb()).run(tiny_app)
        assert result.page_walks == 0


class TestKernelBoundaryBehaviour:
    def test_flush_applied_between_different_kernels(self):
        from dataclasses import replace

        config = table1_config(TxScheme.ICACHE_ONLY)
        config = replace(
            config,
            icache_tx=replace(config.icache_tx, flush_on_kernel_boundary=True),
        )
        system = GPUSystem(config)
        system.run(make_tiny_app(kernels=2))
        assert system.stats.get("icache.instruction_flushes") >= 1

    def test_flush_suppressed_for_b2b(self):
        from dataclasses import replace

        config = table1_config(TxScheme.ICACHE_ONLY)
        config = replace(
            config,
            icache_tx=replace(config.icache_tx, flush_on_kernel_boundary=True),
        )
        kernel = make_tiny_kernel(name="same")
        app = AppSpec(name="b2b", kernels=(kernel, kernel))
        system = GPUSystem(config)
        system.run(app)
        assert system.stats.get("icache.flush_suppressed") >= 1
        assert system.stats.get("icache.instruction_flushes", ) == 0


class TestShootdown:
    def test_system_shootdown_invalidates_everywhere(self):
        system = GPUSystem(table1_config(TxScheme.ICACHE_LDS))
        system.run(make_tiny_app(kernels=1, pages=16))
        vpn = (1 << 20) + 1  # a page the tiny app touched
        count = system.shootdown(vpn)
        assert count >= 1
        assert system.stats.get("shootdowns") == 1
        # Nothing holds the translation any more.
        key = (0, 0, vpn)
        assert not system.l2_tlb.probe(key)
        for cu in system.cus:
            assert not cu.translation.l1_tlb.probe(key)

    def test_shootdown_of_unknown_page(self):
        system = GPUSystem(table1_config())
        assert system.shootdown(999_999_999) == 0
