"""Unit tests for the LDS scratchpad and its contiguous allocator."""

import pytest

from repro.config import LDSConfig, LDSTxConfig
from repro.gpu.lds import LocalDataShare, SegmentMode


@pytest.fixture
def lds():
    return LocalDataShare(LDSConfig(), LDSTxConfig(), name="lds")


class TestGeometry:
    def test_segment_count(self, lds):
        assert lds.num_segments == 512  # 16KB / 32B

    def test_initially_free(self, lds):
        assert lds.allocated_segments == 0
        assert lds.free_segments == 512


class TestAllocation:
    def test_allocate_marks_lds_mode(self, lds):
        lds.allocate(1024)
        assert lds.allocated_segments == 32
        assert lds.mode[:32] == [SegmentMode.LDS] * 32

    def test_zero_byte_allocation_succeeds(self, lds):
        alloc = lds.allocate(0)
        assert alloc is not None
        assert lds.allocated_segments == 0
        lds.free(alloc)

    def test_allocation_rounds_up_to_segments(self, lds):
        lds.allocate(33)  # 2 segments
        assert lds.allocated_segments == 2

    def test_free_returns_capacity(self, lds):
        alloc = lds.allocate(4096)
        lds.free(alloc)
        assert lds.allocated_segments == 0

    def test_exhaustion(self, lds):
        assert lds.allocate(LDSConfig().size_bytes) is not None
        assert lds.allocate(32) is None
        assert lds.stats.get("lds.allocation_failures") == 1

    def test_can_allocate_is_consistent(self, lds):
        lds.allocate(LDSConfig().size_bytes - 64)
        assert lds.can_allocate(64)
        assert not lds.can_allocate(128)

    def test_contiguity_fragmentation(self, lds):
        # Allocate three blocks, free the middle: a big request must fail
        # even though total free space would fit it (contiguous policy).
        third = LDSConfig().size_bytes // 4
        a = lds.allocate(third)
        b = lds.allocate(third)
        c = lds.allocate(third)
        assert None not in (a, b, c)
        lds.free(b)
        assert not lds.can_allocate(third * 2 - 64)
        assert lds.can_allocate(third)

    def test_first_fit_reuses_freed_hole(self, lds):
        a = lds.allocate(1024)
        b = lds.allocate(1024)
        lds.free(a)
        c = lds.allocate(512)
        start, _ = lds._allocations[c]
        assert start == 0  # placed in the freed hole
        lds.free(b)
        lds.free(c)

    def test_allocation_over_tx_segments_fires_callback(self, lds):
        reclaimed = []
        lds.tx_overwrite_callback = reclaimed.append
        lds.mode[0] = SegmentMode.TX
        lds.mode[1] = SegmentMode.TX
        lds.allocate(64)  # claims segments 0 and 1
        assert reclaimed == [0, 1]

    def test_tx_segments_are_allocatable(self, lds):
        lds.mode[:] = [SegmentMode.TX] * lds.num_segments
        assert lds.can_allocate(LDSConfig().size_bytes)


class TestAppAccess:
    def test_access_latency(self, lds):
        done = lds.app_access(now=5)
        assert done == 5 + LDSConfig().lds_mode_latency

    def test_port_serializes(self, lds):
        lds.app_access(0)
        second = lds.app_access(0)
        assert second == LDSConfig().lds_mode_latency + LDSConfig().port_occupancy

    def test_access_counted(self, lds):
        lds.app_access(0)
        assert lds.stats.get("lds.app_accesses") == 1
