"""Unit tests for the opt-in next-line I-cache prefetcher (Equation 1)."""

from dataclasses import replace

from repro.config import ICacheConfig, ICacheTxConfig
from repro.core.reconfig_icache import ReconfigurableICache
from repro.gpu.icache import InstructionCache
from repro.tlb.base import TranslationEntry


def make(prefetch=True):
    return InstructionCache(
        ICacheConfig(next_line_prefetch=prefetch), name="ic"
    )


class TestNextLinePrefetch:
    def test_miss_prefetches_next_line(self):
        icache = make()
        icache.fetch(0, 0)
        assert icache.stats.get("ic.prefetches") == 1
        # Line 1 now hits without a demand miss.
        icache.fetch(1, 100)
        assert icache.stats.get("ic.misses") == 1
        assert icache.stats.get("ic.hits") == 1

    def test_prefetch_counts_as_fill_for_equation1(self):
        icache = make()
        icache.fetch(0, 0)
        assert icache.stats.get("ic.fills") == 2  # demand + prefetch

    def test_disabled_by_default(self):
        icache = InstructionCache(ICacheConfig(), name="ic")
        icache.fetch(0, 0)
        assert icache.stats.get("ic.prefetches") == 0

    def test_prefetch_skips_resident_lines(self):
        icache = make()
        icache.fetch(1, 0)   # fills 1, prefetches 2
        icache.fetch(0, 50)  # prefetch target 1 already resident
        assert icache.stats.get("ic.prefetches") == 1

    def test_streaming_halves_demand_misses(self):
        with_pf = make(True)
        without_pf = make(False)
        for line in range(32):
            with_pf.fetch(line, line * 100)
            without_pf.fetch(line, line * 100)
        assert with_pf.stats.get("ic.misses") <= without_pf.stats.get("ic.misses") / 1.9


class TestPrefetchTxInteraction:
    def test_prefetch_claim_spills_tx_entries(self):
        config = ICacheConfig(next_line_prefetch=True)
        icache = ReconfigurableICache(config, ICacheTxConfig(), name="ic")
        entry = TranslationEntry(vpn=1, pfn=2)  # direct-mapped to line 1
        icache.tx_fill(entry, 0)
        assert icache.tx_entry_count() == 1
        icache.fetch(0, 0)  # demand line 0; prefetch claims line 1's slot?
        # The prefetch fill uses the instruction-aware policy: with invalid
        # lines available in the set it must NOT claim the Tx line.
        assert icache.tx_entry_count() == 1

    def test_prefetch_tx_accounting_consistent(self):
        config = ICacheConfig(next_line_prefetch=True)
        icache = ReconfigurableICache(config, ICacheTxConfig(), name="ic")
        for vpn in range(600):
            icache.tx_fill(TranslationEntry(vpn=vpn, pfn=vpn), 0)
        for line in range(300):
            icache.fetch(line, line)
        actual = sum(
            len(line.tx_entries)
            for cache_set in icache._sets
            for line in cache_set
            if line.is_tx and line.tx_entries
        )
        assert icache.tx_entry_count() == actual
