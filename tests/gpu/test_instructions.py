"""Unit tests for macro-op constructors and program helpers."""

import pytest

from repro.gpu.instructions import alu, count_instructions, lds_op, line, mem


class TestConstructors:
    def test_alu(self):
        assert alu(5) == ("alu", 5)

    def test_alu_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            alu(0)

    def test_lds(self):
        assert lds_op(3) == ("lds", 3)

    def test_line(self):
        assert line(7) == ("line", 7)

    def test_mem_defaults(self):
        op = mem([4, 5])
        assert op == ("mem", (4, 5), 2, False, 1)

    def test_mem_explicit(self):
        op = mem((9,), instr_count=32, is_write=True, lines_per_page=4)
        assert op == ("mem", (9,), 32, True, 4)

    def test_mem_requires_pages(self):
        with pytest.raises(ValueError):
            mem([])

    def test_mem_rejects_zero_lines(self):
        with pytest.raises(ValueError):
            mem([1], lines_per_page=0)


class TestCountInstructions:
    def test_mixed_program(self):
        program = [alu(10), mem([1, 2], instr_count=6), lds_op(4), line(0)]
        assert count_instructions(program) == 20

    def test_line_ops_are_free(self):
        assert count_instructions([line(0), line(1)]) == 0
