"""Unit tests for work-group dispatch (wave slots, LDS gating, refills)."""

import pytest

from repro.config import table1_config
from repro.sim.engine import WaveScheduler
from repro.system import GPUSystem
from repro.workloads.base import AppSpec, KernelSpec
from tests.conftest import make_tiny_app, make_tiny_kernel


def dispatch_only(system, kernel, now=0):
    scheduler = WaveScheduler()
    system.dispatcher.start_kernel("app", kernel, 0, 0, scheduler, now)
    return scheduler


class TestDispatch:
    def test_all_workgroups_dispatch_when_capacity_allows(self, config):
        system = GPUSystem(config)
        kernel = make_tiny_kernel(num_workgroups=8, waves_per_workgroup=2)
        scheduler = dispatch_only(system, kernel)
        assert len(scheduler) == 16  # every wave enqueued

    def test_dispatch_round_robins_cus(self, config):
        system = GPUSystem(config)
        kernel = make_tiny_kernel(num_workgroups=8, waves_per_workgroup=2)
        dispatch_only(system, kernel)
        active = [cu.free_wave_slots for cu in system.cus]
        assert len(set(active)) == 1  # evenly spread

    def test_wave_slot_limit_gates_dispatch(self, config):
        system = GPUSystem(config)
        max_waves = config.gpu.num_cus * config.gpu.max_waves_per_cu
        kernel = make_tiny_kernel(num_workgroups=200, waves_per_workgroup=2)
        scheduler = dispatch_only(system, kernel)
        assert len(scheduler) == max_waves

    def test_lds_capacity_gates_dispatch(self, config):
        system = GPUSystem(config)
        kernel = make_tiny_kernel(
            num_workgroups=32, waves_per_workgroup=1,
            lds_bytes=config.lds.size_bytes,  # one WG fills a CU's LDS
        )
        scheduler = dispatch_only(system, kernel)
        assert len(scheduler) == config.gpu.num_cus

    def test_oversized_lds_request_rejected(self, config):
        system = GPUSystem(config)
        kernel = make_tiny_kernel(lds_bytes=config.lds.size_bytes + 1)
        with pytest.raises(ValueError):
            dispatch_only(system, kernel)

    def test_lds_request_distribution_sampled(self, config):
        system = GPUSystem(config)
        kernel = make_tiny_kernel(num_workgroups=4, lds_bytes=2048)
        dispatch_only(system, kernel)
        box = system.dispatcher.lds_request_bytes.box_stats()
        assert box.maximum == 2048
        assert box.count == 4

    def test_pending_workgroups_dispatch_on_completion(self, config):
        # End-to-end: more WGs than capacity; all must eventually complete.
        system = GPUSystem(config)
        app = make_tiny_app(kernels=1, num_workgroups=200, waves_per_workgroup=2)
        result = system.run(app)
        assert system.stats.get("dispatcher.workgroups") == 200
        assert system.stats.get("dispatcher.workgroups_completed") == 200
        assert result.cycles > 0

    def test_lds_freed_after_workgroup_completion(self, config):
        system = GPUSystem(config)
        app = make_tiny_app(kernels=1, num_workgroups=16, lds_bytes=4096)
        system.run(app)
        assert all(cu.lds.allocated_segments == 0 for cu in system.cus)
