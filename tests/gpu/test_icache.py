"""Unit tests for the baseline instruction cache."""

import pytest

from repro.config import ICacheConfig
from repro.gpu.icache import CacheLine, InstructionCache


@pytest.fixture
def icache():
    return InstructionCache(ICacheConfig(), name="ic")


class TestGeometry:
    def test_table1_geometry(self):
        config = ICacheConfig()
        assert config.num_lines == 256
        assert config.num_sets == 32

    def test_line_construction(self):
        line = CacheLine()
        assert not line.valid
        assert not line.is_tx


class TestFetch:
    def test_miss_then_hit(self, icache):
        config = ICacheConfig()
        cold = icache.fetch(0, now=0)
        warm = icache.fetch(0, now=cold)
        assert cold == config.tag_latency + config.fill_latency
        assert warm - cold == config.tag_latency

    def test_miss_counters(self, icache):
        icache.fetch(0, 0)
        icache.fetch(0, 100)
        assert icache.stats.get("ic.misses") == 1
        assert icache.stats.get("ic.hits") == 1
        assert icache.stats.get("ic.fills") == 1

    def test_distinct_lines_fill_distinct_slots(self, icache):
        for line_addr in range(8):
            icache.fetch(line_addr, 0)
        assert icache.valid_instruction_lines() == 8

    def test_conflict_eviction_within_set(self, icache):
        config = ICacheConfig()
        # ways+1 lines mapping to set 0.
        for way in range(config.ways + 1):
            icache.fetch(way * config.num_sets, now=way * 1000)
        misses = icache.stats.get("ic.misses")
        icache.fetch(0, now=10**6)  # line 0 was the LRU victim
        assert icache.stats.get("ic.misses") == misses + 1

    def test_lru_refresh_on_hit(self, icache):
        config = ICacheConfig()
        stride = config.num_sets
        icache.fetch(0, 0)
        for way in range(1, config.ways):
            icache.fetch(way * stride, way * 100)
        icache.fetch(0, 10_000)  # refresh line 0
        icache.fetch(config.ways * stride, 20_000)  # evicts line `stride`
        misses = icache.stats.get("ic.misses")
        icache.fetch(0, 30_000)
        assert icache.stats.get("ic.misses") == misses  # still resident

    def test_port_serializes_requests(self, icache):
        first = icache.fetch(0, 0)
        second = icache.fetch(1, 0)
        assert second > first - ICacheConfig().fill_latency  # queued behind


class TestMaintenance:
    def test_flush_instructions(self, icache):
        icache.fetch(0, 0)
        icache.fetch(1, 0)
        assert icache.flush_instructions() == 2
        assert icache.valid_instruction_lines() == 0

    def test_flush_counts_misses_after(self, icache):
        icache.fetch(0, 0)
        icache.flush_instructions()
        misses = icache.stats.get("ic.misses")
        icache.fetch(0, 1000)
        assert icache.stats.get("ic.misses") == misses + 1

    def test_baseline_kernel_boundary_is_noop(self, icache):
        icache.fetch(0, 0)
        icache.on_kernel_boundary(next_kernel_same=False)
        assert icache.valid_instruction_lines() == 1

    def test_tx_entry_count_zero_in_baseline(self, icache):
        icache.fetch(0, 0)
        assert icache.tx_entry_count() == 0
