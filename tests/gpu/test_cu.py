"""Unit tests for ComputeUnit wave-slot accounting and bulk-DRAM notes."""

import pytest

from repro.config import table1_config
from repro.system import GPUSystem


@pytest.fixture
def cu(config):
    return GPUSystem(config).cus[0]


class TestWaveSlots:
    def test_initial_capacity(self, cu, config):
        assert cu.free_wave_slots == config.gpu.max_waves_per_cu

    def test_claim_picks_least_loaded_simd(self, cu):
        first = cu.claim_wave_slot()
        second = cu.claim_wave_slot()
        assert first != second  # spreads across SIMDs

    def test_claim_release_roundtrip(self, cu, config):
        simds = [cu.claim_wave_slot() for _ in range(5)]
        for simd in simds:
            cu.release_wave_slot(simd)
        assert cu.free_wave_slots == config.gpu.max_waves_per_cu

    def test_exhaustion_raises(self, cu, config):
        for _ in range(config.gpu.max_waves_per_cu):
            cu.claim_wave_slot()
        with pytest.raises(RuntimeError):
            cu.claim_wave_slot()

    def test_over_release_raises(self, cu):
        simd = cu.claim_wave_slot()
        cu.release_wave_slot(simd)
        with pytest.raises(RuntimeError):
            cu.release_wave_slot(simd)


class TestBulkDram:
    def test_bulk_reads_counted(self, cu):
        before = cu._dram_stats.get("dram.reads")
        cu.note_bulk_dram(32, is_write=False)
        assert cu._dram_stats.get("dram.reads") == before + 32

    def test_bulk_writes_counted(self, cu):
        cu.note_bulk_dram(16, is_write=True)
        assert cu._dram_stats.get("dram.writes") == 16

    def test_bulk_activates_fractional(self, cu):
        cu.note_bulk_dram(32, is_write=False)
        assert cu._dram_stats.get("dram.activates") == pytest.approx(2.0)
