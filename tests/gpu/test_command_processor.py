"""Unit tests for the PM4-style command processor (Section 7.1)."""

import pytest

from repro.config import TxScheme, table1_config
from repro.gpu.command_processor import (
    CommandPacket,
    CommandProcessor,
    FLUSH_BROADCAST_CYCLES,
    INVALIDATE_BROADCAST_CYCLES,
    PACKET_DECODE_CYCLES,
    PacketType,
)
from repro.system import GPUSystem
from tests.conftest import make_tiny_app


def make_cp(invalidated=None, flushed=None):
    invalidated = invalidated if invalidated is not None else {}
    flushed = flushed if flushed is not None else [0]

    def invalidate(vpn):
        invalidated[vpn] = invalidated.get(vpn, 0) + 1
        return 2

    def flush():
        flushed[0] += 1
        return 7

    return CommandProcessor(invalidate, flush), invalidated, flushed


class TestPackets:
    def test_empty_shootdown_rejected(self):
        with pytest.raises(ValueError):
            CommandPacket(PacketType.TLB_SHOOTDOWN)

    def test_flush_packet_needs_no_pages(self):
        packet = CommandPacket(PacketType.ICACHE_FLUSH)
        assert packet.vpns == ()


class TestProcessing:
    def test_shootdown_invalidates_each_page(self):
        cp, invalidated, _ = make_cp()
        cp.enqueue_shootdown([1, 2, 3])
        results = cp.drain()
        assert invalidated == {1: 1, 2: 1, 3: 1}
        assert results[0].entries_invalidated == 6

    def test_shootdown_timing(self):
        cp, _, _ = make_cp()
        cp.enqueue_shootdown([10, 11])
        result = cp.drain(now=100)[0]
        assert result.completed_at == (
            100 + PACKET_DECODE_CYCLES + 2 * INVALIDATE_BROADCAST_CYCLES
        )

    def test_flush_packet(self):
        cp, _, flushed = make_cp()
        cp.enqueue_icache_flush()
        result = cp.drain(now=0)[0]
        assert flushed[0] == 1
        assert result.lines_flushed == 7
        assert result.completed_at == PACKET_DECODE_CYCLES + FLUSH_BROADCAST_CYCLES

    def test_packets_drain_serially(self):
        cp, _, _ = make_cp()
        cp.enqueue_shootdown([1])
        cp.enqueue_icache_flush()
        results = cp.drain(now=0)
        assert len(results) == 2
        assert results[1].completed_at > results[0].completed_at
        assert cp.pending == 0

    def test_busy_until_carries_across_drains(self):
        cp, _, _ = make_cp()
        cp.enqueue_shootdown([1])
        first = cp.drain(now=0)[0]
        cp.enqueue_shootdown([2])
        second = cp.drain(now=0)[0]  # arrives while processor still busy
        assert second.completed_at > first.completed_at

    def test_stats(self):
        cp, _, _ = make_cp()
        cp.enqueue_shootdown([1, 2])
        cp.enqueue_icache_flush()
        cp.drain()
        assert cp.stats.get("cp.packets_processed") == 2
        assert cp.stats.get("cp.shootdown_pages") == 2
        assert cp.stats.get("cp.flush_commands") == 1


class TestSystemIntegration:
    def test_driver_shootdown_clears_structures(self):
        system = GPUSystem(table1_config(TxScheme.ICACHE_LDS))
        system.run(make_tiny_app(kernels=1, pages=64))
        vpns = [(1 << 20) + page for page in range(64)]
        results = system.driver_shootdown(vpns)
        assert results[0].entries_invalidated > 0
        for cu in system.cus:
            assert len(cu.translation.l1_tlb) == 0

    def test_driver_shootdown_counts_system_shootdowns(self):
        system = GPUSystem(table1_config())
        system.run(make_tiny_app(kernels=1, pages=8))
        system.driver_shootdown([(1 << 20)])
        assert system.stats.get("shootdowns") == 1
        assert system.stats.get("cp.packets_processed") == 1
