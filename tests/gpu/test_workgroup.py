"""Unit tests for WorkGroup completion bookkeeping."""

from repro.gpu.workgroup import WorkGroup


class FakeCU:
    def __init__(self):
        self.released = []
        self.lds = self

    def release_wave_slot(self, simd):
        self.released.append(simd)

    def free(self, alloc_id):
        self.freed = alloc_id


class FakeDispatcher:
    def __init__(self):
        self.completions = []

    def workgroup_completed(self, cu, now):
        self.completions.append(now)


class FakeWave:
    simd_index = 2


class TestWorkGroup:
    def make(self, waves=2, alloc=7):
        cu = FakeCU()
        dispatcher = FakeDispatcher()
        wg = WorkGroup(
            kernel_name="k", kernel_code_base=0, wg_id=0, cu=cu,
            dispatcher=dispatcher, lds_alloc_id=alloc, num_waves=waves,
        )
        return wg, cu, dispatcher

    def test_completion_after_last_wave(self):
        wg, cu, dispatcher = self.make(waves=2)
        wg.wave_done(FakeWave(), 100)
        assert dispatcher.completions == []
        wg.wave_done(FakeWave(), 250)
        assert dispatcher.completions == [250]

    def test_lds_freed_on_completion(self):
        wg, cu, dispatcher = self.make(waves=1, alloc=42)
        wg.wave_done(FakeWave(), 10)
        assert cu.freed == 42

    def test_no_lds_allocation(self):
        wg, cu, dispatcher = self.make(waves=1, alloc=None)
        wg.wave_done(FakeWave(), 10)
        assert not hasattr(cu, "freed")
        assert dispatcher.completions == [10]

    def test_wave_slots_released_each_time(self):
        wg, cu, dispatcher = self.make(waves=3)
        for t in (1, 2, 3):
            wg.wave_done(FakeWave(), t)
        assert cu.released == [2, 2, 2]
