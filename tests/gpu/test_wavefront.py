"""Unit tests for wavefront op execution and the CU wiring it uses."""

import pytest

from repro.config import TxScheme, table1_config
from repro.gpu.instructions import alu, lds_op, line, mem
from repro.gpu.wavefront import IB_LINES, Wavefront
from repro.sim.engine import WaveScheduler
from repro.system import GPUSystem
from repro.workloads.base import AppSpec, KernelSpec


def run_single_wave(ops, scheme=TxScheme.BASELINE, config=None):
    """Run one wave with the given ops on a fresh system; returns (system, cycles)."""

    if config is None:
        config = table1_config(scheme)

    kernel = KernelSpec(
        name="k", num_workgroups=1, waves_per_workgroup=1,
        lds_bytes_per_workgroup=256, static_lines=8,
        program_factory=lambda ctx: iter(list(ops)),
    )
    app = AppSpec(name="one", kernels=(kernel,))
    system = GPUSystem(config)
    result = system.run(app)
    return system, result


class TestAluOp:
    def test_alu_advances_time_by_count(self):
        system, result = run_single_wave([alu(100)])
        assert result.instructions == 100

    def test_alu_occupies_issue_port(self):
        system, _ = run_single_wave([alu(50)])
        busy = [p.busy_cycles for cu in system.cus for p in cu.simd_ports]
        assert sum(busy) == 50


class TestLineOp:
    def test_first_line_misses_ib_and_fetches(self):
        system, _ = run_single_wave([line(0)])
        assert system.stats.get("ib.misses") == 1
        assert system.stats.get("icache.fills") == 1

    def test_repeat_line_hits_ib(self):
        system, _ = run_single_wave([line(0), line(0)])
        assert system.stats.get("ib.hits") == 1

    def test_ib_capacity_eviction(self):
        # Cycle through IB_LINES+1 lines twice: second pass misses the IB.
        lines = [line(i) for i in range(IB_LINES + 1)]
        system, _ = run_single_wave(lines + lines)
        assert system.stats.get("ib.misses") == 2 * (IB_LINES + 1)
        # But the I-cache itself still holds them all.
        assert system.stats.get("icache.hits") == IB_LINES + 1


class TestLdsOp:
    def test_lds_ops_access_scratchpad(self):
        system, result = run_single_wave([lds_op(4)])
        assert system.stats.get("lds.app_accesses") == 4
        assert result.instructions == 4


class TestMemOp:
    def test_mem_translates_unique_pages(self):
        system, result = run_single_wave([mem((100, 101, 100), 8)])
        assert system.stats.get("translations") == 2
        assert result.instructions == 8

    def test_mem_touches_data_hierarchy(self):
        system, _ = run_single_wave([mem((100,), 4)])
        assert (
            system.stats.get("l1_cache.hits") + system.stats.get("l1_cache.misses")
        ) >= 1

    def test_simt_lockstep_waits_for_slowest_page(self):
        # One op touching many pages must take at least one walk's latency.
        vpns = tuple(range(1000, 1032))
        _, result = run_single_wave([mem(vpns, 32)])
        assert result.kernels[0].cycles > 400

    def test_write_traffic_reaches_dram(self):
        system, _ = run_single_wave([mem((55,), 4, is_write=True, lines_per_page=2)])
        assert system.stats.get("dram.writes") >= 1

    def test_bulk_lines_counted_for_energy_only(self):
        before_cfg = table1_config()
        system, _ = run_single_wave([mem((77,), 64, lines_per_page=64)])
        # 4 timed lines + 60 bulk lines accounted as reads.
        assert system.stats.get("dram.reads") >= 60

    def test_locality_credit(self):
        system, _ = run_single_wave([mem((5,), instr_count=81)])
        # (81 - 1) // 8 = 10 extra L1 hits credited.
        assert system.stats.get("l1_tlb.hits") == 10


class TestUnknownOp:
    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            run_single_wave([("bogus", 1)])
