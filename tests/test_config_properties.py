"""Property-based tests: configuration serialization and derivation."""

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TxScheme, table1_config
from repro.config_io import config_from_dict, config_from_json, config_to_dict, config_to_json

schemes = st.sampled_from(list(TxScheme))
page_sizes = st.sampled_from([4096, 64 * 1024, 2 * 1024 * 1024])
sharers = st.sampled_from([1, 2, 4, 8])
entries = st.sampled_from([512, 1024, 4096, 65536])


def build_config(scheme, page_size, sharer_count, l2_entries, wire, dedup, lds_first):
    config = (
        table1_config(scheme)
        .with_page_size(page_size)
        .with_icache_sharers(sharer_count)
        .with_l2_tlb_entries(l2_entries)
        .with_extra_wire_latency(wire, wire)
    )
    return replace(config, dedup_shared_fills=dedup, lds_before_icache=lds_first)


class TestConfigRoundTripProperties:
    @given(
        schemes, page_sizes, sharers, entries,
        st.integers(0, 100), st.booleans(), st.booleans(),
    )
    @settings(max_examples=60)
    def test_dict_round_trip_is_identity(
        self, scheme, page_size, sharer_count, l2_entries, wire, dedup, lds_first
    ):
        config = build_config(
            scheme, page_size, sharer_count, l2_entries, wire, dedup, lds_first
        )
        assert config_from_dict(config_to_dict(config)) == config

    @given(schemes, page_sizes)
    @settings(max_examples=20)
    def test_json_round_trip_is_identity(self, scheme, page_size):
        config = table1_config(scheme).with_page_size(page_size)
        assert config_from_json(config_to_json(config)) == config

    @given(sharers)
    @settings(max_examples=10)
    def test_sharers_preserve_total_capacity(self, sharer_count):
        config = table1_config().with_icache_sharers(sharer_count)
        groups = config.gpu.num_cus // config.icache.cus_per_icache
        assert groups * config.icache.size_bytes == 32 * 1024

    @given(schemes)
    @settings(max_examples=10)
    def test_signature_equals_for_equal_configs(self, scheme):
        from repro.experiments.common import _config_signature

        assert _config_signature(table1_config(scheme)) == _config_signature(
            table1_config(scheme)
        )

    @given(st.sampled_from(list(TxScheme)), st.sampled_from(list(TxScheme)))
    @settings(max_examples=20)
    def test_signature_differs_for_different_schemes(self, a, b):
        from repro.experiments.common import _config_signature

        sig_a = _config_signature(table1_config(a))
        sig_b = _config_signature(table1_config(b))
        assert (sig_a == sig_b) == (a == b)
