"""Public-API hygiene: exports resolve, docstrings exist, version sane."""

import importlib
import pkgutil

import pytest

import repro


class TestTopLevelExports:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        major, minor, patch = repro.__version__.split(".")
        assert int(major) >= 1

    def test_quickstart_surface(self):
        # The API the README's first snippet relies on.
        from repro import GPUSystem, TxScheme, make_app, table1_config

        assert callable(GPUSystem)
        assert callable(make_app)
        assert TxScheme.ICACHE_LDS.value == "icache+lds"
        assert table1_config().gpu.num_cus == 8


def _walk_modules():
    return [
        name
        for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
        if not name.endswith("__main__")
    ]


class TestModuleHygiene:
    @pytest.mark.parametrize("module_name", _walk_modules())
    def test_module_imports_and_is_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"

    def test_every_subpackage_reachable(self):
        names = set(_walk_modules())
        for expected in (
            "repro.core.translation",
            "repro.pagetable.iommu",
            "repro.workloads.registry",
            "repro.experiments.report",
            "repro.analysis.summary",
            "repro.gpu.command_processor",
        ):
            assert expected in names


class TestPublicDocstrings:
    @pytest.mark.parametrize(
        "cls_path",
        [
            "repro.system.GPUSystem",
            "repro.core.translation.TranslationService",
            "repro.core.reconfig_lds.LDSTxCache",
            "repro.core.reconfig_icache.ReconfigurableICache",
            "repro.core.fill_flow.VictimFillFlow",
            "repro.pagetable.iommu.IOMMU",
            "repro.gpu.lds.LocalDataShare",
            "repro.gpu.icache.InstructionCache",
            "repro.baselines.ducati.DucatiStore",
        ],
    )
    def test_core_classes_documented(self, cls_path):
        module_name, _, cls_name = cls_path.rpartition(".")
        cls = getattr(importlib.import_module(module_name), cls_name)
        assert cls.__doc__ and len(cls.__doc__) > 20

    def test_public_methods_documented(self):
        from repro.core.translation import TranslationService
        from repro.system import GPUSystem

        for cls in (TranslationService, GPUSystem):
            for name, member in vars(cls).items():
                if callable(member) and not name.startswith("_"):
                    assert member.__doc__, f"{cls.__name__}.{name} undocumented"
