"""JobManager lifecycle: dedup, batching, cancel, eviction, failures."""

import time

import pytest

from repro.service.jobs import SpecError
from repro.service.manager import (
    CANCELLED,
    DONE,
    FAILED,
    JobManager,
    QUEUED,
)
from repro.sim.runner import SweepRunner

SCALE = 0.05


def tiny_spec(*apps, schemes=("baseline",), **extra):
    return {"apps": list(apps) or ["GUPS"], "schemes": list(schemes),
            "scale": SCALE, **extra}


class TestLifecycle:
    def test_submit_runs_to_done_with_results_and_report(self):
        with JobManager(workers=1) as manager:
            record, deduplicated = manager.submit(tiny_spec("GUPS", "ATAX"))
            assert not deduplicated
            assert manager.wait(record.job_id, timeout=180) == DONE
            assert record.started_s is not None
            assert record.finished_s is not None
            assert len(record.results) == 2
            assert all(result is not None for result in record.results)
            assert record.report.jobs_submitted == 2
            assert record.report.jobs_simulated == 2
            # Events tell the whole story in order.
            kinds = [event["type"] for event in record.events]
            assert kinds[0] == "state" and kinds[-1] == "state"
            assert record.events[-1]["state"] == DONE

    def test_results_byte_identical_to_direct_runner(self):
        from repro.experiments.common import result_fingerprint

        spec = tiny_spec("GUPS", "ATAX", schemes=("baseline", "lds"))
        with JobManager(workers=1) as manager:
            record, _ = manager.submit(spec)
            manager.wait(record.job_id, timeout=180)
            service_prints = [result_fingerprint(r) for r in record.results]
        direct = SweepRunner(jobs=1).run(record.jobs)
        assert service_prints == [result_fingerprint(r) for r in direct]

    def test_invalid_spec_raises_before_enqueue(self):
        with JobManager(workers=1, autostart=False) as manager:
            with pytest.raises(SpecError):
                manager.submit({"apps": ["NOPE"]})
            assert manager.counts()[QUEUED] == 0


class TestDedup:
    def test_inflight_dedup_returns_same_record(self):
        with JobManager(workers=1, autostart=False) as manager:
            first, dedup_first = manager.submit(tiny_spec())
            second, dedup_second = manager.submit(tiny_spec())
            assert not dedup_first
            assert dedup_second
            assert first.job_id == second.job_id
            assert first.submissions == 2

    def test_completed_dedup_answers_instantly(self):
        with JobManager(workers=1) as manager:
            record, _ = manager.submit(tiny_spec())
            manager.wait(record.job_id, timeout=180)
            again, deduplicated = manager.submit(tiny_spec())
            assert deduplicated
            assert again.job_id == record.job_id
            assert again.state == DONE

    def test_case_normalization_dedups(self):
        with JobManager(workers=1, autostart=False) as manager:
            first, _ = manager.submit({"apps": ["GUPS"], "schemes": ["baseline"],
                                       "scale": SCALE})
            second, deduplicated = manager.submit(
                {"apps": ["gups"], "schemes": ["baseline"], "scale": SCALE}
            )
            assert deduplicated and first.job_id == second.job_id

    def test_cancelled_spec_resubmits_as_new_job(self):
        with JobManager(workers=1, autostart=False) as manager:
            record, _ = manager.submit(tiny_spec())
            assert manager.cancel(record.job_id) == (True, CANCELLED, "cancelled")
            fresh, deduplicated = manager.submit(tiny_spec())
            assert not deduplicated
            assert fresh.job_id != record.job_id


class TestCancel:
    def test_cancel_queued(self):
        with JobManager(workers=1, autostart=False) as manager:
            record, _ = manager.submit(tiny_spec())
            ok, state, message = manager.cancel(record.job_id)
            assert ok and state == CANCELLED and message == "cancelled"
            assert record.state == CANCELLED
            assert record.events[-1]["state"] == CANCELLED

    def test_cancel_unknown(self):
        with JobManager(workers=1, autostart=False) as manager:
            assert manager.cancel("feedfacecafe") == (False, None, "not found")

    def test_cancel_terminal_refused(self):
        with JobManager(workers=1) as manager:
            record, _ = manager.submit(tiny_spec())
            manager.wait(record.job_id, timeout=180)
            ok, state, reason = manager.cancel(record.job_id)
            assert not ok
            assert state == record.state
            assert "done" in reason

    def test_cancelled_job_never_runs(self):
        with JobManager(workers=1, autostart=False) as manager:
            record, _ = manager.submit(tiny_spec())
            manager.cancel(record.job_id)
            manager.start()
            time.sleep(0.3)
            assert record.state == CANCELLED
            assert record.results is None


class TestBatchingAndPool:
    def test_staged_submissions_share_one_pool_lease(self):
        with JobManager(workers=2, autostart=False) as manager:
            one, _ = manager.submit(tiny_spec("GUPS", "ATAX"))
            two, _ = manager.submit(tiny_spec("MVT", "BICG"))
            manager.start()
            assert manager.wait(one.job_id, timeout=300) == DONE
            assert manager.wait(two.job_id, timeout=300) == DONE
            stats = manager.pool.stats()
            # Both records rode one batch: one lease, one pool, no respawn.
            assert stats["leases"] == 1
            assert stats["pools_created"] == 1

    def test_shared_job_reported_to_both_records(self):
        with JobManager(workers=2, autostart=False) as manager:
            one, _ = manager.submit(tiny_spec("GUPS", "ATAX"))
            two, _ = manager.submit(tiny_spec("ATAX", "MVT"))
            manager.start()
            manager.wait(one.job_id, timeout=300)
            manager.wait(two.job_id, timeout=300)
            atax_key = one.jobs[1].key()
            assert atax_key == two.jobs[0].key()
            for record in (one, two):
                assert atax_key in [t.key for t in record.report.timings]
            assert all(r is not None for r in one.results + two.results)

    def test_idle_pool_evicted_and_recreated(self):
        with JobManager(workers=2, idle_timeout_s=0.2) as manager:
            record, _ = manager.submit(tiny_spec("GUPS", "ATAX"))
            manager.wait(record.job_id, timeout=300)
            deadline = time.monotonic() + 10.0
            while manager.pool.stats()["alive"]:
                assert time.monotonic() < deadline, "pool never evicted"
                time.sleep(0.05)
            assert manager.pool.stats()["evictions"] == 1
            # A new submission transparently recreates the pool.
            fresh, _ = manager.submit(tiny_spec("MVT", "BICG"))
            assert manager.wait(fresh.job_id, timeout=300) == DONE
            assert manager.pool.stats()["pools_created"] == 2


class TestFailures:
    def test_job_failure_surfaces_in_record(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SPEC", "GUPS:*:exc")
        with JobManager(workers=1, max_retries=0) as manager:
            record, _ = manager.submit(tiny_spec("GUPS", "SRAD"))
            assert manager.wait(record.job_id, timeout=180) == FAILED
            (failure,) = record.report.failures
            assert failure.app_name == "GUPS"
            assert failure.disposition == "exception"
            # keep_going semantics: the innocent neighbour completed.
            assert record.results[0] is None
            assert record.results[1] is not None
            assert any(e["type"] == "failure" for e in record.events)

    def test_worker_crash_surfaces_instead_of_hanging(self, monkeypatch):
        """A worker process dying mid-job (BrokenProcessPool) must recycle
        the shared pool, surface a crash JobFailure in the status payload,
        and leave the service able to run the next job."""

        monkeypatch.setenv("REPRO_FAULT_SPEC", "GUPS:*:crash")
        with JobManager(workers=2, max_retries=0) as manager:
            record, _ = manager.submit(tiny_spec("GUPS", "SRAD"))
            assert manager.wait(record.job_id, timeout=300) == FAILED
            (failure,) = record.report.failures
            assert failure.app_name == "GUPS"
            assert failure.disposition == "crash"
            assert record.results[1] is not None
            payload = manager.status_payload(record.job_id)
            assert payload["state"] == FAILED
            assert payload["report"]["failures"][0]["disposition"] == "crash"
            # The crash forced a pool recycle; a fresh job still runs.
            monkeypatch.delenv("REPRO_FAULT_SPEC")
            fresh, _ = manager.submit(tiny_spec("ATAX"))
            assert manager.wait(fresh.job_id, timeout=300) == DONE
            assert manager.pool.stats()["recycles"] >= 1

    def test_failure_in_one_record_spares_batch_neighbours(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SPEC", "GUPS:*:exc")
        with JobManager(workers=1, max_retries=0, autostart=False) as manager:
            bad, _ = manager.submit(tiny_spec("GUPS"))
            good, _ = manager.submit(tiny_spec("SRAD"))
            manager.start()
            assert manager.wait(bad.job_id, timeout=180) == FAILED
            assert manager.wait(good.job_id, timeout=180) == DONE
            assert good.report.failures == []
