"""End-to-end HTTP API tests: BackgroundServer + ServiceClient."""

import json
import urllib.request

import pytest

from repro.experiments.common import CACHE_SCHEMA, result_fingerprint
from repro.service.client import ServiceClient, ServiceError
from repro.service.http import BackgroundServer
from repro.service.jobs import expand_spec, validate_spec
from repro.service.manager import JobManager
from repro.sim.runner import REPORT_SCHEMA, SweepRunner

SCALE = 0.05
SPEC = {"apps": ["GUPS", "ATAX"], "schemes": ["baseline", "lds"], "scale": SCALE}


@pytest.fixture()
def live():
    """A running manager + server + client, torn down afterwards."""
    with JobManager(workers=1) as manager:
        with BackgroundServer(manager) as server:
            yield manager, server, ServiceClient(server.url)


@pytest.fixture()
def idle():
    """Server whose manager never executes — jobs stay queued."""
    with JobManager(workers=1, autostart=False) as manager:
        with BackgroundServer(manager) as server:
            yield manager, server, ServiceClient(server.url)


def _raw(url):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, json.loads(resp.read())


class TestEndpoints:
    def test_healthz_and_version(self, live):
        _, server, client = live
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["uptime_s"] >= 0
        assert "queued" in health["jobs"] and "done" in health["jobs"]
        assert "alive" in health["pool"]
        assert "cache_dir" in health["store"]
        assert {"hits", "misses", "stores"} <= set(health["store"])
        version = client.version()
        assert version["cache_schema"] == CACHE_SCHEMA
        assert version["report_schema"] == REPORT_SCHEMA
        assert "fig13" in version["figures"]
        assert "GUPS" in version["apps"]
        assert version["engines"] == ["event", "vectorized"]

    def test_unknown_route_404(self, live):
        _, _, client = live
        with pytest.raises(ServiceError) as excinfo:
            client._checked("GET", "/nope")
        assert excinfo.value.status == 404

    def test_unknown_job_404(self, live):
        _, _, client = live
        with pytest.raises(ServiceError) as excinfo:
            client.status("feedfacecafe")
        assert excinfo.value.status == 404

    def test_bad_spec_400_with_choices(self, live):
        _, _, client = live
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"apps": ["NOPE"], "scale": SCALE})
        assert excinfo.value.status == 400
        payload = excinfo.value.payload
        assert payload["field"] == "apps"
        assert "GUPS" in payload["choices"]

    def test_malformed_json_400(self, live):
        _, server, _ = live
        request = urllib.request.Request(
            server.url + "/jobs", data=b"{not json", method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400


class TestJobFlow:
    def test_submitted_result_matches_direct_runner(self, live):
        _, _, client = live
        submitted = client.submit(SPEC)
        assert submitted["deduplicated"] is False
        job_id = submitted["job_id"]
        status = client.wait(job_id, timeout=300)
        assert status["state"] == "done"
        assert status["report"]["schema"] == REPORT_SCHEMA
        assert status["report"]["jobs_submitted"] == 4

        result = client.result(job_id)
        direct = SweepRunner(jobs=1).run(expand_spec(validate_spec(SPEC)))
        assert result["fingerprints"] == [result_fingerprint(r) for r in direct]
        assert len(result["results"]) == 4
        assert all(r["app_name"] in ("GUPS", "ATAX") for r in result["results"])

    def test_dedup_resubmit_same_job_without_resim(self, live):
        _, _, client = live
        first = client.submit(SPEC)
        client.wait(first["job_id"], timeout=300)
        again = client.submit(dict(SPEC, apps=["gups", "atax"]))
        assert again["deduplicated"] is True
        assert again["job_id"] == first["job_id"]
        assert again["state"] == "done"

    def test_queued_result_202(self, idle):
        _, server, client = idle
        job_id = client.submit(SPEC)["job_id"]
        status, payload = _raw(f"{server.url}/jobs/{job_id}/result")
        assert status == 202
        assert payload["state"] == "queued"

    def test_jobs_listing(self, idle):
        _, _, client = idle
        job_id = client.submit(SPEC)["job_id"]
        listing = client.jobs()
        assert [job["job_id"] for job in listing] == [job_id]

    def test_delete_cancels_queued_then_404s_unknown(self, idle):
        _, _, client = idle
        job_id = client.submit(SPEC)["job_id"]
        cancelled = client.cancel(job_id)
        assert cancelled["state"] == "cancelled"
        with pytest.raises(ServiceError) as excinfo:
            client.cancel("feedfacecafe")
        assert excinfo.value.status == 404

    def test_delete_terminal_409(self, live):
        _, _, client = live
        job_id = client.submit(SPEC)["job_id"]
        client.wait(job_id, timeout=300)
        with pytest.raises(ServiceError) as excinfo:
            client.cancel(job_id)
        assert excinfo.value.status == 409
        # The conflict body reports the job's actual state, so a client
        # can tell "too late, already done" from a malformed request.
        assert excinfo.value.payload["state"] == "done"
        assert "done" in excinfo.value.payload["error"]

    def test_delete_cancelled_409_reports_state(self, idle):
        _, _, client = idle
        job_id = client.submit(SPEC)["job_id"]
        assert client.cancel(job_id)["state"] == "cancelled"
        with pytest.raises(ServiceError) as excinfo:
            client.cancel(job_id)
        assert excinfo.value.status == 409
        assert excinfo.value.payload["state"] == "cancelled"

    def test_cancelled_result_409(self, idle):
        _, server, client = idle
        job_id = client.submit(SPEC)["job_id"]
        client.cancel(job_id)
        with pytest.raises(ServiceError) as excinfo:
            client.result(job_id)
        assert excinfo.value.status == 409


class TestEvents:
    def test_ndjson_stream_follows_to_terminal(self, live):
        _, _, client = live
        job_id = client.submit(SPEC)["job_id"]
        events = list(client.events(job_id))
        assert events, "stream produced no events"
        states = [e["state"] for e in events if e["type"] == "state"]
        assert states[0] == "queued"
        assert states[-1] == "done"
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs)

    def test_stream_after_terminal_replays_and_closes(self, live):
        # Regression: the job reaches a terminal state BEFORE the stream
        # connects. The server must replay the full event log (ending
        # with the terminal state event) and close, not leave the client
        # hanging on a silent stream.
        _, _, client = live
        job_id = client.submit(SPEC)["job_id"]
        client.wait(job_id, timeout=300)
        events = list(client.events(job_id))
        assert events, "post-terminal stream replayed nothing"
        assert events[-1]["type"] == "state"
        assert events[-1]["state"] == "done"
        assert not events[-1].get("synthetic")

    def test_stream_after_cancel_replays_terminal(self, idle):
        _, _, client = idle
        job_id = client.submit(SPEC)["job_id"]
        client.cancel(job_id)
        events = list(client.events(job_id))
        assert [e["state"] for e in events if e["type"] == "state"] == [
            "queued", "cancelled"
        ]

    def test_dropped_stream_falls_back_to_status_poll(self, idle):
        # A stream that dies before delivering a terminal event must not
        # strand the consumer: the client polls status and yields a
        # synthetic terminal event instead.
        _, _, client = idle
        job_id = client.submit(SPEC)["job_id"]
        client.cancel(job_id)

        def broken_stream(_job_id):
            yield {"seq": 0, "type": "state", "state": "queued"}
            raise OSError("connection reset mid-stream")

        client._event_stream = broken_stream
        events = list(client.events(job_id))
        assert events[-1] == {
            "type": "state", "state": "cancelled", "seq": -1, "synthetic": True,
        }

    def test_failure_event_streamed(self, live, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SPEC", "GUPS:*:exc")
        _, _, client = live
        job_id = client.submit(
            {"apps": ["GUPS"], "schemes": ["baseline"], "scale": SCALE,
             "max_retries": 0}
        )["job_id"]
        events = list(client.events(job_id))
        failures = [e for e in events if e["type"] == "failure"]
        assert failures and failures[0]["app"] == "GUPS"
        assert failures[0]["disposition"] == "exception"
        assert events[-1]["state"] == "failed"
        # The status payload carries the structured failure record too.
        status = client.status(job_id)
        assert status["state"] == "failed"
        assert status["report"]["failures"][0]["disposition"] == "exception"
