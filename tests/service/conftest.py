"""Shared service-test fixtures: isolated caches, drained accumulators."""

from __future__ import annotations

import pytest

from repro.experiments import common
from repro.sim.runner import drain_failures, drain_reports


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """Every service test gets its own disk cache and a clean in-process
    cache, and leaves no telemetry behind for other tests."""

    monkeypatch.setattr(common, "_CACHE_DIR", str(tmp_path / "cache"))
    common.clear_cache()
    drain_failures()
    drain_reports()
    yield
    common.clear_cache()
    drain_failures()
    drain_reports()
