"""Concurrent disk-cache access: jobs sharing keys racing one cache dir.

The service batches concurrent submissions into one SweepRunner call, so
most key collisions never reach the disk. These tests attack the layers
below that: parallel SweepRunner threads and separate JobManager
instances (stand-ins for separate service processes) hammering the same
cache directory. The invariants — no ``.corrupt`` quarantine files, one
valid cache file per key, byte-identical fingerprints — are what make
the service's dedup-by-cache-identity story sound.
"""

import glob
import json
import os
import threading

from repro.experiments import common
from repro.experiments.common import result_fingerprint
from repro.service.manager import DONE, JobManager
from repro.sim.runner import SweepJob, SweepRunner

SCALE = 0.05
APPS = ("GUPS", "ATAX")


def tiny_jobs():
    return [
        SweepJob(app_name=app, config=common.scheme_config(common.TxScheme.BASELINE),
                 scale=SCALE)
        for app in APPS
    ]


def cache_files():
    # Recursive: the store shards entries into two directory levels.
    return sorted(
        glob.glob(os.path.join(common._CACHE_DIR, "**", "*.json"), recursive=True)
    )


def corrupt_files():
    return glob.glob(
        os.path.join(common._CACHE_DIR, "**", "*.corrupt"), recursive=True
    )


class TestRunnerRaces:
    def test_parallel_runners_share_one_cache_dir_cleanly(self):
        """N threads × same jobs × one cache dir: every thread gets
        identical results and the cache ends up with one file per key."""

        results_by_thread = {}
        errors = []
        barrier = threading.Barrier(4)

        def worker(ident):
            try:
                barrier.wait(timeout=30)
                runner = SweepRunner(jobs=1)
                results_by_thread[ident] = runner.run(tiny_jobs())
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append((ident, exc))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert not errors
        assert len(results_by_thread) == 4

        fingerprints = {
            ident: [result_fingerprint(r) for r in results]
            for ident, results in results_by_thread.items()
        }
        reference = fingerprints[0]
        assert all(prints == reference for prints in fingerprints.values())

        assert corrupt_files() == []
        assert len(cache_files()) == len(APPS)
        for path in cache_files():
            with open(path) as handle:
                payload = json.load(handle)
            assert payload["schema"] == common.CACHE_SCHEMA

    def test_disk_cache_round_trip_counts_as_hit(self):
        """A second runner with a cold in-process cache must be served
        entirely from the shared disk cache — zero re-simulation."""

        jobs = tiny_jobs()
        first = SweepRunner(jobs=1).run(jobs)
        common.clear_cache()  # drop the in-process memo, keep the disk
        runner = SweepRunner(jobs=1)
        again, report = runner.run_with_report(tiny_jobs())
        assert report.jobs_simulated == 0
        assert report.cache_hits == len(APPS)
        assert [result_fingerprint(r) for r in again] == [
            result_fingerprint(r) for r in first
        ]
        assert corrupt_files() == []


class TestManagerRaces:
    def test_two_managers_race_one_cache_dir(self):
        """Two JobManagers (≈ two service processes) given the same spec
        concurrently: both finish, fingerprints match, no quarantine."""

        spec = {"apps": list(APPS), "schemes": ["baseline"], "scale": SCALE}
        with JobManager(workers=1) as alpha, JobManager(workers=1) as beta:
            record_a, _ = alpha.submit(spec)
            record_b, _ = beta.submit(spec)
            assert alpha.wait(record_a.job_id, timeout=300) == DONE
            assert beta.wait(record_b.job_id, timeout=300) == DONE
            prints_a = [result_fingerprint(r) for r in record_a.results]
            prints_b = [result_fingerprint(r) for r in record_b.results]
        assert prints_a == prints_b
        assert corrupt_files() == []
        assert len(cache_files()) == len(APPS)

    def test_resubmit_after_cache_drop_hits_disk(self):
        """A fresh manager with a cold in-process cache dedups against
        the disk: the rerun is all cache hits, no simulation."""

        spec = {"apps": list(APPS), "schemes": ["baseline"], "scale": SCALE}
        with JobManager(workers=1) as manager:
            record, _ = manager.submit(spec)
            manager.wait(record.job_id, timeout=300)
            first_prints = [result_fingerprint(r) for r in record.results]

        common.clear_cache()
        with JobManager(workers=1) as manager:
            record, deduplicated = manager.submit(spec)
            assert not deduplicated  # new manager: no in-flight record
            manager.wait(record.job_id, timeout=300)
            assert record.report.jobs_simulated == 0
            assert record.report.cache_hits == len(APPS)
            assert [result_fingerprint(r) for r in record.results] == first_prints
        assert corrupt_files() == []
