"""Job-spec validation, canonicalization, and grid expansion."""

import pytest

from repro.config import TxScheme
from repro.experiments.report import SWEEP_GRIDS
from repro.schemes import scheme_names
from repro.service.jobs import (
    KNOWN_FIELDS,
    SpecError,
    expand_spec,
    spec_key,
    valid_figures,
    validate_spec,
)
from repro.workloads.registry import app_names


class TestValidation:
    def test_minimal_named_grid(self):
        spec = validate_spec({"figure": "fig13", "scale": 0.05})
        assert spec["figure"] == "fig13"
        assert spec["scale"] == 0.05

    def test_minimal_custom_grid_defaults_all_schemes(self):
        spec = validate_spec({"apps": ["GUPS"], "scale": 0.05})
        assert spec["apps"] == ["GUPS"]
        # The default grid is the full registry universe: every builtin
        # (enum order) plus registered plugin schemes.
        assert spec["schemes"] == scheme_names()
        assert [s.value for s in TxScheme] == scheme_names()[: len(TxScheme)]

    def test_not_a_dict(self):
        with pytest.raises(SpecError, match="JSON object"):
            validate_spec(["fig13"])

    def test_unknown_field_lists_known_fields(self):
        with pytest.raises(SpecError) as excinfo:
            validate_spec({"figure": "fig13", "figur": "typo"})
        assert "figur" in str(excinfo.value)
        assert excinfo.value.choices == sorted(KNOWN_FIELDS)

    def test_figure_and_apps_both_rejected(self):
        with pytest.raises(SpecError, match="exactly one"):
            validate_spec({"figure": "fig13", "apps": ["GUPS"]})

    def test_neither_figure_nor_apps_rejected(self):
        with pytest.raises(SpecError, match="exactly one"):
            validate_spec({"scale": 0.05})

    def test_unknown_figure_lists_choices(self):
        with pytest.raises(SpecError) as excinfo:
            validate_spec({"figure": "fig99"})
        assert excinfo.value.field == "figure"
        assert excinfo.value.choices == valid_figures()

    def test_unknown_app_lists_choices(self):
        with pytest.raises(SpecError) as excinfo:
            validate_spec({"apps": ["NOPE"]})
        assert excinfo.value.field == "apps"
        assert excinfo.value.choices == app_names()

    def test_unknown_scheme_lists_choices(self):
        with pytest.raises(SpecError) as excinfo:
            validate_spec({"apps": ["GUPS"], "schemes": ["warp"]})
        assert excinfo.value.field == "schemes"
        assert "baseline" in excinfo.value.choices

    def test_unknown_engine_lists_choices(self):
        with pytest.raises(SpecError) as excinfo:
            validate_spec({"figure": "fig13", "engine": "fpga"})
        assert excinfo.value.choices == ["event", "vectorized"]

    @pytest.mark.parametrize("scale", [0, -1, "big", None])
    def test_bad_scale_rejected(self, scale):
        with pytest.raises(SpecError, match="scale"):
            validate_spec({"figure": "fig13", "scale": scale})

    def test_scheme_knobs_rejected_on_named_grids(self):
        with pytest.raises(SpecError, match="custom 'apps' grids"):
            validate_spec({"figure": "fig13", "schemes": ["baseline"]})
        with pytest.raises(SpecError, match="custom 'apps' grids"):
            validate_spec({"figure": "fig13", "page_size": 65536})

    def test_page_size_must_be_power_of_two(self):
        with pytest.raises(SpecError, match="power-of-two"):
            validate_spec({"apps": ["GUPS"], "page_size": 1000})

    def test_bad_max_retries_rejected(self):
        with pytest.raises(SpecError, match="max_retries"):
            validate_spec({"figure": "fig13", "max_retries": -1})


class TestCanonicalization:
    def test_app_names_uppercased(self):
        spec = validate_spec({"apps": ["gups", "Atax"], "scale": 0.05})
        assert spec["apps"] == ["GUPS", "ATAX"]

    def test_int_and_float_scale_share_identity(self):
        int_spec = validate_spec({"figure": "fig13", "scale": 1})
        float_spec = validate_spec({"figure": "fig13", "scale": 1.0})
        assert spec_key(int_spec) == spec_key(float_spec)

    def test_equivalent_specs_share_key(self):
        one = validate_spec({"apps": ["gups"], "schemes": ["baseline"], "scale": 0.05})
        two = validate_spec({"scale": 0.05, "schemes": ["baseline"], "apps": ["GUPS"]})
        assert spec_key(one) == spec_key(two)

    def test_different_specs_differ(self):
        one = validate_spec({"apps": ["GUPS"], "schemes": ["baseline"], "scale": 0.05})
        two = validate_spec({"apps": ["GUPS"], "schemes": ["lds"], "scale": 0.05})
        assert spec_key(one) != spec_key(two)


class TestExpansion:
    def test_named_grid_matches_sweep_grids(self):
        spec = validate_spec({"figure": "fig13a", "scale": 0.05})
        expanded = expand_spec(spec)
        direct = SWEEP_GRIDS["fig13a"](0.05)
        assert [job.key() for job in expanded] == [job.key() for job in direct]

    def test_custom_grid_is_apps_times_schemes(self):
        spec = validate_spec(
            {"apps": ["GUPS", "ATAX"], "schemes": ["baseline", "lds"], "scale": 0.05}
        )
        jobs = expand_spec(spec)
        assert [(job.app_name, job.config.scheme.value) for job in jobs] == [
            ("GUPS", "baseline"),
            ("GUPS", "lds"),
            ("ATAX", "baseline"),
            ("ATAX", "lds"),
        ]
        assert all(job.scale == 0.05 for job in jobs)

    def test_engine_and_config_knobs_applied(self):
        spec = validate_spec(
            {
                "apps": ["GUPS"],
                "schemes": ["baseline"],
                "scale": 0.05,
                "engine": "vectorized",
                "page_size": 65536,
                "l2_tlb_entries": 512,
            }
        )
        (job,) = expand_spec(spec)
        assert job.config.engine == "vectorized"
        assert job.config.page_size == 65536
        assert job.config.tlb.l2_entries == 512

    def test_engine_choice_does_not_change_cache_identity(self):
        # The engine is a pure speed knob; the service must dedup a
        # vectorized resubmission against event-mode cache entries.
        base = validate_spec({"apps": ["GUPS"], "schemes": ["baseline"], "scale": 0.05})
        fast = validate_spec(
            {"apps": ["GUPS"], "schemes": ["baseline"], "scale": 0.05,
             "engine": "vectorized"}
        )
        (event_job,) = expand_spec(base)
        (vector_job,) = expand_spec(fast)
        assert event_job.key() == vector_job.key()
        # But the specs themselves are distinct submissions.
        assert spec_key(base) != spec_key(fast)
