"""Unit tests for the Perfect-L2-TLB configuration."""

from repro.baselines.perfect import perfect_l2_config
from repro.config import TxScheme, table1_config
from repro.system import GPUSystem
from tests.conftest import make_tiny_app


class TestPerfectConfig:
    def test_sets_flag_and_scheme(self):
        config = perfect_l2_config()
        assert config.tlb.perfect_l2
        assert config.scheme is TxScheme.PERFECT_L2_TLB

    def test_respects_base_config(self):
        base = table1_config().with_l2_tlb_entries(1024)
        config = perfect_l2_config(base)
        assert config.tlb.l2_entries == 1024


class TestPerfectBehaviour:
    def test_zero_walks(self):
        result = GPUSystem(perfect_l2_config()).run(make_tiny_app())
        assert result.page_walks == 0

    def test_not_slower_than_baseline(self):
        app = make_tiny_app(pages=4096, ops_per_wave=10)
        baseline = GPUSystem(table1_config()).run(app)
        perfect = GPUSystem(perfect_l2_config()).run(make_tiny_app(pages=4096, ops_per_wave=10))
        assert perfect.cycles <= baseline.cycles
