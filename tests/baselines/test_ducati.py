"""Unit tests for the DUCATI comparator."""

import pytest

from repro.config import DRAMConfig, DataCacheConfig, DucatiConfig
from repro.baselines.ducati import DucatiStore, ducati_reserved_ways
from repro.memory.dram import DRAM
from repro.memory.hierarchy import SharedL2
from repro.tlb.base import TranslationEntry


def entry(vpn):
    return TranslationEntry(vpn=vpn, pfn=vpn + 1)


@pytest.fixture
def shared_l2():
    return SharedL2(DataCacheConfig(), DRAM(DRAMConfig()))


@pytest.fixture
def ducati(shared_l2):
    return DucatiStore(DucatiConfig(), DataCacheConfig(), shared_l2)


class TestReservedWays:
    def test_quarter_of_sixteen(self):
        assert ducati_reserved_ways(DucatiConfig(), DataCacheConfig()) == 4

    def test_always_leaves_a_data_way(self):
        config = DucatiConfig(l2_capacity_fraction=1.0)
        assert ducati_reserved_ways(config, DataCacheConfig()) == 15

    def test_at_least_one_way(self):
        config = DucatiConfig(l2_capacity_fraction=0.0)
        assert ducati_reserved_ways(config, DataCacheConfig()) == 1


class TestLookup:
    def test_cold_miss(self, ducati):
        found, latency = ducati.lookup(entry(5).key, 0)
        assert found is None
        assert latency >= DucatiConfig().l2_tx_latency

    def test_fill_then_l2_hit(self, ducati):
        e = entry(5)
        ducati.fill(e)
        found, latency = ducati.lookup(e.key, 0)
        assert found == e
        assert latency < DucatiConfig().pom_tlb_latency
        assert ducati.stats.get("ducati.l2_hits") == 1

    def test_line_evicted_by_data_falls_back_to_pom(self, ducati, shared_l2):
        e = entry(5)
        ducati.fill(e)
        # Data traffic churns the whole L2, killing the translation line.
        config = DataCacheConfig()
        for index in range(3 * config.l2_size_bytes // config.line_bytes):
            shared_l2.cache.access(index * config.line_bytes)
        found, latency = ducati.lookup(e.key, 10**6)
        assert found == e  # the POM copy survives
        assert latency >= DucatiConfig().pom_tlb_latency
        assert ducati.stats.get("ducati.pom_hits") == 1

    def test_translation_lines_are_low_priority(self, ducati, shared_l2):
        # A translation line must die before equally-old data lines do.
        e = entry(5)
        ducati.fill(e)
        line = ducati._line_addr(e.key)
        cache = shared_l2.cache
        set_index = (line // cache.line_bytes) % cache.num_sets
        # Fill the same set with data: the low-priority tx line goes first.
        for way in range(cache.effective_ways):
            addr = (set_index + (way + 1) * cache.num_sets) * cache.line_bytes
            cache.access(addr)
        assert not cache.probe(line)

    def test_pom_hit_reinstalls_l2_line(self, ducati, shared_l2):
        e = entry(5)
        ducati._install_pom(e)
        ducati._directory[e.key] = e  # directory entry without backing line
        shared_l2.cache.invalidate_all()
        ducati.lookup(e.key, 0)  # POM hit, reinstalls
        found, latency = ducati.lookup(e.key, 10**6)
        assert found == e
        assert latency < DucatiConfig().pom_tlb_latency


class TestPomCapacity:
    def test_pom_lru(self, shared_l2):
        config = DucatiConfig(pom_tlb_entries=2)
        ducati = DucatiStore(config, DataCacheConfig(), shared_l2)
        shared_l2.cache.invalidate_all
        for vpn in range(3):
            ducati._install_pom(entry(vpn))
        assert ducati.pom_entry_count == 2
        shared_l2.cache.invalidate_all()
        found, _ = ducati.lookup(entry(0).key, 0)
        assert found is None


class TestInvalidation:
    def test_invalidate_vpn_clears_both_levels(self, ducati):
        ducati.fill(entry(9))
        assert ducati.invalidate_vpn(9) >= 1
        # POM copy is gone too.
        ducati.shared_l2.cache.invalidate_all()
        found, _ = ducati.lookup(entry(9).key, 0)
        assert found is None
