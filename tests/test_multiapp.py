"""Tests for the concurrent multi-application scenario (paper Section 7.2)."""

import pytest

from repro.config import TxScheme, table1_config
from repro.system import GPUSystem
from tests.conftest import make_tiny_app


class TestValidation:
    def test_partition_count_must_match(self):
        system = GPUSystem(table1_config())
        with pytest.raises(ValueError):
            system.run_concurrent([make_tiny_app()], [[0, 1], [2, 3]])

    def test_partitions_must_be_disjoint(self):
        system = GPUSystem(table1_config())
        with pytest.raises(ValueError):
            system.run_concurrent(
                [make_tiny_app("a"), make_tiny_app("b")], [[0, 1], [1, 2]]
            )

    def test_unknown_cu_rejected(self):
        system = GPUSystem(table1_config())
        with pytest.raises(ValueError):
            system.run_concurrent([make_tiny_app()], [[99]])

    def test_empty_partition_rejected(self):
        system = GPUSystem(table1_config())
        with pytest.raises(ValueError):
            system.run_concurrent([make_tiny_app()], [[]])


class TestConcurrentExecution:
    def test_two_apps_complete(self):
        system = GPUSystem(table1_config())
        apps = [make_tiny_app("left"), make_tiny_app("right")]
        results = system.run_concurrent(apps, [[0, 1, 2, 3], [4, 5, 6, 7]])
        assert len(results) == 2
        for result, app in zip(results, apps):
            assert result.app_name == app.name
            assert result.cycles > 0
            assert len(result.kernels) == len(app.kernels)

    def test_kernel_sequencing_per_app(self):
        system = GPUSystem(table1_config())
        results = system.run_concurrent(
            [make_tiny_app("a", kernels=3)], [[0, 1, 2, 3, 4, 5, 6, 7]]
        )
        kernels = results[0].kernels
        for earlier, later in zip(kernels, kernels[1:]):
            assert later.start_cycle >= earlier.end_cycle

    def test_address_spaces_are_isolated(self):
        # Identical apps touching identical VPNs: with separate VM-IDs the
        # pages must NOT be shared (distinct physical mappings, no cross-app
        # TLB reuse).
        system = GPUSystem(table1_config())
        apps = [make_tiny_app("a", kernels=1), make_tiny_app("b", kernels=1)]
        system.run_concurrent(apps, [[0, 1, 2, 3], [4, 5, 6, 7]])
        # Both apps touched the same VPNs, so the page table holds two
        # mappings per page.
        vpn = 1 << 20
        assert system.page_table.translate(0, vpn) != system.page_table.translate(1, vpn)

    def test_vmids_assigned_per_partition(self):
        system = GPUSystem(table1_config())
        system.run_concurrent(
            [make_tiny_app("a", kernels=1), make_tiny_app("b", kernels=1)],
            [[0, 1], [6, 7]],
        )
        assert system.cus[0].translation.vmid == 0
        assert system.cus[7].translation.vmid == 1

    def test_concurrent_with_reconfigurable_scheme(self):
        system = GPUSystem(table1_config(TxScheme.ICACHE_LDS))
        apps = [
            make_tiny_app("a", kernels=1, pages=512, ops_per_wave=12),
            make_tiny_app("b", kernels=1, pages=512, ops_per_wave=12),
        ]
        results = system.run_concurrent(apps, [[0, 1, 2, 3], [4, 5, 6, 7]])
        assert all(result.cycles > 0 for result in results)
        # Each partition's LDS holds only its own app's translations: with
        # isolated VM-IDs, entries in CUs 0-3 carry vmid 0 only.
        for cu in system.cus[:4]:
            lds_tx = cu.translation.lds_tx
            for segment in lds_tx._segments.values():
                for key in segment:
                    assert key[0] == 0

    def test_result_counters_do_not_alias(self):
        # Regression: run_concurrent used to hand every SimResult the SAME
        # counters dict, so mutating one result's counters corrupted all
        # the others.
        system = GPUSystem(table1_config())
        results = system.run_concurrent(
            [make_tiny_app("a", kernels=1), make_tiny_app("b", kernels=1)],
            [[0, 1, 2, 3], [4, 5, 6, 7]],
        )
        assert results[0].counters is not results[1].counters
        before = dict(results[1].counters)
        results[0].counters["instructions"] = -1
        results[0].counters["injected_marker"] = 123
        assert results[1].counters == before

    def test_concurrent_results_carry_distributions(self):
        # Regression: concurrent mode used to omit distributions entirely.
        system = GPUSystem(table1_config())
        results = system.run_concurrent(
            [make_tiny_app("a", kernels=1), make_tiny_app("b", kernels=1)],
            [[0, 1, 2, 3], [4, 5, 6, 7]],
        )
        for result in results:
            assert result.distributions
        assert results[0].distributions is not results[1].distributions
        assert results[0].distributions.keys() == results[1].distributions.keys()

    def test_kernel_boundary_hook_fires_per_app(self):
        # Regression: concurrent mode never fired the Section 4.3.3
        # kernel-boundary I-cache hook between an app's kernels.
        system = GPUSystem(table1_config())
        calls = []
        for index, icache in enumerate(system.icaches):
            def spy(same, _index=index):
                calls.append((_index, same))

            icache.on_kernel_boundary = spy
        system.run_concurrent(
            [make_tiny_app("a", kernels=3)], [[0, 1, 2, 3, 4, 5, 6, 7]]
        )
        # 3 kernels => 2 boundaries, each hitting every I-cache in the
        # app's partition (all groups here).
        boundaries = len(calls) // len(system.icaches)
        assert boundaries == 2
        assert len(calls) == 2 * len(system.icaches)
        # make_tiny_app numbers kernels uniquely, so `same` is False.
        assert all(same is False for _, same in calls)

    def test_concurrent_vs_sequential_work_conservation(self):
        seq_system = GPUSystem(table1_config())
        seq_a = seq_system.run(make_tiny_app("a", kernels=1))
        seq_b = seq_system.run(make_tiny_app("b", kernels=1))
        conc_system = GPUSystem(table1_config())
        conc_system.run_concurrent(
            [make_tiny_app("a", kernels=1), make_tiny_app("b", kernels=1)],
            [[0, 1, 2, 3], [4, 5, 6, 7]],
        )
        assert conc_system.stats.get("instructions") == (
            seq_a.instructions + seq_b.instructions
        )
