"""Tests for the concurrent multi-application scenario (paper Section 7.2)."""

import pytest

from repro.config import TxScheme, table1_config
from repro.system import GPUSystem
from tests.conftest import make_tiny_app


class TestValidation:
    def test_partition_count_must_match(self):
        system = GPUSystem(table1_config())
        with pytest.raises(ValueError):
            system.run_concurrent([make_tiny_app()], [[0, 1], [2, 3]])

    def test_partitions_must_be_disjoint(self):
        system = GPUSystem(table1_config())
        with pytest.raises(ValueError):
            system.run_concurrent(
                [make_tiny_app("a"), make_tiny_app("b")], [[0, 1], [1, 2]]
            )

    def test_unknown_cu_rejected(self):
        system = GPUSystem(table1_config())
        with pytest.raises(ValueError):
            system.run_concurrent([make_tiny_app()], [[99]])

    def test_empty_partition_rejected(self):
        system = GPUSystem(table1_config())
        with pytest.raises(ValueError):
            system.run_concurrent([make_tiny_app()], [[]])


class TestConcurrentExecution:
    def test_two_apps_complete(self):
        system = GPUSystem(table1_config())
        apps = [make_tiny_app("left"), make_tiny_app("right")]
        results = system.run_concurrent(apps, [[0, 1, 2, 3], [4, 5, 6, 7]])
        assert len(results) == 2
        for result, app in zip(results, apps):
            assert result.app_name == app.name
            assert result.cycles > 0
            assert len(result.kernels) == len(app.kernels)

    def test_kernel_sequencing_per_app(self):
        system = GPUSystem(table1_config())
        results = system.run_concurrent(
            [make_tiny_app("a", kernels=3)], [[0, 1, 2, 3, 4, 5, 6, 7]]
        )
        kernels = results[0].kernels
        for earlier, later in zip(kernels, kernels[1:]):
            assert later.start_cycle >= earlier.end_cycle

    def test_address_spaces_are_isolated(self):
        # Identical apps touching identical VPNs: with separate VM-IDs the
        # pages must NOT be shared (distinct physical mappings, no cross-app
        # TLB reuse).
        system = GPUSystem(table1_config())
        apps = [make_tiny_app("a", kernels=1), make_tiny_app("b", kernels=1)]
        system.run_concurrent(apps, [[0, 1, 2, 3], [4, 5, 6, 7]])
        # Both apps touched the same VPNs, so the page table holds two
        # mappings per page.
        vpn = 1 << 20
        assert system.page_table.translate(0, vpn) != system.page_table.translate(1, vpn)

    def test_vmids_assigned_per_partition(self):
        system = GPUSystem(table1_config())
        system.run_concurrent(
            [make_tiny_app("a", kernels=1), make_tiny_app("b", kernels=1)],
            [[0, 1], [6, 7]],
        )
        assert system.cus[0].translation.vmid == 0
        assert system.cus[7].translation.vmid == 1

    def test_concurrent_with_reconfigurable_scheme(self):
        system = GPUSystem(table1_config(TxScheme.ICACHE_LDS))
        apps = [
            make_tiny_app("a", kernels=1, pages=512, ops_per_wave=12),
            make_tiny_app("b", kernels=1, pages=512, ops_per_wave=12),
        ]
        results = system.run_concurrent(apps, [[0, 1, 2, 3], [4, 5, 6, 7]])
        assert all(result.cycles > 0 for result in results)
        # Each partition's LDS holds only its own app's translations: with
        # isolated VM-IDs, entries in CUs 0-3 carry vmid 0 only.
        for cu in system.cus[:4]:
            lds_tx = cu.translation.lds_tx
            for segment in lds_tx._segments.values():
                for key in segment:
                    assert key[0] == 0

    def test_concurrent_vs_sequential_work_conservation(self):
        seq_system = GPUSystem(table1_config())
        seq_a = seq_system.run(make_tiny_app("a", kernels=1))
        seq_b = seq_system.run(make_tiny_app("b", kernels=1))
        conc_system = GPUSystem(table1_config())
        conc_system.run_concurrent(
            [make_tiny_app("a", kernels=1), make_tiny_app("b", kernels=1)],
            [[0, 1, 2, 3], [4, 5, 6, 7]],
        )
        assert conc_system.stats.get("instructions") == (
            seq_a.instructions + seq_b.instructions
        )
