"""Shared fixtures: small configurations and a tiny synthetic app."""

from __future__ import annotations

import pytest

from repro.config import SystemConfig, TxScheme, table1_config
from repro.gpu.instructions import alu, lds_op, line, mem
from repro.workloads.base import AppSpec, KernelSpec


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite the golden snapshot files under tests/goldens/ with "
        "the current simulator output instead of comparing against them",
    )


@pytest.fixture
def update_goldens(request) -> bool:
    return bool(request.config.getoption("--update-goldens"))


@pytest.fixture
def config() -> SystemConfig:
    return table1_config()


def make_tiny_kernel(
    name: str = "tiny_kernel",
    num_workgroups: int = 4,
    waves_per_workgroup: int = 2,
    lds_bytes: int = 0,
    static_lines: int = 4,
    vpn_base: int = 1 << 20,
    pages: int = 64,
    ops_per_wave: int = 6,
) -> KernelSpec:
    """A deterministic little kernel touching ``pages`` pages."""

    def factory(ctx):
        def ops():
            yield line(0)
            for index in range(ops_per_wave):
                start = (ctx.global_wave * ops_per_wave + index) * 2 % pages
                yield mem((vpn_base + start, vpn_base + (start + 1) % pages), 8)
                yield alu(4)
                if lds_bytes:
                    yield lds_op(1)
                yield line(index % static_lines)
        return ops()

    return KernelSpec(
        name=name,
        num_workgroups=num_workgroups,
        waves_per_workgroup=waves_per_workgroup,
        lds_bytes_per_workgroup=lds_bytes,
        static_lines=static_lines,
        program_factory=factory,
    )


def make_tiny_app(name: str = "tinyapp", kernels: int = 2, **kernel_kwargs) -> AppSpec:
    specs = tuple(
        make_tiny_kernel(name=f"{name}_k{i}", **kernel_kwargs) for i in range(kernels)
    )
    return AppSpec(name=name, kernels=specs, category="?")


@pytest.fixture
def tiny_app() -> AppSpec:
    return make_tiny_app()
