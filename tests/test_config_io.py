"""Unit tests for configuration serialization."""

import pytest

from repro.config import ICacheReplacement, TxScheme, table1_config
from repro.config_io import (
    config_from_dict,
    config_from_json,
    config_to_dict,
    config_to_json,
    load_config,
    save_config,
)


class TestRoundTrip:
    def test_default_config(self):
        config = table1_config()
        assert config_from_dict(config_to_dict(config)) == config

    def test_scheme_round_trip(self):
        config = table1_config(TxScheme.ICACHE_LDS)
        rebuilt = config_from_dict(config_to_dict(config))
        assert rebuilt.scheme is TxScheme.ICACHE_LDS

    def test_derived_config_round_trip(self):
        config = (
            table1_config(TxScheme.DUCATI)
            .with_l2_tlb_entries(8192)
            .with_page_size(64 * 1024)
            .with_extra_wire_latency(50, 10)
        )
        assert config_from_dict(config_to_dict(config)) == config

    def test_replacement_enum_round_trip(self):
        from dataclasses import replace

        config = table1_config(TxScheme.ICACHE_ONLY)
        config = replace(
            config,
            icache_tx=replace(
                config.icache_tx, replacement=ICacheReplacement.NAIVE
            ),
        )
        rebuilt = config_from_dict(config_to_dict(config))
        assert rebuilt.icache_tx.replacement is ICacheReplacement.NAIVE

    def test_json_round_trip(self):
        config = table1_config(TxScheme.LDS_ONLY)
        assert config_from_json(config_to_json(config)) == config

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "config.json"
        config = table1_config(TxScheme.ICACHE_LDS).with_l2_tlb_entries(1024)
        save_config(config, str(path))
        assert load_config(str(path)) == config


class TestPartialAndInvalid:
    def test_partial_dict_uses_defaults(self):
        rebuilt = config_from_dict({"scheme": "lds", "page_size": 4096})
        assert rebuilt.scheme is TxScheme.LDS_ONLY
        assert rebuilt.tlb.l2_entries == 512

    def test_partial_section(self):
        rebuilt = config_from_dict({"tlb": {"l2_entries": 2048, "l2_ways": 16,
                                            "l1_entries": 32, "l1_latency": 108,
                                            "l2_latency": 188,
                                            "l1_port_occupancy": 1,
                                            "l2_port_occupancy": 2,
                                            "perfect_l2": False}})
        assert rebuilt.tlb.l2_entries == 2048

    def test_unknown_section_rejected(self):
        with pytest.raises(ValueError):
            config_from_dict({"warp_drive": {}})

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError):
            config_from_dict({"tlb": {"bogus_knob": 1}})

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            config_from_dict({"scheme": "teleport"})

    def test_dict_is_json_compatible(self):
        import json

        json.dumps(config_to_dict(table1_config(TxScheme.DUCATI_ICACHE_LDS)))
