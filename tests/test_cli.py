"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "NOPE"])

    def test_scheme_choices(self):
        args = build_parser().parse_args(["run", "SRAD", "--scheme", "icache+lds"])
        assert args.scheme == "icache+lds"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "SRAD", "--scheme", "warp"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "ATAX" in out
        assert "icache+lds" in out

    def test_run_text(self, capsys):
        assert main(["run", "SRAD", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "PTW-PKI" in out
        assert "page walks" in out

    def test_run_json(self, capsys):
        assert main(["run", "SRAD", "--scale", "0.05", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["app"] == "SRAD"
        assert payload["cycles"] > 0

    def test_run_with_scheme_and_page_size(self, capsys):
        assert main([
            "run", "SRAD", "--scale", "0.05",
            "--scheme", "lds", "--page-size", "65536",
        ]) == 0
        assert "'lds'" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main([
            "compare", "SRAD", "--scale", "0.05", "--schemes", "lds",
        ]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "█" in out  # the bar chart

    def test_config_print(self, capsys):
        assert main(["config", "--scheme", "ducati"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scheme"] == "ducati"

    def test_config_file_round_trip(self, tmp_path, capsys):
        path = tmp_path / "cfg.json"
        assert main(["config", "--scheme", "icache", "--output", str(path)]) == 0
        capsys.readouterr()
        assert main([
            "run", "SRAD", "--scale", "0.05", "--config", str(path), "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scheme"] == "icache"

    def test_l2_tlb_override(self, capsys):
        assert main(["config", "--l2-tlb-entries", "8192"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tlb"]["l2_entries"] == 8192
