"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments import common


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "NOPE"])

    def test_scheme_choices(self):
        args = build_parser().parse_args(["run", "SRAD", "--scheme", "icache+lds"])
        assert args.scheme == "icache+lds"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "SRAD", "--scheme", "warp"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "ATAX" in out
        assert "icache+lds" in out

    def test_run_text(self, capsys):
        assert main(["run", "SRAD", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "PTW-PKI" in out
        assert "page walks" in out

    def test_run_json(self, capsys):
        assert main(["run", "SRAD", "--scale", "0.05", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["app"] == "SRAD"
        assert payload["cycles"] > 0

    def test_run_with_scheme_and_page_size(self, capsys):
        assert main([
            "run", "SRAD", "--scale", "0.05",
            "--scheme", "lds", "--page-size", "65536",
        ]) == 0
        assert "'lds'" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main([
            "compare", "SRAD", "--scale", "0.05", "--schemes", "lds",
        ]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "█" in out  # the bar chart

    def test_config_print(self, capsys):
        assert main(["config", "--scheme", "ducati"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scheme"] == "ducati"

    def test_config_file_round_trip(self, tmp_path, capsys):
        path = tmp_path / "cfg.json"
        assert main(["config", "--scheme", "icache", "--output", str(path)]) == 0
        capsys.readouterr()
        assert main([
            "run", "SRAD", "--scale", "0.05", "--config", str(path), "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scheme"] == "icache"

    def test_l2_tlb_override(self, capsys):
        assert main(["config", "--l2-tlb-entries", "8192"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tlb"]["l2_entries"] == 8192


class TestSweepCommand:
    @pytest.fixture(autouse=True)
    def _isolated(self, monkeypatch):
        # cmd_sweep mutates the module-level cache dir; register the
        # original so monkeypatch restores it, and keep faults out of the
        # environment unless a test sets them.
        monkeypatch.setattr(common, "_CACHE_DIR", common._CACHE_DIR)
        for name in ("REPRO_FAULT_SPEC", "REPRO_TIMEOUT",
                     "REPRO_MAX_RETRIES", "REPRO_KEEP_GOING"):
            monkeypatch.delenv(name, raising=False)
        common.clear_cache()
        yield
        common.clear_cache()

    def test_parser_accepts_fault_tolerance_flags(self):
        args = build_parser().parse_args([
            "sweep", "fig13", "--jobs", "2", "--timeout", "30",
            "--max-retries", "5", "--keep-going",
        ])
        assert args.timeout == 30.0
        assert args.max_retries == 5
        assert args.keep_going is True

    def test_sweep_runs_clean(self, capsys, tmp_path):
        rc = main([
            "sweep", "table2", "--jobs", "1", "--scale", "0.05",
            "--cache-dir", str(tmp_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "table2:" in out
        assert "FAILED" not in out

    def test_keep_going_with_injected_crash_exits_zero(
        self, capsys, monkeypatch, tmp_path
    ):
        # The CI fault smoke: a 2-worker sweep with one persistently
        # crashing job must exit 0 and print a populated failure report.
        monkeypatch.setenv("REPRO_FAULT_SPEC", "ATAX:*:crash")
        rc = main([
            "sweep", "table2", "--jobs", "2", "--scale", "0.05",
            "--cache-dir", str(tmp_path), "--max-retries", "1", "--keep-going",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 job(s) failed terminally" in out
        assert "ATAX" in out

    def test_terminal_failure_without_keep_going_exits_one(
        self, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_FAULT_SPEC", "ATAX:*:exc")
        rc = main([
            "sweep", "table2", "--jobs", "1", "--scale", "0.05",
            "--cache-dir", str(tmp_path), "--max-retries", "0",
        ])
        assert rc == 1
        err = capsys.readouterr().err
        assert "sweep aborted" in err
        assert "--keep-going" in err

    def test_sweep_telemetry_prints_per_job_columns(self, capsys, tmp_path):
        rc = main([
            "sweep", "table2", "--jobs", "1", "--scale", "0.05",
            "--cache-dir", str(tmp_path), "--telemetry",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Per-job telemetry:" in out
        assert "wall_s" in out
        assert "cached" in out
        assert "miss" in out
        # Warm re-run: same command now reports cache hits.
        rc = main([
            "sweep", "table2", "--jobs", "1", "--scale", "0.05",
            "--cache-dir", str(tmp_path), "--telemetry",
        ])
        assert rc == 0
        assert "hit" in capsys.readouterr().out


class TestTraceCommand:
    def test_parser_uppercases_app(self):
        args = build_parser().parse_args(["trace", "gups"])
        assert args.app == "GUPS"
        assert args.out == "trace.json"

    def test_trace_writes_chrome_trace(self, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        rc = main([
            "trace", "gups", "--scale", "0.05", "--out", str(out_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "perfetto" in out.lower()
        payload = json.loads(out_path.read_text())
        events = payload["traceEvents"]
        assert events
        names = {
            e["args"]["name"] for e in events if e["ph"] == "M"
        }
        assert "CU 0" in names
        assert any(name.startswith("iommu.walkers") for name in names)
        assert any("port" in name for name in names)
        assert all(
            e["dur"] >= 0 and e["ts"] >= 0 for e in events if e["ph"] == "X"
        )
        assert payload["otherData"]["app"] == "GUPS"

    def test_trace_respects_max_events(self, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        rc = main([
            "trace", "gups", "--scale", "0.05", "--out", str(out_path),
            "--max-events", "10",
        ])
        assert rc == 0
        payload = json.loads(out_path.read_text())
        assert payload["otherData"]["op_events_recorded"] == 10
        assert payload["otherData"]["op_events_dropped"] > 0


class TestSweepJsonOutput:
    @pytest.fixture(autouse=True)
    def _isolated(self, monkeypatch):
        monkeypatch.setattr(common, "_CACHE_DIR", common._CACHE_DIR)
        common.clear_cache()
        yield
        common.clear_cache()

    def test_sweep_json_writes_loadable_report(self, capsys, tmp_path):
        from repro.sim.runner import SweepReport

        report_path = tmp_path / "report.json"
        rc = main([
            "sweep", "table2", "--jobs", "1", "--scale", "0.05",
            "--cache-dir", str(tmp_path / "cache"), "--json", str(report_path),
        ])
        assert rc == 0
        assert f"wrote {report_path}" in capsys.readouterr().out
        report = SweepReport.from_json(json.loads(report_path.read_text()))
        assert report.jobs_submitted > 0
        assert report.failures == []


class TestServiceCommands:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8000
        assert args.idle_timeout == 60.0
        assert args.jobs is None

    def test_submit_parser_uppercases_apps(self):
        args = build_parser().parse_args(
            ["submit", "--apps", "gups", "atax", "--schemes", "baseline"]
        )
        assert args.apps == ["GUPS", "ATAX"]
        assert args.figure is None
        assert args.url == "http://127.0.0.1:8000"

    def test_submit_parser_named_figure(self):
        args = build_parser().parse_args(["submit", "fig13", "--wait"])
        assert args.figure == "fig13"
        assert args.wait is True
        assert args.wait_timeout == 600.0

    def test_submit_invalid_spec_fails_locally_with_choices(self, capsys):
        # Validation runs before any network traffic: no server is
        # listening anywhere near this URL, yet the error is a spec error.
        rc = main([
            "submit", "--apps", "NOPE", "--url", "http://127.0.0.1:1",
        ])
        assert rc == 2
        err = capsys.readouterr().err
        assert "NOPE" in err
        assert "GUPS" in err  # actionable: valid choices listed

    def test_submit_unreachable_server_fails_cleanly(self, capsys):
        rc = main([
            "submit", "--apps", "GUPS", "--scale", "0.05",
            "--url", "http://127.0.0.1:1",
        ])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_submit_end_to_end_against_live_server(
        self, capsys, monkeypatch, tmp_path
    ):
        from repro.service.http import BackgroundServer
        from repro.service.manager import JobManager

        monkeypatch.setattr(common, "_CACHE_DIR", str(tmp_path / "cache"))
        common.clear_cache()
        with JobManager(workers=1) as manager:
            with BackgroundServer(manager) as server:
                rc = main([
                    "submit", "--apps", "GUPS", "--schemes", "baseline",
                    "--scale", "0.05", "--url", server.url,
                    "--wait", "--telemetry",
                ])
                out = capsys.readouterr().out
                assert rc == 0
                assert "done" in out
                assert "Per-job telemetry:" in out
                assert "1 simulated" in out
                # Identical resubmission dedups onto the finished job.
                rc = main([
                    "submit", "--apps", "gups", "--schemes", "baseline",
                    "--scale", "0.05", "--url", server.url, "--wait",
                ])
                out = capsys.readouterr().out
                assert rc == 0
                assert "deduplicated onto an existing job" in out
        common.clear_cache()

    def test_submit_status_prints_payload(self, capsys, monkeypatch, tmp_path):
        from repro.service.http import BackgroundServer
        from repro.service.manager import JobManager

        monkeypatch.setattr(common, "_CACHE_DIR", str(tmp_path / "cache"))
        common.clear_cache()
        with JobManager(workers=1, autostart=False) as manager:
            with BackgroundServer(manager) as server:
                record, _ = manager.submit(
                    {"apps": ["GUPS"], "schemes": ["baseline"], "scale": 0.05}
                )
                rc = main([
                    "submit", "--url", server.url, "--status", record.job_id,
                ])
                assert rc == 0
                payload = json.loads(capsys.readouterr().out)
                assert payload["job_id"] == record.job_id
                assert payload["state"] == "queued"
        common.clear_cache()
