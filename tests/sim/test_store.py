"""Tests for the content-addressed shared result store.

The store is the single cache implementation behind
``repro.experiments.common`` and every executor backend, so these tests
pin its contracts directly: the sharded layout and legacy-flat migration,
crash durability (a killed writer can orphan a temp file but never
publish a truncated entry), the two-process quarantine race, garbage
collection, verification, and the process-wide counters.
"""

import json
import multiprocessing
import os

import pytest

from repro.config import table1_config
from repro.experiments import common
from repro.sim import store as store_mod
from repro.sim.store import ResultStore, key_digest

SCALE = 0.05
APP = "GUPS"


@pytest.fixture(autouse=True)
def _fresh_counters():
    store_mod.reset_counters()
    yield
    store_mod.reset_counters()


@pytest.fixture()
def result():
    return common.run_app(APP, table1_config(), SCALE, use_cache=False)


@pytest.fixture()
def store(tmp_path):
    return ResultStore(str(tmp_path))


KEY = common.cache_key(APP, table1_config(), SCALE)


def entry_files(root):
    found = []
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in filenames:
            found.append(os.path.join(dirpath, name))
    return sorted(found)


class TestLayout:
    def test_empty_root_rejected(self):
        with pytest.raises(ValueError):
            ResultStore("")

    def test_sharded_path_shape(self, store):
        digest = key_digest(KEY)
        path = store.path_for(KEY)
        assert path == os.path.join(
            store.root, digest[:2], digest[2:4], f"{digest}.json"
        )

    def test_store_then_load_round_trips(self, store, result):
        store.store(KEY, result)
        assert os.path.exists(store.path_for(KEY))
        loaded = store.load(KEY)
        assert common.result_fingerprint(loaded) == common.result_fingerprint(result)

    def test_digest_unchanged_from_flat_layout(self):
        # Promoting a store to the sharded tree must not re-key entries.
        assert os.path.basename(store_mod.ResultStore("/x").legacy_path_for(KEY)) \
            == f"{key_digest(KEY)}.json"

    def test_legacy_flat_entry_migrates_on_load(self, store, result):
        # Simulate a pre-sharding store: entry sits flat in the root.
        os.makedirs(store.root, exist_ok=True)
        with open(store.legacy_path_for(KEY), "w") as handle:
            json.dump(common.serialize_result(result), handle)

        loaded = store.load(KEY)

        assert common.result_fingerprint(loaded) == common.result_fingerprint(result)
        assert not os.path.exists(store.legacy_path_for(KEY))
        assert os.path.exists(store.path_for(KEY))

    def test_missing_entry_is_a_miss(self, store):
        assert store.load(KEY) is None
        assert store_mod.counters_snapshot()["misses"] == 1


class TestDurability:
    def test_fsync_before_publish(self, store, result, monkeypatch):
        """The temp file must hit the disk before the rename publishes it;
        otherwise a crash after the rename could expose a truncated entry."""

        order = []
        real_fsync, real_replace = os.fsync, os.replace
        monkeypatch.setattr(
            os, "fsync", lambda fd: (order.append("fsync"), real_fsync(fd))[1]
        )
        monkeypatch.setattr(
            os, "replace",
            lambda a, b: (order.append("replace"), real_replace(a, b))[1],
        )

        store.store(KEY, result)

        assert "fsync" in order and "replace" in order
        assert order.index("fsync") < order.index("replace")

    @pytest.mark.skipif(not hasattr(os, "fork"), reason="needs os.fork")
    def test_writer_killed_mid_store_leaves_no_partial_entry(
        self, store, result
    ):
        """Kill a writer between writing bytes and publishing: readers see
        a clean miss (never a truncated entry) and gc reaps the orphan."""

        child = os.fork()
        if child == 0:  # pragma: no cover - exits before coverage reports
            # Die at the publish step: bytes are in the temp file, the
            # atomic replace never happens.
            os.replace = lambda *a, **k: os._exit(1)
            try:
                store.store(KEY, result)
            finally:
                os._exit(1)
        _, status = os.waitpid(child, 0)
        assert os.waitstatus_to_exitcode(status) == 1

        assert store.load(KEY) is None  # a miss, not garbage
        tmp_files, _ = store.scan_debris()
        assert len(tmp_files) == 1  # the orphan is visible debris...
        removed = store.gc(tmp_grace_s=0.0)
        assert removed["tmp"] == 1  # ...and gc reaps it
        assert not entry_files(store.root)

    def test_failed_write_cleans_its_temp_file(self, store):
        class Unserializable:
            pass

        with pytest.raises(Exception):
            store.store(KEY, Unserializable())
        tmp_files, _ = store.scan_debris()
        assert not tmp_files


def _quarantine_racer(root, path, barrier, errors):
    try:
        barrier.wait(timeout=30)
        ResultStore(root).quarantine(path, "corrupt (race test)")
    except Exception as exc:  # pragma: no cover - failure path
        errors.put(repr(exc))


class TestQuarantineRace:
    def test_two_processes_quarantine_same_file_once(self, store, result):
        """Regression: two processes racing to quarantine the same corrupt
        entry must both survive, and exactly one quarantined copy remains
        (the loser of the rename stands down on FileNotFoundError)."""

        store.store(KEY, result)
        path = store.path_for(KEY)
        with open(path, "w") as handle:
            handle.write("{broken json")

        context = multiprocessing.get_context("fork")
        barrier = context.Barrier(2)
        errors = context.Queue()
        racers = [
            context.Process(
                target=_quarantine_racer,
                args=(store.root, path, barrier, errors),
            )
            for _ in range(2)
        ]
        for racer in racers:
            racer.start()
        for racer in racers:
            racer.join(timeout=60)

        assert all(racer.exitcode == 0 for racer in racers)
        assert errors.empty()
        assert not os.path.exists(path)
        _, corrupt = store.scan_debris()
        assert len(corrupt) == 1

    def test_quarantine_names_never_collide_in_process(self, store, result):
        store.store(KEY, result)
        path = store.path_for(KEY)
        store.quarantine(path, "corrupt (first)")
        store.store(KEY, result)
        store.quarantine(path, "corrupt (second)")
        _, corrupt = store.scan_debris()
        assert len(corrupt) == 2
        assert len(set(corrupt)) == 2

    def test_quarantine_missing_file_stands_down(self, store):
        store.quarantine(os.path.join(store.root, "nope.json"), "corrupt")
        assert store_mod.counters_snapshot()["quarantined"] == 0


class TestGc:
    def test_gc_reaps_debris_and_prunes_empty_shards(self, store, result):
        store.store(KEY, result)
        path = store.path_for(KEY)
        with open(path, "w") as handle:
            handle.write("{broken")
        store.load(KEY)  # quarantines the corrupt entry
        with open(os.path.join(store.root, "orphan.json.tmp"), "w") as handle:
            handle.write("partial")

        removed = store.gc(tmp_grace_s=0.0)

        assert removed["tmp"] == 1
        assert removed["corrupt"] == 1
        assert removed["dirs"] == 2  # the entry's two empty shard levels
        assert not entry_files(store.root)

    def test_gc_dry_run_removes_nothing(self, store, result):
        store.store(KEY, result)
        path = store.path_for(KEY)
        with open(path, "w") as handle:
            handle.write("{broken")
        store.load(KEY)

        removed = store.gc(tmp_grace_s=0.0, dry_run=True)

        assert removed["corrupt"] == 1 and removed["dry_run"]
        _, corrupt = store.scan_debris()
        assert len(corrupt) == 1  # still there

    def test_gc_evicts_stale_schema_entries(self, store, result):
        store.store(KEY, result)
        path = store.path_for(KEY)
        payload = json.loads(open(path).read())
        payload["schema"] = "repro-simresult-v0"
        with open(path, "w") as handle:
            json.dump(payload, handle)

        removed = store.gc()

        assert removed["stale"] == 1
        assert store_mod.counters_snapshot()["evicted"] == 1

    def test_gc_age_expiry(self, store, result):
        store.store(KEY, result)
        assert store.gc(max_age_s=0.0)["expired"] == 1
        store.store(KEY, result)
        assert store.gc(max_age_s=3600.0)["expired"] == 0

    def test_fresh_tmp_files_survive_the_grace_period(self, store, result):
        store.store(KEY, result)
        with open(os.path.join(store.root, "live.json.tmp"), "w") as handle:
            handle.write("in-flight write")
        assert store.gc()["tmp"] == 0  # default grace is an hour


class TestVerify:
    def test_verify_clean_store(self, store, result):
        store.store(KEY, result)
        outcome = store.verify()
        assert outcome["checked"] == 1 and outcome["ok"] == 1
        assert not outcome["stale"] and not outcome["corrupt"]

    def test_verify_flags_corrupt_and_stale(self, store, result):
        store.store(KEY, result)
        path = store.path_for(KEY)
        with open(path, "w") as handle:
            handle.write("{broken")
        stale_path = os.path.join(store.root, "aa", "bb", "a" * 24 + ".json")
        os.makedirs(os.path.dirname(stale_path))
        with open(stale_path, "w") as handle:
            json.dump({"schema": "repro-simresult-v0"}, handle)

        outcome = store.verify()

        assert outcome["checked"] == 2 and outcome["ok"] == 0
        assert outcome["corrupt"] == [path]
        assert outcome["stale"] == [stale_path]

    def test_verify_fingerprints_are_sorted_and_diffable(
        self, store, tmp_path_factory, result
    ):
        # Two stores with the same results must emit identical
        # fingerprint lists — this is the CI byte-compare primitive.
        other = ResultStore(str(tmp_path_factory.mktemp("other-store")))
        second_key = common.cache_key("ATAX", table1_config(), SCALE)
        second = common.run_app("ATAX", table1_config(), SCALE, use_cache=False)
        for target in (store, other):
            target.store(KEY, result)
            target.store(second_key, second)

        mine = store.verify(fingerprints=True)["fingerprints"]
        theirs = other.verify(fingerprints=True)["fingerprints"]

        assert mine == theirs
        assert mine == sorted(mine)
        assert len(mine) == 2


class TestCounters:
    def test_load_store_counters(self, store, result):
        store.load(KEY)
        store.store(KEY, result)
        store.load(KEY)
        counters = store_mod.counters_snapshot()
        assert counters["misses"] == 1
        assert counters["stores"] == 1
        assert counters["hits"] == 1

    def test_counters_delta(self, store, result):
        before = store_mod.counters_snapshot()
        store.store(KEY, result)
        store.load(KEY)
        delta = store_mod.counters_delta(before)
        assert delta["stores"] == 1 and delta["hits"] == 1
        assert delta["misses"] == 0

    def test_stats_shape(self, store, result):
        store.store(KEY, result)
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["legacy_flat_entries"] == 0
        assert stats["total_bytes"] > 0
        assert stats["counters"]["stores"] == 1
