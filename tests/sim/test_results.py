"""Unit tests for result records and summary helpers."""

import pytest

from repro.sim.results import KernelResult, SimResult, geomean, speedup


def make_result(cycles=1000, **counters):
    return SimResult(app_name="app", scheme="baseline", cycles=cycles, counters=counters)


class TestSimResult:
    def test_counter_default(self):
        assert make_result().counter("missing", 7.0) == 7.0

    def test_ptw_pki(self):
        result = make_result(**{"instructions": 2000.0, "iommu.walks": 10.0})
        assert result.ptw_pki == 5.0

    def test_ptw_pki_no_instructions(self):
        assert make_result().ptw_pki == 0.0

    def test_hit_ratio(self):
        result = make_result(**{"l1_tlb.hits": 30.0, "l1_tlb.misses": 10.0})
        assert result.hit_ratio("l1_tlb") == 0.75

    def test_hit_ratio_empty(self):
        assert make_result().hit_ratio("l1_tlb") == 0.0

    def test_page_walks_counter(self):
        result = make_result(**{"iommu.walks": 17.0})
        assert result.page_walks == 17.0


class TestKernelResult:
    def test_cycles(self):
        kernel = KernelResult("k", 0, start_cycle=10, end_cycle=35)
        assert kernel.cycles == 25


class TestSpeedup:
    def test_faster_candidate(self):
        assert speedup(make_result(2000), make_result(1000)) == 2.0

    def test_zero_cycles_rejected(self):
        with pytest.raises(ValueError):
            speedup(make_result(10), make_result(0))


class TestGeomean:
    def test_identity(self):
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_known_value(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])
