"""Determinism and equivalence battery for the parallel sweep runner.

The runner is only safe to ship if a parallel sweep is *indistinguishable*
from the serial path: byte-identical results, submission order preserved,
and no job simulated more than once. These tests pin all three down.
"""

import dataclasses
import os
import time

import pytest

from repro.config import TxScheme, table1_config
from repro.experiments import common
from repro.experiments.fig13_main import sweep_jobs_13bc
from repro.sim.runner import (
    JobTiming,
    SweepJob,
    SweepReport,
    SweepRunner,
    default_workers,
    run_sweep,
)
from repro.sim.stats import _percentile as stats_percentile

SCALE = 0.05

APPS = ("ATAX", "SRAD", "GUPS")
SCHEMES = (TxScheme.BASELINE, TxScheme.ICACHE_LDS)


@pytest.fixture(autouse=True)
def _memory_only_cache(monkeypatch):
    """Isolate every test: empty in-process cache, no disk cache."""

    monkeypatch.setattr(common, "_CACHE_DIR", "")
    common.clear_cache()
    yield
    common.clear_cache()


def small_grid():
    return [
        SweepJob(app, table1_config(scheme), SCALE)
        for app in APPS
        for scheme in SCHEMES
    ]


class TestEquivalence:
    def test_parallel_matches_serial_byte_identical(self):
        jobs = small_grid()
        serial = [
            common.run_app(job.app_name, job.config, job.scale) for job in jobs
        ]
        serial_prints = [common.result_fingerprint(r) for r in serial]

        common.clear_cache()  # force the parallel run to actually simulate
        parallel = SweepRunner(jobs=4).run(jobs)
        parallel_prints = [common.result_fingerprint(r) for r in parallel]

        assert parallel_prints == serial_prints

    def test_fig13_grid_parallel_matches_serial(self):
        # The acceptance grid: every Figure 13b/c job at a tiny scale.
        jobs = sweep_jobs_13bc(0.02)
        serial = [
            common.run_app(job.app_name, job.config, job.scale) for job in jobs
        ]
        serial_prints = [common.result_fingerprint(r) for r in serial]

        common.clear_cache()
        parallel = SweepRunner(jobs=4).run(jobs)
        parallel_prints = [common.result_fingerprint(r) for r in parallel]

        assert parallel_prints == serial_prints

    def test_serial_fallback_matches_run_app(self):
        jobs = small_grid()
        direct = [
            common.result_fingerprint(
                common.run_app(job.app_name, job.config, job.scale)
            )
            for job in jobs
        ]
        common.clear_cache()
        via_runner = [
            common.result_fingerprint(r) for r in SweepRunner(jobs=1).run(jobs)
        ]
        assert via_runner == direct


class TestOrderingAndDedup:
    def test_results_in_submission_order(self):
        jobs = small_grid()
        results = SweepRunner(jobs=4).run(jobs)
        assert [r.app_name for r in results] == [j.app_name for j in jobs]
        assert [r.scheme for r in results] == [
            j.config.scheme.value for j in jobs
        ]

    def test_duplicate_jobs_simulated_once(self):
        base = small_grid()
        jobs = base + base + base  # every job submitted three times
        runner = SweepRunner(jobs=4)
        results, report = runner.run_with_report(jobs)

        assert report.jobs_submitted == 3 * len(base)
        assert report.unique_jobs == len(base)
        assert report.duplicate_jobs == 2 * len(base)
        assert report.jobs_simulated == len(base)
        assert report.cache_hits == 0
        # Duplicates resolve to the very same object, not a re-simulation.
        for index in range(len(base)):
            assert results[index] is results[index + len(base)]
            assert results[index] is results[index + 2 * len(base)]

    def test_warm_cache_counts_as_hits(self):
        jobs = small_grid()
        runner = SweepRunner(jobs=1)
        runner.run(jobs)
        _, report = runner.run_with_report(jobs)
        assert report.cache_hits == len(jobs)
        assert report.jobs_simulated == 0

    def test_tuple_jobs_and_defaults_accepted(self):
        results = run_sweep([("SRAD", None, SCALE)], workers=1)
        assert results[0].app_name == "SRAD"
        assert results[0].scheme == "baseline"


class TestCacheIsolation:
    def test_use_cache_false_ignores_inherited_parent_cache(self):
        """Regression: under the fork start method a worker inherits the
        parent's populated in-process ``_CACHE``; with ``use_cache=False``
        it must never serve from it (it used to, returning stale results
        for a runner explicitly built to re-simulate)."""

        jobs = small_grid()[:2]
        genuine = common.run_app(
            jobs[0].app_name, jobs[0].config, jobs[0].scale, use_cache=False
        )
        poisoned = dataclasses.replace(genuine, cycles=genuine.cycles + 987_654)
        common._CACHE[jobs[0].key()] = poisoned

        results = SweepRunner(jobs=2, use_cache=False).run(jobs)

        assert results[0].cycles == genuine.cycles
        assert results[0].cycles != poisoned.cycles
        # And the no-cache run did not overwrite the parent's entry.
        assert common._CACHE[jobs[0].key()] is poisoned

    def test_use_cache_false_serial_ignores_parent_cache(self):
        job = small_grid()[0]
        genuine = common.run_app(job.app_name, job.config, job.scale, use_cache=False)
        poisoned = dataclasses.replace(genuine, cycles=genuine.cycles + 987_654)
        common._CACHE[job.key()] = poisoned

        results = SweepRunner(jobs=1, use_cache=False).run([job])
        assert results[0].cycles == genuine.cycles


class TestReport:
    def test_report_timings_and_percentiles(self):
        jobs = small_grid()
        runner = SweepRunner(jobs=1)
        _, report = runner.run_with_report(jobs)
        simulated = [t for t in report.timings if not t.cached]
        assert len(simulated) == len(jobs)
        assert all(t.duration_s > 0 for t in simulated)
        durations = sorted(t.duration_s for t in simulated)
        assert durations[0] <= report.p50_s <= report.p95_s <= durations[-1]
        assert report.wall_clock_s >= sum(durations) * 0.5

    def test_progress_lines_emitted(self):
        lines = []
        SweepRunner(jobs=1, progress=lines.append).run(small_grid()[:2])
        assert any("[sweep]" in line for line in lines)
        assert any("jobs" in line for line in lines)

    def test_summary_mentions_cache_hits(self):
        runner = SweepRunner(jobs=1)
        runner.run(small_grid()[:1])
        _, report = runner.run_with_report(small_grid()[:1])
        assert "1 cache hits" in report.summary()

    def test_percentiles_use_shared_linear_interpolation(self):
        """Regression: the report used nearest-rank while every other
        percentile in the repo interpolates linearly — p50 of
        [1,2,3,4] must be 2.5, not 3.0."""

        report = SweepReport()
        durations = [1.0, 2.0, 3.0, 4.0]
        for index, duration in enumerate(durations):
            report.timings.append(
                JobTiming(
                    key=str(index),
                    app_name="A",
                    scheme="baseline",
                    duration_s=duration,
                    cached=False,
                )
            )
        assert report.p50_s == stats_percentile(durations, 0.50) == 2.5
        assert report.p95_s == stats_percentile(durations, 0.95)
        assert SweepReport().p50_s == 0.0  # empty report stays well-defined


class TestWorkerConfiguration:
    def test_repro_jobs_env_respected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_workers() == 3
        assert SweepRunner().workers == 3

    def test_repro_jobs_env_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "zero")
        with pytest.raises(ValueError):
            default_workers()
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.raises(ValueError):
            default_workers()

    def test_default_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_workers() == (os.cpu_count() or 1)

    def test_explicit_jobs_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert SweepRunner(jobs=2).workers == 2

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="wall-clock speedup needs a multicore machine",
)
class TestParallelSpeedup:
    def test_fig13_grid_faster_with_four_workers(self):
        jobs = sweep_jobs_13bc(0.02)

        common.clear_cache()
        started = time.perf_counter()
        SweepRunner(jobs=1).run(jobs)
        serial_s = time.perf_counter() - started

        common.clear_cache()
        started = time.perf_counter()
        SweepRunner(jobs=4).run(jobs)
        parallel_s = time.perf_counter() - started

        # Loose bound: any real pool on >=2 cores clears 0.8x easily.
        assert parallel_s < 0.8 * serial_s, (
            f"parallel {parallel_s:.2f}s not faster than serial {serial_s:.2f}s"
        )
