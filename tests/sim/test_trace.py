"""Tests for optional execution tracing."""

import json

import pytest

from repro.config import table1_config
from repro.sim.trace import ExecutionTracer, TraceEvent
from repro.system import GPUSystem
from tests.conftest import make_tiny_app


class TestTracerUnit:
    def test_record_and_len(self):
        tracer = ExecutionTracer()
        tracer.record(0, 1, "k", 2, "alu", 10, 20)
        assert len(tracer) == 1
        event = tracer.events[0]
        assert event.duration == 10
        assert event.op_kind == "alu"

    def test_bounded(self):
        tracer = ExecutionTracer(max_events=2)
        for index in range(5):
            tracer.record(0, 0, "k", 0, "alu", index, index + 1)
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ExecutionTracer(max_events=0)

    def test_by_kind_totals(self):
        tracer = ExecutionTracer()
        tracer.record(0, 0, "k", 0, "alu", 0, 5)
        tracer.record(0, 0, "k", 0, "alu", 5, 7)
        tracer.record(0, 0, "k", 0, "mem", 0, 100)
        assert tracer.by_kind() == {"alu": 7, "mem": 100}

    def test_slowest(self):
        tracer = ExecutionTracer()
        tracer.record(0, 0, "k", 0, "alu", 0, 5)
        tracer.record(0, 0, "k", 0, "mem", 0, 500)
        assert tracer.slowest(1)[0].op_kind == "mem"

    def test_jsonl_round_trip(self, tmp_path):
        tracer = ExecutionTracer()
        tracer.record(3, 1, "k", 7, "line", 2, 4)
        path = tmp_path / "trace.jsonl"
        tracer.to_jsonl(str(path))
        payload = json.loads(path.read_text().strip())
        assert payload["cu_id"] == 3
        assert payload["op_kind"] == "line"

    def test_jsonl_string(self):
        tracer = ExecutionTracer()
        tracer.record(0, 0, "k", 0, "alu", 0, 1)
        assert '"op_kind": "alu"' in tracer.to_jsonl()


class TestSystemTracing:
    def test_untraced_run_records_nothing(self, config, tiny_app):
        system = GPUSystem(config)
        system.run(tiny_app)  # no tracer attached: must not crash

    def test_traced_run_captures_every_op(self, config):
        system = GPUSystem(config)
        tracer = ExecutionTracer()
        system.attach_tracer(tracer)
        app = make_tiny_app(kernels=1, num_workgroups=2, waves_per_workgroup=1)
        system.run(app)
        assert len(tracer) > 0
        kinds = {event.op_kind for event in tracer.events}
        assert {"alu", "mem", "line"} <= kinds

    def test_event_times_sane(self, config):
        system = GPUSystem(config)
        tracer = ExecutionTracer()
        system.attach_tracer(tracer)
        system.run(make_tiny_app(kernels=1))
        assert all(e.completed_at >= e.issued_at for e in tracer.events)

    def test_by_cu_filter(self, config):
        system = GPUSystem(config)
        tracer = ExecutionTracer()
        system.attach_tracer(tracer)
        system.run(make_tiny_app(kernels=1, num_workgroups=16))
        cu0 = tracer.for_cu(0)
        assert cu0
        assert all(e.cu_id == 0 for e in cu0)

    def test_detach(self, config):
        system = GPUSystem(config)
        tracer = ExecutionTracer()
        system.attach_tracer(tracer)
        system.attach_tracer(None)
        system.run(make_tiny_app(kernels=1))
        assert len(tracer) == 0
