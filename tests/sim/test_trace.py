"""Tests for optional execution tracing and timeline telemetry."""

import json

import pytest

from repro.config import table1_config
from repro.sim.trace import (
    PORTS_PID,
    ExecutionTracer,
    TimelineSampler,
    TraceEvent,
    chrome_trace_events,
    write_chrome_trace,
)
from repro.system import GPUSystem
from tests.conftest import make_tiny_app


class TestTracerUnit:
    def test_record_and_len(self):
        tracer = ExecutionTracer()
        tracer.record(0, 1, "k", 2, "alu", 10, 20)
        assert len(tracer) == 1
        event = tracer.events[0]
        assert event.duration == 10
        assert event.op_kind == "alu"

    def test_bounded(self):
        tracer = ExecutionTracer(max_events=2)
        for index in range(5):
            tracer.record(0, 0, "k", 0, "alu", index, index + 1)
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ExecutionTracer(max_events=0)

    def test_by_kind_totals(self):
        tracer = ExecutionTracer()
        tracer.record(0, 0, "k", 0, "alu", 0, 5)
        tracer.record(0, 0, "k", 0, "alu", 5, 7)
        tracer.record(0, 0, "k", 0, "mem", 0, 100)
        assert tracer.by_kind() == {"alu": 7, "mem": 100}

    def test_slowest(self):
        tracer = ExecutionTracer()
        tracer.record(0, 0, "k", 0, "alu", 0, 5)
        tracer.record(0, 0, "k", 0, "mem", 0, 500)
        assert tracer.slowest(1)[0].op_kind == "mem"

    def test_jsonl_round_trip(self, tmp_path):
        tracer = ExecutionTracer()
        tracer.record(3, 1, "k", 7, "line", 2, 4)
        path = tmp_path / "trace.jsonl"
        tracer.to_jsonl(str(path))
        lines = path.read_text().strip().splitlines()
        payload = json.loads(lines[0])
        assert payload["cu_id"] == 3
        assert payload["op_kind"] == "line"

    def test_jsonl_string(self):
        tracer = ExecutionTracer()
        tracer.record(0, 0, "k", 0, "alu", 0, 1)
        assert '"op_kind": "alu"' in tracer.to_jsonl()

    def test_jsonl_meta_trailer_reports_drops(self):
        tracer = ExecutionTracer(max_events=2)
        for index in range(5):
            tracer.record(0, 0, "k", 0, "alu", index, index + 1)
        meta = json.loads(tracer.to_jsonl().splitlines()[-1])["meta"]
        assert meta == {"recorded": 2, "dropped": 3, "max_events": 2}


class TestTimelineSampler:
    def test_record_and_busy_time(self):
        sampler = TimelineSampler("p")
        sampler.record(0, 5)
        sampler.record(10, 12)
        assert len(sampler) == 2
        assert sampler.busy_time() == 7

    def test_contiguous_intervals_coalesce(self):
        sampler = TimelineSampler("p")
        for start in range(0, 50, 5):
            sampler.record(start, start + 5)
        assert len(sampler) == 1
        assert sampler.intervals == [[0, 0, 50]]
        assert sampler.busy_time() == 50

    def test_lane_assignment_mirrors_port_heap(self):
        # Two lanes: overlapping intervals land on different lanes, and a
        # third request goes to the lane that freed earliest (lane 0 on
        # ties), where it coalesces with that lane's previous interval.
        sampler = TimelineSampler("p", lanes=2)
        sampler.record(0, 10)
        sampler.record(0, 10)
        sampler.record(10, 20)
        assert sorted(sampler.intervals) == [[0, 0, 20], [1, 0, 10]]
        assert sampler.lanes == 2

    def test_bounded_with_dropped_counter(self):
        sampler = TimelineSampler("p", max_intervals=2)
        for start in range(0, 50, 10):
            sampler.record(start + 1, start + 5)  # gaps: never coalesces
        assert len(sampler) == 2
        assert sampler.dropped == 3

    def test_no_coalescing_across_drop_gap(self):
        # After a drop, the lane's last interval must not be extended.
        sampler = TimelineSampler("p", max_intervals=1)
        sampler.record(0, 5)
        sampler.record(7, 9)   # dropped (gap, table full)
        sampler.record(9, 12)  # contiguous with the *dropped* interval
        assert sampler.intervals == [[0, 0, 5]]
        assert sampler.dropped == 2

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            TimelineSampler("p", lanes=0)
        with pytest.raises(ValueError):
            TimelineSampler("p", max_intervals=0)


class TestChromeTraceExport:
    def _traced_tiny_run(self):
        system = GPUSystem(table1_config())
        tracer = ExecutionTracer()
        system.attach_tracer(tracer)
        timelines = system.attach_timelines()
        system.run(make_tiny_app(kernels=1, num_workgroups=2))
        return tracer, timelines

    def test_event_shape(self):
        tracer, timelines = self._traced_tiny_run()
        events = chrome_trace_events(tracer=tracer, timelines=timelines)
        assert events
        for event in events:
            assert event["ph"] in ("X", "M")
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            if event["ph"] == "X":
                assert event["dur"] >= 0
                assert event["ts"] >= 0

    def test_tracks_cover_cus_and_ports(self):
        tracer, timelines = self._traced_tiny_run()
        events = chrome_trace_events(tracer=tracer, timelines=timelines)
        names = {
            e["args"]["name"] for e in events if e["ph"] == "M"
        }
        assert "CU 0" in names
        assert "shared ports" in names
        assert any(name.startswith("iommu.walkers") for name in names)
        assert any("port" in name for name in names)

    def test_port_tracks_live_in_shared_pid(self):
        tracer, timelines = self._traced_tiny_run()
        events = chrome_trace_events(timelines=timelines)
        assert events
        assert all(e["pid"] == PORTS_PID for e in events)

    def test_write_chrome_trace_file(self, tmp_path):
        tracer, timelines = self._traced_tiny_run()
        out = tmp_path / "trace.json"
        summary = write_chrome_trace(
            str(out), tracer=tracer, timelines=timelines,
            metadata={"app": "tiny"},
        )
        payload = json.loads(out.read_text())
        assert len(payload["traceEvents"]) == summary["events"]
        assert payload["otherData"]["app"] == "tiny"
        assert payload["otherData"]["op_events_dropped"] == 0
        assert payload["otherData"]["timeline_intervals"] >= 1

    def test_empty_export(self, tmp_path):
        out = tmp_path / "trace.json"
        summary = write_chrome_trace(str(out))
        assert summary == {"events": 0, "tracks": 0}
        assert json.loads(out.read_text())["traceEvents"] == []

    def test_detach_timelines(self):
        system = GPUSystem(table1_config())
        timelines = system.attach_timelines()
        system.detach_timelines()
        system.run(make_tiny_app(kernels=1))
        assert all(len(sampler) == 0 for sampler in timelines.values())


class TestSystemTracing:
    def test_untraced_run_records_nothing(self, config, tiny_app):
        system = GPUSystem(config)
        system.run(tiny_app)  # no tracer attached: must not crash

    def test_traced_run_captures_every_op(self, config):
        system = GPUSystem(config)
        tracer = ExecutionTracer()
        system.attach_tracer(tracer)
        app = make_tiny_app(kernels=1, num_workgroups=2, waves_per_workgroup=1)
        system.run(app)
        assert len(tracer) > 0
        kinds = {event.op_kind for event in tracer.events}
        assert {"alu", "mem", "line"} <= kinds

    def test_event_times_sane(self, config):
        system = GPUSystem(config)
        tracer = ExecutionTracer()
        system.attach_tracer(tracer)
        system.run(make_tiny_app(kernels=1))
        assert all(e.completed_at >= e.issued_at for e in tracer.events)

    def test_by_cu_filter(self, config):
        system = GPUSystem(config)
        tracer = ExecutionTracer()
        system.attach_tracer(tracer)
        system.run(make_tiny_app(kernels=1, num_workgroups=16))
        cu0 = tracer.for_cu(0)
        assert cu0
        assert all(e.cu_id == 0 for e in cu0)

    def test_detach(self, config):
        system = GPUSystem(config)
        tracer = ExecutionTracer()
        system.attach_tracer(tracer)
        system.attach_tracer(None)
        system.run(make_tiny_app(kernels=1))
        assert len(tracer) == 0
