"""Unit tests for the statistics primitives."""

import pytest

from repro.sim.stats import BoxStats, Distribution, PortIdleTracker, Stats


class TestStats:
    def test_add_and_get(self):
        stats = Stats()
        stats.add("hits")
        stats.add("hits", 2)
        assert stats.get("hits") == 3

    def test_missing_counter_is_zero(self):
        assert Stats().get("nope") == 0.0

    def test_getitem(self):
        stats = Stats()
        stats.add("x", 5)
        assert stats["x"] == 5

    def test_contains(self):
        stats = Stats()
        stats.add("present")
        assert "present" in stats
        assert "absent" not in stats

    def test_set_overwrites(self):
        stats = Stats()
        stats.add("v", 10)
        stats.set("v", 3)
        assert stats.get("v") == 3

    def test_snapshot_delta(self):
        stats = Stats()
        stats.add("a", 1)
        snap = stats.snapshot()
        stats.add("a", 2)
        stats.add("b", 5)
        delta = stats.delta_since(snap)
        assert delta == {"a": 2, "b": 5}

    def test_delta_omits_unchanged(self):
        stats = Stats()
        stats.add("same", 4)
        snap = stats.snapshot()
        assert stats.delta_since(snap) == {}

    def test_merge(self):
        a, b = Stats(), Stats()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 3)
        a.merge(b)
        assert a.get("x") == 3
        assert a.get("y") == 3

    def test_ratio(self):
        stats = Stats()
        stats.add("hits", 3)
        stats.add("misses", 1)
        assert stats.ratio("hits", "misses") == 3.0

    def test_ratio_zero_denominator(self):
        assert Stats().ratio("hits", "misses") == 0.0

    def test_names_sorted(self):
        stats = Stats()
        stats.add("b")
        stats.add("a")
        assert stats.names() == ["a", "b"]


class TestDistribution:
    def test_empty_box_stats(self):
        assert Distribution().box_stats() is None

    def test_single_sample(self):
        dist = Distribution()
        dist.add(5.0)
        box = dist.box_stats()
        assert box.minimum == box.maximum == box.median == 5.0
        assert box.count == 1

    def test_quartiles_of_uniform_range(self):
        dist = Distribution()
        dist.extend(range(101))  # 0..100
        box = dist.box_stats()
        assert box.minimum == 0
        assert box.maximum == 100
        assert box.median == pytest.approx(50)
        assert box.q1 == pytest.approx(25)
        assert box.q3 == pytest.approx(75)
        assert box.iqr == pytest.approx(50)

    def test_mean_tracks_all_samples_past_cap(self):
        dist = Distribution(max_samples=10)
        dist.extend([10.0] * 100)
        assert dist.mean == 10.0
        assert dist.count == 100

    def test_overflow_decimation_keeps_bounded(self):
        dist = Distribution(max_samples=8)
        dist.extend(range(1000))
        assert len(dist._samples) == 8
        assert dist.count == 1000

    def test_box_mean_clamped_into_sample_range(self):
        """Regression: summing three copies of this value rounds the
        running-sum mean one ULP above the maximum, breaking the
        ``minimum <= mean <= maximum`` box invariant."""

        value = 174762.81323448202
        dist = Distribution()
        dist.extend([value] * 3)
        box = dist.box_stats()
        assert box.minimum <= box.mean <= box.maximum

    def test_box_stats_is_frozen_dataclass(self):
        box = BoxStats(1, 0, 0, 0, 0, 0, 0)
        with pytest.raises(Exception):
            box.count = 2  # type: ignore[misc]


class TestPortIdleTracker:
    def test_first_access_produces_no_gap(self):
        tracker = PortIdleTracker()
        tracker.record_access(100)
        assert tracker.box_stats() is None
        assert tracker.accesses == 1

    def test_gaps_between_accesses(self):
        tracker = PortIdleTracker()
        for cycle in (0, 10, 25):
            tracker.record_access(cycle)
        box = tracker.box_stats()
        assert box.count == 2
        assert box.minimum == 10
        assert box.maximum == 15

    def test_same_cycle_access_records_zero_gap(self):
        # Back-to-back accesses in the same cycle are a real zero-idle
        # gap; dropping them biased the Fig 4b/5b idle distributions up.
        tracker = PortIdleTracker()
        tracker.record_access(5)
        tracker.record_access(5)
        tracker.record_access(7)
        box = tracker.box_stats()
        assert box.count == 2
        assert box.minimum == 0
        assert box.maximum == 2
        assert tracker.regressions == 0

    def test_out_of_order_access_does_not_regress_clock(self):
        tracker = PortIdleTracker()
        tracker.record_access(10)
        tracker.record_access(3)  # late-arriving earlier event
        tracker.record_access(12)
        box = tracker.box_stats()
        assert box.maximum == 2
        assert box.count == 1

    def test_regressing_accesses_counted_not_silent(self):
        tracker = PortIdleTracker()
        tracker.record_access(10)
        tracker.record_access(3)
        tracker.record_access(2)
        tracker.record_access(11)
        assert tracker.regressions == 2
        assert tracker.accesses == 4
        box = tracker.box_stats()
        assert box.count == 1
        assert box.minimum == box.maximum == 1

    def test_zero_gap_burst_then_idle(self):
        tracker = PortIdleTracker()
        for cycle in (4, 4, 4, 20):
            tracker.record_access(cycle)
        box = tracker.box_stats()
        assert box.count == 3
        assert box.minimum == 0
        assert box.maximum == 16
