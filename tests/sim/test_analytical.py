"""Validation battery for the analytical estimator (:mod:`repro.sim.analytical`).

The estimator replays each wave's deterministic instruction stream through
the *real* capacity/replacement structures with timing stripped, then
applies a closed-form roofline latency model. ISSUE acceptance criterion:
estimated PTW-PKI within ±15% of the event engine across the Figure 13
grid. Because the reach model reuses the simulator's own structures, the
measured error is far tighter (MAPE ~0.2%, worst ~0.7% at the battery
scale), so alongside the required ±15% per-job bound we pin a 5% aggregate
MAPE bound to catch regressions in the replay logic long before they
would breach the acceptance threshold.

Jobs whose simulated walk count is tiny (< ``MIN_WALKS``) are excluded
from the *relative* PTW-PKI bounds — a handful of absolute walks of noise
is a huge relative error on a near-zero denominator — but still assert
exact instruction counts, which must match the simulator for every job.

The vectorized engine stands in for the event engine here: the
equivalence battery (test_engine_equivalence.py) proves byte identity, so
comparisons against it are comparisons against the event engine.
"""

from __future__ import annotations

import json

import pytest

from repro import cli
from repro.config import TxScheme, table1_config
from repro.experiments import common
from repro.experiments.fig13_main import sweep_jobs as fig13_sweep_jobs
from repro.sim.analytical import (
    SERVICE_LEVELS,
    estimate_app,
    estimate_speedups,
)
from repro.sim.runner import drain_failures
from repro.system import GPUSystem
from repro.workloads.registry import make_app

SCALE = 0.02

#: Minimum simulated page walks for a job's *relative* PTW-PKI error to be
#: meaningful (below this, a few walks of slack dominate the ratio).
MIN_WALKS = 200

#: ISSUE acceptance bound (per job) and the regression-pinning aggregate.
PER_JOB_BOUND = 0.15
MAPE_BOUND = 0.05


@pytest.fixture(autouse=True)
def _memory_only_cache(monkeypatch):
    monkeypatch.setattr(common, "_CACHE_DIR", "")
    common.clear_cache()
    drain_failures()
    yield
    common.clear_cache()
    drain_failures()


def _simulate(app_name, config, scale=SCALE):
    app = make_app(app_name, scale=scale, page_size=config.page_size)
    return GPUSystem(config.with_engine("vectorized")).run(app)


def _grid_jobs():
    """Every application once, rotating through the fig13 scheme variants
    (same diagonal subsample as the engine-equivalence battery)."""

    jobs = fig13_sweep_jobs(scale=SCALE)
    apps = list(dict.fromkeys(job.app_name for job in jobs))
    per_app = {name: [j for j in jobs if j.app_name == name] for name in apps}
    return [
        variants[index % len(variants)]
        for index, variants in enumerate(per_app[name] for name in apps)
    ]


def _job_id(job):
    return f"{job.app_name}-{job.config.scheme.value}"


_ERRORS = {}  # populated by the per-job tests, consumed by the MAPE test


class TestFig13Validation:
    """Per-job accuracy across the fig13 diagonal, plus the aggregate."""

    @pytest.mark.parametrize("job", _grid_jobs(), ids=_job_id)
    def test_job_accuracy(self, job):
        sim = _simulate(job.app_name, job.config, job.scale)
        est = estimate_app(job.app_name, job.config, job.scale)

        # Instruction counts come from the same deterministic wave
        # programs — any drift means the replay walked a different stream.
        assert est.instructions == sim.instructions

        if sim.page_walks >= MIN_WALKS:
            error = abs(est.ptw_pki - sim.ptw_pki) / sim.ptw_pki
            _ERRORS[_job_id(job)] = error
            assert error <= PER_JOB_BOUND, (
                f"{_job_id(job)}: est {est.ptw_pki:.2f} vs "
                f"sim {sim.ptw_pki:.2f} ({100 * error:.1f}% off)"
            )
        else:
            # Near-zero-walk jobs: the estimator must agree it is tiny.
            assert est.page_walks < MIN_WALKS

    def test_aggregate_mape(self):
        assert _ERRORS, "per-job tests must run first (collection order)"
        mape = sum(_ERRORS.values()) / len(_ERRORS)
        assert mape <= MAPE_BOUND, (
            f"MAPE {100 * mape:.2f}% over {len(_ERRORS)} jobs; "
            f"worst: {max(_ERRORS, key=_ERRORS.get)}"
        )


class TestSchemeCoverage:
    """Schemes the fig13 diagonal may miss: DUCATI pools and the perfect
    bound exercise distinct estimator paths (pool collapse, perfect flag)."""

    @pytest.mark.parametrize(
        "scheme",
        [TxScheme.DUCATI, TxScheme.DUCATI_ICACHE_LDS, TxScheme.PERFECT_L2_TLB],
        ids=lambda s: s.value,
    )
    def test_scheme_accuracy(self, scheme):
        config = table1_config(scheme)
        sim = _simulate("GEV", config)
        est = estimate_app("GEV", config, SCALE)
        assert est.instructions == sim.instructions
        assert sim.page_walks >= MIN_WALKS  # GEV walks heavily at 0.02
        error = abs(est.ptw_pki - sim.ptw_pki) / sim.ptw_pki
        assert error <= PER_JOB_BOUND

    def test_perfect_l2_walks_only_compulsory(self):
        # "Perfect" means infinite capacity: every page still takes its
        # compulsory walk, but capacity misses vanish, so the perfect
        # bound can never walk more than the finite baseline.
        base = estimate_app("GEV", table1_config(), SCALE)
        perfect = estimate_app(
            "GEV", table1_config(TxScheme.PERFECT_L2_TLB), SCALE
        )
        assert 0 < perfect.page_walks <= base.page_walks
        assert perfect.serviced["l2_tlb"] >= base.serviced["l2_tlb"]


class TestEstimateInvariants:
    """Structural sanity independent of the simulator."""

    def test_serviced_partitions_translations(self):
        est = estimate_app("NW", table1_config(TxScheme.ICACHE_LDS), SCALE)
        assert set(est.serviced) == set(SERVICE_LEVELS)
        assert sum(est.serviced.values()) == est.translations
        assert est.translations > 0
        assert est.est_cycles > 0
        assert 1 <= est.peak_waves_per_cu <= 40

    def test_speedup_directionality(self):
        """The estimator must rank the paper's schemes the same way the
        simulator does at the gmean level: reach schemes help apps that
        walk. Bound the absolute speedup disagreement loosely — the
        roofline is a model, not a cycle-accurate account."""

        schemes = (TxScheme.LDS_ONLY, TxScheme.ICACHE_LDS)
        est = estimate_speedups("GEV", schemes, SCALE)
        base = _simulate("GEV", table1_config())
        for scheme in schemes:
            sim_speedup = base.cycles / _simulate(
                "GEV", table1_config(scheme)
            ).cycles
            assert sim_speedup > 1.0  # GEV benefits in the simulator...
            assert est[scheme.value] > 1.0  # ...and the estimator agrees
            assert abs(est[scheme.value] - sim_speedup) <= 0.15


class TestEstimateCLI:
    """`repro estimate` end-to-end, including --compare."""

    def test_estimate_table2(self, capsys):
        assert cli.main(
            ["estimate", "table2", "--scale", "0.01", "--apps", "NW"]
        ) == 0
        out = capsys.readouterr().out
        assert "est_ptw_pki" in out
        assert "NW" in out

    def test_estimate_fig13_compare_json(self, capsys, tmp_path):
        out_path = tmp_path / "est.json"
        assert cli.main(
            [
                "estimate", "fig13",
                "--scale", "0.01",
                "--apps", "NW",
                "--compare",
                "--json", str(out_path),
            ]
        ) == 0
        rows = json.loads(out_path.read_text())["rows"]
        data = [r for r in rows if r.get("app") not in (None, "GMEAN")]
        assert data
        for row in data:
            assert "est_ptw_pki" in row and "sim_ptw_pki" in row
