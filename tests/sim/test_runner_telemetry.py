"""Tests for the sweep runner's per-job telemetry and opt-in profiling."""

import os

import pytest

from repro.config import TxScheme, table1_config
from repro.experiments import common
from repro.sim.profiling import (
    DEFAULT_TOP,
    Hotspot,
    HotspotProfiler,
    merge_hotspots,
    profile_top,
)
from repro.sim.runner import SweepJob, SweepRunner, drain_reports

SCALE = 0.05


@pytest.fixture(autouse=True)
def _memory_only_cache(monkeypatch):
    """Isolate every test: empty in-process cache, no disk cache."""

    monkeypatch.setattr(common, "_CACHE_DIR", "")
    common.clear_cache()
    drain_reports()
    yield
    common.clear_cache()
    drain_reports()


def tiny_jobs(count=2):
    apps = ("GUPS", "ATAX")[:count]
    return [SweepJob(app, table1_config(TxScheme.BASELINE), SCALE) for app in apps]


class TestJobTelemetry:
    def test_serial_timings_record_pid_and_attempts(self):
        runner = SweepRunner(jobs=1)
        _, report = runner.run_with_report(tiny_jobs())
        assert len(report.timings) == 2
        for timing in report.timings:
            assert timing.cached is False
            assert timing.attempts == 1
            assert timing.worker_pid == os.getpid()
            assert timing.duration_s > 0

    def test_cache_hits_record_zero_attempts(self):
        jobs = tiny_jobs()
        SweepRunner(jobs=1).run(jobs)
        _, report = SweepRunner(jobs=1).run_with_report(jobs)
        assert report.cache_hits == 2
        for timing in report.timings:
            assert timing.cached is True
            assert timing.attempts == 0
            assert timing.worker_pid == 0
            assert timing.duration_s == 0.0

    def test_telemetry_rows_shape(self):
        _, report = SweepRunner(jobs=1).run_with_report(tiny_jobs())
        rows = report.telemetry_rows()
        assert len(rows) == 2
        for row in rows:
            assert set(row) == {
                "app", "scheme", "cached", "wall_s", "attempts", "worker",
            }
            assert row["cached"] == "miss"
            assert float(row["wall_s"]) > 0
        # A warm re-run flips the rows to cache hits.
        _, warm = SweepRunner(jobs=1).run_with_report(tiny_jobs())
        assert all(row["cached"] == "hit" for row in warm.telemetry_rows())
        assert all(row["worker"] == "-" for row in warm.telemetry_rows())

    def test_slowest_jobs_excludes_cached(self):
        jobs = tiny_jobs()
        _, report = SweepRunner(jobs=1).run_with_report(jobs)
        slowest = report.slowest_jobs()
        assert slowest
        durations = [t.duration_s for t in slowest]
        assert durations == sorted(durations, reverse=True)
        _, warm = SweepRunner(jobs=1).run_with_report(jobs)
        assert warm.slowest_jobs() == []

    def test_drain_reports_collects_and_clears(self):
        SweepRunner(jobs=1).run(tiny_jobs(1))
        SweepRunner(jobs=1).run(tiny_jobs(1))
        reports = drain_reports()
        assert len(reports) == 2
        assert drain_reports() == []

    def test_parallel_timings_record_worker_pids(self):
        runner = SweepRunner(jobs=2)
        _, report = runner.run_with_report(tiny_jobs())
        assert len(report.timings) == 2
        for timing in report.timings:
            assert timing.worker_pid > 0
            assert timing.worker_pid != os.getpid()


class TestProfiling:
    def test_profile_top_parsing(self, monkeypatch):
        for raw, expected in (
            ("", 0), ("0", 0), ("false", 0), ("off", 0), ("-3", 0),
            ("1", DEFAULT_TOP), ("true", DEFAULT_TOP), ("yes", DEFAULT_TOP),
            ("7", 7), ("40", 40),
        ):
            monkeypatch.setenv("REPRO_PROFILE", raw)
            assert profile_top() == expected, raw
        monkeypatch.delenv("REPRO_PROFILE")
        assert profile_top() == 0

    def test_hotspot_profiler_captures_functions(self):
        with HotspotProfiler(top_n=5) as profiler:
            sum(range(10_000))
        hotspots = profiler.hotspots()
        assert hotspots
        assert len(hotspots) <= 5
        assert all(h.cumulative_s >= 0 for h in hotspots)

    def test_merge_hotspots_sums_by_label(self):
        a = [Hotspot("f.py:1(run)", 2, 1.0), Hotspot("g.py:2(step)", 1, 0.5)]
        b = [Hotspot("f.py:1(run)", 3, 2.0)]
        merged = merge_hotspots([a, b])
        assert merged[0] == Hotspot("f.py:1(run)", 5, 3.0)
        assert merged[1] == Hotspot("g.py:2(step)", 1, 0.5)

    def test_serial_sweep_profiles_when_enabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        _, report = SweepRunner(jobs=1).run_with_report(tiny_jobs(1))
        assert report.profiled is True
        assert report.hotspots
        assert report.hotspot_lines()
        assert any("run_app" in h.function or "system" in h.function.lower()
                   or h.cumulative_s > 0 for h in report.hotspots)

    def test_sweep_does_not_profile_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        _, report = SweepRunner(jobs=1).run_with_report(tiny_jobs(1))
        assert report.profiled is False
        assert report.hotspots == []
        assert report.hotspot_lines() == []
