"""Unit tests for the Port occupancy model and the WaveScheduler."""

import pytest

from repro.sim.engine import Port, WaveScheduler
from repro.sim.trace import TimelineSampler


class TestPort:
    def test_idle_port_starts_immediately(self):
        port = Port("p", units=1, occupancy=3)
        assert port.request(10) == 10

    def test_busy_port_queues(self):
        port = Port("p", units=1, occupancy=3)
        port.request(10)
        assert port.request(10) == 13
        assert port.request(10) == 16

    def test_multiple_units_serve_in_parallel(self):
        port = Port("p", units=2, occupancy=5)
        assert port.request(0) == 0
        assert port.request(0) == 0
        assert port.request(0) == 5

    def test_occupancy_override(self):
        port = Port("p", units=1, occupancy=1)
        port.request(0, occupancy=100)
        assert port.request(0) == 100

    def test_busy_cycles_accumulate(self):
        port = Port("p", units=1, occupancy=4)
        port.request(0)
        port.request(0)
        assert port.busy_cycles == 8

    def test_earliest_free(self):
        port = Port("p", units=1, occupancy=7)
        port.request(3)
        assert port.earliest_free() == 10

    def test_reset(self):
        port = Port("p", units=2, occupancy=5)
        port.request(100)
        port.reset()
        assert port.request(0) == 0
        assert port.busy_cycles == 5

    def test_idle_tracking_optional(self):
        assert Port("p").idle_tracker is None
        assert Port("p", track_idle=True).idle_tracker is not None

    def test_idle_tracker_records_service_starts(self):
        port = Port("p", units=1, occupancy=1, track_idle=True)
        port.request(0)
        port.request(20)
        box = port.idle_tracker.box_stats()
        assert box.minimum == 20

    def test_invalid_units_rejected(self):
        with pytest.raises(ValueError):
            Port("p", units=0)

    def test_negative_occupancy_rejected(self):
        with pytest.raises(ValueError):
            Port("p", occupancy=-1)

    def test_request_before_earliest_free_queues(self):
        # A unit freed at t=10 serves an earlier request at 10, not before.
        port = Port("p", units=1, occupancy=10)
        port.request(0)
        assert port.request(2) == 10

    def test_negative_occupancy_override_rejected(self):
        # The constructor validates occupancy; the per-call override must
        # not be a backdoor around that check.
        port = Port("p", units=1, occupancy=1)
        with pytest.raises(ValueError):
            port.request(0, occupancy=-5)

    def test_zero_occupancy_override_allowed(self):
        port = Port("p", units=1, occupancy=3)
        assert port.request(0, occupancy=0) == 0
        assert port.request(0) == 0  # zero-length service frees instantly

    def test_timeline_records_busy_intervals(self):
        port = Port("p", units=1, occupancy=4)
        sampler = TimelineSampler("p")
        port.attach_timeline(sampler)
        port.request(0)
        port.request(10)
        assert sampler.intervals == [[0, 0, 4], [0, 10, 14]]

    def test_timeline_detach(self):
        port = Port("p", units=1, occupancy=4)
        sampler = TimelineSampler("p")
        port.attach_timeline(sampler)
        port.attach_timeline(None)
        port.request(0)
        assert len(sampler) == 0

    def test_timeline_uses_effective_occupancy(self):
        port = Port("p", units=1, occupancy=1)
        sampler = TimelineSampler("p")
        port.attach_timeline(sampler)
        port.request(5, occupancy=20)
        assert sampler.intervals == [[0, 5, 25]]


class TestWaveScheduler:
    def test_single_wave_runs_to_completion(self):
        steps = []

        def step(payload, now):
            steps.append(now)
            return now + 5 if len(steps) < 3 else None

        scheduler = WaveScheduler()
        scheduler.add(0, "w", step)
        final = scheduler.run()
        assert steps == [0, 5, 10]
        assert final == 10

    def test_waves_interleave_in_time_order(self):
        order = []

        def make(name, period, count):
            remaining = [count]

            def step(payload, now):
                order.append((now, name))
                remaining[0] -= 1
                return now + period if remaining[0] else None

            return step

        scheduler = WaveScheduler()
        scheduler.add(0, "a", make("a", 10, 3))
        scheduler.add(0, "b", make("b", 4, 5))
        scheduler.run()
        times = [t for t, _ in order]
        assert times == sorted(times)

    def test_final_time_is_last_event(self):
        def step(payload, now):
            return None

        scheduler = WaveScheduler()
        scheduler.add(42, "w", step)
        assert scheduler.run() == 42

    def test_deterministic_tiebreak_by_insertion(self):
        order = []

        def make(name):
            def step(payload, now):
                order.append(name)
                return None

            return step

        scheduler = WaveScheduler()
        for name in ("first", "second", "third"):
            scheduler.add(7, name, make(name))
        scheduler.run()
        assert order == ["first", "second", "third"]

    def test_step_returning_past_time_is_clamped(self):
        times = []

        def step(payload, now):
            times.append(now)
            if len(times) == 1:
                return now - 100  # misbehaving step
            return None

        scheduler = WaveScheduler()
        scheduler.add(50, "w", step)
        scheduler.run()
        assert times == [50, 50]

    def test_empty_scheduler_runs_to_now(self):
        scheduler = WaveScheduler()
        scheduler.now = 9
        assert scheduler.run() == 9

    def test_waves_added_mid_run(self):
        spawned = []

        def child(payload, now):
            spawned.append(now)
            return None

        def parent(payload, now):
            scheduler.add(now + 3, "child", child)
            return None

        scheduler = WaveScheduler()
        scheduler.add(0, "parent", parent)
        final = scheduler.run()
        assert spawned == [3]
        assert final == 3

    def test_len_counts_pending(self):
        scheduler = WaveScheduler()
        scheduler.add(0, "w", lambda payload, now: None)
        assert len(scheduler) == 1

class TestPortResetHygiene:
    """Port.reset must restore the *complete* just-constructed state.

    Back-to-back in-process runs (the engine-equivalence battery) reuse
    nothing, but telemetry helpers reset ports between phases; a reset that
    leaked an attached timeline sampler or accumulated idle gaps would bleed
    one run's history into the next run's distributions.
    """

    def test_reset_detaches_timeline_sampler(self):
        port = Port("p", units=1, occupancy=2)
        sampler = TimelineSampler("p", lanes=1)
        port.attach_timeline(sampler)
        port.request(0)
        assert len(sampler) == 1
        port.reset()
        assert port.timeline is None
        port.request(5)
        assert len(sampler) == 1  # no further intervals recorded

    def test_reset_discards_idle_history(self):
        port = Port("p", units=1, occupancy=1, track_idle=True)
        port.request(0)
        port.request(500)  # one huge idle gap
        assert port.idle_tracker.box_stats().maximum == 500
        port.reset()
        assert port.idle_tracker is not None  # tracking stays enabled
        assert port.idle_tracker.box_stats() is None  # ... but empty
        port.request(0)
        port.request(3)
        assert port.idle_tracker.box_stats().maximum == 3

    def test_reset_without_tracking_stays_untracked(self):
        port = Port("p", units=2)
        port.reset()
        assert port.idle_tracker is None

    def test_reset_restores_pristine_heap(self):
        port = Port("p", units=3, occupancy=9)
        for now in (0, 0, 0, 1, 2):
            port.request(now)
        port.reset()
        assert port.earliest_free() == 0
        # All three units must be free again: three same-cycle requests
        # all start immediately, exactly as on a fresh port.
        assert [port.request(0) for _ in range(3)] == [0, 0, 0]


class _Uncomparable:
    """A payload without ordering support (like Wavefront objects)."""

    __lt__ = None  # type: ignore[assignment]


class TestSchedulerTiebreakDeterminism:
    def test_equal_time_entries_never_compare_payloads(self):
        # The (time, sequence, payload, step) heap entries must short-
        # circuit on the monotonic sequence; if the heap ever compared
        # payloads, these entries would raise TypeError.
        order = []

        def step(payload, now):
            order.append(payload)
            return None

        scheduler = WaveScheduler()
        payloads = [_Uncomparable() for _ in range(8)]
        for payload in payloads:
            scheduler.add(13, payload, step)
        scheduler.run()
        assert order == payloads

    def test_sequence_survives_mid_run_readds(self):
        # Re-added waves (step returned a next time) are sequenced after
        # everything already queued for that cycle, matching insertion
        # order exactly.
        order = []

        def once(payload, now):
            order.append(payload)
            return None

        def requeue(payload, now):
            order.append(payload)
            if order.count(payload) == 1:
                return now  # same-cycle re-add: goes behind "b"
            return None

        scheduler = WaveScheduler()
        scheduler.add(0, "a", requeue)
        scheduler.add(0, "b", once)
        scheduler.run()
        assert order == ["a", "b", "a"]

    def test_event_order_is_hash_seed_independent(self):
        # Results must not depend on PYTHONHASHSEED: run a small app in
        # two subprocesses with different seeds and compare byte-level
        # fingerprints. (Dict iteration order is insertion order and the
        # scheduler tiebreak is an explicit sequence number, so any
        # divergence here is a real determinism bug.)
        import os
        import subprocess
        import sys

        script = (
            "from repro.config import table1_config, TxScheme\n"
            "from repro.experiments.common import result_fingerprint, run_app\n"
            "print(result_fingerprint(run_app('NW', "
            "table1_config(TxScheme.ICACHE_LDS), scale=0.02, "
            "use_cache=False)))\n"
        )
        digests = set()
        for seed in ("0", "31337"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env.pop("REPRO_CACHE_DIR", None)
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, check=True,
            )
            digests.add(out.stdout.strip())
        assert len(digests) == 1
