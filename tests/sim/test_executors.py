"""Cross-backend battery for the pluggable sweep executors.

The runner promises identical semantics regardless of where attempts
execute — in-process (``serial``), on a local process pool (``pool``),
or on ``repro worker`` processes pulling from a coordinator (``remote``).
These tests pin that promise: byte-identical results on the fig13 smoke
grid with all backends sharing one content-addressed store (the PR's
acceptance criterion), identical ``JobFailure`` records and
``--keep-going`` placeholders under injected faults, and the remote
protocol's failure edges (worker disconnect == ``BrokenProcessPool``,
stale-result discard after recycle, clean shutdown codes).

Remote integration tests spawn real ``python -m repro worker``
subprocesses via :class:`WorkerFleet`; protocol unit tests drive the
coordinator with a fake in-test worker socket instead, so every edge is
exercised without process-start latency.
"""

import contextlib
import socket
import threading
import time
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.config import table1_config
from repro.experiments import common
from repro.experiments.fig13_main import sweep_jobs_13bc
from repro.sim.executors import (
    Coordinator,
    PoolExecutor,
    RemoteExecutor,
    SerialExecutor,
    WorkerFleet,
    executor_names,
)
from repro.sim.executors.remote import (
    EXIT_CLEAN,
    EXIT_CONNECT_FAILED,
    PROTOCOL_VERSION,
    _recv_msg,
    _send_msg,
    parse_address,
    worker_main,
)
from repro.sim.runner import (
    SweepJob,
    SweepRunner,
    drain_failures,
    parse_fault_spec,
)
from repro.sim.store import ResultStore

SCALE = 0.05
APPS = ("ATAX", "SRAD", "GUPS")
BACKENDS = ("serial", "pool", "remote")


@pytest.fixture(autouse=True)
def _isolated(monkeypatch):
    """Memory-only cache, no inherited executor/fault env, clean logs."""

    monkeypatch.setattr(common, "_CACHE_DIR", "")
    for name in (
        "REPRO_EXECUTOR",
        "REPRO_FAULT_SPEC",
        "REPRO_TIMEOUT",
        "REPRO_MAX_RETRIES",
        "REPRO_KEEP_GOING",
    ):
        monkeypatch.delenv(name, raising=False)
    common.clear_cache()
    drain_failures()
    yield
    common.clear_cache()
    drain_failures()


def grid(apps=APPS, scale=SCALE):
    return [SweepJob(app, table1_config(), scale) for app in apps]


@contextlib.contextmanager
def backend_executor(backend, workers=2, respawn=True):
    """The ``executor=`` argument for one sweep on ``backend``.

    ``serial``/``pool`` are plain selector strings; ``remote`` boots a
    coordinator plus a real worker fleet and tears both down afterwards.
    """

    if backend != "remote":
        yield backend
        return
    coordinator = Coordinator()
    fleet = WorkerFleet(coordinator.address, count=workers, respawn=respawn)
    fleet.start()
    try:
        yield RemoteExecutor(
            coordinator, min_workers=workers, start_timeout_s=90.0
        )
    finally:
        coordinator.close()
        fleet.stop()


class TestExecutorSelection:
    def test_names(self):
        assert executor_names() == ["serial", "pool", "remote"]

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError, match="serial/pool/remote"):
            SweepRunner(executor="threads")

    def test_remote_string_needs_coordinator(self):
        with pytest.raises(ValueError, match="coordinator"):
            SweepRunner(executor="remote")

    def test_env_selector_picked_up(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "serial")
        assert SweepRunner().executor == "serial"

    def test_default_is_pool(self):
        assert SweepRunner().executor == "pool"

    def test_serial_name_and_one_worker_pool_bypass_executors(self):
        # The historical fast paths survive: the "serial" selector and a
        # one-worker pool both run the legacy in-process loop directly.
        assert SweepRunner(executor="serial")._resolve_executor(5) is None
        assert SweepRunner(jobs=1)._resolve_executor(5) is None
        assert SweepRunner(jobs=2)._resolve_executor(1) is None
        resolved = SweepRunner(jobs=2)._resolve_executor(5)
        assert isinstance(resolved, PoolExecutor)

    def test_explicit_instance_used_verbatim(self):
        instance = SerialExecutor()
        assert SweepRunner(executor=instance)._resolve_executor(5) is instance

    def test_serial_instance_matches_serial_name(self):
        # The SerialExecutor instance goes through the parallel collection
        # loop, the "serial" name through the legacy loop — results must
        # be byte-identical.
        jobs = grid(apps=("ATAX", "GUPS"))
        by_name, _ = SweepRunner(executor="serial").run_with_report(jobs)
        common.clear_cache()
        by_instance, _ = SweepRunner(executor=SerialExecutor()).run_with_report(
            jobs
        )
        assert [common.result_fingerprint(r) for r in by_name] == [
            common.result_fingerprint(r) for r in by_instance
        ]


class TestCrossBackendFaults:
    def test_exception_fault_identical_records_and_placeholders(self):
        """The same persistent exception fault must leave identical
        ``JobFailure`` records and identical ``--keep-going`` ``None``
        placeholders on every backend."""

        observed = {}
        for backend in BACKENDS:
            common.clear_cache()
            drain_failures()
            with backend_executor(backend) as executor:
                runner = SweepRunner(
                    jobs=2,
                    executor=executor,
                    fault=parse_fault_spec("ATAX:*:exc"),
                    max_retries=1,
                    retry_backoff_s=0,
                    keep_going=True,
                )
                results, report = runner.run_with_report(grid())
            observed[backend] = {
                "placeholders": [r is None for r in results],
                "failures": [
                    (f.key, f.app_name, f.scheme, f.attempts, f.disposition,
                     f.error)
                    for f in report.failures
                ],
            }

        assert observed["serial"] == observed["pool"] == observed["remote"]
        assert observed["serial"]["placeholders"] == [True, False, False]
        ((key, app, scheme, attempts, disposition, error),) = observed[
            "serial"
        ]["failures"]
        assert app == "ATAX" and scheme == "baseline"
        assert disposition == "exception"
        assert attempts == 2  # first try + one retry, on every backend
        assert "injected exception" in error

    def test_crash_fault_identical_on_pool_and_remote(self):
        """A worker-killing fault must resolve to the same terminal
        ``"crash"`` record on both process-backed backends (serial demotes
        crashes to exceptions by design — there is no worker to kill)."""

        observed = {}
        for backend in ("pool", "remote"):
            common.clear_cache()
            drain_failures()
            with backend_executor(backend) as executor:
                runner = SweepRunner(
                    jobs=2,
                    executor=executor,
                    fault=parse_fault_spec("ATAX:*:crash"),
                    max_retries=1,
                    retry_backoff_s=0,
                    keep_going=True,
                )
                results, report = runner.run_with_report(grid())
            observed[backend] = {
                "placeholders": [r is None for r in results],
                "failures": [
                    (f.key, f.app_name, f.scheme, f.attempts, f.disposition)
                    for f in report.failures
                ],
            }

        assert observed["pool"] == observed["remote"]
        assert observed["pool"]["placeholders"] == [True, False, False]
        ((_key, app, _scheme, _attempts, disposition),) = observed["pool"][
            "failures"
        ]
        assert app == "ATAX" and disposition == "crash"

    def test_transient_exception_retried_on_remote(self):
        with backend_executor("remote") as executor:
            runner = SweepRunner(
                jobs=2,
                executor=executor,
                fault=parse_fault_spec("ATAX:*:exc@1"),
                max_retries=2,
                retry_backoff_s=0,
            )
            results, report = runner.run_with_report(grid())
        assert all(r is not None for r in results)
        assert report.failures == []
        assert report.retries >= 1


class TestByteIdentityAcceptance:
    def test_fig13_smoke_grid_identical_across_backends_sharing_store(
        self, tmp_path, monkeypatch
    ):
        """The acceptance criterion: the fig13 smoke grid produces
        byte-identical result fingerprints on serial, pool, and remote,
        with all three sharing one content-addressed store."""

        store_dir = str(tmp_path / "store")
        monkeypatch.setattr(common, "_CACHE_DIR", store_dir)
        jobs = sweep_jobs_13bc(SCALE)

        # Cold store, remote backend: two worker processes populate it.
        with backend_executor("remote") as executor:
            remote_results, remote_report = SweepRunner(
                jobs=2, executor=executor
            ).run_with_report(jobs)
        assert remote_report.failures == []
        store = ResultStore(store_dir)
        fingerprints = store.verify(fingerprints=True)
        assert fingerprints["checked"] == len(jobs)
        assert fingerprints["ok"] == len(jobs)

        # Warm store, pool backend: every job is a disk hit — the remote
        # workers' entries are readable verbatim by the local pool path.
        common.clear_cache()
        pool_results, pool_report = SweepRunner(jobs=2).run_with_report(jobs)
        assert pool_report.cache_hits == len(jobs)
        assert pool_report.store["hits"] == len(jobs)

        # Fresh compute, serial backend, cache reads disabled: the ground
        # truth the stored entries must match byte-for-byte.
        common.clear_cache()
        serial_results, _ = SweepRunner(
            executor="serial", use_cache=False
        ).run_with_report(jobs)

        remote_fps = [common.result_fingerprint(r) for r in remote_results]
        pool_fps = [common.result_fingerprint(r) for r in pool_results]
        serial_fps = [common.result_fingerprint(r) for r in serial_results]
        assert remote_fps == pool_fps == serial_fps

        # And the shared store itself is clean.
        outcome = store.verify()
        assert outcome["corrupt"] == [] and outcome["stale"] == []


def _fake_worker(coordinator, hello=None):
    """A raw in-test worker connection (no subprocess)."""

    sock = socket.create_connection(
        (coordinator.host, coordinator.port), timeout=10.0
    )
    if hello is None:
        hello = ("hello", PROTOCOL_VERSION, {"pid": 0, "host": "test"})
    _send_msg(sock, hello)
    return sock


def _wait_until(predicate, timeout_s=10.0):
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() >= deadline:
            raise AssertionError("condition not met in time")
        time.sleep(0.02)


class TestRemoteProtocol:
    def test_parse_address(self):
        assert parse_address("example.org:80") == ("example.org", 80)
        assert parse_address(":8000") == ("127.0.0.1", 8000)
        for bad in ("no-port", "host:", "host:abc"):
            with pytest.raises(ValueError):
                parse_address(bad)

    def test_wait_for_workers_timeout_names_the_fix(self):
        coordinator = Coordinator()
        try:
            with pytest.raises(RuntimeError, match="repro worker --connect"):
                coordinator.wait_for_workers(1, timeout_s=0.2)
        finally:
            coordinator.close()

    def test_submit_after_close_raises(self):
        coordinator = Coordinator()
        coordinator.close()
        with pytest.raises(RuntimeError, match="closed"):
            coordinator.submit_task(grid()[0], "", True, 1, None)

    def test_bad_hello_never_registers(self):
        coordinator = Coordinator()
        try:
            sock = _fake_worker(coordinator, hello=("hello", 999, {}))
            # The coordinator hangs up on a protocol mismatch...
            assert sock.recv(1) == b""
            sock.close()
            # ...and the worker never counted as connected.
            assert coordinator.worker_count() == 0
        finally:
            coordinator.close()

    def test_worker_disconnect_mid_job_is_broken_process_pool(self):
        coordinator = Coordinator()
        try:
            sock = _fake_worker(coordinator)
            _wait_until(lambda: coordinator.worker_count() == 1)
            task = coordinator.submit_task(grid()[0], "", True, 1, None)
            message = _recv_msg(sock)
            assert message[0] == "job" and message[1] == task.task_id
            sock.close()  # the "worker" dies holding the job
            with pytest.raises(BrokenProcessPool, match="disconnected mid-job"):
                task.future.result(timeout=10.0)
        finally:
            coordinator.close()

    def test_stale_result_after_recycle_is_discarded(self):
        coordinator = Coordinator()
        try:
            sock = _fake_worker(coordinator)
            _wait_until(lambda: coordinator.worker_count() == 1)
            task = coordinator.submit_task(grid()[0], "", True, 1, None)
            _recv_msg(sock)  # the fake worker now "runs" the job
            coordinator.recycle("test recycle")
            _send_msg(sock, ("ok", task.task_id, "late result"))
            _wait_until(lambda: coordinator.stats()["stale_results"] == 1)
            assert not task.future.done()  # never delivered against it
        finally:
            coordinator.close()

    def test_round_trip_through_in_process_worker(self):
        """Full protocol round trip with ``worker_main`` running in a
        thread: submit → job → _simulate → ok → future resolves."""

        coordinator = Coordinator()
        exit_code = []
        thread = threading.Thread(
            target=lambda: exit_code.append(
                worker_main(coordinator.address, retry_s=5.0)
            ),
            daemon=True,
        )
        thread.start()
        try:
            _wait_until(lambda: coordinator.worker_count() == 1)
            task = coordinator.submit_task(grid()[0], "", True, 1, None)
            outcome = task.future.result(timeout=120.0)
            assert outcome.result.app_name == "ATAX"
            assert outcome.worker_pid > 0
        finally:
            coordinator.close()
        thread.join(timeout=10.0)
        assert exit_code == [EXIT_CLEAN]  # shutdown message honored

    def test_worker_connect_failure_exit_code(self):
        # Nothing listens on the discard port; the retry window closes.
        assert worker_main("127.0.0.1:9", retry_s=0.3) == EXIT_CONNECT_FAILED

    def test_run_isolated_timeout_drops_the_task(self):
        coordinator = Coordinator()
        executor = RemoteExecutor(coordinator, min_workers=1)
        try:
            with pytest.raises(FuturesTimeoutError):
                executor.run_isolated(grid()[0], "", True, 1, None, 0.2)
            assert coordinator.stats()["queued"] == 0  # dropped, not leaked
        finally:
            coordinator.close()

    def test_acquire_caps_at_connected_not_local_ask(self):
        coordinator = Coordinator()
        try:
            sock = _fake_worker(coordinator)
            _wait_until(lambda: coordinator.worker_count() == 1)
            # A 1-core runner asking for width 1 must not throttle a
            # remote fleet, and the width never exceeds connected workers.
            assert RemoteExecutor(coordinator).acquire(1) == 1
            second = _fake_worker(coordinator)
            _wait_until(lambda: coordinator.worker_count() == 2)
            assert RemoteExecutor(coordinator).acquire(1) == 2
            assert RemoteExecutor(coordinator, width=1).acquire(8) == 1
            sock.close()
            second.close()
        finally:
            coordinator.close()
