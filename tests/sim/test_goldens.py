"""Golden-snapshot suite: full serialized results pinned as JSON files.

The equivalence battery proves the two engines agree with *each other*;
these goldens pin both against *history*. Every counter, kernel window
and distribution of a small app/scheme matrix (2 apps x 4 schemes at
scale 0.05, event engine) is stored under ``tests/goldens/`` — any
behavioral drift in the simulator shows up as a readable JSON diff
instead of a silently shifted figure.

After an *intentional* model change, regenerate with::

    pytest tests/sim/test_goldens.py --update-goldens

and review the golden diffs like any other code change.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.config import TxScheme, table1_config
from repro.experiments.common import serialize_result
from repro.system import GPUSystem
from repro.workloads.registry import make_app

SCALE = 0.05
APPS = ("NW", "SSSP")
SCHEMES = (
    TxScheme.BASELINE,
    TxScheme.LDS_ONLY,
    TxScheme.ICACHE_ONLY,
    TxScheme.ICACHE_LDS,
)

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "goldens"


def _golden_path(app_name: str, scheme: TxScheme) -> Path:
    return GOLDEN_DIR / f"{app_name}-{scheme.value}.json"


def _current(app_name: str, scheme: TxScheme) -> dict:
    config = table1_config(scheme)
    app = make_app(app_name, scale=SCALE, page_size=config.page_size)
    return serialize_result(GPUSystem(config).run(app))


@pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.value)
@pytest.mark.parametrize("app_name", APPS)
def test_golden_snapshot(app_name, scheme, update_goldens):
    path = _golden_path(app_name, scheme)
    current = _current(app_name, scheme)

    if update_goldens:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
        return

    assert path.exists(), (
        f"missing golden {path.name}; generate with "
        "`pytest tests/sim/test_goldens.py --update-goldens`"
    )
    golden = json.loads(path.read_text())
    # Counters first: the usual drift site, and the most readable diff.
    assert current["counters"] == golden["counters"]
    assert current["cycles"] == golden["cycles"]
    assert current == golden


def test_goldens_have_no_strays():
    """Every file under tests/goldens/ must belong to the current matrix —
    a renamed scheme or app must not leave stale snapshots behind."""

    expected = {
        _golden_path(app, scheme).name for app in APPS for scheme in SCHEMES
    }
    actual = {p.name for p in GOLDEN_DIR.glob("*.json")}
    assert actual == expected
