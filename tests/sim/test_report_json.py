"""SweepReport JSON round-trips and telemetry-accumulator thread safety."""

import json
import threading

import pytest

from repro.sim.profiling import Hotspot
from repro.sim.runner import (
    REPORT_SCHEMA,
    JobFailure,
    JobTiming,
    SweepReport,
    _FAILURE_LOG,
    _REPORT_LOG,
    _TELEMETRY_LOCK,
    drain_failures,
    drain_reports,
    telemetry_rows_from_json,
)


def rich_report() -> SweepReport:
    return SweepReport(
        jobs_submitted=5,
        unique_jobs=4,
        cache_hits=1,
        jobs_simulated=3,
        workers=2,
        wall_clock_s=12.5,
        retries=1,
        profiled=True,
        timings=[
            JobTiming(key="GUPS|baseline|1.0", app_name="GUPS", scheme="baseline",
                      duration_s=4.0, cached=False, attempts=2, worker_pid=101),
            JobTiming(key="ATAX|baseline|1.0", app_name="ATAX", scheme="baseline",
                      duration_s=0.0, cached=True, attempts=0, worker_pid=0),
            JobTiming(key="SRAD|baseline|1.0", app_name="SRAD", scheme="baseline",
                      duration_s=2.0, cached=False, attempts=1, worker_pid=102),
        ],
        failures=[
            JobFailure(key="MVT|baseline|1.0", app_name="MVT", scheme="baseline",
                       attempts=3, error="boom", disposition="exception"),
        ],
        hotspots=[Hotspot(function="sim.py:10(step)", calls=900, cumulative_s=3.25)],
    )


class TestRoundTrip:
    def test_to_json_from_json_is_identity(self):
        report = rich_report()
        restored = SweepReport.from_json(report.to_json())
        assert restored == report

    def test_payload_survives_json_encoding(self):
        report = rich_report()
        wire = json.dumps(report.to_json())
        restored = SweepReport.from_json(json.loads(wire))
        assert restored == report
        assert restored.p50_s == report.p50_s
        assert restored.p95_s == report.p95_s

    def test_payload_carries_schema_and_derived_percentiles(self):
        payload = rich_report().to_json()
        assert payload["schema"] == REPORT_SCHEMA
        assert payload["p50_s"] == rich_report().p50_s
        assert payload["p95_s"] == rich_report().p95_s

    def test_empty_report_round_trips(self):
        report = SweepReport()
        assert SweepReport.from_json(report.to_json()) == report

    def test_telemetry_rows_match_payload_rendering(self):
        report = rich_report()
        assert report.telemetry_rows() == telemetry_rows_from_json(report.to_json())
        rows = report.telemetry_rows()
        # Timings first (cache hit shows 0 attempts), failures appended.
        assert [row["app"] for row in rows] == ["GUPS", "ATAX", "SRAD", "MVT"]
        assert rows[1]["cached"] == "hit" and rows[1]["attempts"] == 0
        assert rows[3]["cached"] == "FAILED"

    @pytest.mark.parametrize(
        "payload",
        [
            None,
            [],
            {},
            {"schema": "repro-sweepreport-v999"},
            {"schema": REPORT_SCHEMA},  # missing every field
        ],
    )
    def test_malformed_payloads_raise_value_error(self, payload):
        with pytest.raises(ValueError):
            SweepReport.from_json(payload)

    def test_malformed_timing_raises_value_error(self):
        payload = rich_report().to_json()
        payload["timings"][0] = {"key": "only-a-key"}
        with pytest.raises(ValueError, match="malformed"):
            SweepReport.from_json(payload)


class TestDrainThreadSafety:
    def test_concurrent_appends_and_drains_conserve_records(self):
        """Writers append under the telemetry lock while drainers snatch
        snapshots; every record must surface exactly once."""

        writers, per_writer = 8, 200
        # Earlier tests in the session may have left undrained records in
        # the process-wide logs; start from a clean slate so the counts
        # below are exact.
        drain_failures()
        drain_reports()
        drained_failures = []
        drained_reports = []
        stop = threading.Event()

        def writer():
            for index in range(per_writer):
                failure = JobFailure(key=f"k{index}", app_name="GUPS",
                                     scheme="baseline", attempts=1,
                                     error="x", disposition="exception")
                with _TELEMETRY_LOCK:
                    _FAILURE_LOG.append(failure)
                    _REPORT_LOG.append(SweepReport(jobs_submitted=1))

        def drainer():
            while not stop.is_set():
                drained_failures.extend(drain_failures())
                drained_reports.extend(drain_reports())

        drain_threads = [threading.Thread(target=drainer) for _ in range(2)]
        write_threads = [threading.Thread(target=writer) for _ in range(writers)]
        for thread in drain_threads + write_threads:
            thread.start()
        for thread in write_threads:
            thread.join(timeout=60)
        stop.set()
        for thread in drain_threads:
            thread.join(timeout=60)
        drained_failures.extend(drain_failures())
        drained_reports.extend(drain_reports())

        assert len(drained_failures) == writers * per_writer
        assert len(drained_reports) == writers * per_writer
        # And the logs are empty: nothing duplicated, nothing left behind.
        assert drain_failures() == []
        assert drain_reports() == []
