"""Additional engine edge cases surfaced during calibration."""

from repro.sim.engine import Port, WaveScheduler


class TestPortDrainage:
    def test_pool_drains_at_capacity_rate(self):
        # 8 requests at t=0 on a 2-unit, occupancy-10 pool: starts at
        # 0,0,10,10,20,20,30,30.
        port = Port("p", units=2, occupancy=10)
        starts = [port.request(0) for _ in range(8)]
        assert starts == [0, 0, 10, 10, 20, 20, 30, 30]

    def test_zero_occupancy_port_never_queues(self):
        port = Port("p", units=1, occupancy=0)
        assert [port.request(5) for _ in range(100)] == [5] * 100

    def test_gap_larger_than_occupancy_leaves_port_idle(self):
        port = Port("p", units=1, occupancy=3)
        port.request(0)
        assert port.request(100) == 100


class TestSchedulerStress:
    def test_thousand_waves_complete(self):
        completed = []

        def step(payload, now):
            completed.append(payload)
            return None

        scheduler = WaveScheduler()
        for index in range(1000):
            scheduler.add(index % 17, index, step)
        scheduler.run()
        assert len(completed) == 1000

    def test_interleaved_port_contention_is_fair(self):
        # Two waves alternately grabbing one port: neither starves.
        port = Port("p", units=1, occupancy=5)
        progress = {"a": 0, "b": 0}

        def make(name):
            def step(payload, now):
                progress[name] += 1
                if progress[name] >= 20:
                    return None
                return port.request(now) + 5

            return step

        scheduler = WaveScheduler()
        scheduler.add(0, "a", make("a"))
        scheduler.add(0, "b", make("b"))
        scheduler.run()
        assert progress == {"a": 20, "b": 20}

    def test_now_monotone_during_run(self):
        seen = []

        def step(payload, now):
            seen.append(scheduler.now)
            return now + 10 if len(seen) < 5 else None

        scheduler = WaveScheduler()
        scheduler.add(0, "w", step)
        scheduler.run()
        assert seen == sorted(seen)
