"""Additional engine edge cases surfaced during calibration."""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Port, WaveScheduler


class TestPortDrainage:
    def test_pool_drains_at_capacity_rate(self):
        # 8 requests at t=0 on a 2-unit, occupancy-10 pool: starts at
        # 0,0,10,10,20,20,30,30.
        port = Port("p", units=2, occupancy=10)
        starts = [port.request(0) for _ in range(8)]
        assert starts == [0, 0, 10, 10, 20, 20, 30, 30]

    def test_zero_occupancy_port_never_queues(self):
        port = Port("p", units=1, occupancy=0)
        assert [port.request(5) for _ in range(100)] == [5] * 100

    def test_gap_larger_than_occupancy_leaves_port_idle(self):
        port = Port("p", units=1, occupancy=3)
        port.request(0)
        assert port.request(100) == 100


class TestSchedulerStress:
    def test_thousand_waves_complete(self):
        completed = []

        def step(payload, now):
            completed.append(payload)
            return None

        scheduler = WaveScheduler()
        for index in range(1000):
            scheduler.add(index % 17, index, step)
        scheduler.run()
        assert len(completed) == 1000

    def test_interleaved_port_contention_is_fair(self):
        # Two waves alternately grabbing one port: neither starves.
        port = Port("p", units=1, occupancy=5)
        progress = {"a": 0, "b": 0}

        def make(name):
            def step(payload, now):
                progress[name] += 1
                if progress[name] >= 20:
                    return None
                return port.request(now) + 5

            return step

        scheduler = WaveScheduler()
        scheduler.add(0, "a", make("a"))
        scheduler.add(0, "b", make("b"))
        scheduler.run()
        assert progress == {"a": 20, "b": 20}

    def test_now_monotone_during_run(self):
        seen = []

        def step(payload, now):
            seen.append(scheduler.now)
            return now + 10 if len(seen) < 5 else None

        scheduler = WaveScheduler()
        scheduler.add(0, "w", step)
        scheduler.run()
        assert seen == sorted(seen)


#: A randomized request stream: nondecreasing arrival times (the anchor
#: discipline guarantees this in the real simulator) with optional per-
#: request occupancy overrides.
_request_streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=200),  # inter-arrival gap
        st.one_of(st.none(), st.integers(min_value=0, max_value=50)),
    ),
    min_size=1,
    max_size=100,
)

_port_shapes = st.tuples(
    st.integers(min_value=1, max_value=8),  # units
    st.integers(min_value=0, max_value=30),  # default occupancy
)


def _drive(port, stream):
    """Replay a stream; returns [(now, occupancy, start)] per request."""

    log = []
    now = 0
    for gap, occupancy in stream:
        now += gap
        start = port.request(now, occupancy)
        effective = port.occupancy if occupancy is None else occupancy
        log.append((now, effective, start))
    return log


class TestPortProperties:
    @settings(max_examples=200, deadline=None)
    @given(shape=_port_shapes, stream=_request_streams)
    def test_starts_nondecreasing_per_unit_and_never_early(self, shape, stream):
        units, occupancy = shape
        port = Port("p", units=units, occupancy=occupancy)
        log = _drive(port, stream)
        # No request starts before it arrives.
        assert all(start >= now for now, _, start in log)
        # Replaying the claimed (start, occupancy) intervals against a
        # greedy earliest-free pool never needs a unit before its free
        # time: units are single-occupancy and starts are feasible.
        free = [0] * units
        heapq.heapify(free)
        for _, effective, start in log:
            earliest = heapq.heappop(free)
            assert start >= earliest
            heapq.heappush(free, start + effective)
        # The overall start sequence (one stream, nondecreasing arrivals)
        # is itself nondecreasing.
        starts = [start for _, _, start in log]
        assert starts == sorted(starts)

    @settings(max_examples=200, deadline=None)
    @given(shape=_port_shapes, stream=_request_streams)
    def test_busy_cycles_equals_sum_of_claimed_occupancies(self, shape, stream):
        units, occupancy = shape
        port = Port("p", units=units, occupancy=occupancy)
        log = _drive(port, stream)
        assert port.busy_cycles == sum(effective for _, effective, _ in log)

    @settings(max_examples=100, deadline=None)
    @given(shape=_port_shapes, stream=_request_streams)
    def test_reset_restores_all_free_state(self, shape, stream):
        units, occupancy = shape
        port = Port("p", units=units, occupancy=occupancy)
        first = _drive(port, stream)
        port.reset()
        assert port.busy_cycles == 0
        assert port.earliest_free() == 0
        assert port.units == units
        # A reset port replays the identical stream identically.
        second = _drive(port, stream)
        assert second == first

    @settings(max_examples=100, deadline=None)
    @given(
        shape=_port_shapes,
        stream=_request_streams,
        now=st.integers(min_value=0, max_value=10_000),
    )
    def test_request_after_long_idle_starts_immediately(self, shape, stream, now):
        units, occupancy = shape
        port = Port("p", units=units, occupancy=occupancy)
        _drive(port, stream)
        late = max(port.earliest_free(), now) + 1
        assert port.request(late) == late
