"""Fault-injection battery for the sweep runner's robustness layer.

A production sweep must survive what multi-hour grids actually hit:
transient worker exceptions, hung jobs, and hard worker crashes
(``BrokenProcessPool``). These tests drive every recovery path with the
deterministic fault hook — injected exceptions are retried and succeed,
persistent failures become terminal :class:`JobFailure` records instead of
sweep aborts, a crashed pool is rebuilt and the lost jobs re-submitted,
and everything completed before a crash survives via the disk cache.

Fault callables live at module level so they pickle across the process
boundary under any multiprocessing start method.
"""

import os
import time

import pytest

from repro.config import TxScheme, table1_config
from repro.experiments import common
from repro.experiments.fig13_main import sweep_jobs_13bc
from repro.sim.runner import (
    FaultInjection,
    SweepAbort,
    SweepJob,
    SweepRunner,
    drain_failures,
    parse_fault_spec,
)

SCALE = 0.05
APPS = ("ATAX", "SRAD", "GUPS")


@pytest.fixture(autouse=True)
def _isolated(monkeypatch):
    """Memory-only cache, no inherited fault/retry env, clean failure log."""

    monkeypatch.setattr(common, "_CACHE_DIR", "")
    for name in (
        "REPRO_FAULT_SPEC",
        "REPRO_TIMEOUT",
        "REPRO_MAX_RETRIES",
        "REPRO_KEEP_GOING",
    ):
        monkeypatch.delenv(name, raising=False)
    common.clear_cache()
    drain_failures()
    yield
    common.clear_cache()
    drain_failures()


def grid(apps=APPS, scheme=TxScheme.BASELINE, scale=SCALE):
    return [SweepJob(app, table1_config(scheme), scale) for app in apps]


# -- picklable fault hooks ---------------------------------------------------


def fail_atax_once(job, attempt):
    if job.app_name == "ATAX" and attempt <= 1:
        raise RuntimeError("transient boom")


def fail_atax_always(job, attempt):
    if job.app_name == "ATAX":
        raise RuntimeError("persistent boom")


def crash_atax_once(job, attempt):
    if job.app_name == "ATAX" and attempt <= 1:
        os._exit(41)


def crash_atax_always(job, attempt):
    if job.app_name == "ATAX":
        os._exit(41)


def hang_atax(job, attempt):
    if job.app_name == "ATAX":
        time.sleep(4.0)


class TestFaultSpecParsing:
    def test_single_rule(self):
        fault = parse_fault_spec("ATAX:*:exc")
        (rule,) = fault.rules
        assert (rule.app, rule.scheme, rule.kind) == ("ATAX", "*", "exc")
        assert rule.max_attempt is None

    def test_max_attempt_suffix(self):
        fault = parse_fault_spec("ATAX:baseline:exc@2")
        assert fault.rules[0].max_attempt == 2

    def test_hang_seconds(self):
        fault = parse_fault_spec("*:*:hang:1.5")
        assert fault.rules[0].kind == "hang"
        assert fault.rules[0].arg == 1.5

    def test_multiple_rules(self):
        fault = parse_fault_spec("ATAX:*:exc@1;GUPS:lds:crash")
        assert [r.kind for r in fault.rules] == ["exc", "crash"]

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_fault_spec("ATAX:exc")
        with pytest.raises(ValueError):
            parse_fault_spec("ATAX:*:explode")
        with pytest.raises(ValueError):
            parse_fault_spec("  ;  ")

    def test_exc_rule_raises_on_matching_attempt_only(self):
        fault = parse_fault_spec("ATAX:*:exc@1")
        job = SweepJob("ATAX", table1_config(), SCALE)
        with pytest.raises(FaultInjection):
            fault(job, 1)
        fault(job, 2)  # retry attempt: no fault
        fault(SweepJob("SRAD", table1_config(), SCALE), 1)  # other app: no fault


class TestRetries:
    def test_transient_exception_retried_then_succeeds_parallel(self):
        runner = SweepRunner(
            jobs=2, fault=fail_atax_once, max_retries=2, retry_backoff_s=0
        )
        results, report = runner.run_with_report(grid())
        assert all(r is not None for r in results)
        assert [r.app_name for r in results] == list(APPS)
        assert report.failures == []
        assert report.retries >= 1
        assert "retr" in report.summary()

    def test_transient_exception_retried_then_succeeds_serial(self):
        runner = SweepRunner(
            jobs=1, fault=fail_atax_once, max_retries=2, retry_backoff_s=0
        )
        results, report = runner.run_with_report(grid())
        assert all(r is not None for r in results)
        assert report.failures == []
        assert report.retries == 1

    def test_persistent_failure_recorded_not_fatal(self):
        runner = SweepRunner(
            jobs=2,
            fault=fail_atax_always,
            max_retries=1,
            retry_backoff_s=0,
            keep_going=True,
        )
        results, report = runner.run_with_report(grid())
        assert results[0] is None  # ATAX slot
        assert results[1] is not None and results[2] is not None
        (failure,) = report.failures
        assert failure.app_name == "ATAX"
        assert failure.disposition == "exception"
        assert failure.attempts == 2  # first try + one retry
        assert "persistent boom" in failure.error
        assert "1 FAILED" in report.summary()
        assert any("ATAX" in line for line in report.failure_lines())

    def test_abort_without_keep_going_preserves_completed_work(self):
        # Serial keeps the order deterministic: SRAD completes, ATAX aborts.
        runner = SweepRunner(
            jobs=1, fault=fail_atax_always, max_retries=0, keep_going=False
        )
        jobs = grid(apps=("SRAD", "ATAX", "GUPS"))
        with pytest.raises(SweepAbort) as excinfo:
            runner.run_with_report(jobs)
        assert excinfo.value.failure.app_name == "ATAX"
        assert excinfo.value.report.failures == [excinfo.value.failure]
        # SRAD finished before the abort and was absorbed into the cache.
        assert jobs[0].key() in common._CACHE
        assert "ATAX" in str(excinfo.value)

    def test_failure_log_drained_for_report_module(self):
        runner = SweepRunner(
            jobs=1,
            fault=fail_atax_always,
            max_retries=0,
            retry_backoff_s=0,
            keep_going=True,
        )
        runner.run(grid())
        drained = drain_failures()
        assert [f.app_name for f in drained] == ["ATAX"]
        assert drain_failures() == []  # drained exactly once


class TestCrashRecovery:
    def test_broken_pool_mid_sweep_completes_remaining(self):
        runner = SweepRunner(
            jobs=2,
            fault=crash_atax_once,
            max_retries=2,
            retry_backoff_s=0,
            keep_going=True,
        )
        results, report = runner.run_with_report(grid())
        assert all(r is not None for r in results)
        assert report.failures == []
        assert report.retries >= 1

    def test_persistent_crash_is_one_terminal_record(self):
        runner = SweepRunner(
            jobs=2,
            fault=crash_atax_always,
            max_retries=1,
            retry_backoff_s=0,
            keep_going=True,
        )
        results, report = runner.run_with_report(grid())
        assert results[0] is None
        assert results[1] is not None and results[2] is not None
        (failure,) = report.failures
        assert failure.app_name == "ATAX"
        assert failure.disposition == "crash"

    def test_completed_results_survive_crash_via_disk_cache(self, tmp_path, monkeypatch):
        monkeypatch.setattr(common, "_CACHE_DIR", str(tmp_path))
        crashed = SweepRunner(
            jobs=2,
            fault=crash_atax_always,
            max_retries=0,
            retry_backoff_s=0,
            keep_going=True,
        )
        _, first = crashed.run_with_report(grid())
        assert len(first.failures) == 1

        # A fresh process would start with an empty in-process cache: the
        # two completed jobs must come back from disk, only ATAX re-runs.
        common.clear_cache()
        results, second = SweepRunner(jobs=2).run_with_report(grid())
        assert all(r is not None for r in results)
        assert second.cache_hits == 2
        assert second.jobs_simulated == 1


class TestTimeout:
    def test_hung_job_times_out_with_terminal_record(self):
        runner = SweepRunner(
            jobs=2,
            fault=hang_atax,
            timeout=1.5,
            max_retries=0,
            retry_backoff_s=0,
            keep_going=True,
        )
        results, report = runner.run_with_report(grid(scale=0.02))
        assert results[0] is None
        assert results[1] is not None and results[2] is not None
        (failure,) = report.failures
        assert failure.app_name == "ATAX"
        assert failure.disposition == "timeout"
        assert "timeout" in failure.error

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=1, timeout=0)
        with pytest.raises(ValueError):
            SweepRunner(jobs=1, max_retries=-1)


class TestEnvConfiguration:
    def test_fault_spec_env_is_picked_up(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SPEC", "ATAX:*:exc@1")
        runner = SweepRunner(jobs=2, max_retries=1, retry_backoff_s=0)
        results, report = runner.run_with_report(grid())
        assert all(r is not None for r in results)
        assert report.retries >= 1
        assert report.failures == []

    def test_spec_crash_demoted_in_serial_parent(self, monkeypatch):
        # A crash rule must never kill the parent process: the serial
        # path demotes it to an exception (and therefore to a failure
        # record), keeping pytest — and real sweeps — alive.
        monkeypatch.setenv("REPRO_FAULT_SPEC", "ATAX:*:crash")
        runner = SweepRunner(jobs=1, max_retries=0, retry_backoff_s=0, keep_going=True)
        results, report = runner.run_with_report(grid())
        assert results[0] is None
        (failure,) = report.failures
        assert failure.disposition == "exception"
        assert "demoted" in failure.error

    def test_retry_and_keep_going_env_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RETRIES", "7")
        monkeypatch.setenv("REPRO_KEEP_GOING", "1")
        monkeypatch.setenv("REPRO_TIMEOUT", "12.5")
        runner = SweepRunner(jobs=1)
        assert runner.max_retries == 7
        assert runner.keep_going is True
        assert runner.timeout == 12.5

    def test_bad_env_values_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RETRIES", "many")
        with pytest.raises(ValueError):
            SweepRunner(jobs=1)
        monkeypatch.setenv("REPRO_MAX_RETRIES", "2")
        monkeypatch.setenv("REPRO_TIMEOUT", "soon")
        with pytest.raises(ValueError):
            SweepRunner(jobs=1)


class TestFig13GridAcceptance:
    def test_one_persistent_crasher_leaves_exactly_one_gap(self):
        # The acceptance grid: every Figure 13b/c job, with the
        # ATAX/icache+lds cell crashing its worker on every attempt.
        jobs = sweep_jobs_13bc(0.02)
        fault = parse_fault_spec("ATAX:icache+lds:crash")
        runner = SweepRunner(
            jobs=2, fault=fault, max_retries=1, retry_backoff_s=0, keep_going=True
        )
        results, report = runner.run_with_report(jobs)

        failed_key = common.cache_key(
            "ATAX", table1_config(TxScheme.ICACHE_LDS), 0.02
        )
        (failure,) = report.failures
        assert failure.key == failed_key
        assert failure.disposition == "crash"

        assert len(results) == len(jobs)
        for job, result in zip(jobs, results):
            if job.key() == failed_key:
                assert result is None
            else:
                # Submission order is preserved around the gap.
                assert result is not None
                assert result.app_name == job.app_name
                assert result.scheme == job.config.scheme.value
