"""Differential equivalence battery: event engine vs vectorized engine.

``SystemConfig.engine = "vectorized"`` selects a compiled, flattened
wavefront (:mod:`repro.sim.vectorized`) whose contract is **byte
identity**: the full serialized :class:`~repro.sim.results.SimResult` —
every counter, every kernel window, every distribution — must equal the
event engine's, not merely approximate it. That contract is what justifies
dropping ``engine`` from the result-cache signature
(:func:`repro.experiments.common._config_signature`), so a vectorized
sweep may serve and be served by event-mode cache entries.

The battery compares the two engines across:

- a diagonal of the Figure 13 grid (every application once, rotating
  through the scheme variants) — the **full** 90-job grid runs when
  ``REPRO_EQUIVALENCE_FULL=1`` (CI nightly / manual deep check);
- every :class:`TxScheme` on fast applications;
- concurrent multi-application mode (``run_concurrent``);
- fault-injected sweep execution (``REPRO_FAULT_SPEC``-style retries);
- the observability fallback (attached timeline samplers force the
  event-identical slow path);
- result-cache identity between engines.

Comparisons use :func:`serialize_result` (full structured equality, so a
mismatch prints the differing counters) and
:func:`result_fingerprint` (the byte-level digest the cache trusts).
"""

from __future__ import annotations

import os

import pytest

from repro.config import SystemConfig, TxScheme, table1_config
from repro.experiments import common
from repro.experiments.common import result_fingerprint, serialize_result
from repro.experiments.fig13_main import sweep_jobs as fig13_sweep_jobs
from repro.sim.runner import SweepJob, SweepRunner, drain_failures
from repro.system import GPUSystem
from repro.workloads.registry import make_app

SCALE = 0.02
FULL_GRID = os.environ.get("REPRO_EQUIVALENCE_FULL", "").strip() == "1"

# Applications that simulate in well under 100ms at the battery scale;
# used where a test multiplies runs across schemes/modes.
FAST_APPS = ("NW", "SSSP")


@pytest.fixture(autouse=True)
def _memory_only_cache(monkeypatch):
    """No disk cache, no inherited sweep env, clean in-process cache."""

    monkeypatch.setattr(common, "_CACHE_DIR", "")
    for name in (
        "REPRO_FAULT_SPEC",
        "REPRO_TIMEOUT",
        "REPRO_MAX_RETRIES",
        "REPRO_KEEP_GOING",
        "REPRO_JOBS",
    ):
        monkeypatch.delenv(name, raising=False)
    common.clear_cache()
    drain_failures()
    yield
    common.clear_cache()
    drain_failures()


def run_engine(app_name: str, config: SystemConfig, scale: float = SCALE):
    app = make_app(app_name, scale=scale, page_size=config.page_size)
    return GPUSystem(config).run(app)


def assert_byte_identical(event_result, vector_result) -> None:
    """Full structured equality first (readable diffs), then the digest."""

    assert serialize_result(vector_result) == serialize_result(event_result)
    assert result_fingerprint(vector_result) == result_fingerprint(event_result)


def _grid_jobs():
    jobs = fig13_sweep_jobs(scale=SCALE)
    if FULL_GRID:
        return list(jobs)
    # Diagonal subsample: every application exactly once, rotating through
    # the grid's scheme variants so every scheme family appears.
    apps = list(dict.fromkeys(job.app_name for job in jobs))
    per_app = {name: [j for j in jobs if j.app_name == name] for name in apps}
    return [
        variants[index % len(variants)]
        for index, variants in enumerate(per_app[name] for name in apps)
    ]


def _job_id(job) -> str:
    return f"{job.app_name}-{job.config.scheme.value}"


class TestFig13Grid:
    """Byte identity across the Figure 13 grid (diagonal or full)."""

    @pytest.mark.parametrize("job", _grid_jobs(), ids=_job_id)
    def test_grid_job_equivalence(self, job):
        event = run_engine(job.app_name, job.config, job.scale)
        vector = run_engine(
            job.app_name, job.config.with_engine("vectorized"), job.scale
        )
        assert_byte_identical(event, vector)


class TestSchemes:
    """Every TxScheme, including the ones the grid's diagonal missed."""

    @pytest.mark.parametrize("scheme", list(TxScheme), ids=lambda s: s.value)
    @pytest.mark.parametrize("app_name", FAST_APPS)
    def test_scheme_equivalence(self, app_name, scheme):
        config = table1_config(scheme)
        event = run_engine(app_name, config)
        vector = run_engine(app_name, config.with_engine("vectorized"))
        assert_byte_identical(event, vector)

    def test_ablation_orders_and_dedup(self):
        """lds_before_icache=False and dedup_shared_fills=True variants."""

        from dataclasses import replace

        base = table1_config(TxScheme.ICACHE_LDS)
        for variant in (
            replace(base, lds_before_icache=False),
            replace(base, dedup_shared_fills=True),
        ):
            event = run_engine("NW", variant)
            vector = run_engine("NW", variant.with_engine("vectorized"))
            assert_byte_identical(event, vector)


class TestConcurrentMode:
    """run_concurrent: per-app results must match engine-for-engine."""

    @pytest.mark.parametrize(
        "scheme", [TxScheme.BASELINE, TxScheme.ICACHE_LDS], ids=lambda s: s.value
    )
    def test_concurrent_equivalence(self, scheme):
        def both_apps(config):
            apps = [
                make_app(name, scale=SCALE, page_size=config.page_size)
                for name in FAST_APPS
            ]
            cus = config.gpu.num_cus
            partitions = [
                list(range(cus // 2)),
                list(range(cus // 2, cus)),
            ]
            return GPUSystem(config).run_concurrent(apps, partitions)

        event_results = both_apps(table1_config(scheme))
        vector_results = both_apps(table1_config(scheme).with_engine("vectorized"))
        assert len(event_results) == len(vector_results) == len(FAST_APPS)
        for event, vector in zip(event_results, vector_results):
            assert_byte_identical(event, vector)


# -- fault-injected execution ------------------------------------------------

# Module-level so the hook pickles across any multiprocessing start method.
def _fail_first_attempt(job, attempt):
    if attempt <= 1:
        raise RuntimeError("injected transient fault")


class TestFaultRetries:
    """A retried (fault-injected) sweep yields the same bytes as a clean run."""

    def test_retry_equivalence(self):
        reference = run_engine("NW", table1_config())
        for engine in ("event", "vectorized"):
            config = table1_config().with_engine(engine)
            runner = SweepRunner(
                jobs=1, use_cache=False, fault=_fail_first_attempt, max_retries=2
            )
            (result,) = runner.run([SweepJob("NW", config, SCALE)])
            assert result is not None
            assert_byte_identical(reference, result)


class TestObservabilityFallback:
    """Attached telemetry must not perturb results — the vectorized engine
    detects observed ports and routes through the event-identical path."""

    def test_timelines_preserve_identity(self):
        config = table1_config(TxScheme.ICACHE_LDS)
        event = run_engine("NW", config)

        vec_config = config.with_engine("vectorized")
        app = make_app("NW", scale=SCALE, page_size=vec_config.page_size)
        system = GPUSystem(vec_config)
        timelines = system.attach_timelines()
        vector = system.run(app)

        assert_byte_identical(event, vector)
        # The telemetry itself must still be recorded (the fallback ran).
        assert any(len(sampler.intervals) for sampler in timelines.values())


class TestCacheIdentity:
    """Both engines share one cache identity (engine is not in the key)."""

    def test_cache_key_ignores_engine(self):
        config = table1_config()
        assert common.cache_key("NW", config, SCALE) == common.cache_key(
            "NW", config.with_engine("vectorized"), SCALE
        )

    def test_vectorized_run_serves_event_request(self):
        config = table1_config()
        vector = common.run_app(
            "NW", config.with_engine("vectorized"), scale=SCALE
        )
        event_cached = common.run_app("NW", config, scale=SCALE)
        assert event_cached is vector  # same in-process cache entry

        common.clear_cache()
        event_fresh = common.run_app("NW", config, scale=SCALE, use_cache=False)
        assert_byte_identical(event_fresh, vector)
