"""Unit tests for the DRAM timing and energy models."""

import pytest

from repro.config import DRAMConfig, DRAMEnergyConfig
from repro.memory.dram import DRAM
from repro.memory.energy import DRAMEnergyModel
from repro.sim.stats import Stats


class TestDRAMTiming:
    def test_access_returns_start_and_completion(self):
        dram = DRAM(DRAMConfig())
        start, done = dram.access(0, now=10)
        assert start == 10
        assert done > start

    def test_row_miss_costs_more_than_row_hit(self):
        dram = DRAM(DRAMConfig())
        _, first = dram.access(0, 0)  # activates the row
        _, second = dram.access(0, 100_000)  # same bank, row already open
        assert second - 100_000 < first - 0

    def test_same_bank_back_to_back_queues(self):
        dram = DRAM(DRAMConfig())
        dram.access(0, 0)
        start, _ = dram.access(0, 0)
        assert start == DRAMConfig().bank_occupancy

    def test_page_aligned_strides_spread_across_banks(self):
        # The regression this guards: pfn*page_size used to alias every
        # page-aligned address onto one bank.
        dram = DRAM(DRAMConfig())
        for page in range(64):
            dram.access(page * 4096, 0)
        assert dram.stats.get("dram.queue_cycles") < 64 * DRAMConfig().bank_occupancy / 2

    def test_read_write_counters(self):
        dram = DRAM(DRAMConfig())
        dram.access(0, 0)
        dram.access(64, 0, is_write=True)
        assert dram.stats.get("dram.reads") == 1
        assert dram.stats.get("dram.writes") == 1
        assert dram.total_accesses == 2

    def test_activate_counted_on_row_change(self):
        dram = DRAM(DRAMConfig())
        dram.access(0, 0)
        dram.access(1 << 22, 10_000)
        assert dram.stats.get("dram.activates") == 2


class TestEnergyModel:
    def test_zero_traffic_still_burns_background(self):
        model = DRAMEnergyModel(DRAMEnergyConfig())
        breakdown = model.estimate(Stats(), cycles=1000)
        assert breakdown.total_nj == pytest.approx(
            breakdown.background_nj + breakdown.refresh_nj
        )
        assert breakdown.background_nj > 0

    def test_reads_add_energy(self):
        model = DRAMEnergyModel(DRAMEnergyConfig())
        stats = Stats()
        stats.add("dram.reads", 100)
        with_reads = model.estimate(stats, cycles=0)
        assert with_reads.read_nj == pytest.approx(100 * DRAMEnergyConfig().read_nj)

    def test_breakdown_sums(self):
        stats = Stats()
        stats.add("dram.reads", 10)
        stats.add("dram.writes", 5)
        stats.add("dram.activates", 3)
        breakdown = DRAMEnergyModel(DRAMEnergyConfig()).estimate(stats, cycles=50)
        assert breakdown.total_nj == pytest.approx(
            breakdown.read_nj
            + breakdown.write_nj
            + breakdown.activate_nj
            + breakdown.background_nj
            + breakdown.refresh_nj
        )

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            DRAMEnergyModel(DRAMEnergyConfig()).estimate(Stats(), cycles=-1)

    def test_fewer_walk_reads_means_less_energy(self):
        # The Figure 13c mechanism in miniature.
        model = DRAMEnergyModel(DRAMEnergyConfig())
        heavy, light = Stats(), Stats()
        heavy.add("dram.reads", 1000)
        light.add("dram.reads", 700)
        assert (
            model.estimate(light, 10_000).total_nj
            < model.estimate(heavy, 10_000).total_nj
        )
