"""Unit tests for the set-associative data cache."""

import pytest

from repro.memory.cache import SetAssociativeCache


def make(size=1024, ways=2, line=64, reserved=0):
    return SetAssociativeCache(size, ways, line, reserved_ways=reserved)


class TestBasics:
    def test_cold_miss_then_hit(self):
        cache = make()
        assert not cache.access(0)
        assert cache.access(0)

    def test_same_line_different_bytes_hit(self):
        cache = make()
        cache.access(0)
        assert cache.access(63)
        assert not cache.access(64)

    def test_geometry(self):
        cache = make(size=1024, ways=2, line=64)
        assert cache.num_sets == 8

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(1000, 3, 64)

    def test_lru_within_set(self):
        cache = make(size=256, ways=2, line=64)  # 2 sets
        set_stride = cache.num_sets * 64
        a, b, c = 0, set_stride, 2 * set_stride  # all set 0
        cache.access(a)
        cache.access(b)
        cache.access(c)  # evicts a
        assert not cache.access(a)

    def test_hit_refreshes_lru(self):
        cache = make(size=256, ways=2, line=64)
        stride = cache.num_sets * 64
        cache.access(0)
        cache.access(stride)
        cache.access(0)  # refresh
        cache.access(2 * stride)  # evicts `stride`
        assert cache.access(0)

    def test_probe_does_not_fill(self):
        cache = make()
        assert not cache.probe(128)
        assert not cache.access(128)

    def test_invalidate_all(self):
        cache = make()
        cache.access(0)
        cache.invalidate_all()
        assert not cache.probe(0)

    def test_len(self):
        cache = make()
        for i in range(4):
            cache.access(i * 64)
        assert len(cache) == 4


class TestReservedWays:
    def test_reserved_ways_shrink_data_capacity(self):
        cache = make(size=256, ways=2, line=64, reserved=1)
        stride = cache.num_sets * 64
        cache.access(0)
        cache.access(stride)  # only one effective way: evicts line 0
        assert not cache.access(0)

    def test_all_ways_reserved_rejected(self):
        with pytest.raises(ValueError):
            make(reserved=2)


class TestLowPriorityFill:
    def test_low_priority_line_is_first_victim(self):
        cache = make(size=256, ways=2, line=64)
        stride = cache.num_sets * 64
        cache.fill_low_priority(0)
        cache.access(stride)
        cache.access(2 * stride)  # set full: LRU (the low-priority 0) dies
        assert not cache.probe(0)
        assert cache.probe(stride)

    def test_low_priority_line_still_hits(self):
        cache = make()
        cache.fill_low_priority(0)
        assert cache.probe(0)
