"""Unit tests for the two-level data hierarchy."""

import pytest

from repro.config import DRAMConfig, DataCacheConfig
from repro.memory.dram import DRAM
from repro.memory.hierarchy import MemoryHierarchy, SharedL2


@pytest.fixture
def shared_l2():
    return SharedL2(DataCacheConfig(), DRAM(DRAMConfig()))


@pytest.fixture
def hierarchy(shared_l2):
    return MemoryHierarchy(DataCacheConfig(), shared_l2)


class TestMemoryHierarchy:
    def test_cold_access_reaches_dram(self, hierarchy):
        done, level = hierarchy.access_ex(0, now=0)
        assert level == "dram"
        assert done > DataCacheConfig().l1_latency + DataCacheConfig().l2_latency

    def test_second_access_hits_l1(self, hierarchy):
        hierarchy.access_ex(0, 0)
        done, level = hierarchy.access_ex(0, 1000)
        assert level == "l1"
        assert done == 1000 + DataCacheConfig().l1_latency

    def test_l2_backstops_l1_evictions(self, hierarchy):
        config = DataCacheConfig()
        lines_in_l1 = config.l1_size_bytes // config.line_bytes
        # Touch enough conflicting lines to evict line 0 from L1 only.
        hierarchy.access_ex(0, 0)
        for index in range(1, 3 * lines_in_l1):
            hierarchy.access_ex(index * config.line_bytes, 0)
        _, level = hierarchy.access_ex(0, 10**9)
        assert level == "l2"

    def test_access_matches_access_ex(self, hierarchy):
        hierarchy.access(12345, 0)  # warm L1
        done = hierarchy.access(12345, 77)
        done_ex, level = hierarchy.access_ex(12345, 77)
        assert level == "l1"
        assert done_ex == done

    def test_two_cu_hierarchies_share_l2(self, shared_l2):
        a = MemoryHierarchy(DataCacheConfig(), shared_l2)
        b = MemoryHierarchy(DataCacheConfig(), shared_l2)
        a.access_ex(0, 0)
        _, level = b.access_ex(0, 10_000)
        assert level == "l2"  # warmed by the other CU


class TestSharedL2:
    def test_direct_l2_access_fills(self, shared_l2):
        first = shared_l2.access(0, 0)
        second = shared_l2.access(0, first)
        assert second - first < first - 0

    def test_port_contention(self, shared_l2):
        times = [shared_l2.port.request(0) for _ in range(10)]
        assert max(times) > 0
