"""Property-based tests (hypothesis) on core data structures and invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compression import BaseDeltaCodec
from repro.pagetable.page_table import PageTable
from repro.sim.engine import Port
from repro.sim.stats import Distribution
from repro.tlb.base import TranslationEntry
from repro.tlb.fully_assoc import FullyAssociativeTLB
from repro.tlb.set_assoc import SetAssociativeTLB

vpns = st.integers(min_value=0, max_value=1 << 30)


class TestTLBProperties:
    @given(st.lists(vpns, min_size=1, max_size=200), st.integers(1, 32))
    @settings(max_examples=50)
    def test_fully_assoc_capacity_never_exceeded(self, sequence, capacity):
        tlb = FullyAssociativeTLB(capacity)
        for vpn in sequence:
            tlb.insert(TranslationEntry(vpn=vpn, pfn=vpn))
        assert len(tlb) <= capacity

    @given(st.lists(vpns, min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_most_recent_insert_always_resident(self, sequence):
        tlb = FullyAssociativeTLB(4)
        for vpn in sequence:
            entry = TranslationEntry(vpn=vpn, pfn=vpn)
            tlb.insert(entry)
            assert tlb.probe(entry.key)

    @given(st.lists(vpns, min_size=1, max_size=300))
    @settings(max_examples=50)
    def test_eviction_conservation(self, sequence):
        # fills == evictions + residents for a fully-associative TLB.
        tlb = FullyAssociativeTLB(8, name="t")
        evicted = 0
        for vpn in sequence:
            if tlb.insert(TranslationEntry(vpn=vpn, pfn=vpn)) is not None:
                evicted += 1
        assert tlb.stats.get("t.fills") == evicted + len(tlb)

    @given(st.lists(vpns, min_size=1, max_size=300), st.sampled_from([2, 4, 8]))
    @settings(max_examples=50)
    def test_set_assoc_victim_same_set(self, sequence, ways):
        tlb = SetAssociativeTLB(8 * ways, ways)
        for vpn in sequence:
            victim = tlb.insert(TranslationEntry(vpn=vpn, pfn=vpn))
            if victim is not None:
                assert victim.vpn % tlb.num_sets == vpn % tlb.num_sets


class TestCodecProperties:
    @given(st.lists(st.integers(0, 1 << 40), max_size=8), st.integers(0, 1 << 40))
    @settings(max_examples=100)
    def test_packable_subset_always_packs(self, residents, incoming):
        codec = BaseDeltaCodec(32, 8)
        keep = codec.packable_subset(residents, incoming)
        assert codec.can_pack(keep + [incoming])

    @given(st.lists(st.integers(0, 1 << 40), min_size=1, max_size=8))
    @settings(max_examples=100)
    def test_can_pack_invariant_under_shuffle(self, tags):
        codec = BaseDeltaCodec(16, 16)
        shuffled = list(tags)
        random.Random(0).shuffle(shuffled)
        assert codec.can_pack(tags) == codec.can_pack(shuffled)

    @given(st.integers(0, 1 << 40), st.integers(0, 255))
    @settings(max_examples=50)
    def test_tags_within_delta_always_pack(self, base, offset):
        codec = BaseDeltaCodec(33, 8)
        assert codec.can_pack([base, base + offset])


class TestPageTableProperties:
    @given(st.lists(st.tuples(st.integers(0, 3), vpns), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_translation_injective_per_space(self, touches):
        table = PageTable()
        seen = {}
        for vmid, vpn in touches:
            pfn = table.translate(vmid, vpn)
            key = (vmid, vpn)
            if key in seen:
                assert seen[key] == pfn
            seen[key] = pfn
        by_frame = {}
        for (vmid, vpn), pfn in seen.items():
            assert by_frame.setdefault(pfn, (vmid, vpn)) == (vmid, vpn)

    @given(vpns, st.sampled_from([4096, 64 * 1024, 2 * 1024 * 1024]))
    @settings(max_examples=50)
    def test_walk_addresses_count_matches_levels(self, vpn, page_size):
        table = PageTable(page_size)
        assert len(table.walk_addresses(0, vpn)) == table.levels


class TestPortProperties:
    @given(
        st.lists(st.integers(0, 10_000), min_size=1, max_size=100).map(sorted),
        st.integers(1, 4),
        st.integers(1, 16),
    )
    @settings(max_examples=50)
    def test_monotone_requests_get_monotone_starts(self, times, units, occupancy):
        port = Port("p", units=units, occupancy=occupancy)
        starts = [port.request(t) for t in times]
        assert starts == sorted(starts)
        for requested, start in zip(times, starts):
            assert start >= requested

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=200).map(sorted))
    @settings(max_examples=50)
    def test_single_unit_port_never_overlaps(self, times):
        port = Port("p", units=1, occupancy=5)
        starts = [port.request(t) for t in times]
        for earlier, later in zip(starts, starts[1:]):
            assert later >= earlier + 5


class TestDistributionProperties:
    @given(st.lists(st.floats(0, 1e6, allow_nan=False), min_size=1, max_size=500))
    @settings(max_examples=50)
    def test_box_stats_ordering(self, samples):
        dist = Distribution()
        dist.extend(samples)
        box = dist.box_stats()
        assert box.minimum <= box.q1 <= box.median <= box.q3 <= box.maximum
        assert box.minimum <= box.mean <= box.maximum

    @given(st.lists(st.floats(0, 1e6, allow_nan=False), min_size=1, max_size=500))
    @settings(max_examples=50)
    def test_mean_exact_regardless_of_decimation(self, samples):
        dist = Distribution(max_samples=16)
        dist.extend(samples)
        assert abs(dist.mean - sum(samples) / len(samples)) < 1e-6 * max(
            1.0, max(samples)
        )


class TestLdsAllocatorProperties:
    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(1, 4096)),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=50)
    def test_alloc_free_never_leaks_segments(self, script):
        from repro.config import LDSConfig, LDSTxConfig
        from repro.gpu.lds import LocalDataShare

        lds = LocalDataShare(LDSConfig(), LDSTxConfig())
        live = []
        expected = 0
        for is_alloc, nbytes in script:
            if is_alloc:
                alloc = lds.allocate(nbytes)
                if alloc is not None:
                    live.append((alloc, lds.segments_needed(nbytes)))
                    expected += lds.segments_needed(nbytes)
            elif live:
                alloc, segments = live.pop()
                lds.free(alloc)
                expected -= segments
            assert lds.allocated_segments == expected
        for alloc, segments in live:
            lds.free(alloc)
        assert lds.allocated_segments == 0


class TestVictimCacheProperties:
    @given(st.lists(st.integers(0, 5000), min_size=1, max_size=300))
    @settings(max_examples=30)
    def test_lds_tx_entry_count_matches_contents(self, sequence):
        from repro.config import LDSConfig, LDSTxConfig
        from repro.core.reconfig_lds import LDSTxCache
        from repro.gpu.lds import LocalDataShare

        lds = LocalDataShare(LDSConfig(), LDSTxConfig())
        tx = LDSTxCache(lds, LDSTxConfig())
        for vpn in sequence:
            if vpn % 3 == 0:
                tx.lookup((0, 0, vpn), 0)
            else:
                tx.fill(TranslationEntry(vpn=vpn, pfn=vpn), 0)
            actual = sum(len(seg) for seg in tx._segments.values())
            assert tx.entry_count == actual

    @given(st.lists(st.integers(0, 5000), min_size=1, max_size=300))
    @settings(max_examples=30)
    def test_icache_tx_count_matches_contents(self, sequence):
        from repro.config import ICacheConfig, ICacheTxConfig
        from repro.core.reconfig_icache import ReconfigurableICache

        icache = ReconfigurableICache(ICacheConfig(), ICacheTxConfig())
        for vpn in sequence:
            action = vpn % 4
            if action == 0:
                icache.tx_lookup((0, 0, vpn), 0)
            elif action == 1:
                icache.fetch(vpn % 512, 0)
            else:
                icache.tx_fill(TranslationEntry(vpn=vpn, pfn=vpn), 0)
            actual = sum(
                len(line.tx_entries)
                for cache_set in icache._sets
                for line in cache_set
                if line.is_tx and line.tx_entries
            )
            assert icache.tx_entry_count() == actual
