"""Smoke tests: every example script runs and tells its story."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=300):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py", "SRAD", "0.05")
        assert proc.returncode == 0, proc.stderr
        assert "Speedup:" in proc.stdout
        assert "Page walks:" in proc.stdout

    def test_quickstart_default_app_arg(self):
        proc = run_example("quickstart.py", "ATAX", "0.05")
        assert proc.returncode == 0, proc.stderr
        assert "ATAX" in proc.stdout

    def test_tlb_reach_study(self):
        proc = run_example("tlb_reach_study.py", "SSSP", "0.05")
        assert proc.returncode == 0, proc.stderr
        assert "perfect" in proc.stdout
        assert "Category Low" in proc.stdout

    def test_custom_workload(self):
        proc = run_example("custom_workload.py", "0.05")
        assert proc.returncode == 0, proc.stderr
        assert "sparse-solver" in proc.stdout
        assert "icache+lds" in proc.stdout

    def test_shootdown_demo(self):
        proc = run_example("shootdown_demo.py")
        assert proc.returncode == 0, proc.stderr
        assert "Shot down" in proc.stdout
        assert "invalidated" in proc.stdout

    def test_service_demo(self):
        proc = run_example("service_demo.py", "0.05")
        assert proc.returncode == 0, proc.stderr
        assert "Service up at http://127.0.0.1:" in proc.stdout
        assert "state -> done" in proc.stdout
        assert "Per-job telemetry:" in proc.stdout
        assert "deduplicated onto" in proc.stdout
