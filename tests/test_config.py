"""Unit tests for configuration dataclasses and derived helpers."""

import pytest

from repro.config import (
    ICacheConfig,
    ICacheTxConfig,
    LDSTxConfig,
    TxScheme,
    table1_config,
)


class TestTxScheme:
    def test_scheme_structure_flags(self):
        assert TxScheme.LDS_ONLY.uses_lds_tx
        assert not TxScheme.LDS_ONLY.uses_icache_tx
        assert TxScheme.ICACHE_ONLY.uses_icache_tx
        assert TxScheme.ICACHE_LDS.uses_lds_tx and TxScheme.ICACHE_LDS.uses_icache_tx
        assert TxScheme.DUCATI.uses_ducati
        assert TxScheme.DUCATI_ICACHE_LDS.uses_ducati
        assert TxScheme.DUCATI_ICACHE_LDS.uses_lds_tx
        assert not TxScheme.BASELINE.uses_lds_tx


class TestTable1Defaults:
    def test_gpu_shape(self):
        config = table1_config()
        assert config.gpu.num_cus == 8
        assert config.gpu.max_waves_per_cu == 40

    def test_tlb_shape(self):
        config = table1_config()
        assert config.tlb.l1_entries == 32
        assert config.tlb.l1_latency == 108
        assert config.tlb.l2_entries == 512
        assert config.tlb.l2_latency == 188

    def test_icache_geometry(self):
        assert ICacheConfig().num_lines == 256
        assert ICacheConfig().num_sets == 32

    def test_lds_tx_geometry(self):
        config = LDSTxConfig()
        assert config.ways_per_segment == 3
        assert LDSTxConfig(segment_bytes=64).ways_per_segment == 6

    def test_icache_tx_latencies(self):
        # Table 1: 20 (Tx tag) + 16 (serial compares) + 1 (mux) + 4 (decomp).
        assert ICacheTxConfig().tx_hit_latency == 41

    def test_lds_tx_latencies(self):
        # Table 1: 35 (Tx access) + 1 (mux) + 4 (decompression).
        assert LDSTxConfig().tx_hit_latency == 40
        assert LDSTxConfig().tx_probe_latency == 2

    def test_iommu_walkers(self):
        assert table1_config().iommu.num_walkers == 32


class TestConfigDerivation:
    def test_with_scheme(self):
        config = table1_config().with_scheme(TxScheme.LDS_ONLY)
        assert config.scheme is TxScheme.LDS_ONLY

    def test_with_l2_tlb_entries(self):
        config = table1_config().with_l2_tlb_entries(8192)
        assert config.tlb.l2_entries == 8192
        assert table1_config().tlb.l2_entries == 512  # original untouched

    def test_with_page_size_validates(self):
        with pytest.raises(ValueError):
            table1_config().with_page_size(3000)

    def test_with_extra_wire_latency(self):
        config = table1_config().with_extra_wire_latency(10, 20)
        assert config.icache_tx.tx_hit_latency == 51
        assert config.lds_tx.tx_hit_latency == 60

    def test_with_icache_sharers_keeps_total_capacity(self):
        for sharers in (1, 2, 4, 8):
            config = table1_config().with_icache_sharers(sharers)
            groups = config.gpu.num_cus // sharers
            assert groups * config.icache.size_bytes == 32 * 1024

    def test_with_perfect_l2(self):
        config = table1_config().with_perfect_l2_tlb()
        assert config.tlb.perfect_l2
        assert config.scheme is TxScheme.PERFECT_L2_TLB

    def test_configs_are_frozen(self):
        config = table1_config()
        with pytest.raises(Exception):
            config.page_size = 8192  # type: ignore[misc]
