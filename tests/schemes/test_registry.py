"""The scheme registry: the single source of truth for the scheme zoo.

Covers registration semantics, the capability-flag wiring into
:class:`GPUSystem`, cache-identity guarantees (pinned signatures for the
builtin arms — any schema change must update these *explicitly*), engine
gating, the perfect-l2-tlb configure-transform fix, and the
scheme-universe agreement between the CLI, the service, and the
experiment grids.
"""

from __future__ import annotations

import argparse

import pytest

from repro.config import SubregionConfig, TxScheme, table1_config
from repro.experiments import common
from repro.schemes import (
    PluginScheme,
    SchemeError,
    SchemeSpec,
    apply_scheme,
    config_for,
    engine_supported,
    get,
    register,
    register_plugin,
    resolve,
    scheme_names,
    schemes,
    schemes_for_tag,
    unregister,
)
from repro.system import GPUSystem

#: Pre-refactor ``_config_signature`` values for every builtin arm
#: (captured on the commit before the registry landed). These pin both
#: the cache schema and the byte-identity of the existing scheme
#: configurations: if one of these changes, cached results silently
#: stop being reused — bump them only with a deliberate schema change.
PINNED_SIGNATURES = {
    "baseline": "26dedf985b22459e",
    "lds": "97abcb45815660a7",
    "icache": "e7139c9641f015da",
    "icache+lds": "3d19eb276d733b4c",
    "ducati": "19099c989f865d51",
    "ducati+icache+lds": "88eae2e0b9702980",
}
#: perfect-l2-tlb is special-cased: the registry's configure transform
#: now sets ``tlb.perfect_l2`` (the pre-refactor name-only path did not
#: — that was the latent bug), so its signature matches the config
#: ``fig02_03`` always used via ``with_perfect_l2_tlb()``.
PINNED_PERFECT_L2 = "3abb200ae508a7f8"


class TestRegistration:
    def test_builtins_in_enum_order(self):
        assert scheme_names()[: len(TxScheme)] == [s.value for s in TxScheme]

    def test_plugin_registered_after_builtins(self):
        assert "subregion-coalescing" in scheme_names()
        assert not get("subregion-coalescing").builtin

    def test_duplicate_name_rejected(self):
        spec = get("lds")
        with pytest.raises(SchemeError, match="already registered"):
            register(spec)

    def test_duplicate_plugin_name_rejected(self):
        with pytest.raises(SchemeError, match="already registered"):
            register_plugin("baseline", "imposter")

    def test_unknown_scheme_lists_choices(self):
        with pytest.raises(SchemeError) as excinfo:
            get("not-a-scheme")
        assert "valid schemes" in str(excinfo.value)
        assert excinfo.value.choices == scheme_names()

    def test_resolve_builtin_returns_enum_member(self):
        # Builtins must resolve to the TxScheme member itself (pickling
        # and cache identity depend on it), not a wrapper.
        for member in TxScheme:
            assert resolve(member.value) is member

    def test_resolve_plugin_returns_plugin_scheme(self):
        scheme = resolve("subregion-coalescing")
        assert isinstance(scheme, PluginScheme)
        assert scheme.value == "subregion-coalescing"
        assert scheme.uses_subregion

    def test_spec_name_must_match_scheme_value(self):
        with pytest.raises(ValueError, match="does not match spec name"):
            SchemeSpec(name="mismatch", scheme=TxScheme.LDS_ONLY,
                       description="bad")

    def test_unregister_roundtrip(self):
        register_plugin("throwaway", "test-only scheme")
        try:
            assert "throwaway" in scheme_names()
        finally:
            unregister("throwaway")
        assert "throwaway" not in scheme_names()


class TestCapabilityWiring:
    """Each spec's flags drive exactly which structures GPUSystem builds."""

    @pytest.mark.parametrize("name", [s.value for s in TxScheme]
                             + ["subregion-coalescing"])
    def test_flags_match_structures(self, name):
        scheme = resolve(name)
        system = GPUSystem(config_for(name))
        tr = system.cus[0].translation
        assert (tr.lds_tx is not None) == scheme.uses_lds_tx
        assert (tr.icache_tx is not None) == scheme.uses_icache_tx
        assert (tr.ducati is not None) == scheme.uses_ducati
        assert (tr.subregion is not None) == getattr(
            scheme, "uses_subregion", False
        )
        assert (system.subregion is not None) == getattr(
            scheme, "uses_subregion", False
        )


class TestCacheIdentity:
    def test_builtin_signatures_pinned(self):
        for name, expected in PINNED_SIGNATURES.items():
            assert common._config_signature(config_for(name)) == expected, name

    def test_perfect_l2_tlb_signature_matches_full_config(self):
        assert (
            common._config_signature(config_for("perfect-l2-tlb"))
            == PINNED_PERFECT_L2
        )
        assert (
            common._config_signature(table1_config().with_perfect_l2_tlb())
            == PINNED_PERFECT_L2
        )

    def test_all_schemes_have_distinct_cache_keys(self):
        signatures = {}
        for name in scheme_names():
            signature = common._config_signature(config_for(name))
            assert signature not in signatures, (
                f"{name} collides with {signatures.get(signature)}"
            )
            signatures[signature] = name

    def test_subregion_section_does_not_perturb_builtin_signatures(self):
        # The subregion config section is only serialized when it is
        # non-default or the scheme uses it — adding it must not have
        # moved any existing arm's signature.
        config = table1_config()
        assert config.subregion == SubregionConfig()
        assert (
            common._config_signature(config) == PINNED_SIGNATURES["baseline"]
        )


class TestPerfectL2Fix:
    def test_config_for_sets_perfect_l2(self):
        assert config_for("perfect-l2-tlb").tlb.perfect_l2

    def test_apply_scheme_sets_perfect_l2(self):
        assert apply_scheme(table1_config(), "perfect-l2-tlb").tlb.perfect_l2

    def test_cli_build_config_sets_perfect_l2(self):
        from repro.cli import _build_config

        args = argparse.Namespace(scheme="perfect-l2-tlb")
        assert _build_config(args).tlb.perfect_l2

    def test_service_expand_spec_sets_perfect_l2(self):
        from repro.service.jobs import expand_spec, validate_spec

        spec = validate_spec(
            {"apps": ["GUPS"], "schemes": ["perfect-l2-tlb"], "scale": 0.05}
        )
        (job,) = expand_spec(spec)
        assert job.config.tlb.perfect_l2


class TestEngineGating:
    def test_builtins_support_both_engines(self):
        for member in TxScheme:
            assert engine_supported(member.value, "event")
            assert engine_supported(member.value, "vectorized")

    def test_fallback_plugin_supports_vectorized(self):
        # "fallback" means the vectorized engine transparently routes the
        # scheme through the event-exact path — still a supported engine.
        assert engine_supported("subregion-coalescing", "vectorized")

    def test_unsupported_plugin_rejects_vectorized_engine(self):
        register_plugin(
            "event-only", "test-only scheme", vectorized="unsupported"
        )
        try:
            assert engine_supported("event-only", "event")
            assert not engine_supported("event-only", "vectorized")
            config = config_for("event-only")
            with pytest.raises(ValueError, match="does not support engine"):
                config.with_engine("vectorized")
        finally:
            unregister("event-only")

    def test_service_rejects_unsupported_engine_combo(self):
        from repro.service.jobs import SpecError, validate_spec

        register_plugin(
            "event-only", "test-only scheme", vectorized="unsupported"
        )
        try:
            with pytest.raises(SpecError, match="does not support engine"):
                validate_spec(
                    {
                        "apps": ["GUPS"],
                        "schemes": ["event-only"],
                        "engine": "vectorized",
                    }
                )
        finally:
            unregister("event-only")

    def test_analytical_gating(self):
        from repro.sim.analytical import FunctionalReachModel

        config = config_for("subregion-coalescing")
        with pytest.raises(ValueError, match="analytical"):
            FunctionalReachModel(config)


class TestSchemeUniverseAgreement:
    """Regression for the scheme-list drift bug: every surface that
    enumerates schemes must agree with the registry."""

    def test_service_valid_schemes_is_registry(self):
        from repro.service.jobs import valid_schemes

        assert valid_schemes() == scheme_names()

    def test_cli_argparse_choices_are_registry(self):
        from repro.cli import build_parser

        parser = build_parser()
        sub = next(
            action
            for action in parser._actions
            if isinstance(action, argparse._SubParsersAction)
        )
        for command, option in (("run", "--scheme"), ("compare", "--schemes")):
            sub_parser = sub.choices[command]
            action = next(
                a for a in sub_parser._actions if option in a.option_strings
            )
            assert list(action.choices) == scheme_names(), (command, option)

    def test_estimate_figures_subset_of_registry(self):
        from repro.cli import _ESTIMATE_FIGURES

        for names in _ESTIMATE_FIGURES.values():
            assert set(names) <= set(scheme_names())

    def test_fig13_grid_matches_tag(self):
        from repro.experiments.fig13_main import SCHEMES

        assert SCHEMES == tuple(
            spec.scheme for spec in schemes_for_tag("fig13-victim")
        )
        # The tag order is pinned to the historical tuple: changing it
        # reorders every fig13/fig14 sweep job list.
        assert [s.value for s in SCHEMES] == ["lds", "icache", "icache+lds"]

    def test_fig14_grid_matches_tag(self):
        from repro.experiments.fig14_sharing_walks_pagesize import _SCHEMES_14B

        assert _SCHEMES_14B == tuple(
            spec.scheme for spec in schemes_for_tag("fig13-victim")
        )

    def test_fig16c_grid_membership_from_tag(self):
        from repro.experiments.fig16_sensitivity import _FIG16C_SCHEMES

        assert set(_FIG16C_SCHEMES) == {
            spec.scheme for spec in schemes_for_tag("fig16-ducati")
        }
        assert [s.value for s in _FIG16C_SCHEMES] == [
            "ducati", "icache+lds", "ducati+icache+lds",
        ]

    def test_subregion_grid_from_tag(self):
        from repro.experiments.fig_subregion import GRID_SPECS

        assert [spec.name for spec in GRID_SPECS] == [
            "baseline", "icache+lds", "subregion-coalescing",
        ]
        assert GRID_SPECS == tuple(schemes_for_tag("subregion-grid"))

    def test_sweep_grid_registered(self):
        from repro.experiments.report import SWEEP_GRIDS

        assert "subregion" in SWEEP_GRIDS

    def test_every_spec_resolves_and_builds(self):
        for spec in schemes():
            config = config_for(spec.name)
            assert config.scheme.value == spec.name


class TestConfigRoundtrip:
    def test_plugin_config_roundtrips_through_json(self):
        from repro.config_io import config_from_json, config_to_json

        config = config_for("subregion-coalescing")
        restored = config_from_json(config_to_json(config))
        assert restored == config
        assert restored.scheme.value == "subregion-coalescing"
        assert common._config_signature(restored) == common._config_signature(
            config
        )

    def test_roundtrip_does_not_reapply_transform(self):
        from repro.config_io import config_from_json, config_to_json

        # A payload that names perfect-l2-tlb but (unusually) carries
        # perfect_l2=False must roundtrip exactly — deserialization
        # restores the payload, it does not re-run configure transforms.
        config = table1_config(TxScheme.PERFECT_L2_TLB)
        assert not config.tlb.perfect_l2
        restored = config_from_json(config_to_json(config))
        assert restored == config
