"""SubregionStore unit behaviour + end-to-end engine equivalence."""

from __future__ import annotations

import pytest

from repro.config import SubregionConfig, table1_config
from repro.pagetable.page_table import PageTable
from repro.schemes import config_for
from repro.schemes.subregion import SubregionStore
from repro.sim.stats import Stats
from repro.system import GPUSystem
from repro.workloads.registry import make_app


def make_store(page_table=None, **overrides):
    config = SubregionConfig(**overrides)
    table = page_table if page_table is not None else PageTable()
    return SubregionStore(config, table, stats=Stats()), table


def map_run(table, start_vpn, count, vmid=0):
    """First-touch ``count`` consecutive pages; the deterministic
    allocator gives them a uniform +7 frame stride."""

    return [table.translate(vmid, start_vpn + i) for i in range(count)]


class TestConfigValidation:
    def test_subregion_pages_must_be_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            make_store(subregion_pages=6)

    def test_subregion_pages_must_be_at_least_two(self):
        with pytest.raises(ValueError, match="power of two"):
            make_store(subregion_pages=1)

    def test_min_run_bounds(self):
        with pytest.raises(ValueError, match="min_run"):
            make_store(min_run=1)
        with pytest.raises(ValueError, match="min_run"):
            make_store(subregion_pages=8, min_run=9)


class TestDetection:
    def test_uniform_stride_run_installs_and_hits(self):
        store, table = make_store(subregion_pages=8, min_run=2)
        pfns = map_run(table, start_vpn=8, count=4)
        run = store.observe((0, 0, 8), pfns[0])
        assert run is not None
        assert run.length == 4
        assert run.stride == pfns[1] - pfns[0]
        # Every covered page resolves from the coalesced entry.
        for i in range(4):
            entry, latency = store.lookup((0, 0, 8 + i), anchor=0)
            assert entry is not None
            assert entry.pfn == pfns[i]
            assert latency == store.config.lookup_latency
        assert store.stats.get("subregion.hits") == 4

    def test_uncovered_page_misses(self):
        store, table = make_store(subregion_pages=8, min_run=2)
        pfns = map_run(table, start_vpn=8, count=2)
        assert store.observe((0, 0, 8), pfns[0]) is not None
        entry, _ = store.lookup((0, 0, 12), anchor=0)
        assert entry is None
        assert store.stats.get("subregion.misses") == 1

    def test_isolated_page_does_not_install(self):
        store, table = make_store()
        pfn = table.translate(0, 40)
        assert store.observe((0, 0, 40), pfn) is None
        assert len(store) == 0

    def test_min_run_respected(self):
        store, table = make_store(subregion_pages=8, min_run=4)
        pfns = map_run(table, start_vpn=16, count=3)
        assert store.observe((0, 0, 16), pfns[0]) is None
        table.translate(0, 19)
        assert store.observe((0, 0, 16), pfns[0]) is not None

    def test_non_uniform_stride_truncates_run(self):
        table = PageTable()
        # Interleave two regions' first touches so vpns 8..11 do NOT get
        # consecutive frames everywhere: 8,9 are contiguous (+7), then a
        # foreign allocation breaks the stride before 10.
        a = table.translate(0, 8)
        b = table.translate(0, 9)
        table.translate(0, 100)
        table.translate(0, 10)
        store = SubregionStore(SubregionConfig(), table, stats=Stats())
        run = store.observe((0, 0, 8), a)
        assert run is not None
        assert run.length == 2
        assert run.stride == b - a

    def test_run_never_crosses_subregion_boundary(self):
        store, table = make_store(subregion_pages=4, min_run=2)
        pfns = map_run(table, start_vpn=2, count=6)  # spans vpn 2..7
        run = store.observe((0, 0, 3), pfns[1])
        assert run is not None
        # Subregion [0, 4) only: vpns 2 and 3.
        assert run.base_vpn == 2
        assert run.length == 2

    def test_observe_is_read_only_on_page_table(self):
        store, table = make_store()
        map_run(table, start_vpn=8, count=3)
        mapped_before = len(table)
        store.observe((0, 0, 8), table.translate(0, 8))
        assert len(table) == mapped_before

    def test_vmid_isolation(self):
        store, table = make_store()
        pfns = map_run(table, start_vpn=8, count=3, vmid=1)
        assert store.observe((1, 0, 8), pfns[0]) is not None
        entry, _ = store.lookup((0, 0, 8), anchor=0)
        assert entry is None


class TestInvalidation:
    def test_shootdown_drops_covering_run(self):
        store, table = make_store()
        pfns = map_run(table, start_vpn=8, count=4)
        store.observe((0, 0, 8), pfns[0])
        assert store.invalidate_vpn(9) == 1
        entry, _ = store.lookup((0, 0, 8), anchor=0)
        assert entry is None
        assert store.stats.get("subregion.invalidations") == 1

    def test_shootdown_outside_run_is_noop(self):
        store, table = make_store()
        pfns = map_run(table, start_vpn=8, count=4)
        store.observe((0, 0, 8), pfns[0])
        assert store.invalidate_vpn(400) == 0
        entry, _ = store.lookup((0, 0, 8), anchor=0)
        assert entry is not None

    def test_system_shootdown_reaches_store(self):
        system = GPUSystem(config_for("subregion-coalescing"))
        table = system.page_table
        pfns = [table.translate(0, 8 + i) for i in range(4)]
        system.subregion.observe((0, 0, 8), pfns[0])
        assert len(system.subregion) == 1
        system.shootdown(9)
        assert len(system.subregion) == 0


class TestCapacity:
    def test_lru_eviction_at_capacity(self):
        store, table = make_store(subregion_pages=2, min_run=2, entries=2)
        for region in range(3):
            base = region * 2
            pfns = map_run(table, start_vpn=base, count=2)
            store.observe((0, 0, base), pfns[0])
        assert len(store) == 2
        assert store.stats.get("subregion.evictions") == 1
        # Region 0 was least recently used and must be gone.
        entry, _ = store.lookup((0, 0, 0), anchor=0)
        assert entry is None

    def test_replacement_within_region(self):
        store, table = make_store(subregion_pages=4, min_run=2)
        pfns = map_run(table, start_vpn=0, count=2)
        store.observe((0, 0, 0), pfns[0])
        table.translate(0, 2)
        table.translate(0, 3)
        run = store.observe((0, 0, 0), pfns[0])
        assert run is not None and run.length == 4
        assert len(store) == 1
        assert store.stats.get("subregion.replacements") == 1


class TestEndToEnd:
    def test_scheme_reduces_page_walks(self):
        scale = 0.05
        app = make_app("ATAX", scale=scale, page_size=4096)
        base = GPUSystem(table1_config()).run(app)
        app = make_app("ATAX", scale=scale, page_size=4096)
        sub = GPUSystem(config_for("subregion-coalescing")).run(app)
        assert sub.counter("tx_serviced_by.subregion") > 0
        assert sub.counter("iommu.walks") < base.counter("iommu.walks")

    def test_event_and_vectorized_engines_identical(self):
        # vectorized="fallback": the fast path must detect the scheme and
        # route through the event-exact path, byte-identical.
        scale = 0.03
        config = config_for("subregion-coalescing")
        app = make_app("GUPS", scale=scale, page_size=4096)
        event = GPUSystem(config.with_engine("event")).run(app)
        app = make_app("GUPS", scale=scale, page_size=4096)
        fast = GPUSystem(config.with_engine("vectorized")).run(app)
        assert event.cycles == fast.cycles
        assert event.counters == fast.counters
