"""Unit tests for the analysis package: tables, charts, summaries."""

import pytest

from repro.analysis.charts import bar_chart, series_chart
from repro.analysis.summary import compare_schemes, counter_diff, speedup_summary
from repro.analysis.tables import format_csv, format_markdown, format_plain
from repro.sim.results import SimResult

ROWS = [
    {"app": "ATAX", "speedup": 2.1774},
    {"app": "SRAD", "speedup": 0.9941, "note": "flat"},
]


def result(cycles, **counters):
    return SimResult(app_name="a", scheme="s", cycles=cycles, counters=counters)


class TestTables:
    def test_markdown_shape(self):
        text = format_markdown(ROWS)
        lines = text.splitlines()
        assert lines[0] == "| app | speedup | note |"
        assert "2.177" in lines[2]

    def test_markdown_explicit_columns(self):
        text = format_markdown(ROWS, columns=["speedup"])
        assert "app" not in text

    def test_plain_alignment(self):
        text = format_plain(ROWS)
        lines = text.splitlines()
        assert len({len(line) for line in lines[:2]}) == 1  # header == divider

    def test_plain_missing_cells_blank(self):
        text = format_plain(ROWS)
        assert "flat" in text

    def test_csv_round_trip(self):
        import csv
        import io

        text = format_csv(ROWS)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert parsed[0]["app"] == "ATAX"
        assert float(parsed[0]["speedup"]) == 2.1774

    def test_float_format_override(self):
        text = format_plain(ROWS, float_format=".1f")
        assert "2.2" in text


class TestCharts:
    def test_bar_chart_contains_labels_and_values(self):
        text = bar_chart({"ATAX": 2.18, "LOW": 0.4}, baseline=1.0)
        assert "ATAX" in text and "2.180" in text
        assert "|" in text  # baseline marker on the clearly-shorter bar

    def test_bar_lengths_scale(self):
        text = bar_chart({"big": 4.0, "small": 1.0}, width=40)
        big, small = text.splitlines()
        assert big.count("█") > 3 * small.count("█")

    def test_bar_chart_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})

    def test_bar_chart_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({"a": 0.0})

    def test_series_chart_shape(self):
        text = series_chart([(512, 1.0), (8192, 1.5), ("2M", 2.6)], height=5)
        lines = text.splitlines()
        assert len(lines) == 5 + 3  # bars + divider + labels + numbers
        assert "2M" in lines[-2]

    def test_series_chart_tallest_column_full(self):
        text = series_chart([("a", 1.0), ("b", 2.0)], height=4)
        top = text.splitlines()[0]
        assert "█" in top


class TestSpeedupSummary:
    def test_basic(self):
        summary = speedup_summary(
            {"A": result(200), "B": result(100)},
            {"A": result(100), "B": result(100)},
        )
        assert summary["per_app"]["A"] == 2.0
        assert summary["best"] == "A"
        assert summary["worst"] == "B"
        assert summary["gmean"] == pytest.approx(2.0 ** 0.5)

    def test_categories(self):
        summary = speedup_summary(
            {"A": result(300), "B": result(100)},
            {"A": result(100), "B": result(100)},
            categories={"A": "H", "B": "L"},
        )
        assert summary["category_gmeans"]["H"] == pytest.approx(3.0)
        assert summary["category_gmeans"]["L"] == 1.0

    def test_mismatched_apps_rejected(self):
        with pytest.raises(ValueError):
            speedup_summary({"A": result(1)}, {"B": result(1)})


class TestCompareSchemes:
    def test_rows(self):
        rows = compare_schemes(
            {
                "baseline": {"A": result(200)},
                "lds": {"A": result(100)},
                "icache": {"A": result(50)},
            }
        )
        assert rows == [{"app": "A", "lds": 2.0, "icache": 4.0}]

    def test_missing_baseline_rejected(self):
        with pytest.raises(ValueError):
            compare_schemes({"lds": {}})


class TestCounterDiff:
    def test_reports_largest_changes_first(self):
        before = result(100, walks=100.0, hits=1000.0)
        after = result(100, walks=10.0, hits=990.0)
        diffs = counter_diff(before, after)
        assert diffs[0][0] == "walks"
        assert diffs[0][3] == pytest.approx(-0.9)

    def test_prefix_filter(self):
        before = result(100, **{"a.x": 1.0, "b.y": 1.0})
        after = result(100, **{"a.x": 2.0, "b.y": 2.0})
        diffs = counter_diff(before, after, prefixes=["a."])
        assert [d[0] for d in diffs] == ["a.x"]

    def test_threshold(self):
        before = result(100, x=1000.0)
        after = result(100, x=1001.0)
        assert counter_diff(before, after, min_relative_change=0.01) == []
