"""Unit tests for the Figure 12 victim fill flows."""

import pytest

from repro.config import ICacheConfig, ICacheTxConfig, LDSConfig, LDSTxConfig
from repro.core.fill_flow import VictimFillFlow
from repro.core.reconfig_icache import ReconfigurableICache
from repro.core.reconfig_lds import LDSTxCache
from repro.gpu.lds import LocalDataShare
from repro.sim.stats import Stats
from repro.tlb.base import TranslationEntry
from repro.tlb.set_assoc import SetAssociativeTLB


def entry(vpn):
    return TranslationEntry(vpn=vpn, pfn=vpn + 1)


@pytest.fixture
def l2_tlb():
    return SetAssociativeTLB(512, 16)


@pytest.fixture
def lds_tx():
    lds = LocalDataShare(LDSConfig(), LDSTxConfig())
    return LDSTxCache(lds, LDSTxConfig())


@pytest.fixture
def icache_tx():
    return ReconfigurableICache(ICacheConfig(), ICacheTxConfig())


class TestBaselineFlow:
    def test_victims_go_to_l2_tlb(self, l2_tlb):
        flow = VictimFillFlow(l2_tlb)
        e = entry(5)
        flow.fill(e, 0)
        assert l2_tlb.lookup(e.key) == e
        assert flow.stats.get("fill_flow.to_l2_tlb") == 1


class TestLdsFirstFlow:
    def test_flow_1_2_4_install_without_victim(self, l2_tlb, lds_tx):
        flow = VictimFillFlow(l2_tlb, lds_tx=lds_tx)
        flow.fill(entry(5), 0)
        assert flow.stats.get("fill_flow.lds_installed") == 1
        assert l2_tlb.lookup(entry(5).key) is None  # stopped at the LDS

    def test_flow_with_lds_victim_cascades(self, l2_tlb, lds_tx):
        flow = VictimFillFlow(l2_tlb, lds_tx=lds_tx)
        stride = lds_tx.num_segments
        for way in range(4):  # fourth fill displaces the segment LRU
            flow.fill(entry(5 + way * stride), 0)
        assert flow.stats.get("fill_flow.lds_installed_with_victim") == 1
        # The displaced translation landed in the L2 TLB (no I-cache arm).
        assert l2_tlb.lookup(entry(5).key) is not None

    def test_flow_1_2_3_bypass_on_lds_mode(self, l2_tlb, lds_tx):
        lds_tx.lds.allocate(lds_tx.lds.config.size_bytes)
        flow = VictimFillFlow(l2_tlb, lds_tx=lds_tx)
        flow.fill(entry(5), 0)
        assert flow.stats.get("fill_flow.lds_bypassed") == 1
        assert l2_tlb.lookup(entry(5).key) is not None


class TestICacheFlow:
    def test_icache_installed(self, l2_tlb, icache_tx):
        flow = VictimFillFlow(l2_tlb, icache_tx=icache_tx)
        flow.fill(entry(7), 0)
        assert flow.stats.get("fill_flow.icache_installed") == 1
        assert icache_tx.tx_entry_count() == 1

    def test_icache_bypass_when_line_holds_instructions(self, l2_tlb, icache_tx):
        for line_addr in range(icache_tx.num_lines):
            icache_tx.fetch(line_addr, 0)
        flow = VictimFillFlow(l2_tlb, icache_tx=icache_tx)
        flow.fill(entry(7), 0)
        assert flow.stats.get("fill_flow.icache_bypassed") == 1
        assert l2_tlb.lookup(entry(7).key) is not None

    def test_icache_victim_forwarded_to_l2(self, l2_tlb, icache_tx):
        flow = VictimFillFlow(l2_tlb, icache_tx=icache_tx)
        stride = icache_tx.num_lines
        for index in range(9):  # ninth displaces the line LRU
            flow.fill(entry(3 + index * stride), 0)
        assert flow.stats.get("fill_flow.icache_installed_with_victim") == 1
        assert l2_tlb.lookup(entry(3).key) is not None


class TestCombinedFlow:
    def test_lds_victim_lands_in_icache(self, l2_tlb, lds_tx, icache_tx):
        flow = VictimFillFlow(l2_tlb, lds_tx=lds_tx, icache_tx=icache_tx)
        stride = lds_tx.num_segments
        for way in range(4):
            flow.fill(entry(5 + way * stride), 0)
        # The LDS victim continued into the I-cache, not the L2 TLB.
        assert icache_tx.tx_entry_count() == 1
        assert l2_tlb.lookup(entry(5).key) is None
        found, _ = icache_tx.tx_lookup(entry(5).key, 0)
        assert found is not None

    def test_victim_counter(self, l2_tlb, lds_tx, icache_tx):
        flow = VictimFillFlow(l2_tlb, lds_tx=lds_tx, icache_tx=icache_tx)
        for vpn in range(10):
            flow.fill(entry(vpn), 0)
        assert flow.stats.get("fill_flow.victims") == 10

    def test_l2_tlb_victim_spills_to_ducati(self, lds_tx):
        class FakeDucati:
            def __init__(self):
                self.filled = []

            def fill(self, entry):
                self.filled.append(entry)

        tiny_l2 = SetAssociativeTLB(2, 2)
        ducati = FakeDucati()
        flow = VictimFillFlow(tiny_l2, ducati=ducati)
        for vpn in range(3):
            flow.fill(entry(vpn), 0)
        assert len(ducati.filled) == 1
