"""Unit tests for the reconfigurable I-cache (Section 4.3)."""

import pytest

from repro.config import ICacheConfig, ICacheReplacement, ICacheTxConfig
from repro.core.reconfig_icache import ReconfigurableICache
from repro.tlb.base import TranslationEntry
from repro.tlb.set_assoc import SetAssociativeTLB


def entry(vpn, vmid=0):
    return TranslationEntry(vpn=vpn, pfn=vpn + 1, vmid=vmid)


def make(replacement=ICacheReplacement.INSTRUCTION_AWARE, tx_per_line=8,
         flush=False):
    tx_config = ICacheTxConfig(
        tx_per_line=tx_per_line,
        replacement=replacement,
        flush_on_kernel_boundary=flush,
    )
    return ReconfigurableICache(ICacheConfig(), tx_config, name="ic")


class TestTxFillAndLookup:
    def test_fill_into_invalid_line(self):
        icache = make()
        accepted, victim = icache.tx_fill(entry(7), 0)
        assert accepted and victim is None
        assert icache.tx_entry_count() == 1

    def test_lookup_hit_removes(self):
        icache = make()
        e = entry(7)
        icache.tx_fill(e, 0)
        found, latency = icache.tx_lookup(e.key, 0)
        assert found == e
        assert icache.tx_entry_count() == 0
        assert latency >= ICacheTxConfig().tx_hit_latency

    def test_mode_bit_miss_is_cheap(self):
        icache = make()
        found, latency = icache.tx_lookup(entry(3).key, 0)
        assert found is None
        assert latency <= ICacheTxConfig().tx_probe_latency

    def test_tx_mode_tag_mismatch_costs_serial_compare(self):
        icache = make()
        icache.tx_fill(entry(3), 0)
        other = entry(3 + icache.num_lines)  # same line, different tag
        found, latency = icache.tx_lookup(other.key, 10)
        assert found is None
        assert latency >= ICacheTxConfig().tx_tag_latency

    def test_direct_mapped_packing_eight_per_line(self):
        icache = make()
        base = 11
        for index in range(8):
            accepted, victim = icache.tx_fill(entry(base + index * icache.num_lines), 0)
            assert accepted and victim is None
        accepted, victim = icache.tx_fill(entry(base + 8 * icache.num_lines), 0)
        assert accepted
        assert victim is not None
        assert victim.vpn == base  # LRU sub-entry

    def test_one_tx_per_line_variant(self):
        icache = make(tx_per_line=1)
        a = entry(5)
        b = entry(5 + icache.num_lines)
        icache.tx_fill(a, 0)
        accepted, victim = icache.tx_fill(b, 0)
        assert accepted
        assert victim == a


class TestReplacementPolicies:
    def test_instruction_aware_tx_never_evicts_instructions(self):
        icache = make(ICacheReplacement.INSTRUCTION_AWARE)
        # Fill every line of the cache with instructions.
        for line_addr in range(icache.num_lines):
            icache.fetch(line_addr, 0)
        accepted, victim = icache.tx_fill(entry(4), 0)
        assert not accepted
        assert icache.stats.get("ic.tx_bypass_ic_mode") == 1

    def test_naive_tx_claims_instruction_lines(self):
        icache = make(ICacheReplacement.NAIVE)
        for line_addr in range(icache.num_lines):
            icache.fetch(line_addr, 0)
        accepted, _ = icache.tx_fill(entry(4), 0)
        assert accepted
        assert icache.stats.get("ic.instructions_evicted_by_tx") == 1

    def test_instruction_fill_prefers_tx_victims(self):
        icache = make(ICacheReplacement.INSTRUCTION_AWARE)
        config = ICacheConfig()
        # Occupy one full set: ways-1 instruction lines + 1 tx line.
        set_index = 0
        for way in range(config.ways - 1):
            icache.fetch(set_index + way * config.num_sets, now=way)
        # Tx entry whose direct-mapped line falls in set 0's remaining way.
        tx_line_index = (config.ways - 1) * config.num_sets  # set 0, way 7
        icache.tx_fill(entry(tx_line_index), 0)
        assert icache.tx_entry_count() == 1
        # A new instruction line in set 0 must take the Tx line, not the
        # LRU instruction line.
        icache.fetch(set_index + config.ways * config.num_sets, now=10_000)
        assert icache.tx_entry_count() == 0
        assert icache.stats.get("ic.tx_dropped_by_ifill") == 1

    def test_ifill_spills_tx_entries_to_l2_tlb(self):
        icache = make(ICacheReplacement.INSTRUCTION_AWARE)
        l2 = SetAssociativeTLB(512, 16)
        icache.spill_target = l2
        config = ICacheConfig()
        for way in range(config.ways - 1):
            icache.fetch(way * config.num_sets, now=way)
        doomed = entry((config.ways - 1) * config.num_sets)
        icache.tx_fill(doomed, 0)
        icache.fetch(config.ways * config.num_sets, now=10_000)
        assert l2.lookup(doomed.key) is not None


class TestKernelBoundaryFlush:
    def test_flush_on_different_kernel(self):
        icache = make(flush=True)
        icache.fetch(0, 0)
        icache.on_kernel_boundary(next_kernel_same=False)
        assert icache.valid_instruction_lines() == 0

    def test_flush_suppressed_for_back_to_back(self):
        icache = make(flush=True)
        icache.fetch(0, 0)
        icache.on_kernel_boundary(next_kernel_same=True)
        assert icache.valid_instruction_lines() == 1
        assert icache.stats.get("ic.flush_suppressed") == 1

    def test_flush_preserves_tx_lines(self):
        icache = make(flush=True)
        icache.tx_fill(entry(9), 0)
        icache.fetch(0, 0)
        icache.on_kernel_boundary(next_kernel_same=False)
        assert icache.tx_entry_count() == 1

    def test_no_flush_when_disabled(self):
        icache = make(flush=False)
        icache.fetch(0, 0)
        icache.on_kernel_boundary(next_kernel_same=False)
        assert icache.valid_instruction_lines() == 1

    def test_flushed_lines_become_tx_capacity(self):
        icache = make(flush=True)
        icache.fetch(4, 0)  # line 4 now holds instructions
        denied, _ = icache.tx_fill(entry(4), 0)
        assert not denied
        icache.on_kernel_boundary(next_kernel_same=False)
        accepted, _ = icache.tx_fill(entry(4), 0)
        assert accepted


class TestCompressionInteraction:
    def test_far_tag_evicts_incompatible_resident(self):
        icache = make()
        near = entry(3)
        far = entry(3 + (1 << 25) * icache.num_lines)
        icache.tx_fill(near, 0)
        accepted, victim = icache.tx_fill(far, 0)
        assert accepted
        assert victim == near
        assert icache.stats.get("ic.tx_compression_evictions") == 1


class TestShootdown:
    def test_invalidate_vpn(self):
        icache = make()
        icache.tx_fill(entry(12), 0)
        assert icache.invalidate_vpn(12) == 1
        assert icache.tx_entry_count() == 0

    def test_invalidate_absent(self):
        assert make().invalidate_vpn(5) == 0


class TestAccounting:
    def test_peak_tx_entries(self):
        icache = make()
        for index in range(6):
            icache.tx_fill(entry(index), 0)
        icache.tx_lookup(entry(0).key, 0)
        assert icache.peak_tx_entries == 6
        assert icache.tx_entry_count() == 5
