"""Unit tests for the shared-fill duplication filter (future-work extension)."""

from dataclasses import replace

from repro.config import ICacheConfig, ICacheTxConfig, LDSConfig, LDSTxConfig, table1_config
from repro.core.fill_flow import VictimFillFlow
from repro.core.reconfig_icache import ReconfigurableICache
from repro.core.reconfig_lds import LDSTxCache
from repro.core.translation import SharingTracker
from repro.gpu.lds import LocalDataShare
from repro.tlb.base import TranslationEntry
from repro.tlb.set_assoc import SetAssociativeTLB


def entry(vpn):
    return TranslationEntry(vpn=vpn, pfn=vpn + 1)


def make_flow(dedup=True):
    lds_tx = LDSTxCache(LocalDataShare(LDSConfig(), LDSTxConfig()), LDSTxConfig())
    icache_tx = ReconfigurableICache(ICacheConfig(), ICacheTxConfig())
    sharing = SharingTracker()
    flow = VictimFillFlow(
        SetAssociativeTLB(512, 16),
        lds_tx=lds_tx,
        icache_tx=icache_tx,
        sharing=sharing,
        dedup_shared=dedup,
    )
    return flow, lds_tx, icache_tx, sharing


class TestSharingTrackerIsShared:
    def test_single_cu_not_shared(self):
        sharing = SharingTracker()
        sharing.record(0, 5)
        assert not sharing.is_shared(5)

    def test_two_cus_shared(self):
        sharing = SharingTracker()
        sharing.record(0, 5)
        sharing.record(3, 5)
        assert sharing.is_shared(5)

    def test_unknown_page(self):
        assert not SharingTracker().is_shared(99)


class TestDedupFilter:
    def test_private_page_goes_to_lds(self):
        flow, lds_tx, icache_tx, sharing = make_flow()
        sharing.record(0, 7)
        flow.fill(entry(7), 0)
        assert lds_tx.entry_count == 1
        assert icache_tx.tx_entry_count() == 0

    def test_shared_page_skips_lds(self):
        flow, lds_tx, icache_tx, sharing = make_flow()
        sharing.record(0, 7)
        sharing.record(1, 7)
        flow.fill(entry(7), 0)
        assert lds_tx.entry_count == 0
        assert icache_tx.tx_entry_count() == 1
        assert flow.stats.get("fill_flow.lds_skipped_shared") == 1

    def test_filter_disabled_by_default(self):
        flow, lds_tx, icache_tx, sharing = make_flow(dedup=False)
        sharing.record(0, 7)
        sharing.record(1, 7)
        flow.fill(entry(7), 0)
        assert lds_tx.entry_count == 1  # no filtering

    def test_config_flag_default_off(self):
        assert table1_config().dedup_shared_fills is False
        enabled = replace(table1_config(), dedup_shared_fills=True)
        assert enabled.dedup_shared_fills
