"""Unit tests for the reconfigurable LDS Tx victim cache (Section 4.2)."""

import pytest

from repro.config import LDSConfig, LDSTxConfig
from repro.core.reconfig_lds import LDSTxCache
from repro.gpu.lds import LocalDataShare, SegmentMode
from repro.tlb.base import TranslationEntry


@pytest.fixture
def lds():
    return LocalDataShare(LDSConfig(), LDSTxConfig(), name="lds")


@pytest.fixture
def tx(lds):
    return LDSTxCache(lds, LDSTxConfig(), name="lds_tx")


def entry(vpn, vmid=0):
    return TranslationEntry(vpn=vpn, pfn=vpn + 1, vmid=vmid)


class TestFillAndLookup:
    def test_fill_into_free_segment(self, tx, lds):
        accepted, victim = tx.fill(entry(10), now=0)
        assert accepted and victim is None
        assert lds.mode[10 % lds.num_segments] == SegmentMode.TX
        assert tx.entry_count == 1

    def test_lookup_hit_removes_entry(self, tx):
        e = entry(10)
        tx.fill(e, 0)
        found, latency = tx.lookup(e.key, 0)
        assert found == e
        assert tx.entry_count == 0
        assert latency >= LDSTxConfig().tx_hit_latency

    def test_hit_frees_empty_segment(self, tx, lds):
        e = entry(10)
        tx.fill(e, 0)
        tx.lookup(e.key, 0)
        assert lds.mode[10 % lds.num_segments] == SegmentMode.FREE

    def test_miss_probe_is_cheap(self, tx):
        found, latency = tx.lookup(entry(99).key, 0)
        assert found is None
        assert latency <= LDSTxConfig().tx_probe_latency

    def test_three_way_associativity(self, tx, lds):
        stride = lds.num_segments
        for way in range(3):
            accepted, victim = tx.fill(entry(5 + way * stride), 0)
            assert accepted and victim is None
        accepted, victim = tx.fill(entry(5 + 3 * stride), 0)
        assert accepted
        assert victim is not None  # LRU displaced
        assert victim.vpn == 5

    def test_lru_refresh_via_refill(self, tx, lds):
        stride = lds.num_segments
        entries = [entry(5 + way * stride) for way in range(3)]
        for e in entries:
            tx.fill(e, 0)
        tx.fill(entries[0], 0)  # refresh
        _, victim = tx.fill(entry(5 + 3 * stride), 0)
        assert victim == entries[1]

    def test_fill_rejected_for_lds_mode_segment(self, tx, lds):
        lds.allocate(lds.config.size_bytes)  # everything app-owned
        accepted, victim = tx.fill(entry(10), 0)
        assert not accepted and victim is None
        assert tx.stats.get("lds_tx.bypass_lds_mode") == 1

    def test_direct_mapped_segment_indexing(self, tx, lds):
        a, b = entry(3), entry(3 + lds.num_segments)
        tx.fill(a, 0)
        tx.fill(b, 0)
        # Both live in the same segment (set).
        assert len(tx._segments) == 1


class TestModeInteractions:
    def test_allocation_drops_tx_entries(self, tx, lds):
        tx.fill(entry(0), 0)  # segment 0
        lds.allocate(32)  # claims segment 0
        assert tx.entry_count == 0
        assert tx.stats.get("lds_tx.dropped_by_allocation") == 1

    def test_lookup_after_reclaim_misses(self, tx, lds):
        e = entry(0)
        tx.fill(e, 0)
        lds.allocate(32)
        found, _ = tx.lookup(e.key, 0)
        assert found is None

    def test_capacity_shrinks_with_allocations(self, tx, lds):
        full = tx.capacity_entries
        lds.allocate(lds.config.size_bytes // 2)
        assert tx.capacity_entries == full // 2


class TestCompressionInteraction:
    def test_incompatible_tag_evicts_resident(self, tx, lds):
        stride = lds.num_segments
        near = entry(5)
        # Same segment, tag distance far beyond the 16-bit delta.
        far = entry(5 + (1 << 30))
        tx.fill(near, 0)
        accepted, victim = tx.fill(far, 0)
        assert accepted
        assert victim == near
        assert tx.stats.get("lds_tx.compression_evictions") == 1

    def test_compatible_tags_coexist(self, tx, lds):
        stride = lds.num_segments
        tx.fill(entry(5), 0)
        accepted, victim = tx.fill(entry(5 + stride), 0)
        assert accepted and victim is None


class TestShootdown:
    def test_invalidate_vpn(self, tx):
        tx.fill(entry(10), 0)
        assert tx.invalidate_vpn(10) == 1
        assert tx.entry_count == 0

    def test_invalidate_missing_vpn(self, tx):
        assert tx.invalidate_vpn(123) == 0


class TestBookkeeping:
    def test_peak_entries(self, tx, lds):
        stride = lds.num_segments
        for index in range(5):
            tx.fill(entry(index), 0)
        tx.lookup(entry(0).key, 0)
        assert tx.peak_entries == 5
        assert tx.entry_count == 4

    def test_segment_size_64_gives_six_ways(self, lds):
        config = LDSTxConfig(segment_bytes=64)
        assert config.ways_per_segment == 6
