"""Property-based tests on the victim-chain invariants (Figure 12).

The central correctness property of the reconfigurable design: a
translation entry is never *duplicated* along one CU's victim chain
(L1 TLB / LDS Tx / I-cache Tx hold disjoint key sets), and entries are
only ever dropped through the explicitly-counted loss paths.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TxScheme, table1_config
from repro.core.translation import SharingTracker, TranslationService
from repro.memory.dram import DRAM
from repro.memory.hierarchy import SharedL2
from repro.pagetable.iommu import IOMMU
from repro.pagetable.page_table import PageTable
from repro.sim.engine import Port
from repro.tlb.set_assoc import SetAssociativeTLB
from repro.core.reconfig_icache import ReconfigurableICache
from repro.core.reconfig_lds import LDSTxCache
from repro.gpu.lds import LocalDataShare


def build_service(scheme=TxScheme.ICACHE_LDS):
    config = table1_config(scheme)
    page_table = PageTable()
    shared_l2 = SharedL2(config.data_cache, DRAM(config.dram))
    lds_tx = LDSTxCache(LocalDataShare(config.lds, config.lds_tx), config.lds_tx)
    icache_tx = ReconfigurableICache(config.icache, config.icache_tx)
    l2_tlb = SetAssociativeTLB(config.tlb.l2_entries, config.tlb.l2_ways)
    icache_tx.spill_target = l2_tlb
    return TranslationService(
        0,
        config,
        page_table,
        l2_tlb,
        Port("l2p", units=2, occupancy=2),
        IOMMU(config.iommu, page_table, shared_l2),
        SharingTracker(),
        lds_tx=lds_tx,
        icache_tx=icache_tx,
    )


def chain_keys(service):
    l1 = set(service.l1_tlb._entries)
    lds = {
        key
        for segment in service.lds_tx._segments.values()
        for key in segment
    }
    icache = {
        key
        for cache_set in service.icache_tx._sets
        for line in cache_set
        if line.is_tx and line.tx_entries
        for key in line.tx_entries
    }
    return l1, lds, icache


class TestVictimChainInvariants:
    @given(st.lists(st.integers(0, 4000), min_size=1, max_size=400))
    @settings(max_examples=20, deadline=None)
    def test_no_duplicates_along_the_chain(self, vpns):
        service = build_service()
        for index, vpn in enumerate(vpns):
            service.translate(vpn, index * 3)
        l1, lds, icache = chain_keys(service)
        assert not (l1 & lds)
        assert not (l1 & icache)
        assert not (lds & icache)

    @given(st.lists(st.integers(0, 2000), min_size=1, max_size=300))
    @settings(max_examples=20, deadline=None)
    def test_every_translated_page_still_resolvable(self, vpns):
        # Nothing in the victim chain may make a page *unresolvable*: a
        # re-touch must return the same frame the page table assigned.
        service = build_service()
        expected = {}
        for index, vpn in enumerate(vpns):
            _, pfn = service.translate(vpn, index * 3)
            if vpn in expected:
                assert expected[vpn] == pfn
            expected[vpn] = pfn

    @given(st.lists(st.integers(0, 4000), min_size=1, max_size=300))
    @settings(max_examples=20, deadline=None)
    def test_completion_times_never_precede_request(self, vpns):
        service = build_service()
        for index, vpn in enumerate(vpns):
            now = index * 7
            done, _ = service.translate(vpn, now)
            assert done >= now + service.config.tlb.l1_latency

    @given(
        st.lists(st.integers(0, 4000), min_size=1, max_size=300),
        st.sampled_from([TxScheme.LDS_ONLY, TxScheme.ICACHE_ONLY,
                         TxScheme.ICACHE_LDS]),
    )
    @settings(max_examples=15, deadline=None)
    def test_shootdown_leaves_no_trace(self, vpns, scheme):
        service = build_service(scheme)
        for index, vpn in enumerate(vpns):
            service.translate(vpn, index * 3)
        for vpn in set(vpns):
            service.shootdown(vpn)
        l1, lds, icache = chain_keys(service)
        remaining = {key[2] for key in l1 | lds | icache}
        assert not (remaining & set(vpns))
