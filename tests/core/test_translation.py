"""Unit tests for the per-CU translation service (Section 4.4 lookup path)."""

import pytest

from repro.config import TxScheme, table1_config
from repro.core.reconfig_icache import ReconfigurableICache
from repro.core.reconfig_lds import LDSTxCache
from repro.core.translation import SharingTracker, TranslationService
from repro.gpu.lds import LocalDataShare
from repro.memory.dram import DRAM
from repro.memory.hierarchy import SharedL2
from repro.pagetable.iommu import IOMMU
from repro.pagetable.page_table import PageTable
from repro.sim.engine import Port
from repro.tlb.set_assoc import SetAssociativeTLB


def make_service(scheme=TxScheme.BASELINE, cu_id=0, shared=None):
    config = table1_config(scheme)
    if shared is None:
        page_table = PageTable()
        shared_l2 = SharedL2(config.data_cache, DRAM(config.dram))
        shared = {
            "page_table": page_table,
            "l2_tlb": SetAssociativeTLB(config.tlb.l2_entries, config.tlb.l2_ways),
            "l2_port": Port("l2p", units=2, occupancy=2),
            "iommu": IOMMU(config.iommu, page_table, shared_l2),
            "sharing": SharingTracker(),
        }
    lds_tx = None
    icache_tx = None
    if scheme.uses_lds_tx:
        lds_tx = LDSTxCache(LocalDataShare(config.lds, config.lds_tx), config.lds_tx)
    if scheme.uses_icache_tx:
        icache_tx = ReconfigurableICache(config.icache, config.icache_tx)
    service = TranslationService(
        cu_id,
        config,
        shared["page_table"],
        shared["l2_tlb"],
        shared["l2_port"],
        shared["iommu"],
        shared["sharing"],
        lds_tx=lds_tx,
        icache_tx=icache_tx,
    )
    return service, shared


class TestBaselinePath:
    def test_cold_translation_walks(self):
        service, shared = make_service()
        done, pfn = service.translate(1234, now=0)
        assert pfn == shared["page_table"].translate(0, 1234)
        assert service.stats.get("tx_serviced_by.iommu") == 1
        assert done > table1_config().tlb.l1_latency

    def test_l1_hit_is_fast(self):
        service, _ = make_service()
        service.translate(1234, 0)
        done, _ = service.translate(1234, 10_000)
        assert done == 10_000 + table1_config().tlb.l1_latency

    def test_walk_fills_l2_tlb(self):
        service, shared = make_service()
        service.translate(1234, 0)
        assert shared["l2_tlb"].probe((0, 0, 1234))

    def test_l2_services_after_l1_eviction(self):
        service, _ = make_service()
        capacity = table1_config().tlb.l1_entries
        for vpn in range(capacity + 1):
            service.translate(vpn, 0)
        service.translate(0, 10**6)  # evicted from L1, still in L2
        assert service.stats.get("tx_serviced_by.l2_tlb") >= 1

    def test_concurrent_same_page_requests_walk_once(self):
        # Model contract: structure state updates synchronously at request
        # time, so an immediately-following request hits the L1 TLB and no
        # duplicate walk is issued.
        service, shared = make_service()
        service.translate(999, 0)
        service.translate(999, 1)
        assert shared["iommu"].stats.get("iommu.walks") == 1

    def test_inflight_merge_after_l1_eviction(self):
        # Evict a page from the L1 while its walk is still outstanding;
        # the re-touch merges onto the in-flight request instead of being
        # serviced with a fresh (shorter) latency.
        service, _ = make_service()
        first_done, _ = service.translate(999, 0)
        service.l1_tlb.invalidate((0, 0, 999))
        merged_done, _ = service.translate(999, 1)
        # Entry was invalidated from L1 but the walk is in flight: merge.
        assert merged_done == first_done
        assert service.stats.get("tx_mshr.merges") == 1

    def test_translations_counted(self):
        service, _ = make_service()
        service.translate(1, 0)
        service.translate(2, 0)
        assert service.stats.get("translations") == 2

    def test_locality_hits_credit_l1(self):
        service, _ = make_service()
        before = service.stats.get("l1_tlb.hits")
        service.note_locality_hits(5)
        assert service.stats.get("l1_tlb.hits") == before + 5
        service.note_locality_hits(0)
        assert service.stats.get("l1_tlb.hits") == before + 5


class TestVictimCachePath:
    def test_l1_victim_lands_in_lds(self):
        service, _ = make_service(TxScheme.LDS_ONLY)
        capacity = table1_config().tlb.l1_entries
        for vpn in range(capacity + 1):
            service.translate(vpn, 0)
        assert service.lds_tx.entry_count >= 1

    def test_lds_hit_promotes_back_to_l1(self):
        service, _ = make_service(TxScheme.LDS_ONLY)
        capacity = table1_config().tlb.l1_entries
        for vpn in range(capacity + 1):
            service.translate(vpn, vpn * 10)
        assert service.lds_tx.entry_count >= 1
        service.translate(0, 10**6)  # vpn 0 was the first L1 victim
        assert service.stats.get("tx_serviced_by.lds") == 1
        done, _ = service.translate(0, 2 * 10**6)
        assert done == 2 * 10**6 + table1_config().tlb.l1_latency  # back in L1

    def test_icache_path_services_victims(self):
        service, _ = make_service(TxScheme.ICACHE_ONLY)
        capacity = table1_config().tlb.l1_entries
        for vpn in range(capacity + 1):
            service.translate(vpn, 0)
        service.translate(0, 10**6)
        assert service.stats.get("tx_serviced_by.icache") == 1

    def test_lookup_order_lds_before_icache(self):
        service, _ = make_service(TxScheme.ICACHE_LDS)
        capacity = table1_config().tlb.l1_entries
        for vpn in range(capacity + 1):
            service.translate(vpn, 0)
        # The victim goes to the LDS first; an immediate re-touch must be
        # served by the LDS, not the I-cache.
        service.translate(0, 10**6)
        assert service.stats.get("tx_serviced_by.lds") == 1
        assert service.stats.get("tx_serviced_by.icache", ) == 0


class TestSharingTracker:
    def test_single_cu_not_shared(self):
        tracker = SharingTracker()
        tracker.record(0, 5)
        tracker.record(0, 5)
        assert tracker.shared_fraction == 0.0

    def test_cross_cu_sharing(self):
        tracker = SharingTracker()
        tracker.record(0, 5)
        tracker.record(3, 5)
        tracker.record(0, 6)
        assert tracker.total_pages == 2
        assert tracker.shared_pages == 1
        assert tracker.shared_fraction == 0.5

    def test_translate_records_sharing(self):
        service_a, shared = make_service(cu_id=0)
        service_b = TranslationService(
            1,
            table1_config(),
            shared["page_table"],
            shared["l2_tlb"],
            shared["l2_port"],
            shared["iommu"],
            shared["sharing"],
        )
        service_a.translate(42, 0)
        service_b.translate(42, 0)
        assert shared["sharing"].shared_pages == 1


class TestShootdown:
    def test_shootdown_clears_every_structure(self):
        service, _ = make_service(TxScheme.ICACHE_LDS)
        capacity = table1_config().tlb.l1_entries
        for vpn in range(capacity + 8):
            service.translate(vpn, 0)
        walks_before = shared_walks = service.iommu.stats.get("iommu.walks")
        total = 0
        for vpn in range(capacity + 8):
            total += service.shootdown(vpn)
        assert total >= capacity
        # A shot-down page must re-walk (the GPU L2 TLB also cleared by the
        # system-level shootdown; here only the CU + iommu are cleared, so
        # clear them explicitly for the assertion).
        service.l2_tlb.flush()
        service.iommu.invalidate_vpn(0)
        service.translate(0, 10**7)
        assert service.iommu.stats.get("iommu.walks") > walks_before
