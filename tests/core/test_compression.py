"""Unit tests for base-delta tag compression."""

import pytest

from repro.core.compression import BaseDeltaCodec


class TestCanPack:
    def test_empty_group_packs(self):
        assert BaseDeltaCodec(16, 16).can_pack([])

    def test_single_tag_packs(self):
        assert BaseDeltaCodec(16, 16).can_pack([12345])

    def test_close_tags_pack(self):
        codec = BaseDeltaCodec(16, 8)
        assert codec.can_pack([1000, 1200, 1255])

    def test_spread_beyond_delta_fails(self):
        codec = BaseDeltaCodec(16, 8)
        assert not codec.can_pack([1000, 1000 + 256])

    def test_boundary_delta(self):
        codec = BaseDeltaCodec(16, 8)
        assert codec.can_pack([0, 255])
        assert not codec.can_pack([0, 256])

    def test_lds_parameters_from_paper(self):
        # Figure 7b: 16-bit base, 16-bit deltas over three 32-bit tags.
        codec = BaseDeltaCodec(16, 16)
        assert codec.can_pack([70000, 70000 + 65535])
        assert not codec.can_pack([70000, 70000 + 65536])

    def test_icache_parameters_from_paper(self):
        # Figure 10c: 32-bit base, 8-bit deltas over eight 39-bit tags.
        codec = BaseDeltaCodec(32, 8)
        assert codec.can_pack(list(range(2000, 2008)))
        assert not codec.can_pack([0, 300])

    def test_negative_tags_rejected(self):
        with pytest.raises(ValueError):
            BaseDeltaCodec(16, 16).can_pack([-1, 5])

    def test_invalid_widths_rejected(self):
        with pytest.raises(ValueError):
            BaseDeltaCodec(0, 8)
        with pytest.raises(ValueError):
            BaseDeltaCodec(8, 0)


class TestPackableSubset:
    def test_keeps_compatible_residents(self):
        codec = BaseDeltaCodec(16, 8)
        assert codec.packable_subset([10, 20, 30], incoming=15) == [10, 20, 30]

    def test_drops_far_residents(self):
        codec = BaseDeltaCodec(16, 8)
        keep = codec.packable_subset([10, 5000], incoming=15)
        assert keep == [10]

    def test_result_always_packs_with_incoming(self):
        codec = BaseDeltaCodec(16, 8)
        residents = [0, 100, 200, 300, 400]
        keep = codec.packable_subset(residents, incoming=250)
        assert codec.can_pack(keep + [250])

    def test_empty_residents(self):
        assert BaseDeltaCodec(16, 8).packable_subset([], 7) == []


class TestCompressedBits:
    def test_lds_group_fits_eight_bytes(self):
        # Three compressed tags must fit the 8-byte tag slot (Figure 7b).
        assert BaseDeltaCodec(16, 16).compressed_bits(3) == 64

    def test_icache_group_fits_twelve_bytes(self):
        # Eight compressed tags fit the widened 12-byte tag (Figure 10c).
        assert BaseDeltaCodec(32, 8).compressed_bits(8) == 96
