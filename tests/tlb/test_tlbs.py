"""Unit tests for the TLB structures."""

import pytest

from repro.sim.stats import Stats
from repro.tlb.base import TranslationEntry
from repro.tlb.fully_assoc import FullyAssociativeTLB
from repro.tlb.set_assoc import SetAssociativeTLB


def entry(vpn, pfn=None, vmid=0):
    return TranslationEntry(vpn=vpn, pfn=pfn if pfn is not None else vpn + 100, vmid=vmid)


class TestTranslationEntry:
    def test_key_includes_address_space(self):
        assert entry(5, vmid=1).key != entry(5, vmid=2).key

    def test_tag_bits_strip_index(self):
        a = entry(0x1234)
        assert a.tag_bits(4) == ((0x1234 >> 4) << 4)

    def test_tag_bits_carry_vmid(self):
        assert entry(8, vmid=1).tag_bits(3) != entry(8, vmid=2).tag_bits(3)

    def test_frozen(self):
        with pytest.raises(Exception):
            entry(1).vpn = 2  # type: ignore[misc]


class TestFullyAssociativeTLB:
    def test_miss_then_hit(self):
        tlb = FullyAssociativeTLB(4)
        e = entry(1)
        assert tlb.lookup(e.key) is None
        tlb.insert(e)
        assert tlb.lookup(e.key) == e

    def test_lru_eviction_order(self):
        tlb = FullyAssociativeTLB(2)
        a, b, c = entry(1), entry(2), entry(3)
        tlb.insert(a)
        tlb.insert(b)
        victim = tlb.insert(c)
        assert victim == a

    def test_lookup_refreshes_lru(self):
        tlb = FullyAssociativeTLB(2)
        a, b, c = entry(1), entry(2), entry(3)
        tlb.insert(a)
        tlb.insert(b)
        tlb.lookup(a.key)
        victim = tlb.insert(c)
        assert victim == b

    def test_reinsert_same_key_no_eviction(self):
        tlb = FullyAssociativeTLB(1)
        tlb.insert(entry(1))
        assert tlb.insert(entry(1, pfn=999)) is None
        assert tlb.lookup(entry(1).key).pfn == 999

    def test_capacity_respected(self):
        tlb = FullyAssociativeTLB(3)
        for vpn in range(10):
            tlb.insert(entry(vpn))
        assert len(tlb) == 3

    def test_invalidate(self):
        tlb = FullyAssociativeTLB(4)
        e = entry(7)
        tlb.insert(e)
        assert tlb.invalidate(e.key)
        assert not tlb.invalidate(e.key)
        assert tlb.lookup(e.key) is None

    def test_invalidate_vpn_across_address_spaces(self):
        tlb = FullyAssociativeTLB(4)
        tlb.insert(entry(7, vmid=0))
        tlb.insert(entry(7, vmid=1))
        tlb.insert(entry(8))
        assert tlb.invalidate_vpn(7) == 2
        assert len(tlb) == 1

    def test_flush(self):
        tlb = FullyAssociativeTLB(4)
        tlb.insert(entry(1))
        tlb.insert(entry(2))
        assert tlb.flush() == 2
        assert len(tlb) == 0

    def test_probe_does_not_touch_lru_or_stats(self):
        stats = Stats()
        tlb = FullyAssociativeTLB(2, stats=stats)
        a, b, c = entry(1), entry(2), entry(3)
        tlb.insert(a)
        tlb.insert(b)
        hits_before = stats.get("l1_tlb.hits")
        assert tlb.probe(a.key)
        assert stats.get("l1_tlb.hits") == hits_before
        assert tlb.insert(c) == a  # a is still LRU

    def test_stats_counters(self):
        stats = Stats()
        tlb = FullyAssociativeTLB(2, name="t", stats=stats)
        tlb.lookup(entry(1).key)
        tlb.insert(entry(1))
        tlb.lookup(entry(1).key)
        assert stats.get("t.misses") == 1
        assert stats.get("t.hits") == 1
        assert stats.get("t.fills") == 1

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            FullyAssociativeTLB(0)


class TestSetAssociativeTLB:
    def test_basic_miss_hit(self):
        tlb = SetAssociativeTLB(16, 4)
        e = entry(5)
        assert tlb.lookup(e.key) is None
        tlb.insert(e)
        assert tlb.lookup(e.key) == e

    def test_set_conflict_evicts_within_set(self):
        tlb = SetAssociativeTLB(4, 2)  # 2 sets, 2 ways
        same_set = [entry(0), entry(2), entry(4)]  # vpn % 2 == 0
        tlb.insert(same_set[0])
        tlb.insert(same_set[1])
        victim = tlb.insert(same_set[2])
        assert victim == same_set[0]

    def test_different_sets_do_not_conflict(self):
        tlb = SetAssociativeTLB(4, 2)
        tlb.insert(entry(0))
        assert tlb.insert(entry(1)) is None

    def test_total_capacity(self):
        tlb = SetAssociativeTLB(8, 2)
        for vpn in range(32):
            tlb.insert(entry(vpn))
        assert len(tlb) == 8

    def test_entries_not_divisible_by_ways_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeTLB(10, 4)

    def test_perfect_mode_always_hits(self):
        tlb = SetAssociativeTLB(4, 2, perfect=True)
        result = tlb.lookup((0, 0, 12345))
        assert result is not None
        assert result.vpn == 12345

    def test_perfect_mode_ignores_inserts(self):
        tlb = SetAssociativeTLB(4, 2, perfect=True)
        assert tlb.insert(entry(1)) is None
        assert len(tlb) == 0

    def test_invalidate_vpn(self):
        tlb = SetAssociativeTLB(8, 2)
        tlb.insert(entry(3))
        tlb.insert(entry(3, vmid=1))
        assert tlb.invalidate_vpn(3) == 2

    def test_flush(self):
        tlb = SetAssociativeTLB(8, 2)
        for vpn in range(4):
            tlb.insert(entry(vpn))
        assert tlb.flush() == 4
        assert len(tlb) == 0

    def test_lru_within_set_refreshed_by_lookup(self):
        tlb = SetAssociativeTLB(4, 2)
        a, b, c = entry(0), entry(2), entry(4)
        tlb.insert(a)
        tlb.insert(b)
        tlb.lookup(a.key)
        assert tlb.insert(c) == b
