"""Unit tests for the access coalescer and in-flight merge table."""

from repro.sim.stats import Stats
from repro.tlb.coalescer import AccessCoalescer, InFlightTable


class TestAccessCoalescer:
    def test_dedup_preserves_first_touch_order(self):
        coalescer = AccessCoalescer()
        assert coalescer.coalesce([3, 1, 3, 2, 1]) == [3, 1, 2]

    def test_all_unique(self):
        coalescer = AccessCoalescer()
        assert coalescer.coalesce((5, 6, 7)) == [5, 6, 7]

    def test_counts_merged(self):
        stats = Stats()
        coalescer = AccessCoalescer(stats=stats, name="c")
        coalescer.coalesce([1, 1, 1, 2])
        assert stats.get("c.raw_accesses") == 4
        assert stats.get("c.coalesced_accesses") == 2
        assert stats.get("c.merged") == 2

    def test_generator_input(self):
        coalescer = AccessCoalescer()
        assert coalescer.coalesce(iter([9, 9, 8])) == [9, 8]

    def test_empty(self):
        assert AccessCoalescer().coalesce([]) == []


class TestInFlightTable:
    def test_miss_returns_none(self):
        table = InFlightTable()
        assert table.check(("k",), 100) is None

    def test_future_completion_merges(self):
        table = InFlightTable()
        table.register(("k",), completes_at=500, now=100)
        assert table.check(("k",), 200) == 500

    def test_past_completion_does_not_merge(self):
        table = InFlightTable()
        table.register(("k",), completes_at=150, now=100)
        assert table.check(("k",), 200) is None

    def test_merge_counted(self):
        stats = Stats()
        table = InFlightTable(stats=stats, name="m")
        table.register(("k",), 500, now=0)
        table.check(("k",), 100)
        assert stats.get("m.merges") == 1

    def test_pruning_keeps_table_bounded(self):
        table = InFlightTable(prune_interval=16)
        for index in range(20_000):
            table.register((index,), completes_at=index + 1, now=index)
        assert len(table) < 10_000

    def test_reregister_updates_completion(self):
        table = InFlightTable()
        table.register(("k",), 300, now=0)
        table.register(("k",), 800, now=400)
        assert table.check(("k",), 500) == 800
