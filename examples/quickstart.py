#!/usr/bin/env python3
"""Quickstart: reproduce the paper's headline result for one application.

Builds the ATAX workload (Table 2's biggest winner), runs it on the
baseline Table 1 machine and on the reconfigurable I-cache + LDS design
(Section 4.4), and prints the speedup, page-walk reduction, and where
translations were serviced — the Figure 13b story in one page of code.

Run:  python examples/quickstart.py [APP] [SCALE]
"""

import sys

from repro import GPUSystem, TxScheme, make_app, table1_config


def main() -> int:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "ATAX"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5

    print(f"Simulating {app_name} (scale={scale}) on the Table 1 baseline...")
    baseline = GPUSystem(table1_config()).run(make_app(app_name, scale=scale))
    print(
        f"  baseline: {baseline.cycles:,} cycles, "
        f"{baseline.page_walks:,.0f} page walks, "
        f"PTW-PKI {baseline.ptw_pki:.2f}"
    )

    print("Adding the reconfigurable I-cache + LDS victim caches...")
    config = table1_config(TxScheme.ICACHE_LDS)
    reconfig = GPUSystem(config).run(make_app(app_name, scale=scale))
    print(
        f"  reconfig: {reconfig.cycles:,} cycles, "
        f"{reconfig.page_walks:,.0f} page walks"
    )

    speedup = baseline.cycles / reconfig.cycles
    walk_ratio = (
        reconfig.page_walks / baseline.page_walks if baseline.page_walks else 1.0
    )
    print()
    print(f"Speedup: {speedup:.2f}x   (paper Figure 13b: up to 5.4x for ATAX)")
    print(f"Page walks: {100 * (1 - walk_ratio):.1f}% fewer")
    print()
    print("Translation requests serviced by:")
    for structure in ("lds", "icache", "l2_tlb", "iommu"):
        count = reconfig.counter(f"tx_serviced_by.{structure}")
        if count:
            print(f"  {structure:8s} {count:>10,.0f}")
    gained = reconfig.counter("tx_entries.lds_peak") + reconfig.counter(
        "tx_entries.icache_peak"
    )
    print(f"\nPeak extra translation entries gained: {gained:,.0f} (Figure 15)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
