#!/usr/bin/env python3
"""Simulation-as-a-service in one page: server, client, dedup, telemetry.

Starts the job-queue HTTP service in-process (the same server
``python -m repro serve`` runs), submits a small custom sweep through the
stdlib client, streams the job's NDJSON progress events, prints the
per-job telemetry from the structured report, and then resubmits the
identical spec to show the dedup path answering instantly from the
finished job.

Run:  python examples/service_demo.py [SCALE]
"""

import sys

from repro.service.client import ServiceClient
from repro.service.http import BackgroundServer
from repro.service.manager import JobManager
from repro.sim.runner import telemetry_rows_from_json


def main() -> int:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    spec = {"apps": ["GUPS", "ATAX"], "schemes": ["baseline", "lds"],
            "scale": scale}

    with JobManager(workers=1) as manager:
        with BackgroundServer(manager) as server:
            client = ServiceClient(server.url)
            health = client.healthz()
            print(f"Service up at {server.url} "
                  f"(status {health['status']}, pool alive: "
                  f"{health['pool']['alive']})")

            submitted = client.submit(spec)
            job_id = submitted["job_id"]
            print(f"Submitted job {job_id}: {submitted['jobs']} sim jobs")

            print("Streaming progress events:")
            for event in client.events(job_id):
                if event["type"] == "state":
                    print(f"  [{event['seq']}] state -> {event['state']}")
                elif event["type"] == "failure":
                    print(f"  [{event['seq']}] FAILED {event['app']}")

            status = client.status(job_id)
            report = status["report"]
            print(f"Job {job_id}: {status['state']} — "
                  f"{report['jobs_simulated']} simulated, "
                  f"{report['cache_hits']} cache hits in "
                  f"{report['wall_clock_s']:.2f}s")

            print()
            print("Per-job telemetry:")
            for row in telemetry_rows_from_json(report):
                print(f"  {row['app']:6s} {row['scheme']:10s} "
                      f"{row['cached']:6s} {row['wall_s']:>8s}s")

            result = client.result(job_id)
            print()
            print("Speedups vs baseline (from the result payload):")
            cycles = {(r["app_name"], r["scheme"]): r["cycles"]
                      for r in result["results"]}
            for app in ("GUPS", "ATAX"):
                ratio = cycles[(app, "baseline")] / cycles[(app, "lds")]
                print(f"  {app}: lds {ratio:.2f}x")

            again = client.submit(dict(spec, apps=["gups", "atax"]))
            assert again["deduplicated"] and again["job_id"] == job_id
            print()
            print(f"Resubmitted the same spec: deduplicated onto {job_id} "
                  f"(state {again['state']}) — no re-simulation.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
