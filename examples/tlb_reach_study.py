#!/usr/bin/env python3
"""TLB-reach study: how much performance is locked behind TLB capacity?

Reproduces the paper's Section 3.1 motivation study for any application:
sweeps the shared L2 TLB from 512 entries upward, adds the Perfect-L2-TLB
upper bound, and reports walks + speedup at each point — showing whether
the app is reach-limited (ATAX, GUPS) or not (SRAD, SSSP).

Run:  python examples/tlb_reach_study.py [APP] [SCALE]
"""

import sys

from repro import GPUSystem, make_app, table1_config

SIZES = (512, 1024, 2048, 4096, 8192, 32768)


def main() -> int:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "GUPS"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.4

    baseline = GPUSystem(table1_config()).run(make_app(app_name, scale=scale))
    print(f"{app_name}: baseline {baseline.cycles:,} cycles, "
          f"{baseline.page_walks:,.0f} walks (PTW-PKI {baseline.ptw_pki:.2f})")
    print()
    print(f"{'L2 TLB entries':>16} {'speedup':>9} {'walks vs 512':>13}")
    for entries in SIZES:
        config = table1_config().with_l2_tlb_entries(entries)
        sim = GPUSystem(config).run(make_app(app_name, scale=scale))
        walk_ratio = (
            sim.page_walks / baseline.page_walks if baseline.page_walks else 1.0
        )
        print(
            f"{entries:>16,} {baseline.cycles / sim.cycles:>8.2f}x "
            f"{100 * walk_ratio:>11.1f}%"
        )

    perfect = GPUSystem(table1_config().with_perfect_l2_tlb()).run(
        make_app(app_name, scale=scale)
    )
    print(f"{'perfect':>16} {baseline.cycles / perfect.cycles:>8.2f}x "
          f"{0.0:>11.1f}%")
    print()
    if baseline.ptw_pki >= 20:
        print("Category High (Table 2): this app is reach-limited — exactly "
              "the case the reconfigurable I-cache/LDS design targets.")
    elif baseline.ptw_pki > 1:
        print("Category Medium (Table 2): moderate TLB pressure.")
    else:
        print("Category Low (Table 2): TLB reach is not this app's problem; "
              "the paper's design must (and does) leave it unharmed.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
