#!/usr/bin/env python3
"""TLB shootdowns with reconfigurable structures (paper Section 7.1).

When the driver swaps or migrates a page it must invalidate its translation
everywhere — and with the paper's design, "everywhere" now includes the
Tx-mode entries in every CU's LDS and each I-cache, not just the TLBs. This
example populates the whole hierarchy, issues shootdowns for a range of hot
pages, and shows (a) entries disappearing from every structure and (b) the
re-walk traffic when the pages are touched again.

Run:  python examples/shootdown_demo.py
"""

from repro import GPUSystem, TxScheme, table1_config
from repro.workloads.base import AppSpec, KernelSpec, Layout, interleave, sweep_ops

layout = Layout()
HOT = layout.region_base(0)
HOT_PAGES = 2048


def hot_kernel(name: str) -> KernelSpec:
    def factory(ctx):
        rng = ctx.rng()
        return interleave(
            sweep_ops(layout, HOT, HOT_PAGES * layout.page_size, 200, rng),
        )

    return KernelSpec(
        name=name, num_workgroups=16, waves_per_workgroup=4,
        lds_bytes_per_workgroup=0, static_lines=8, program_factory=factory,
    )


def resident_entries(system) -> dict:
    return {
        "l1_tlbs": sum(len(cu.translation.l1_tlb) for cu in system.cus),
        "lds_tx": sum(
            cu.translation.lds_tx.entry_count
            for cu in system.cus
            if cu.translation.lds_tx
        ),
        "icache_tx": sum(ic.tx_entry_count() for ic in system.icaches),
        "l2_tlb": len(system.l2_tlb),
    }


def main() -> int:
    system = GPUSystem(table1_config(TxScheme.ICACHE_LDS))
    app = AppSpec(name="hot", kernels=(hot_kernel("warm_a"), hot_kernel("warm_b")))
    system.run(app)

    before = resident_entries(system)
    print("Resident translations after warm-up:")
    for structure, count in before.items():
        print(f"  {structure:10s} {count:>7,}")

    base_vpn = layout.vpn(HOT)
    invalidated = sum(
        system.shootdown(base_vpn + page) for page in range(HOT_PAGES)
    )
    after = resident_entries(system)
    print(f"\nShot down {HOT_PAGES} pages -> {invalidated:,} entries invalidated")
    print("Remaining residents (hot region only was shot down):")
    for structure, count in after.items():
        print(f"  {structure:10s} {count:>7,}")

    walks_before = system.stats.get("iommu.walks")
    system.run(AppSpec(name="hot2", kernels=(hot_kernel("retouch"),)))
    walks_after = system.stats.get("iommu.walks")
    print(
        f"\nRe-touching the region re-walked {walks_after - walks_before:,.0f} "
        "pages (stale translations correctly gone)."
    )
    assert after["lds_tx"] < max(1, before["lds_tx"])
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
