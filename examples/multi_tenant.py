#!/usr/bin/env python3
"""Multi-tenant GPUs and the reconfigurable design (paper Section 7.2).

Two applications share one GPU on disjoint CU partitions (the isolation the
paper assumes for security), each with its own address space. The per-CU
LDS keeps working for translations — it only ever holds its own tenant's
entries — while the I-cache's idle capacity is shared by whichever tenants
land in its CU group. The paper argues the opportunistic design keeps
helping in this setting; this example measures it.

Run:  python examples/multi_tenant.py [SCALE]
"""

import sys

from repro import GPUSystem, TxScheme, make_app, table1_config


def run_pair(scheme, scale):
    system = GPUSystem(table1_config(scheme))
    apps = [make_app("GEV", scale=scale), make_app("BFS", scale=scale)]
    return system.run_concurrent(apps, [[0, 1, 2, 3], [4, 5, 6, 7]])


def main() -> int:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.4

    print("Two tenants (GEV on CUs 0-3, BFS on CUs 4-7), baseline...")
    baseline = run_pair(TxScheme.BASELINE, scale)
    print("...and with the reconfigurable I-cache + LDS design:")
    reconfig = run_pair(TxScheme.ICACHE_LDS, scale)

    print()
    print(f"{'tenant':>8} {'baseline cycles':>16} {'reconfig cycles':>16} {'speedup':>9}")
    for base, fast in zip(baseline, reconfig):
        print(
            f"{base.app_name:>8} {base.cycles:>16,} {fast.cycles:>16,} "
            f"{base.cycles / fast.cycles:>8.2f}x"
        )
    print()
    print(
        "Each tenant keeps its per-CU LDS translation capacity to itself "
        "(VM-ID isolated); the I-cache Tx capacity is shared per CU group."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
