#!/usr/bin/env python3
"""Bring your own workload: evaluate the reconfigurable design on a custom app.

Shows the full public workload API: define kernels from the access-pattern
toolkit (streams, randomized sweeps, code walks, LDS phases), assemble an
AppSpec, and compare every translation scheme on it — the workflow a
downstream user follows to ask "would this hardware help *my* kernel?".

The example app is a two-phase sparse solver sketch: an assembly kernel
streaming a large matrix while gathering from a shared index table, then
many small solve iterations revisiting a vector working set.

Run:  python examples/custom_workload.py [SCALE]
"""

import sys

from repro import GPUSystem, TxScheme, table1_config
from repro.gpu.instructions import alu, lds_op
from repro.workloads.base import (
    AppSpec,
    KernelSpec,
    Layout,
    MB,
    interleave,
    code_walk_ops,
    prologue_ops,
    stream_ops,
    sweep_ops,
)

layout = Layout(page_size=4096)

MATRIX = layout.region_base(0)   # streamed once per assembly
INDICES = layout.region_base(1)  # shared gather table, reused heavily
VECTOR = layout.region_base(2)   # solve-phase working set


def assembly_kernel(scale: float) -> KernelSpec:
    def factory(ctx):
        rng = ctx.rng()
        matrix_chunk = int(192 * 1024 * scale)
        return interleave(
            prologue_ops(rng),
            stream_ops(layout, MATRIX + ctx.global_wave * matrix_chunk, matrix_chunk),
            sweep_ops(layout, INDICES, 12 * MB, int(250 * scale), rng),
            code_walk_ops(static_lines=48, body_lines=6, iterations=8),
        )

    return KernelSpec(
        name="assemble",
        num_workgroups=32,
        waves_per_workgroup=4,
        lds_bytes_per_workgroup=0,
        static_lines=48,
        program_factory=factory,
    )


def solve_kernel(iteration: int, scale: float) -> KernelSpec:
    def factory(ctx):
        rng = ctx.rng()

        def compute():
            for _ in range(4):
                yield alu(300)
                yield lds_op(2)

        return interleave(
            prologue_ops(rng),
            sweep_ops(layout, VECTOR, 8 * MB, int(120 * scale), rng),
            compute(),
            code_walk_ops(static_lines=30, body_lines=4, iterations=6),
        )

    return KernelSpec(
        name=f"solve_{iteration % 2}",  # alternate names: never back-to-back
        num_workgroups=16,
        waves_per_workgroup=4,
        lds_bytes_per_workgroup=1536,
        static_lines=30,
        program_factory=factory,
    )


def build_app(scale: float) -> AppSpec:
    kernels = (assembly_kernel(scale),) + tuple(
        solve_kernel(i, scale) for i in range(8)
    )
    return AppSpec(name="sparse-solver", kernels=kernels, category="?")


def main() -> int:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    baseline = GPUSystem(table1_config()).run(build_app(scale))
    print(
        f"sparse-solver baseline: {baseline.cycles:,} cycles, "
        f"PTW-PKI {baseline.ptw_pki:.2f}, "
        f"L1/L2 TLB HR {100 * baseline.hit_ratio('l1_tlb'):.1f}%"
        f"/{100 * baseline.hit_ratio('l2_tlb'):.1f}%"
    )
    print()
    print(f"{'scheme':>16} {'speedup':>9} {'walks':>9} {'tx entries gained':>19}")
    for scheme in (TxScheme.LDS_ONLY, TxScheme.ICACHE_ONLY, TxScheme.ICACHE_LDS):
        sim = GPUSystem(table1_config(scheme)).run(build_app(scale))
        gained = sim.counter("tx_entries.lds_peak") + sim.counter(
            "tx_entries.icache_peak"
        )
        walk_ratio = (
            sim.page_walks / baseline.page_walks if baseline.page_walks else 1.0
        )
        print(
            f"{scheme.value:>16} {baseline.cycles / sim.cycles:>8.2f}x "
            f"{100 * walk_ratio:>8.1f}% {gained:>18,.0f}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
