"""repro — reproduction of "Increasing GPU Translation Reach by Leveraging
Under-Utilized On-Chip Resources" (Kotra et al., MICRO 2021).

Public API quick tour::

    from repro import GPUSystem, TxScheme, make_app, table1_config

    app = make_app("ATAX")
    baseline = GPUSystem(table1_config()).run(app)
    reconfig = GPUSystem(table1_config(TxScheme.ICACHE_LDS)).run(make_app("ATAX"))
    print(baseline.cycles / reconfig.cycles)  # the Figure 13b speedup

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.config import (
    ICacheReplacement,
    SystemConfig,
    TxScheme,
    table1_config,
)
from repro.sim.results import KernelResult, SimResult, geomean, speedup
from repro.system import GPUSystem, simulate
from repro.workloads.registry import all_apps, app_names, make_app

__version__ = "1.3.0"

__all__ = [
    "GPUSystem",
    "ICacheReplacement",
    "KernelResult",
    "SimResult",
    "SystemConfig",
    "TxScheme",
    "all_apps",
    "app_names",
    "geomean",
    "make_app",
    "simulate",
    "speedup",
    "table1_config",
]
