"""Configuration serialization: SystemConfig <-> dict/JSON.

Every experiment arm is fully described by a :class:`~repro.config.SystemConfig`;
serializing it makes runs reproducible from a single artifact (the
experiment harness hashes the same representation for its result cache) and
lets the CLI accept configuration files.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict

from repro.config import (
    DRAMConfig,
    DRAMEnergyConfig,
    DataCacheConfig,
    DucatiConfig,
    GPUConfig,
    ICacheConfig,
    ICacheReplacement,
    ICacheTxConfig,
    IOMMUConfig,
    LDSConfig,
    LDSTxConfig,
    SubregionConfig,
    SystemConfig,
    TLBConfig,
)

_SECTION_TYPES = {
    "gpu": GPUConfig,
    "tlb": TLBConfig,
    "icache": ICacheConfig,
    "icache_tx": ICacheTxConfig,
    "lds": LDSConfig,
    "lds_tx": LDSTxConfig,
    "data_cache": DataCacheConfig,
    "dram": DRAMConfig,
    "dram_energy": DRAMEnergyConfig,
    "iommu": IOMMUConfig,
    "ducati": DucatiConfig,
}

_ENUM_FIELDS = {
    ("icache_tx", "replacement"): ICacheReplacement,
}


def config_to_dict(config: SystemConfig) -> Dict[str, Any]:
    """Serialize a SystemConfig to plain JSON-compatible data."""

    payload: Dict[str, Any] = {
        "scheme": config.scheme.value,
        "page_size": config.page_size,
        "va_bits": config.va_bits,
        "lds_before_icache": config.lds_before_icache,
        "dedup_shared_fills": config.dedup_shared_fills,
    }
    # The engine is serialized only when it deviates from the default so
    # configuration files written before the knob existed round-trip
    # unchanged (and event-mode signatures stay stable).
    if config.engine != "event":
        payload["engine"] = config.engine
    # Same rule for the subregion-coalescing section: emitted only when a
    # scheme wires the store or a knob was changed, so every pre-existing
    # configuration (and its cache signature) serializes byte-identically.
    if (
        getattr(config.scheme, "uses_subregion", False)
        or config.subregion != SubregionConfig()
    ):
        payload["subregion"] = dataclasses.asdict(config.subregion)
    for section, section_type in _SECTION_TYPES.items():
        values = dataclasses.asdict(getattr(config, section))
        for name, value in values.items():
            if isinstance(value, ICacheReplacement):
                values[name] = value.value
        payload[section] = values
    return payload


def config_from_dict(payload: Dict[str, Any]) -> SystemConfig:
    """Rebuild a SystemConfig from :func:`config_to_dict` output.

    Unknown top-level or per-section keys raise so that a typo in a config
    file is an error rather than a silently-ignored setting.
    """

    known_top = set(_SECTION_TYPES) | {"scheme", "subregion", "page_size", "va_bits", "lds_before_icache", "dedup_shared_fills", "engine"}
    unknown = set(payload) - known_top
    if unknown:
        raise ValueError(f"unknown configuration sections: {sorted(unknown)}")

    kwargs: Dict[str, Any] = {}
    if "scheme" in payload:
        # Resolved through the scheme registry: built-in names yield their
        # TxScheme member, plugin names their PluginScheme value, and an
        # unknown name raises listing the valid choices.
        from repro.schemes import resolve

        kwargs["scheme"] = resolve(payload["scheme"])
    for scalar in ("page_size", "va_bits", "lds_before_icache", "dedup_shared_fills", "engine"):
        if scalar in payload:
            kwargs[scalar] = payload[scalar]

    sections = dict(_SECTION_TYPES, subregion=SubregionConfig)
    for section, section_type in sections.items():
        if section not in payload:
            continue
        values = dict(payload[section])
        field_names = {field.name for field in dataclasses.fields(section_type)}
        unknown = set(values) - field_names
        if unknown:
            raise ValueError(
                f"unknown keys in section {section!r}: {sorted(unknown)}"
            )
        for (sec, name), enum_type in _ENUM_FIELDS.items():
            if sec == section and name in values:
                values[name] = enum_type(values[name])
        kwargs[section] = section_type(**values)
    return SystemConfig(**kwargs)


def config_to_json(config: SystemConfig, indent: int = 2) -> str:
    return json.dumps(config_to_dict(config), indent=indent, sort_keys=True)


def config_from_json(text: str) -> SystemConfig:
    return config_from_dict(json.loads(text))


def save_config(config: SystemConfig, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(config_to_json(config) + "\n")


def load_config(path: str) -> SystemConfig:
    with open(path) as handle:
        return config_from_json(handle.read())
