"""Workload generators for the paper's benchmarks (Table 2) + survey suite."""

from repro.workloads.base import AppSpec, KernelSpec, Layout, ProgramContext
from repro.workloads.registry import all_apps, app_names, make_app

__all__ = [
    "AppSpec",
    "KernelSpec",
    "Layout",
    "ProgramContext",
    "all_apps",
    "app_names",
    "make_app",
]
