"""Pannotia graph applications: BFS, SSSP, PageRank (PRK).

- BFS: 24 frontier kernels (distinct launches, never back-to-back) doing
  irregular CSR gathers over a graph whose footprint moderately exceeds the
  baseline TLB reach — category M.
- SSSP: thousands of tiny kernels in the paper (10,504); we launch a scaled
  sequence of alternating relax/update kernels with a working set that fits
  the baseline TLB — category L (PTW-PKI 0.17), so the reconfigurable
  schemes must not hurt it.
- PageRank (PRK): 41 iteration kernels over a rank vector that also fits
  baseline reach — category L.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.gpu.instructions import alu, lds_op
from repro.workloads.base import (
    AppSpec,
    KB,
    KernelSpec,
    Layout,
    MB,
    ProgramContext,
    code_walk_ops,
    interleave,
    prologue_ops,
    stream_ops,
    sweep_ops,
)


def _scaled(value: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(round(value * scale)))


# ----------------------------------------------------------------------
# BFS
# ----------------------------------------------------------------------

_BFS_LEVELS = 24
_BFS_GRAPH_BYTES = 10 * MB


def _bfs_kernel(layout: Layout, level: int, scale: float) -> KernelSpec:
    # Frontier size rises then falls across levels (power-law graph).
    shape = min(level + 1, _BFS_LEVELS - level, 6)
    touches_per_wave = _scaled(12 * shape, scale)

    def factory(ctx: ProgramContext) -> Iterable[tuple]:
        rng = ctx.rng()
        gathers = sweep_ops(
            layout,
            layout.region_base(0),
            _BFS_GRAPH_BYTES,
            touches_per_wave,
            rng,
            instr_per_touch=16,
        )
        frontier = stream_ops(
            layout,
            layout.region_base(1) + ctx.global_wave * 2 * layout.page_size,
            2 * layout.page_size,
        )

        def compute():
            for _ in range(max(1, touches_per_wave // 8)):
                yield alu(260)
                yield lds_op(2)

        code = code_walk_ops(60, 6, max(1, touches_per_wave // 12))
        return interleave(prologue_ops(rng), gathers, frontier, compute(), code)

    return KernelSpec(
        name=f"bfs_level{level}",
        num_workgroups=16,
        waves_per_workgroup=4,
        lds_bytes_per_workgroup=512,
        static_lines=60,
        program_factory=factory,
    )


def make_bfs(scale: float = 1.0, page_size: int = 4096) -> AppSpec:
    """BFS: 24 frontier kernels, none back-to-back (category M)."""

    layout = Layout(page_size)
    kernels = tuple(_bfs_kernel(layout, level, scale) for level in range(_BFS_LEVELS))
    return AppSpec(name="BFS", kernels=kernels, category="M")


# ----------------------------------------------------------------------
# SSSP
# ----------------------------------------------------------------------

_SSSP_LAUNCHES = 300  # scaled stand-in for the paper's 10,504 launches
_SSSP_WS_BYTES = int(1.2 * MB)


def _sssp_kernel(layout: Layout, name: str, scale: float) -> KernelSpec:
    touches_per_wave = _scaled(4, scale)

    def factory(ctx: ProgramContext) -> Iterable[tuple]:
        rng = ctx.rng()
        relax = sweep_ops(
            layout,
            layout.region_base(0),
            _SSSP_WS_BYTES,
            touches_per_wave,
            rng,
            instr_per_touch=16,
        )

        def compute():
            for _ in range(2):
                yield alu(400)

        code = code_walk_ops(25, 4, 2)
        return interleave(prologue_ops(rng), relax, compute(), code)

    return KernelSpec(
        name=name,
        num_workgroups=8,
        waves_per_workgroup=2,
        lds_bytes_per_workgroup=0,
        static_lines=25,
        program_factory=factory,
    )


def make_sssp(scale: float = 1.0, page_size: int = 4096) -> AppSpec:
    """SSSP: alternating relax/update kernels, working set fits the TLB (L)."""

    layout = Layout(page_size)
    launches = _scaled(_SSSP_LAUNCHES, min(1.0, scale * 2), 10)
    relax = _sssp_kernel(layout, "sssp_relax", scale)
    update = _sssp_kernel(layout, "sssp_update", scale)
    sequence: Tuple[KernelSpec, ...] = tuple(
        relax if i % 2 == 0 else update for i in range(launches)
    )
    return AppSpec(name="SSSP", kernels=sequence, category="L")


# ----------------------------------------------------------------------
# PageRank
# ----------------------------------------------------------------------

_PRK_ITERATIONS = 41
_PRK_WS_BYTES = int(1.7 * MB)


def _prk_kernel(layout: Layout, name: str, scale: float) -> KernelSpec:
    touches_per_wave = _scaled(24, scale)

    def factory(ctx: ProgramContext) -> Iterable[tuple]:
        rng = ctx.rng()
        ranks = sweep_ops(
            layout,
            layout.region_base(0),
            _PRK_WS_BYTES,
            touches_per_wave,
            rng,
            instr_per_touch=16,
        )

        def compute():
            for _ in range(max(1, touches_per_wave // 6)):
                yield alu(700)
                yield lds_op(1)

        code = code_walk_ops(35, 5, max(1, touches_per_wave // 10))
        return interleave(prologue_ops(rng), ranks, compute(), code)

    return KernelSpec(
        name=name,
        num_workgroups=16,
        waves_per_workgroup=2,
        lds_bytes_per_workgroup=1024,
        static_lines=35,
        program_factory=factory,
    )


def make_pagerank(scale: float = 1.0, page_size: int = 4096) -> AppSpec:
    """PageRank: 41 iteration kernels alternating push/pull phases (L)."""

    layout = Layout(page_size)
    push = _prk_kernel(layout, "prk_push", scale)
    pull = _prk_kernel(layout, "prk_pull", scale)
    iterations = _scaled(_PRK_ITERATIONS, min(1.0, scale * 2), 6)
    sequence = tuple(push if i % 2 == 0 else pull for i in range(iterations))
    return AppSpec(name="PRK", kernels=sequence, category="L")
