"""Registry mapping Table 2 application names to their factories."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.workloads.base import AppSpec
from repro.workloads.micro import make_gups
from repro.workloads.pannotia import make_bfs, make_pagerank, make_sssp
from repro.workloads.polybench import make_atax, make_bicg, make_gesummv, make_mvt
from repro.workloads.rodinia import make_nw, make_srad

#: Table 2 order: High, then Medium, then Low applications.
_FACTORIES: Dict[str, Callable[..., AppSpec]] = {
    "ATAX": make_atax,
    "GEV": make_gesummv,
    "MVT": make_mvt,
    "BICG": make_bicg,
    "GUPS": make_gups,
    "NW": make_nw,
    "BFS": make_bfs,
    "SSSP": make_sssp,
    "PRK": make_pagerank,
    "SRAD": make_srad,
}

#: Table 2 categorization by baseline PTW-PKI.
CATEGORIES: Dict[str, str] = {
    "ATAX": "H", "GEV": "H", "MVT": "H", "BICG": "H", "GUPS": "H",
    "NW": "M", "BFS": "M",
    "SSSP": "L", "PRK": "L", "SRAD": "L",
}

HIGH_APPS = [name for name, cat in CATEGORIES.items() if cat == "H"]
MEDIUM_APPS = [name for name, cat in CATEGORIES.items() if cat == "M"]
LOW_APPS = [name for name, cat in CATEGORIES.items() if cat == "L"]


def app_names() -> List[str]:
    return list(_FACTORIES)


def make_app(name: str, scale: float = 1.0, page_size: int = 4096) -> AppSpec:
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown app {name!r}; choose from {sorted(_FACTORIES)}"
        ) from None
    return factory(scale=scale, page_size=page_size)


def all_apps(scale: float = 1.0, page_size: int = 4096) -> List[AppSpec]:
    return [make_app(name, scale, page_size) for name in _FACTORIES]
