"""Workload abstractions.

An :class:`AppSpec` is an ordered sequence of kernel launches; each
:class:`KernelSpec` describes one kernel's dispatch shape (work-groups,
waves, LDS bytes requested per work-group — the quantity behind Figure 4a),
its static code footprint in I-cache lines (behind Figures 5a and 11), and a
factory that generates each wave's macro-op program.

Generators must be deterministic: they receive a :class:`ProgramContext`
carrying a stable seed derived from (app, kernel, invocation, wg, wave).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class ProgramContext:
    """Identifies one wave's slice of one kernel invocation."""

    app_name: str
    kernel_name: str
    invocation: int
    wg_id: int
    wave_id: int
    num_workgroups: int
    waves_per_workgroup: int

    @property
    def global_wave(self) -> int:
        """This wave's rank among all waves of the invocation."""

        return self.wg_id * self.waves_per_workgroup + self.wave_id

    @property
    def total_waves(self) -> int:
        return self.num_workgroups * self.waves_per_workgroup

    def rng(self) -> random.Random:
        # zlib.crc32 is stable across processes (str hash is salted).
        import zlib

        text = (
            f"{self.app_name}/{self.kernel_name}/{self.invocation}"
            f"/{self.wg_id}/{self.wave_id}"
        )
        return random.Random(zlib.crc32(text.encode()))


ProgramFactory = Callable[[ProgramContext], Iterable[tuple]]


@dataclass(frozen=True)
class KernelSpec:
    """One kernel's dispatch shape and program generator."""

    name: str
    num_workgroups: int
    waves_per_workgroup: int
    lds_bytes_per_workgroup: int
    static_lines: int
    program_factory: ProgramFactory

    def __post_init__(self) -> None:
        if self.num_workgroups < 1 or self.waves_per_workgroup < 1:
            raise ValueError(f"kernel {self.name!r} dispatches no work")
        if self.lds_bytes_per_workgroup < 0 or self.static_lines < 1:
            raise ValueError(f"kernel {self.name!r} has invalid resources")


@dataclass(frozen=True)
class AppSpec:
    """An application: a named launch sequence of kernels."""

    name: str
    kernels: Tuple[KernelSpec, ...]
    category: str = "?"  # H / M / L per Table 2

    def __post_init__(self) -> None:
        if not self.kernels:
            raise ValueError(f"app {self.name!r} launches no kernels")

    @property
    def unique_kernel_names(self) -> List[str]:
        seen = []
        for kernel in self.kernels:
            if kernel.name not in seen:
                seen.append(kernel.name)
        return seen

    @property
    def has_back_to_back_kernels(self) -> bool:
        """Whether any kernel is launched twice in a row (Table 2, B-2-B)."""

        return any(
            self.kernels[i].name == self.kernels[i + 1].name
            for i in range(len(self.kernels) - 1)
        )


def launch_sequence(*launches: Sequence) -> Tuple[KernelSpec, ...]:
    """Expand (kernel, count) pairs into a flat launch tuple."""

    sequence: List[KernelSpec] = []
    for item in launches:
        if isinstance(item, KernelSpec):
            sequence.append(item)
        else:
            kernel, count = item
            sequence.extend([kernel] * count)
    return tuple(sequence)


# ----------------------------------------------------------------------
# Reusable access-pattern building blocks
# ----------------------------------------------------------------------
#
# Generators work in *byte* space and convert to virtual page numbers via a
# Layout, so the same workload automatically exhibits the paper's page-size
# sensitivity (Section 6.2): with 64KB or 2MB pages the identical access
# stream collapses onto fewer pages and TLB pressure shrinks.


KB = 1024
MB = 1024 * 1024

#: Bytes moved per dynamic memory instruction (a 64-lane, 4-byte access).
BYTES_PER_MEM_INSTR = 256


@dataclass(frozen=True)
class Layout:
    """Maps an app's named data regions onto the virtual address space."""

    page_size: int = 4096

    @property
    def page_shift(self) -> int:
        return self.page_size.bit_length() - 1

    def region_base(self, region_index: int) -> int:
        """Byte base of a data region; regions are 64GB apart.

        Bases are page-aligned but deliberately *not* aligned to the
        direct-mapped index period of the victim caches (a real allocator
        returns arbitrary page offsets; a 2^36-aligned base would alias
        every region onto segment/line 0).
        """

        return ((region_index + 1) << 36) + (region_index * 977 + 131) * self.page_size

    def vpn(self, byte_address: int) -> int:
        return byte_address >> self.page_shift

    def pages(self, nbytes: int) -> int:
        return max(1, -(-nbytes // self.page_size))

    @property
    def instr_per_page(self) -> int:
        """Streaming instructions needed to cover one page."""

        return max(1, self.page_size // BYTES_PER_MEM_INSTR)


def stream_ops(
    layout: Layout,
    base_byte: int,
    nbytes: int,
    pages_per_op: int = 8,
    is_write: bool = False,
) -> Iterable[tuple]:
    """Sequential streaming over ``nbytes`` (compulsory page misses)."""

    from repro.gpu.instructions import mem

    num_pages = layout.pages(nbytes)
    base_vpn = layout.vpn(base_byte)
    instr_per_page = layout.instr_per_page
    lines_per_page = layout.page_size // 64
    # Keep macro-ops to a bounded instruction count so large pages (whose
    # full coverage is thousands of instructions) do not turn into single
    # huge scheduling units.
    max_instr_per_op = 2048
    if instr_per_page > max_instr_per_op:
        chunks = -(-instr_per_page // max_instr_per_op)
        chunk_lines = max(1, lines_per_page // chunks)
        for page in range(num_pages):
            vpn = (base_vpn + page,)
            for _ in range(chunks):
                yield mem(
                    vpn,
                    instr_count=max_instr_per_op,
                    is_write=is_write,
                    lines_per_page=chunk_lines,
                )
        return
    pages_per_op = min(pages_per_op, max(1, max_instr_per_op // instr_per_page))
    for start in range(0, num_pages, pages_per_op):
        count = min(pages_per_op, num_pages - start)
        vpns = tuple(base_vpn + start + i for i in range(count))
        yield mem(
            vpns,
            instr_count=count * instr_per_page,
            is_write=is_write,
            lines_per_page=lines_per_page,
        )


def sweep_ops(
    layout: Layout,
    base_byte: int,
    working_set_bytes: int,
    touches: int,
    rng: random.Random,
    pages_per_op: int = 8,
    instr_per_touch: int = 16,
    is_write: bool = False,
) -> Iterable[tuple]:
    """``touches`` randomized accesses over a reused working set.

    Randomized visitation (rather than a strict cyclic sweep) models the
    loosely-ordered way hundreds of concurrent waves revisit a shared
    structure, and yields capacity-proportional — not cliff-shaped — victim
    cache hit rates.
    """

    from repro.gpu.instructions import mem

    randrange = rng.randrange
    base_byte &= ~(layout.page_size - 1)
    shift = layout.page_shift
    remaining = touches
    while remaining > 0:
        count = min(pages_per_op, remaining)
        vpns = tuple(
            (base_byte + randrange(working_set_bytes)) >> shift
            for _ in range(count)
        )
        yield mem(vpns, instr_count=count * instr_per_touch, is_write=is_write)
        remaining -= count


def blocked_sweep_ops(
    layout: Layout,
    base_byte: int,
    working_set_bytes: int,
    block_bytes: int,
    block_index_fn,
    touches: int,
    epochs: int,
    rng: random.Random,
    pages_per_op: int = 8,
    instr_per_touch: int = 16,
    is_write: bool = False,
    cu_slice: Optional[Tuple[int, int, float]] = None,
) -> Iterable[tuple]:
    """Randomized sweeps over *drifting blocks* of a large working set.

    In each of ``epochs`` phases the wave revisits one ``block_bytes``-sized
    block of the working set, selected by ``block_index_fn(epoch,
    num_blocks)``; blocks drift across epochs. This models the temporal
    affinity of real GPU workloads: waves co-located on a CU (or CU group)
    hammer the same region for a while, so per-CU structures see strong
    reuse, while over the whole run pages are touched by many CUs — the
    cross-CU sharing of Figure 14a, and the duplication that advantages the
    *shared* I-cache over the *private* LDS (Section 6.1.1).
    """

    num_blocks = max(1, working_set_bytes // block_bytes)
    per_epoch = max(1, touches // max(1, epochs))
    for epoch in range(epochs):
        block = block_index_fn(epoch, num_blocks) % num_blocks
        block_base = base_byte + block * block_bytes
        if cu_slice is None:
            yield from sweep_ops(
                layout,
                block_base,
                block_bytes,
                per_epoch,
                rng,
                pages_per_op=pages_per_op,
                instr_per_touch=instr_per_touch,
                is_write=is_write,
            )
            continue
        # Biased touching: most accesses fall in this CU's slice of the
        # block (captured by the CU-private LDS), the rest anywhere in it
        # (captured only by shared structures). Slices *rotate* between CUs
        # across epochs: the CU-private LDS must re-learn its slice every
        # epoch, while the shared I-cache — which holds the block for the
        # whole group — is insensitive to the rotation. This is the mix of
        # temporal CU affinity and long-term sharing that makes the two
        # capacities compose (Section 4.4) and produces the cross-CU
        # sharing of Figure 14a.
        slice_index, slice_count, bias = cu_slice
        slice_bytes = max(layout.page_size, block_bytes // slice_count)
        slice_base = block_base + (
            (slice_index + epoch) % slice_count
        ) * slice_bytes
        local = int(round(per_epoch * bias))
        remote = per_epoch - local
        yield from interleave(
            sweep_ops(
                layout, slice_base, slice_bytes, local, rng,
                pages_per_op=pages_per_op, instr_per_touch=instr_per_touch,
                is_write=is_write,
            ),
            sweep_ops(
                layout, block_base, block_bytes, remote, rng,
                pages_per_op=pages_per_op, instr_per_touch=instr_per_touch,
                is_write=is_write,
            ) if remote > 0 else iter(()),
        )


def random_ops(
    layout: Layout,
    base_byte: int,
    footprint_bytes: int,
    num_ops: int,
    pages_per_op: int,
    rng: random.Random,
    instr_per_op: int,
    alu_per_op: int = 0,
    is_write: bool = False,
) -> Iterable[tuple]:
    """GUPS-style uniform random accesses over a huge footprint."""

    from repro.gpu.instructions import alu, mem

    randrange = rng.randrange
    base_byte &= ~(layout.page_size - 1)
    shift = layout.page_shift
    for _ in range(num_ops):
        vpns = tuple(
            (base_byte + randrange(footprint_bytes)) >> shift
            for _ in range(pages_per_op)
        )
        yield mem(vpns, instr_count=instr_per_op, is_write=is_write)
        if alu_per_op:
            yield alu(alu_per_op)


def code_walk_ops(
    static_lines: int, body_lines: int, iterations: int
) -> Iterable[tuple]:
    """PC movement over a loop body of ``body_lines`` I-cache lines."""

    from repro.gpu.instructions import line

    if body_lines < 1 or iterations < 1:
        return
    body_lines = min(body_lines, static_lines)
    for _ in range(iterations):
        for line_id in range(body_lines):
            yield line(line_id)


def prologue_ops(rng: random.Random, spread: int = 150) -> Iterable[tuple]:
    """A small randomized warm-up (argument setup, index math).

    Besides realism, this de-phases the otherwise identical wave programs
    so shared structures see the loosely-staggered traffic of a real GPU
    rather than perfectly lock-stepped bursts.
    """

    from repro.gpu.instructions import alu

    yield alu(1 + rng.randrange(max(1, spread)))


def interleave(*generators: Iterable[tuple]) -> Iterable[tuple]:
    """Round-robin merge of several op streams (models mixed phases)."""

    active = [iter(generator) for generator in generators]
    while active:
        still_active = []
        for generator in active:
            op = next(generator, None)
            if op is not None:
                yield op
                still_active.append(generator)
        active = still_active
