"""Rodinia applications: NW and SRAD (Table 2).

- NW (Needleman-Wunsch) launches the same kernel 255 times back-to-back
  (Table 2, B-2-B = Yes): a sliding diagonal window over the score matrix
  with heavy inter-kernel reuse and real LDS usage. The B-2-B property
  suppresses the I-cache flush optimization (Section 4.3.3).
- SRAD is a regular stencil whose working set fits the baseline TLB reach:
  ~0 page walks (category L), large static code footprint (it is one of the
  kernels that fills the entire I-cache in Figure 5a), and LDS usage.
"""

from __future__ import annotations

from typing import Iterable

from repro.gpu.instructions import alu, lds_op
from repro.workloads.base import (
    AppSpec,
    KB,
    KernelSpec,
    Layout,
    MB,
    ProgramContext,
    code_walk_ops,
    interleave,
    prologue_ops,
    stream_ops,
    sweep_ops,
)


def _scaled(value: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(round(value * scale)))


# ----------------------------------------------------------------------
# NW
# ----------------------------------------------------------------------

_NW_LAUNCHES = 255
_NW_WINDOW_BYTES = int(3.6 * MB)
_NW_SLIDE_BYTES = 32 * KB
_NW_LDS_BYTES = 2112  # the real nw_kernel1 LDS request

#: Diagonal cells are statically owned by work-groups in fixed 512KB blocks
#: of the score matrix, so a block is only ever touched by one CU (the low
#: cross-CU sharing the paper measures for NW in Figure 14a).
_NW_BLOCK_BYTES = 512 * KB
_NW_OWNERS = 8


def _nw_owned_sweep(layout, window_base, touches, owner, rng):
    """Randomized touches over the owner's blocks of the sliding window."""

    from repro.gpu.instructions import mem

    first_block = window_base // _NW_BLOCK_BYTES
    last_block = (window_base + _NW_WINDOW_BYTES) // _NW_BLOCK_BYTES
    owned = [
        block
        for block in range(first_block, last_block + 1)
        if block % _NW_OWNERS == owner
    ] or [first_block]
    all_blocks = list(range(first_block, last_block + 1))
    halo_bytes = 64 * KB
    shift = layout.page_shift
    remaining = touches
    while remaining > 0:
        count = min(8, remaining)
        vpns = []
        for _ in range(count):
            if rng.random() < 0.1:
                # Diagonal boundary cells: the halo at the start of any
                # block is read by the neighbouring owner too — the small
                # nonzero sharing Figure 14a shows for NW.
                block = rng.choice(all_blocks)
                offset = rng.randrange(halo_bytes)
            else:
                block = rng.choice(owned)
                offset = rng.randrange(_NW_BLOCK_BYTES)
            vpns.append((block * _NW_BLOCK_BYTES + offset) >> shift)
        yield mem(tuple(vpns), instr_count=count * 16)
        remaining -= count


def _nw_kernel(layout: Layout, scale: float) -> KernelSpec:
    touches_per_wave = _scaled(24, scale)

    def factory(ctx: ProgramContext) -> Iterable[tuple]:
        rng = ctx.rng()
        window_base = layout.region_base(0) + ctx.invocation * _NW_SLIDE_BYTES
        matrix = _nw_owned_sweep(
            layout, window_base, touches_per_wave,
            ctx.wg_id % _NW_OWNERS, rng,
        )

        def lds_phase():
            for _ in range(4):
                yield lds_op(4)
                yield alu(120)

        code = code_walk_ops(45, 5, max(1, touches_per_wave // 4))
        return interleave(prologue_ops(rng), matrix, lds_phase(), code)

    return KernelSpec(
        name="nw_kernel1",
        num_workgroups=8,
        waves_per_workgroup=2,
        lds_bytes_per_workgroup=_NW_LDS_BYTES,
        static_lines=45,
        program_factory=factory,
    )


def make_nw(scale: float = 1.0, page_size: int = 4096) -> AppSpec:
    """NW: 255 back-to-back launches of nw_kernel1 (category M)."""

    layout = Layout(page_size)
    launches = _scaled(_NW_LAUNCHES, min(1.0, scale * 2), 8)
    kernel = _nw_kernel(layout, scale)
    return AppSpec(name="NW", kernels=(kernel,) * launches, category="M")


# ----------------------------------------------------------------------
# SRAD
# ----------------------------------------------------------------------

_SRAD_WS_BYTES = int(0.9 * MB)
_SRAD_LDS_BYTES = 2048


def _srad_kernel(layout: Layout, scale: float) -> KernelSpec:
    touches_per_wave = _scaled(400, scale)

    def factory(ctx: ProgramContext) -> Iterable[tuple]:
        rng = ctx.rng()
        stencil = sweep_ops(
            layout,
            layout.region_base(0),
            _SRAD_WS_BYTES,
            touches_per_wave,
            rng,
            instr_per_touch=16,
        )
        halo = stream_ops(
            layout,
            layout.region_base(1) + ctx.global_wave * 4 * layout.page_size,
            4 * layout.page_size,
        )

        def lds_phase():
            for _ in range(max(1, touches_per_wave // 50)):
                yield lds_op(6)
                yield alu(900)

        code = code_walk_ops(250, 200, max(1, touches_per_wave // 400))
        return interleave(prologue_ops(rng), stencil, halo, lds_phase(), code)

    return KernelSpec(
        name="srad_kernel",
        num_workgroups=24,
        waves_per_workgroup=4,
        lds_bytes_per_workgroup=_SRAD_LDS_BYTES,
        static_lines=250,
        program_factory=factory,
    )


def make_srad(scale: float = 1.0, page_size: int = 4096) -> AppSpec:
    """SRAD: one stencil kernel, ~0 baseline page walks (category L)."""

    layout = Layout(page_size)
    return AppSpec(name="SRAD", kernels=(_srad_kernel(layout, scale),), category="L")
