"""Synthetic survey suite for the motivation study (Figures 4a and 5a).

The paper profiles 54 applications from six suites on a real Radeon RX 580
to establish two distributions: LDS bytes requested per work-group (~70% of
apps request none; no app uses the full LDS) and I-cache utilization (~24%
always fill the I-cache; the rest never or only sometimes do). We cannot run
those 54 proprietary binaries; this module generates a parameterized suite
of small synthetic apps spanning the same distribution shapes, which the
Figure 4/5 harness runs alongside the ten main benchmarks.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.gpu.instructions import alu, lds_op
from repro.workloads.base import (
    AppSpec,
    KernelSpec,
    Layout,
    MB,
    ProgramContext,
    code_walk_ops,
    interleave,
    prologue_ops,
    sweep_ops,
)

#: (name suffix, lds bytes/WG, static lines per kernel, kernels) — chosen so
#: roughly 70% request no LDS and roughly a quarter fill the I-cache, per
#: the paper's real-system survey.
_SURVEY_SHAPES = [
    ("nolds_tiny", 0, 12, 2),
    ("nolds_small", 0, 24, 3),
    ("nolds_mid", 0, 48, 2),
    ("nolds_loopy", 0, 80, 4),
    ("nolds_multi", 0, 36, 6),
    ("nolds_flat", 0, 20, 1),
    ("nolds_deep", 0, 64, 2),
    ("nolds_wide", 0, 100, 3),
    ("nolds_lean", 0, 16, 5),
    ("nolds_two", 0, 40, 2),
    ("nolds_three", 0, 56, 3),
    ("nolds_long", 0, 72, 2),
    ("nolds_short", 0, 28, 4),
    ("nolds_icfull", 0, 256, 2),
    ("lds_512", 512, 44, 3),
    ("lds_1k", 1024, 90, 2),
    ("lds_2k", 2048, 128, 3),
    ("lds_4k", 4096, 256, 2),
    ("lds_6k", 6144, 256, 1),
    ("lds_3k_mixed", 3072, 180, 4),
]


def _survey_kernel(
    layout: Layout,
    app_suffix: str,
    index: int,
    lds_bytes: int,
    static_lines: int,
    scale: float,
) -> KernelSpec:
    touches = max(2, int(round(16 * scale)))

    def factory(ctx: ProgramContext) -> Iterable[tuple]:
        rng = ctx.rng()
        data = sweep_ops(
            layout, layout.region_base(0), 1 * MB, touches, rng,
        )

        def compute():
            yield alu(200)
            if lds_bytes:
                yield lds_op(3)
            yield alu(200)

        code = code_walk_ops(static_lines, max(3, static_lines // 2), 2)
        return interleave(prologue_ops(rng), data, compute(), code)

    return KernelSpec(
        name=f"survey_{app_suffix}_k{index}",
        num_workgroups=8,
        waves_per_workgroup=2,
        lds_bytes_per_workgroup=lds_bytes,
        static_lines=static_lines,
        program_factory=factory,
    )


def make_survey_suite(scale: float = 1.0, page_size: int = 4096) -> List[AppSpec]:
    """The synthetic utilization-survey applications."""

    layout = Layout(page_size)
    apps = []
    for suffix, lds_bytes, static_lines, kernel_count in _SURVEY_SHAPES:
        kernels = tuple(
            _survey_kernel(layout, suffix, index, lds_bytes, static_lines, scale)
            for index in range(kernel_count)
        )
        apps.append(AppSpec(name=f"survey-{suffix}", kernels=kernels, category="?"))
    return apps
