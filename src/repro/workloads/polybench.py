"""Polybench matrix-vector applications: ATAX, BICG, GESUMMV (GEV), MVT.

These are the paper's most translation-bound applications (Table 2 category
High). Their common shape: kernels stream a large matrix (compulsory TLB
misses with strong walk locality) while repeatedly revisiting vector/column
working sets whose footprint exceeds the baseline TLB reach — those
revisits are what the reconfigurable victim caches rescue.

Affinity matters: ATAX/BICG/MVT revisit *globally shared* working sets, so
per-CU LDS copies duplicate translations (Figure 14a) and the shared
I-cache — which deduplicates across its four CUs — outperforms the private
LDS (Section 6.1). GESUMMV is generated with CU-partitioned working sets
(low sharing in Figure 14a), making the private LDS the better fit for it.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.gpu.instructions import alu
from repro.workloads.base import (
    AppSpec,
    KB,
    KernelSpec,
    Layout,
    MB,
    ProgramContext,
    blocked_sweep_ops,
    code_walk_ops,
    interleave,
    prologue_ops,
    stream_ops,
    sweep_ops,
)

_WGS = 32
_WAVES_PER_WG = 4

#: CUs in the simulated GPU / per I-cache group; used only to shape the
#: affinity of synthetic access patterns (work-groups land on CU wg%8).
_NUM_CUS = 8
_CUS_PER_GROUP = 4


def _scaled(value: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(round(value * scale)))


def _affinity_fn(affinity: str, ctx: ProgramContext):
    """Block-selection function implementing CU/group/GPU-wide affinity."""

    cu = ctx.wg_id % _NUM_CUS
    group = cu // _CUS_PER_GROUP
    if affinity == "cu":
        return lambda epoch, blocks: cu * 3 + epoch
    if affinity == "group":
        return lambda epoch, blocks: group * 5 + epoch * 2
    if affinity == "all":
        return lambda epoch, blocks: epoch
    raise ValueError(f"unknown affinity {affinity!r}")


def matvec_kernel(
    kernel_name: str,
    layout: Layout,
    *,
    stream_region: Optional[int] = None,
    stream_bytes_per_wave: int = 0,
    sweep_region: int,
    sweep_ws_bytes: int,
    sweep_block_bytes: int,
    sweep_touches_per_wave: int,
    sweep_epochs: int = 1,
    affinity: str = "all",
    cu_bias: float = 0.45,
    shared_region: Optional[int] = None,
    shared_ws_bytes: int = 0,
    shared_touches_per_wave: int = 0,
    instr_per_touch: int = 16,
    alu_per_wave: int = 0,
    static_lines: int = 32,
    body_lines: int = 5,
    num_workgroups: int = _WGS,
    waves_per_workgroup: int = _WAVES_PER_WG,
) -> KernelSpec:
    """One matrix-vector-style kernel: stream + blocked-sweep + compute."""

    def factory(ctx: ProgramContext) -> Iterable[tuple]:
        rng = ctx.rng()
        streams = [prologue_ops(rng)]
        if stream_bytes_per_wave and stream_region is not None:
            offset = ctx.global_wave * stream_bytes_per_wave
            streams.append(
                stream_ops(
                    layout,
                    layout.region_base(stream_region) + offset,
                    stream_bytes_per_wave,
                )
            )
        cu_slice = None
        if affinity == "group":
            # Each CU prefers its own quarter of the group's block; the
            # remainder is shared group-wide (see blocked_sweep_ops).
            cu_slice = (ctx.wg_id % _NUM_CUS % _CUS_PER_GROUP, _CUS_PER_GROUP, cu_bias)
        streams.append(
            blocked_sweep_ops(
                layout,
                layout.region_base(sweep_region),
                sweep_ws_bytes,
                sweep_block_bytes,
                _affinity_fn(affinity, ctx),
                sweep_touches_per_wave,
                sweep_epochs,
                rng,
                instr_per_touch=instr_per_touch,
                cu_slice=cu_slice,
            )
        )
        if shared_region is not None and shared_touches_per_wave:
            # A small structure (result vectors) genuinely shared by every
            # CU: the nonzero tail of Figure 14a's low-sharing apps.
            streams.append(
                sweep_ops(
                    layout,
                    layout.region_base(shared_region),
                    shared_ws_bytes,
                    shared_touches_per_wave,
                    rng,
                    instr_per_touch=instr_per_touch,
                )
            )
        total_ops = sweep_touches_per_wave // 8 + stream_bytes_per_wave // (
            8 * layout.page_size
        )
        streams.append(
            code_walk_ops(static_lines, body_lines, max(1, total_ops // body_lines))
        )
        if alu_per_wave:

            def alu_stream():
                chunk = max(1, alu_per_wave // 16)
                remaining = alu_per_wave
                while remaining > 0:
                    step = min(chunk, remaining)
                    yield alu(step)
                    remaining -= step

            streams.append(alu_stream())
        return interleave(*streams)

    return KernelSpec(
        name=kernel_name,
        num_workgroups=num_workgroups,
        waves_per_workgroup=waves_per_workgroup,
        lds_bytes_per_workgroup=0,
        static_lines=static_lines,
        program_factory=factory,
    )


def make_atax(scale: float = 1.0, page_size: int = 4096) -> AppSpec:
    """ATAX: y = Aᵀ(Ax). Two kernels, not back-to-back (Table 2: H)."""

    layout = Layout(page_size)
    k1 = matvec_kernel(
        "atax_kernel1", layout,
        stream_region=0,
        stream_bytes_per_wave=_scaled(256 * KB, scale, layout.page_size),
        sweep_region=1,
        sweep_ws_bytes=30 * MB,
        sweep_block_bytes=10 * MB,
        sweep_touches_per_wave=_scaled(320, scale),
        affinity="group",
        alu_per_wave=_scaled(1200, scale),
        static_lines=120,
        body_lines=8,
    )
    k2 = matvec_kernel(
        "atax_kernel2", layout,
        stream_region=2,
        stream_bytes_per_wave=_scaled(64 * KB, scale, layout.page_size),
        sweep_region=3,
        sweep_ws_bytes=36 * MB,
        sweep_block_bytes=12 * MB,
        sweep_touches_per_wave=_scaled(800, scale),
        affinity="group",
        alu_per_wave=_scaled(1500, scale),
        static_lines=110,
        body_lines=9,
    )
    return AppSpec(name="ATAX", kernels=(k1, k2), category="H")


def make_bicg(scale: float = 1.0, page_size: int = 4096) -> AppSpec:
    """BICG: two matrix-vector products with shared vectors (H)."""

    layout = Layout(page_size)
    k1 = matvec_kernel(
        "bicg_kernel1", layout,
        stream_region=0,
        stream_bytes_per_wave=_scaled(224 * KB, scale, layout.page_size),
        sweep_region=1,
        sweep_ws_bytes=33 * MB,
        sweep_block_bytes=11 * MB,
        sweep_touches_per_wave=_scaled(340, scale),
        affinity="group",
        alu_per_wave=_scaled(1200, scale),
        static_lines=115,
        body_lines=8,
    )
    k2 = matvec_kernel(
        "bicg_kernel2", layout,
        stream_region=2,
        stream_bytes_per_wave=_scaled(64 * KB, scale, layout.page_size),
        sweep_region=3,
        sweep_ws_bytes=39 * MB,
        sweep_block_bytes=13 * MB,
        sweep_touches_per_wave=_scaled(720, scale),
        affinity="group",
        alu_per_wave=_scaled(1600, scale),
        static_lines=105,
        body_lines=9,
    )
    return AppSpec(name="BICG", kernels=(k1, k2), category="H")


def make_gesummv(scale: float = 1.0, page_size: int = 4096) -> AppSpec:
    """GESUMMV (GEV): one kernel, two summed matrix-vector products (H).

    The highest PTW-PKI in Table 2 (90.7): almost every instruction is a
    scattered access. Work is CU-partitioned, so cross-CU translation
    sharing is low (Figure 14a) and the private LDS captures its reuse.
    """

    layout = Layout(page_size)
    kernel = matvec_kernel(
        "gesummv_kernel", layout,
        stream_region=0,
        stream_bytes_per_wave=_scaled(96 * KB, scale, layout.page_size),
        sweep_region=1,
        sweep_ws_bytes=24 * MB,
        sweep_block_bytes=3 * MB,
        sweep_touches_per_wave=_scaled(900, scale),
        affinity="cu",
        shared_region=4,
        shared_ws_bytes=12 * MB,
        shared_touches_per_wave=_scaled(80, scale),
        instr_per_touch=6,
        alu_per_wave=_scaled(600, scale),
        static_lines=90,
        body_lines=9,
    )
    return AppSpec(name="GEV", kernels=(kernel,), category="H")


def make_mvt(scale: float = 1.0, page_size: int = 4096) -> AppSpec:
    """MVT: x1 = x1 + A·y1; x2 = x2 + Aᵀ·y2. Two kernels (H)."""

    layout = Layout(page_size)
    k1 = matvec_kernel(
        "mvt_kernel1", layout,
        stream_region=0,
        stream_bytes_per_wave=_scaled(224 * KB, scale, layout.page_size),
        sweep_region=1,
        sweep_ws_bytes=27 * MB,
        sweep_block_bytes=9 * MB,
        sweep_touches_per_wave=_scaled(330, scale),
        affinity="group",
        alu_per_wave=_scaled(1400, scale),
        static_lines=100,
        body_lines=7,
    )
    k2 = matvec_kernel(
        "mvt_kernel2", layout,
        stream_region=2,
        stream_bytes_per_wave=_scaled(64 * KB, scale, layout.page_size),
        sweep_region=3,
        sweep_ws_bytes=36 * MB,
        sweep_block_bytes=12 * MB,
        sweep_touches_per_wave=_scaled(580, scale),
        affinity="group",
        alu_per_wave=_scaled(1700, scale),
        static_lines=118,
        body_lines=8,
    )
    return AppSpec(name="MVT", kernels=(k1, k2), category="H")
