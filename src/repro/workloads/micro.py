"""GUPS micro-benchmark: random updates over a huge table (Table 2: H).

GUPS's footprint vastly exceeds even the augmented translation reach, so
the reconfigurable design helps only in proportion to the added entries
(the paper measures +9.14%, Figure 13b) — an important calibration point
showing the scheme's benefit saturates with footprint.
"""

from __future__ import annotations

from typing import Iterable

from repro.workloads.base import (
    AppSpec,
    KernelSpec,
    Layout,
    MB,
    ProgramContext,
    code_walk_ops,
    interleave,
    prologue_ops,
    random_ops,
)

_FOOTPRINT_BYTES = 160 * MB


def _scaled(value: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(round(value * scale)))


def _gups_kernel(layout: Layout, kernel_name: str, scale: float) -> KernelSpec:
    num_ops = _scaled(40, scale)

    def factory(ctx: ProgramContext) -> Iterable[tuple]:
        rng = ctx.rng()
        updates = random_ops(
            layout,
            layout.region_base(0),
            _FOOTPRINT_BYTES,
            num_ops=num_ops,
            pages_per_op=16,
            rng=rng,
            instr_per_op=16,
            alu_per_op=420,
            is_write=True,
        )
        code = code_walk_ops(20, 4, max(1, num_ops // 4))
        return interleave(prologue_ops(rng), updates, code)

    return KernelSpec(
        name=kernel_name,
        num_workgroups=32,
        waves_per_workgroup=4,
        lds_bytes_per_workgroup=0,
        static_lines=20,
        program_factory=factory,
    )


def make_gups(scale: float = 1.0, page_size: int = 4096) -> AppSpec:
    """GUPS: three kernels (init, update, verify), none back-to-back."""

    layout = Layout(page_size)
    kernels = tuple(
        _gups_kernel(layout, name, scale)
        for name in ("gups_init", "gups_update", "gups_verify")
    )
    return AppSpec(name="GUPS", kernels=kernels, category="H")
