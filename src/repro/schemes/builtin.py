"""Built-in scheme registrations (the paper's evaluation arms).

Imported for its side effects by :mod:`repro.schemes`; the built-ins
keep their :class:`~repro.config.TxScheme` enum members as config
values, so serialized configurations, cache signatures, and pickled
sweep jobs are byte-identical to the pre-registry code. Registration
order matches the historical enum order, which is what every derived
scheme list (CLI, service, ``/version``) used to hardcode.

Grid tags:

- ``fig13-victim`` — the Figure 13b/c (and 14a/b) victim-cache arms.
- ``fig16-ducati`` — the Figure 16c DUCATI-comparison arms.
- ``subregion-grid`` — the comparison arms of the subregion-coalescing
  experiment (the plugin itself also carries this tag).
"""

from __future__ import annotations

from repro.config import TxScheme
from repro.schemes.base import SchemeSpec, VECTORIZED_NATIVE
from repro.schemes.registry import register


def _configure_perfect_l2(config):
    """The perfect-L2 bound is a TLB property, not just a label.

    Selecting the scheme by name must flip ``tlb.perfect_l2`` exactly as
    :meth:`repro.config.SystemConfig.with_perfect_l2_tlb` does — the CLI
    and service used to set only the scheme label, which silently ran a
    baseline-behaving machine under the perfect-L2 name.
    """

    from dataclasses import replace

    return replace(config, tlb=replace(config.tlb, perfect_l2=True))


_BUILTINS = (
    SchemeSpec(
        name=TxScheme.BASELINE.value,
        scheme=TxScheme.BASELINE,
        description="Unmodified Table 1 baseline (no victim caches)",
        tags=("subregion-grid",),
        builtin=True,
    ),
    SchemeSpec(
        name=TxScheme.LDS_ONLY.value,
        scheme=TxScheme.LDS_ONLY,
        description="Reconfigurable LDS victim cache (Section 4.2)",
        tags=("fig13-victim",),
        builtin=True,
    ),
    SchemeSpec(
        name=TxScheme.ICACHE_ONLY.value,
        scheme=TxScheme.ICACHE_ONLY,
        description="Reconfigurable I-cache victim cache (Section 4.3)",
        tags=("fig13-victim",),
        builtin=True,
    ),
    SchemeSpec(
        name=TxScheme.ICACHE_LDS.value,
        scheme=TxScheme.ICACHE_LDS,
        description="Combined LDS + I-cache design (Section 4.4)",
        tags=("fig13-victim", "fig16-ducati", "subregion-grid"),
        builtin=True,
    ),
    SchemeSpec(
        name=TxScheme.DUCATI.value,
        scheme=TxScheme.DUCATI,
        description="DUCATI comparator: L2-resident + in-memory TLB (Section 6.3.4)",
        tags=("fig16-ducati",),
        builtin=True,
    ),
    SchemeSpec(
        name=TxScheme.DUCATI_ICACHE_LDS.value,
        scheme=TxScheme.DUCATI_ICACHE_LDS,
        description="DUCATI combined with the LDS + I-cache victim caches",
        tags=("fig16-ducati",),
        builtin=True,
    ),
    SchemeSpec(
        name=TxScheme.PERFECT_L2_TLB.value,
        scheme=TxScheme.PERFECT_L2_TLB,
        description="Perfect (never-missing) L2 TLB upper bound (Section 3.1)",
        configure=_configure_perfect_l2,
        builtin=True,
    ),
)


def register_builtins() -> None:
    for spec in _BUILTINS:
        register(spec)


register_builtins()
