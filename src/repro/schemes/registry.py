"""The scheme registry: one authoritative list of translation schemes.

Everything that used to hardcode scheme lists — the CLI's ``--scheme``
choices and figure tables, ``valid_schemes()`` in the service, the
experiment harness grids, report labels — derives from this registry,
so registering a scheme makes it appear everywhere automatically.

Contract:

- :func:`register` adds a :class:`~repro.schemes.base.SchemeSpec`;
  duplicate names are rejected (a plugin must never alias an existing
  scheme's cached results).
- :func:`register_plugin` is the convenience form for out-of-enum
  schemes: it builds the frozen, picklable
  :class:`~repro.schemes.base.PluginScheme` config value coherently
  with the declared engine support.
- :func:`resolve` maps a name (or an already-resolved scheme object)
  to the ``SystemConfig.scheme`` value; unknown names raise
  :class:`SchemeError` listing the valid choices — the actionable-error
  style the service's spec validation established.
- :func:`config_for` / :func:`apply_scheme` build configurations by
  name, applying per-scheme config transforms (e.g. the perfect-L2
  bound flips ``tlb.perfect_l2`` in addition to the scheme label).
- :func:`schemes_for_tag` enumerates grid members in registration
  order, which for the built-ins matches the historical enum order so
  existing grids stay byte-identical.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.schemes.base import (
    PluginScheme,
    SchemeSpec,
    VECTORIZED_NATIVE,
    VECTORIZED_UNSUPPORTED,
)

_REGISTRY: Dict[str, SchemeSpec] = {}


class SchemeError(ValueError):
    """An unknown or unusable scheme name.

    Mirrors :class:`repro.service.jobs.SpecError`: the message lists the
    valid choices and ``choices`` carries them structurally.
    """

    def __init__(self, message: str, choices: Optional[Sequence[str]] = None) -> None:
        super().__init__(message)
        self.choices = list(choices) if choices else []


def register(spec: SchemeSpec) -> SchemeSpec:
    """Add ``spec`` to the registry; duplicate names are an error."""

    if spec.name in _REGISTRY:
        raise SchemeError(
            f"scheme {spec.name!r} is already registered; a plugin must not "
            f"alias an existing scheme (cached results are keyed by name)"
        )
    _REGISTRY[spec.name] = spec
    return spec


def register_plugin(
    name: str,
    description: str = "",
    *,
    uses_lds_tx: bool = False,
    uses_icache_tx: bool = False,
    uses_ducati: bool = False,
    uses_subregion: bool = False,
    vectorized: str = VECTORIZED_NATIVE,
    analytical: bool = False,
    tags: Tuple[str, ...] = (),
    configure: Optional[Callable[..., object]] = None,
) -> SchemeSpec:
    """Register an out-of-enum scheme, building its config value coherently."""

    engines = ("event",) if vectorized == VECTORIZED_UNSUPPORTED else (
        "event", "vectorized",
    )
    scheme = PluginScheme(
        name=name,
        uses_lds_tx=uses_lds_tx,
        uses_icache_tx=uses_icache_tx,
        uses_ducati=uses_ducati,
        uses_subregion=uses_subregion,
        supported_engines=engines,
        analytical=analytical,
    )
    return register(
        SchemeSpec(
            name=name,
            scheme=scheme,
            description=description,
            vectorized=vectorized,
            analytical=analytical,
            tags=tags,
            configure=configure,
        )
    )


def unregister(name: str) -> None:
    """Remove a scheme (test cleanup for throwaway plugins)."""

    _REGISTRY.pop(name, None)


def scheme_names() -> List[str]:
    """Every registered scheme name, in registration order."""

    return list(_REGISTRY)


def schemes() -> List[SchemeSpec]:
    """Every registered spec, in registration order."""

    return list(_REGISTRY.values())


def get(name: str) -> SchemeSpec:
    """The spec registered under ``name``; unknown names are actionable."""

    spec = _REGISTRY.get(name)
    if spec is None:
        names = scheme_names()
        raise SchemeError(
            f"unknown scheme {name!r}; valid schemes: {names}", choices=names
        )
    return spec


def spec_for(scheme: object) -> SchemeSpec:
    """The spec describing ``scheme`` (a name or a scheme object)."""

    if isinstance(scheme, str):
        return get(scheme)
    return get(getattr(scheme, "value", scheme))


def resolve(scheme: object):
    """Map a scheme name (or scheme object) to its config value."""

    return spec_for(scheme).scheme


def schemes_for_tag(tag: str) -> List[SchemeSpec]:
    """Grid members carrying ``tag``, in registration order."""

    return [spec for spec in _REGISTRY.values() if tag in spec.tags]


def apply_scheme(config, scheme: object):
    """Select a scheme on ``config`` by name, transforms included."""

    return spec_for(scheme).apply(config)


def config_for(scheme: object, base=None):
    """A Table-1 configuration with ``scheme`` selected by name."""

    if base is None:
        from repro.config import table1_config

        base = table1_config()
    return apply_scheme(base, scheme)


def engine_supported(scheme: object, engine: str) -> bool:
    """Whether ``scheme`` accepts ``engine`` (see SchemeSpec.vectorized)."""

    return engine in spec_for(scheme).supported_engines
