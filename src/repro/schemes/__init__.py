"""Pluggable translation-scheme registry.

Importing this package registers the built-in arms (the paper's
evaluation schemes, :mod:`repro.schemes.builtin`) and the bundled
plugins (:mod:`repro.schemes.subregion`); every scheme list in the CLI,
service, and experiment harnesses derives from here. See
:mod:`repro.schemes.base` for the plugin contract and docs/MODEL.md for
a how-to-write-a-scheme walkthrough.
"""

from repro.schemes.base import (  # noqa: F401
    PluginScheme,
    SchemeSpec,
    VECTORIZED_FALLBACK,
    VECTORIZED_NATIVE,
    VECTORIZED_UNSUPPORTED,
)
from repro.schemes.registry import (  # noqa: F401
    SchemeError,
    apply_scheme,
    config_for,
    engine_supported,
    get,
    register,
    register_plugin,
    resolve,
    scheme_names,
    schemes,
    schemes_for_tag,
    spec_for,
    unregister,
)
from repro.schemes import builtin  # noqa: F401  (registers the built-ins)
from repro.schemes import subregion  # noqa: F401  (registers the plugin)
from repro.schemes.subregion import SubregionStore  # noqa: F401

__all__ = [
    "PluginScheme",
    "SchemeSpec",
    "SchemeError",
    "SubregionStore",
    "VECTORIZED_FALLBACK",
    "VECTORIZED_NATIVE",
    "VECTORIZED_UNSUPPORTED",
    "apply_scheme",
    "config_for",
    "engine_supported",
    "get",
    "register",
    "register_plugin",
    "resolve",
    "scheme_names",
    "schemes",
    "schemes_for_tag",
    "spec_for",
    "unregister",
]
