"""Subregion-contiguity TLB coalescing (arXiv 2110.08613-style plugin).

The observation behind contiguity-aware translation (CoPTA/Valkyrie-style
designs): demand paging tends to allocate physically *uniform-stride* runs
of frames for virtually consecutive pages, so one TLB entry can cover a
whole run. This plugin detects such runs inside aligned *subregions* of
the virtual address space and caches them as coalesced entries alongside
the shared L2 TLB:

- On the full miss path (after the L2 TLB misses), the per-GPU
  :class:`SubregionStore` is probed: a hit synthesizes the translation
  from the run's base frame + stride and fills the normal TLB hierarchy,
  skipping the IOMMU round-trip entirely.
- When a translation *is* serviced by the IOMMU, the store inspects the
  page table around the resolved page — the walker already has the
  neighbouring PTEs in hand — and installs a coalesced entry when it
  finds a long-enough uniform-stride run in the page's subregion.

Detection is strictly read-only on the page table: only pages that are
already mapped are examined (``is_mapped`` before ``translate``), so the
deterministic first-touch frame-allocation sequence every other scheme
sees is untouched.

The store is deliberately off the vectorized engine's fast path: the
scheme declares ``vectorized="fallback"``, which routes memory ops
through the event-exact slow path (byte-identical, enforced by the
equivalence battery) instead of silently mispredicting.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.config import SubregionConfig
from repro.pagetable.page_table import PageTable
from repro.schemes.registry import register_plugin
from repro.sim.stats import Stats
from repro.tlb.base import TranslationEntry

#: The registry name of the scheme (its CLI/service/cache identity).
SCHEME_NAME = "subregion-coalescing"


@dataclass
class CoalescedRun:
    """One uniform-stride run of mapped pages within a subregion."""

    base_vpn: int
    base_pfn: int
    stride: int
    length: int

    def covers(self, vpn: int) -> bool:
        return self.base_vpn <= vpn < self.base_vpn + self.length

    def pfn_for(self, vpn: int) -> int:
        return self.base_pfn + (vpn - self.base_vpn) * self.stride


class SubregionStore:
    """LRU store of coalesced subregion entries shared by all CUs.

    Keyed by ``(vmid, vrf_id, subregion_index)`` — at most one run per
    subregion, covering up to ``config.subregion_pages`` pages with a
    single entry.
    """

    def __init__(
        self,
        config: SubregionConfig,
        page_table: PageTable,
        stats: Optional[Stats] = None,
        name: str = "subregion",
    ) -> None:
        if config.subregion_pages < 2 or (
            config.subregion_pages & (config.subregion_pages - 1)
        ):
            raise ValueError(
                f"subregion_pages must be a power of two >= 2, "
                f"got {config.subregion_pages}"
            )
        if not 2 <= config.min_run <= config.subregion_pages:
            raise ValueError(
                f"min_run must be in [2, subregion_pages], got {config.min_run}"
            )
        self.config = config
        self.page_table = page_table
        self.stats = stats if stats is not None else Stats()
        self.name = name
        self._shift = config.subregion_pages.bit_length() - 1
        self._runs: "OrderedDict[tuple, CoalescedRun]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._runs)

    def _region_key(self, key: tuple) -> tuple:
        vmid, vrf_id, vpn = key
        return (vmid, vrf_id, vpn >> self._shift)

    def lookup(self, key: tuple, anchor: int) -> Tuple[Optional[TranslationEntry], int]:
        """Probe for a coalesced entry covering ``key``'s page.

        Returns ``(entry_or_None, stage_latency)`` in the victim-cache
        stage convention of :mod:`repro.core.translation`.
        """

        latency = self.config.lookup_latency
        run = self._runs.get(self._region_key(key))
        vmid, vrf_id, vpn = key
        if run is not None and run.covers(vpn):
            self._runs.move_to_end(self._region_key(key))
            self.stats.add(f"{self.name}.hits")
            entry = TranslationEntry(
                vpn=vpn, pfn=run.pfn_for(vpn), vmid=vmid, vrf_id=vrf_id
            )
            return entry, latency
        self.stats.add(f"{self.name}.misses")
        return None, latency

    def observe(self, key: tuple, pfn: int) -> Optional[CoalescedRun]:
        """Learn contiguity around a page the IOMMU just resolved.

        ``key``'s page maps to ``pfn``. Examines only already-mapped
        neighbours within the page's aligned subregion and installs a
        coalesced entry when the uniform-stride run through the page is
        at least ``config.min_run`` pages long.
        """

        vmid, _vrf_id, vpn = key
        self.stats.add(f"{self.name}.observations")
        region_base = (vpn >> self._shift) << self._shift
        region_end = region_base + self.config.subregion_pages

        def mapped_pfn(v: int) -> Optional[int]:
            if v == vpn:
                return pfn
            if region_base <= v < region_end and self.page_table.is_mapped(vmid, v):
                # Mapped pages resolve without allocating a frame, so
                # probing here cannot perturb the allocation sequence.
                return self.page_table.translate(vmid, v)
            return None

        # The run's stride comes from whichever immediate neighbour is
        # mapped; without a mapped neighbour there is nothing to coalesce.
        right = mapped_pfn(vpn + 1)
        left = mapped_pfn(vpn - 1)
        if right is not None:
            stride = right - pfn
        elif left is not None:
            stride = pfn - left
        else:
            return None
        if stride == 0:
            return None

        lo, lo_pfn = vpn, pfn
        while True:
            neighbour = mapped_pfn(lo - 1)
            if neighbour is None or lo_pfn - neighbour != stride:
                break
            lo, lo_pfn = lo - 1, neighbour
        hi, hi_pfn = vpn, pfn
        while True:
            neighbour = mapped_pfn(hi + 1)
            if neighbour is None or neighbour - hi_pfn != stride:
                break
            hi, hi_pfn = hi + 1, neighbour

        length = hi - lo + 1
        if length < self.config.min_run:
            return None
        run = CoalescedRun(base_vpn=lo, base_pfn=lo_pfn, stride=stride, length=length)
        region = self._region_key(key)
        if region in self._runs:
            self.stats.add(f"{self.name}.replacements")
            del self._runs[region]
        self._runs[region] = run
        self.stats.add(f"{self.name}.installs")
        while len(self._runs) > self.config.entries:
            self._runs.popitem(last=False)
            self.stats.add(f"{self.name}.evictions")
        return run

    def invalidate_vpn(self, vpn: int) -> int:
        """Drop every run covering ``vpn`` in any address space
        (shootdowns must never leave a stale coalesced mapping)."""

        stale = [
            region for region, run in self._runs.items() if run.covers(vpn)
        ]
        for region in stale:
            del self._runs[region]
        if stale:
            self.stats.add(f"{self.name}.invalidations", len(stale))
        return len(stale)


register_plugin(
    SCHEME_NAME,
    description=(
        "Subregion-contiguity coalesced L2-TLB entries learned in the "
        "walker path (arXiv 2110.08613)"
    ),
    uses_subregion=True,
    vectorized="fallback",
    analytical=False,
    tags=("subregion-grid",),
)
