"""Scheme plugin contract.

A *scheme* is one translation-reach design point — an experiment arm in
the paper's evaluation (baseline, the reconfigurable LDS/I-cache victim
caches, DUCATI, the perfect-L2 bound) or a plugin landed from related
work. Every scheme is described by a :class:`SchemeSpec`:

- ``name`` — the stable string identity used by the CLI (``--scheme``),
  the service (``"schemes": [...]``), serialized configurations, cache
  keys, and report labels.
- capability flags (``uses_lds_tx`` / ``uses_icache_tx`` / ``uses_ducati``
  / ``uses_subregion``) — which victim-cache structures
  :class:`~repro.system.GPUSystem` wires up for the scheme.
- engine support — whether the vectorized fast path models the scheme
  natively (byte-identical fast records), falls back to the event-exact
  slow path, or must be rejected up front; and whether the analytical
  model (:mod:`repro.sim.analytical`) can estimate it. Unsupported
  combinations raise a clear error instead of silently mispredicting.
- ``tags`` — grid-membership labels the experiment harnesses enumerate
  (e.g. the fig13 victim-cache arms), so a new scheme joins the right
  grids by declaring a tag rather than by editing every harness.
- ``configure`` — an optional config transform applied when a scheme is
  *selected by name* (CLI ``--scheme``, service specs,
  :func:`repro.schemes.registry.config_for`); e.g. the perfect-L2 bound
  must also flip ``tlb.perfect_l2``, not just relabel the scheme.

The legacy :class:`~repro.config.TxScheme` enum members remain the
``SystemConfig.scheme`` values for the built-in arms (preserving cache
identity and pickling); plugin schemes carry a :class:`PluginScheme`
value instead, which duck-types the same interface (``.value`` plus the
capability-flag properties). Everything downstream of a ``SystemConfig``
only ever reads that interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

#: Vectorized-engine support levels a scheme may declare.
VECTORIZED_NATIVE = "native"        # fast records model the scheme directly
VECTORIZED_FALLBACK = "fallback"    # event-exact slow path, byte-identical
VECTORIZED_UNSUPPORTED = "unsupported"  # reject engine="vectorized" up front

_VECTORIZED_LEVELS = (
    VECTORIZED_NATIVE,
    VECTORIZED_FALLBACK,
    VECTORIZED_UNSUPPORTED,
)


@dataclass(frozen=True)
class PluginScheme:
    """The ``SystemConfig.scheme`` value of an out-of-enum scheme.

    Frozen and picklable (sweep jobs cross process-pool boundaries), and
    duck-compatible with :class:`~repro.config.TxScheme`: ``.value`` and
    the capability-flag properties are all the simulator reads.
    """

    name: str
    uses_lds_tx: bool = False
    uses_icache_tx: bool = False
    uses_ducati: bool = False
    uses_subregion: bool = False
    #: Engines this scheme accepts; ``SystemConfig.__post_init__`` checks
    #: membership so an unsupported engine fails at construction, long
    #: before a worker process would silently mispredict.
    supported_engines: Tuple[str, ...] = ("event", "vectorized")
    #: Whether :func:`repro.sim.analytical.estimate_app` models the scheme.
    analytical: bool = False

    @property
    def value(self) -> str:
        return self.name


@dataclass(frozen=True)
class SchemeSpec:
    """One registered scheme: identity, capabilities, engine support."""

    name: str
    #: The object stored on ``SystemConfig.scheme`` — a ``TxScheme``
    #: member for built-ins, a :class:`PluginScheme` for plugins.
    scheme: object
    description: str = ""
    #: ``native`` / ``fallback`` / ``unsupported`` (see module constants).
    vectorized: str = VECTORIZED_NATIVE
    #: Whether the analytical model can estimate this scheme.
    analytical: bool = True
    #: Grid-membership labels enumerated by the experiment harnesses.
    tags: Tuple[str, ...] = ()
    #: Applied when the scheme is selected by name on a base config;
    #: must be a picklable module-level callable or None.
    configure: Optional[Callable[..., object]] = field(
        default=None, compare=False
    )
    builtin: bool = False

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"scheme name must be a non-empty string, got {self.name!r}")
        if self.vectorized not in _VECTORIZED_LEVELS:
            raise ValueError(
                f"vectorized support must be one of {_VECTORIZED_LEVELS}, "
                f"got {self.vectorized!r}"
            )
        if getattr(self.scheme, "value", None) != self.name:
            raise ValueError(
                f"scheme object value {getattr(self.scheme, 'value', None)!r} "
                f"does not match spec name {self.name!r}"
            )

    @property
    def supported_engines(self) -> Tuple[str, ...]:
        if self.vectorized == VECTORIZED_UNSUPPORTED:
            return ("event",)
        return ("event", "vectorized")

    def apply(self, config):
        """Select this scheme on ``config`` (transform included)."""

        updated = config.with_scheme(self.scheme)
        if self.configure is not None:
            updated = self.configure(updated)
        return updated
