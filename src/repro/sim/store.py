"""Content-addressed shared result store.

Simulation results are cached on disk keyed by the experiment cache key
(:func:`repro.experiments.common.cache_key`), addressed by content
identity: the file name is the sha256 digest of the key, so any worker
process, remote worker host, or service replica that computes the same
``(app, config, scale)`` simulation reads and writes the same entry.

Layout: a sharded two-level directory tree,

    <root>/<digest[:2]>/<digest[2:4]>/<digest>.json

which keeps directory fan-out bounded when millions of entries share one
store (a flat directory degrades most filesystems long before that).
Pre-sharding stores wrote ``<root>/<digest>.json``; :meth:`ResultStore.load`
still reads those flat entries and opportunistically migrates them into
their shard with an atomic rename, so upgrading never discards warm
results.

Durability and concurrency, which many writers on many hosts require:

- Writes go to a private temp file that is flushed and fsynced *before*
  the atomic ``os.replace`` publishes it (plus a best-effort fsync of the
  shard directory), so a crash mid-store can orphan a ``.tmp`` file but
  never publish a truncated entry.
- Bad entries are quarantined under a unique ``.<pid>-<seq>.corrupt``
  suffix; two processes racing to quarantine the same entry cannot
  collide, and the loser tolerates the winner having already moved it.
- Module-wide hit/miss/store/quarantine/evict counters (thread-safe, one
  set per process) are surfaced by ``SweepReport.store``, ``/healthz``
  and ``repro cache stats``.

``repro cache {stats,gc,verify}`` exposes :meth:`ResultStore.stats`,
:meth:`ResultStore.gc` (orphaned temp files, quarantined debris, stale
schemas, optional age expiry) and :meth:`ResultStore.verify` (full scan
with optional per-entry fingerprints for byte-identity comparisons).

The (de)serialization of entries stays in :mod:`repro.experiments.common`
(``serialize_result`` / ``deserialize_result`` / ``CACHE_SCHEMA``) and is
imported lazily here; ``common`` imports this module at top level.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
import threading
import time
from itertools import count as _counter
from typing import Dict, Iterator, List, Optional, Tuple

_LOG = logging.getLogger("repro.sim.store")

#: Counter names tracked per process (all store roots combined).
COUNTER_NAMES = ("hits", "misses", "stale", "stores", "quarantined", "evicted")

_COUNTER_LOCK = threading.Lock()
_COUNTERS: Dict[str, int] = {name: 0 for name in COUNTER_NAMES}

#: Monotonic per-process sequence making quarantine file names unique.
_QUARANTINE_SEQ = _counter(1)


def _count(name: str, amount: int = 1) -> None:
    with _COUNTER_LOCK:
        _COUNTERS[name] += amount


def counters_snapshot() -> Dict[str, int]:
    """A point-in-time copy of the process-wide store counters."""

    with _COUNTER_LOCK:
        return dict(_COUNTERS)


def counters_delta(before: Dict[str, int]) -> Dict[str, int]:
    """Counter increments since ``before`` (a :func:`counters_snapshot`)."""

    after = counters_snapshot()
    return {name: after[name] - before.get(name, 0) for name in COUNTER_NAMES}


def reset_counters() -> None:
    """Zero the process-wide counters (test isolation)."""

    with _COUNTER_LOCK:
        for name in COUNTER_NAMES:
            _COUNTERS[name] = 0


def key_digest(key: str) -> str:
    """The content address of one cache key (24 hex chars of sha256).

    Unchanged from the pre-sharding flat layout, so promoting a store to
    the sharded tree is purely a path change — no entry is re-keyed.
    """

    return hashlib.sha256(key.encode()).hexdigest()[:24]


def _fsync_dir(path: str) -> None:
    # Durability of the rename itself; best-effort because not every
    # platform/filesystem allows opening a directory for fsync.
    try:
        dir_fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


class ResultStore:
    """One on-disk result store rooted at ``root``.

    Construction is cheap (no I/O); every method tolerates the root not
    existing yet. All processes sharing ``root`` — pool workers, remote
    ``repro worker`` hosts, service replicas — interoperate through
    atomic renames only.
    """

    def __init__(self, root: str) -> None:
        if not root:
            raise ValueError("ResultStore needs a non-empty root directory")
        self.root = root

    # -- paths -------------------------------------------------------------

    def path_for(self, key: str) -> str:
        digest = key_digest(key)
        return os.path.join(self.root, digest[:2], digest[2:4], f"{digest}.json")

    def legacy_path_for(self, key: str) -> str:
        """Where the pre-sharding flat layout kept this entry."""

        return os.path.join(self.root, f"{key_digest(key)}.json")

    # -- read / write ------------------------------------------------------

    def load(self, key: str):
        """The stored :class:`~repro.sim.results.SimResult` for ``key``,
        or ``None`` (absent, stale schema, or quarantined-as-corrupt)."""

        from repro.experiments.common import CACHE_SCHEMA, deserialize_result

        path = self.path_for(key)
        if not os.path.exists(path):
            path = self._migrate_legacy(key, path)
            if path is None:
                _count("misses")
                return None
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            # Raced a concurrent quarantine/gc: treat as a plain miss.
            _count("misses")
            return None
        except (OSError, ValueError):
            self.quarantine(path, "corrupt (unreadable or invalid JSON)")
            _count("misses")
            return None
        if not isinstance(payload, dict):
            self.quarantine(path, "corrupt (not a JSON object)")
            _count("misses")
            return None
        if payload.get("schema") != CACHE_SCHEMA:
            # A stale (pre-versioning or different-version) payload:
            # re-simulate and let the fresh result overwrite it in place.
            _LOG.warning(
                "cache file %s has schema %r (want %r); re-simulating",
                path,
                payload.get("schema"),
                CACHE_SCHEMA,
            )
            _count("stale")
            _count("misses")
            return None
        try:
            result = deserialize_result(payload)
        except (KeyError, TypeError):
            self.quarantine(path, "corrupt (schema tag valid but fields malformed)")
            _count("misses")
            return None
        _count("hits")
        return result

    def _migrate_legacy(self, key: str, sharded_path: str) -> Optional[str]:
        """Move a flat-layout entry into its shard; the readable path, or
        ``None`` when the entry exists in neither layout."""

        legacy = self.legacy_path_for(key)
        if not os.path.exists(legacy):
            return None
        os.makedirs(os.path.dirname(sharded_path), exist_ok=True)
        try:
            os.replace(legacy, sharded_path)
        except FileNotFoundError:
            # A concurrent reader migrated it first; fall through to
            # whichever path exists now.
            pass
        except OSError:
            # Can't migrate (permissions, cross-device…): read in place.
            return legacy
        if os.path.exists(sharded_path):
            return sharded_path
        return legacy if os.path.exists(legacy) else None

    def store(self, key: str, result) -> None:
        """Durably publish ``result`` under ``key`` (atomic overwrite)."""

        from repro.experiments.common import serialize_result

        path = self.path_for(key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        # Concurrent writers (pool workers, remote workers, replicas) may
        # store the same key at once: write to a private temp file, fsync
        # it, and atomically replace — readers only ever observe complete
        # payloads, the last writer wins with a fully valid file, and a
        # crash mid-write can orphan a .tmp but never truncate the entry.
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=os.path.basename(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(serialize_result(result), handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        _fsync_dir(directory)
        _count("stores")

    def quarantine(self, path: str, reason: str) -> None:
        """Move a bad entry aside so it is kept for debugging but never
        consulted (or silently overwritten) again.

        The quarantined name carries a ``<pid>-<seq>`` suffix so that two
        processes racing to quarantine the same entry cannot collide on
        one destination; the loser of the ``os.replace`` race observes
        ``FileNotFoundError`` and simply stands down.
        """

        quarantined = f"{path}.{os.getpid()}-{next(_QUARANTINE_SEQ)}.corrupt"
        try:
            os.replace(path, quarantined)
        except FileNotFoundError:
            # The other racer already quarantined (or gc removed) it.
            _LOG.debug("cache file %s was %s; another process quarantined it first", path, reason)
            return
        except OSError:
            _LOG.warning("cache file %s is %s and could not be quarantined", path, reason)
            return
        _count("quarantined")
        _LOG.warning(
            "cache file %s is %s; quarantined to %s and re-simulating",
            path,
            reason,
            quarantined,
        )

    # -- maintenance (repro cache {stats,gc,verify}) -----------------------

    def _walk(self) -> Iterator[Tuple[str, List[str]]]:
        if not os.path.isdir(self.root):
            return
        for dirpath, _dirnames, filenames in os.walk(self.root):
            yield dirpath, filenames

    def scan(self) -> Iterator[str]:
        """Paths of every published entry (flat and sharded layouts)."""

        for dirpath, filenames in self._walk():
            for name in sorted(filenames):
                if name.endswith(".json"):
                    yield os.path.join(dirpath, name)

    def scan_debris(self) -> Tuple[List[str], List[str]]:
        """(orphaned ``.tmp`` files, quarantined ``.corrupt`` files)."""

        tmp_files: List[str] = []
        corrupt: List[str] = []
        for dirpath, filenames in self._walk():
            for name in sorted(filenames):
                if name.endswith(".tmp"):
                    tmp_files.append(os.path.join(dirpath, name))
                elif name.endswith(".corrupt"):
                    corrupt.append(os.path.join(dirpath, name))
        return tmp_files, corrupt

    def stats(self) -> Dict:
        """Scan-based shape of the store plus the process counters."""

        entries = 0
        legacy_entries = 0
        total_bytes = 0
        for path in self.scan():
            entries += 1
            if os.path.dirname(path) == self.root.rstrip(os.sep):
                legacy_entries += 1
            try:
                total_bytes += os.path.getsize(path)
            except OSError:
                pass
        tmp_files, corrupt = self.scan_debris()
        return {
            "root": self.root,
            "entries": entries,
            "legacy_flat_entries": legacy_entries,
            "total_bytes": total_bytes,
            "tmp_files": len(tmp_files),
            "quarantined_files": len(corrupt),
            "counters": counters_snapshot(),
        }

    def gc(
        self,
        max_age_s: Optional[float] = None,
        tmp_grace_s: float = 3600.0,
        dry_run: bool = False,
    ) -> Dict:
        """Sweep debris: orphaned temp files older than ``tmp_grace_s``
        (a live writer holds its temp file for milliseconds), quarantined
        ``.corrupt`` files, stale-schema entries, and — when ``max_age_s``
        is given — entries older than that. Empty shard directories are
        pruned. Returns what was (or would be, with ``dry_run``) removed.
        """

        from repro.experiments.common import CACHE_SCHEMA

        now = time.time()
        removed = {"tmp": 0, "corrupt": 0, "stale": 0, "expired": 0, "dirs": 0}

        def _remove(path: str, bucket: str) -> None:
            if not dry_run:
                try:
                    os.unlink(path)
                except FileNotFoundError:
                    return
                except OSError:
                    _LOG.warning("cache gc could not remove %s", path)
                    return
            removed[bucket] += 1

        tmp_files, corrupt = self.scan_debris()
        for path in tmp_files:
            try:
                age = now - os.path.getmtime(path)
            except OSError:
                continue
            if age >= tmp_grace_s:
                _remove(path, "tmp")
        for path in corrupt:
            _remove(path, "corrupt")
        for path in self.scan():
            try:
                with open(path) as handle:
                    payload = json.load(handle)
                schema = payload.get("schema") if isinstance(payload, dict) else None
            except (OSError, ValueError):
                schema = None
            if schema != CACHE_SCHEMA:
                _remove(path, "stale")
                continue
            if max_age_s is not None:
                try:
                    age = now - os.path.getmtime(path)
                except OSError:
                    continue
                if age >= max_age_s:
                    _remove(path, "expired")
        if not dry_run and os.path.isdir(self.root):
            # Bottom-up so emptied leaf shards expose empty parents;
            # rmdir itself is the emptiness check (it fails on non-empty
            # dirs, and the walk's cached listings are already stale).
            for dirpath, _dirnames, _filenames in os.walk(self.root, topdown=False):
                if dirpath == self.root:
                    continue
                try:
                    os.rmdir(dirpath)
                    removed["dirs"] += 1
                except OSError:
                    pass
        evicted = removed["corrupt"] + removed["stale"] + removed["expired"]
        if evicted and not dry_run:
            _count("evicted", evicted)
        removed["dry_run"] = dry_run
        return removed

    def verify(self, fingerprints: bool = False) -> Dict:
        """Scan and validate every entry; optionally compute per-entry
        result fingerprints (sorted by digest) for byte-identity
        comparisons between two stores (the CI remote-executor smoke
        diffs these between a remote-run and a serial-run store)."""

        from repro.experiments.common import (
            CACHE_SCHEMA,
            deserialize_result,
            result_fingerprint,
        )

        checked = 0
        ok = 0
        stale: List[str] = []
        corrupt: List[str] = []
        prints: List[Tuple[str, str]] = []
        for path in self.scan():
            checked += 1
            try:
                with open(path) as handle:
                    payload = json.load(handle)
            except (OSError, ValueError):
                corrupt.append(path)
                continue
            if not isinstance(payload, dict):
                corrupt.append(path)
                continue
            if payload.get("schema") != CACHE_SCHEMA:
                stale.append(path)
                continue
            try:
                result = deserialize_result(payload)
            except (KeyError, TypeError):
                corrupt.append(path)
                continue
            ok += 1
            if fingerprints:
                digest = os.path.basename(path)[: -len(".json")]
                prints.append((digest, result_fingerprint(result)))
        report: Dict = {
            "root": self.root,
            "checked": checked,
            "ok": ok,
            "stale": sorted(stale),
            "corrupt": sorted(corrupt),
        }
        if fingerprints:
            report["fingerprints"] = sorted(prints)
        return report
