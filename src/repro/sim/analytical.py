"""Analytical translation-reach estimator (``repro estimate``).

Predicts an application's PTW-PKI and scheme speedup *without timing
simulation*, in two stages:

1. **Functional reach model.** The deterministic wave programs are replayed
   through the real capacity/replacement structures — per-CU L1 TLBs, the
   reconfigurable LDS and I-cache victim caches, the shared L2 TLB, the
   IOMMU device TLBs and split page-walk caches — with all timing stripped
   out (ports are probed at a fixed anchor, latencies discarded). Wave
   programs are interleaved round-robin per CU, a first-order stand-in for
   the event scheduler's latency-driven interleave, and work-group
   admission honours the real wave-slot and LDS-allocation limits so the
   victim caches see realistic application contention. The output is the
   per-level translation service histogram: L1 / LDS / I-cache / L2 TLB /
   DUCATI / IOMMU hits and finally page walks — i.e. the *reach* of each
   configuration.

2. **Closed-form latency model.** Per-level service counts are weighted by
   the configuration's latencies (accumulating probe costs along the
   Section 4.4 lookup path), walks are costed from the functional PWC's
   skip levels, and a roofline combines instruction issue bandwidth, the
   walker-pool throughput bound, and the concurrency-hidden translation
   stall into an estimated cycle count. Speedups are ratios of estimates.

The estimator's contract is *accuracy of the reach model*, not byte
identity: tests/sim/test_analytical.py validates estimated PTW-PKI against
the event engine across the Figure 13 grid diagonal (see the tolerance
there). The latency side is a first-order bound model: useful for ranking
schemes and sizing effects, not for absolute cycle counts.

Differences from the simulator, by design:

- No MSHR/in-flight merge table: a walk's fill is visible immediately, so
  accesses the simulator merges hit the L1 TLB here instead — the same
  number of walks either way, which is what PTW-PKI measures.
- No queuing: scheduler interleave is round-robin, so shared-structure
  LRU stacks see slightly different orderings than the event engine.
- DUCATI's LLC-resident directory is collapsed into its part-of-memory
  TLB (reach-wise a superset; the latency model charges a blended cost).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config import SystemConfig, TxScheme, table1_config
from repro.core.fill_flow import VictimFillFlow
from repro.core.reconfig_icache import ReconfigurableICache
from repro.core.reconfig_lds import LDSTxCache
from repro.core.translation import SharingTracker
from repro.gpu.instructions import ALU, LDS, LINE, MEM
from repro.gpu.lds import LocalDataShare
from repro.gpu.wavefront import IB_LINES
from repro.pagetable.walk_cache import SplitPageWalkCache
from repro.sim.stats import Stats
from repro.tlb.base import TranslationEntry
from repro.tlb.fully_assoc import FullyAssociativeTLB
from repro.tlb.set_assoc import SetAssociativeTLB
from repro.workloads.base import AppSpec, KernelSpec, ProgramContext
from repro.workloads.registry import make_app

#: Service levels, in lookup-path order (the Estimate histogram keys).
SERVICE_LEVELS = (
    "l1_tlb", "lds", "icache", "l2_tlb", "ducati",
    "iommu_l1", "iommu_l2", "walk",
)


@dataclass
class Estimate:
    """One application × configuration reach/latency estimate."""

    app_name: str
    scheme: str
    instructions: int = 0
    translations: int = 0
    #: Translations serviced at each level (SERVICE_LEVELS keys).
    serviced: Dict[str, int] = field(default_factory=dict)
    #: PTE memory accesses across all walks (walk depth after PWC skips).
    pte_accesses: int = 0
    #: Peak concurrently-resident waves on any CU (latency-hiding width).
    peak_waves_per_cu: int = 0
    #: Roofline cycle estimate (first-order; use ratios, not absolutes).
    est_cycles: float = 0.0

    @property
    def page_walks(self) -> int:
        return self.serviced.get("walk", 0)

    @property
    def ptw_pki(self) -> float:
        if not self.instructions:
            return 0.0
        return 1000.0 * self.page_walks / self.instructions


class _PomDucati:
    """Reach-only DUCATI stand-in: one LRU pool at POM-TLB capacity.

    The real DucatiStore layers an LLC-resident directory (entries killed
    by data contention) over the POM TLB; reach-wise the POM TLB is the
    superset that determines whether a walk is avoided, so the functional
    model keeps only it. Latency blending happens in the latency model.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._pool: "OrderedDict[tuple, TranslationEntry]" = OrderedDict()

    def lookup(self, key: tuple) -> Optional[TranslationEntry]:
        entry = self._pool.get(key)
        if entry is not None:
            self._pool.move_to_end(key)
        return entry

    def fill(self, entry: TranslationEntry) -> None:
        key = entry.key
        if key in self._pool:
            self._pool.move_to_end(key)
            return
        if len(self._pool) >= self.capacity:
            self._pool.popitem(last=False)
        self._pool[key] = entry


class _WaveState:
    """One in-flight wave during functional replay."""

    __slots__ = ("ops", "workgroup", "ib")

    def __init__(self, ops, workgroup) -> None:
        self.ops = ops
        self.workgroup = workgroup
        self.ib: List[int] = []


class _WorkGroupState:
    __slots__ = ("waves_left", "alloc_id")

    def __init__(self, waves_left: int, alloc_id: Optional[int]) -> None:
        self.waves_left = waves_left
        self.alloc_id = alloc_id


class FunctionalReachModel:
    """Replays an app through the real structures with timing stripped."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        scheme = config.scheme
        # Plugin schemes declare whether the analytical model can estimate
        # them; refuse clearly rather than silently modelling the scheme as
        # a baseline (TxScheme members carry no flag — all are modelled).
        if not getattr(scheme, "analytical", True):
            raise ValueError(
                f"scheme {scheme.value!r} is not supported by the "
                f"analytical model; simulate it (event engine) instead"
            )
        num_cus = config.gpu.num_cus
        # Scratch stats sink: the reused structures insist on one; its
        # counters are never read (the model keeps its own histogram).
        stats = Stats()
        self.counts: Dict[str, int] = {level: 0 for level in SERVICE_LEVELS}
        self.instructions = 0
        self.translations = 0
        self.pte_accesses = 0
        self.peak_waves_per_cu = 0

        self.sharing = SharingTracker()
        self.l2_tlb = SetAssociativeTLB(
            config.tlb.l2_entries, config.tlb.l2_ways, stats=stats,
            perfect=config.tlb.perfect_l2,
        )
        self.ducati = (
            _PomDucati(config.ducati.pom_tlb_entries)
            if scheme.uses_ducati else None
        )
        self.iommu_l1 = FullyAssociativeTLB(
            config.iommu.l1_tlb_entries, name="iommu_l1", stats=stats
        )
        self.iommu_l2 = SetAssociativeTLB(
            config.iommu.l2_tlb_entries,
            min(8, config.iommu.l2_tlb_entries),
            name="iommu_l2", stats=stats,
        )
        self.levels = 3 if config.page_size == 2 * 1024 * 1024 else 4
        self.pwc = SplitPageWalkCache(config.iommu, levels=self.levels, stats=stats)

        # Per-CU structures. The LDS allocator exists for every scheme (it
        # gates work-group admission); the Tx overlay only when used.
        self.l1_tlbs = [
            FullyAssociativeTLB(config.tlb.l1_entries, stats=stats)
            for _ in range(num_cus)
        ]
        self.lds_units = [
            LocalDataShare(config.lds, config.lds_tx, stats=stats,
                           track_idle=False)
            for _ in range(num_cus)
        ]
        self.lds_tx = [
            LDSTxCache(lds, config.lds_tx, stats=stats)
            if scheme.uses_lds_tx else None
            for lds in self.lds_units
        ]
        self.icaches: List[Optional[ReconfigurableICache]] = []
        if scheme.uses_icache_tx:
            per_group = config.icache.cus_per_icache
            groups = max(1, num_cus // per_group)
            shared = [
                ReconfigurableICache(config.icache, config.icache_tx,
                                     stats=stats, track_idle=False)
                for _ in range(groups)
            ]
            for icache in shared:
                icache.spill_target = self.l2_tlb
            self.icaches = [shared[cu // per_group] for cu in range(num_cus)]
        else:
            self.icaches = [None] * num_cus

        self.fill_flows = [
            VictimFillFlow(
                self.l2_tlb, lds_tx=self.lds_tx[cu],
                icache_tx=self.icaches[cu], ducati=self.ducati, stats=stats,
                lds_first=config.lds_before_icache, sharing=self.sharing,
                dedup_shared=config.dedup_shared_fills,
            )
            for cu in range(num_cus)
        ]
        # Lookup stage order mirrors TranslationService (Section 4.4).
        self.stages: List[List[Tuple[str, object]]] = []
        for cu in range(num_cus):
            stage_list = []
            if self.lds_tx[cu] is not None:
                stage_list.append(("lds", self.lds_tx[cu].lookup))
            if self.icaches[cu] is not None:
                stage_list.append(("icache", self.icaches[cu].tx_lookup))
            if not config.lds_before_icache:
                stage_list.reverse()
            self.stages.append(stage_list)

    # -- translation chain ----------------------------------------------

    def _promote(self, cu: int, entry: TranslationEntry) -> None:
        victim = self.l1_tlbs[cu].insert(entry)
        if victim is not None:
            self.fill_flows[cu].fill(victim, 0)

    def translate(self, cu: int, vpn: int) -> None:
        self.translations += 1
        self.sharing.record(cu, vpn)
        key = (0, 0, vpn)
        counts = self.counts

        if self.l1_tlbs[cu].lookup(key) is not None:
            counts["l1_tlb"] += 1
            return
        for label, lookup in self.stages[cu]:
            entry, _ = lookup(key, 0)
            if entry is not None:
                counts[label] += 1
                self._promote(cu, entry)
                return
        entry = self.l2_tlb.lookup(key)
        if entry is not None:
            counts["l2_tlb"] += 1
            self._promote(cu, entry)
            return
        if self.ducati is not None:
            entry = self.ducati.lookup(key)
            if entry is not None:
                counts["ducati"] += 1
                self.l2_tlb.insert(entry)
                self._promote(cu, entry)
                return
        entry = self.iommu_l1.lookup(key)
        if entry is None:
            entry = self.iommu_l2.lookup(key)
            if entry is not None:
                counts["iommu_l2"] += 1
                self.iommu_l1.insert(entry)
            else:
                counts["walk"] += 1
                skipped = self.pwc.lookup(0, vpn)
                self.pte_accesses += self.levels - skipped
                self.pwc.fill(0, vpn)
                entry = TranslationEntry(vpn=vpn, pfn=vpn, vmid=0, vrf_id=0)
                self.iommu_l1.insert(entry)
                self.iommu_l2.insert(entry)
        else:
            counts["iommu_l1"] += 1
        self.l2_tlb.insert(entry)
        self._promote(cu, entry)

    # -- workload replay ------------------------------------------------

    def run(self, app: AppSpec) -> None:
        invocation_counts: Dict[str, int] = {}
        code_bases: Dict[str, int] = {}
        for index, kernel in enumerate(app.kernels):
            if index > 0:
                same = kernel.name == app.kernels[index - 1].name
                for icache in dict.fromkeys(
                    ic for ic in self.icaches if ic is not None
                ):
                    icache.on_kernel_boundary(same)
            invocation = invocation_counts.get(kernel.name, 0)
            invocation_counts[kernel.name] = invocation + 1
            base = code_bases.setdefault(kernel.name, len(code_bases) * (1 << 20))
            self._run_kernel(app.name, kernel, invocation, base)

    def _run_kernel(
        self, app_name: str, kernel: KernelSpec, invocation: int, code_base: int
    ) -> None:
        num_cus = self.config.gpu.num_cus
        max_waves = self.config.gpu.max_waves_per_cu
        pending: List[deque] = [deque() for _ in range(num_cus)]
        for wg_id in range(kernel.num_workgroups):
            pending[wg_id % num_cus].append(wg_id)
        active: List[List[_WaveState]] = [[] for _ in range(num_cus)]
        used_slots = [0] * num_cus

        def admit(cu: int) -> None:
            lds = self.lds_units[cu]
            while pending[cu]:
                if used_slots[cu] + kernel.waves_per_workgroup > max_waves:
                    return
                if not lds.can_allocate(kernel.lds_bytes_per_workgroup):
                    return
                wg_id = pending[cu].popleft()
                alloc_id = lds.allocate(kernel.lds_bytes_per_workgroup)
                workgroup = _WorkGroupState(kernel.waves_per_workgroup, alloc_id)
                used_slots[cu] += kernel.waves_per_workgroup
                for wave_id in range(kernel.waves_per_workgroup):
                    context = ProgramContext(
                        app_name=app_name,
                        kernel_name=kernel.name,
                        invocation=invocation,
                        wg_id=wg_id,
                        wave_id=wave_id,
                        num_workgroups=kernel.num_workgroups,
                        waves_per_workgroup=kernel.waves_per_workgroup,
                    )
                    active[cu].append(_WaveState(
                        iter(kernel.program_factory(context)), workgroup
                    ))
                if len(active[cu]) > self.peak_waves_per_cu:
                    self.peak_waves_per_cu = len(active[cu])

        for cu in range(num_cus):
            admit(cu)

        # Round-robin interleave: one op per resident wave per round, CUs
        # visited in order — the functional analogue of the scheduler
        # advancing the globally-oldest wave.
        busy = True
        while busy:
            busy = False
            for cu in range(num_cus):
                waves = active[cu]
                if not waves:
                    continue
                busy = True
                retired = False
                for wave in waves:
                    op = next(wave.ops, None)
                    if op is None:
                        workgroup = wave.workgroup
                        workgroup.waves_left -= 1
                        used_slots[cu] -= 1
                        if workgroup.waves_left == 0 and workgroup.alloc_id:
                            self.lds_units[cu].free(workgroup.alloc_id)
                        wave.ops = None
                        retired = True
                        continue
                    self._exec_op(cu, wave, op, code_base)
                if retired:
                    active[cu] = [w for w in waves if w.ops is not None]
                    admit(cu)

    def _exec_op(self, cu: int, wave: _WaveState, op: tuple, code_base: int) -> None:
        kind = op[0]
        if kind == MEM:
            self.instructions += op[2]
            for vpn in dict.fromkeys(op[1]):
                self.translate(cu, vpn)
        elif kind == ALU or kind == LDS:
            self.instructions += op[1]
        elif kind == LINE:
            # Instruction residency only matters where it contends with
            # translations (the reconfigurable I-cache schemes).
            icache = self.icaches[cu]
            if icache is None:
                return
            line_id = op[1]
            ib = wave.ib
            if line_id in ib:
                return
            ib.append(line_id)
            if len(ib) > IB_LINES:
                ib.pop(0)
            icache.fetch(code_base + line_id, 0)


# ----------------------------------------------------------------------
# Closed-form latency model
# ----------------------------------------------------------------------


def _roofline_cycles(config: SystemConfig, model: FunctionalReachModel) -> float:
    """First-order cycle estimate from the reach histogram.

    ``max(issue bandwidth, walker-pool throughput) + hidden stall``: the
    issue term is each SIMD retiring one instruction per cycle; the walker
    term is the serial walk work divided across the pool (the walk-storm
    bound of Section 3.1); the stall term is the per-level translation
    latency divided by the latency-hiding width (resident waves per CU).
    """

    counts = model.counts
    tlb, iommu = config.tlb, config.iommu
    scheme = config.scheme
    lds_probe = config.lds_tx.tx_probe_latency if scheme.uses_lds_tx else 0
    ic_probe = config.icache_tx.tx_probe_latency if scheme.uses_icache_tx else 0
    first_probe = lds_probe if config.lds_before_icache else ic_probe

    latency = {"l1_tlb": tlb.l1_latency}
    latency["lds"] = tlb.l1_latency + config.lds_tx.tx_hit_latency + (
        ic_probe if not config.lds_before_icache else 0
    )
    latency["icache"] = tlb.l1_latency + config.icache_tx.tx_hit_latency + (
        lds_probe if config.lds_before_icache else 0
    )
    miss_probes = tlb.l1_latency + lds_probe + ic_probe
    latency["l2_tlb"] = miss_probes + tlb.l2_latency
    # DUCATI hits split between the LLC-resident line and the
    # part-of-memory TLB; charge the blended midpoint.
    latency["ducati"] = latency["l2_tlb"] + config.ducati.l2_tx_latency + 0.5 * (
        config.ducati.pom_tlb_latency + config.dram.access_latency
    )
    iommu_base = latency["l2_tlb"] + iommu.request_overhead
    latency["iommu_l1"] = iommu_base + iommu.l1_tlb_latency
    latency["iommu_l2"] = latency["iommu_l1"] + iommu.l2_tlb_latency
    walks = counts["walk"]
    avg_walk = (
        iommu.pwc_latency
        + (model.pte_accesses / walks) * config.dram.access_latency
        if walks else 0.0
    )
    latency["walk"] = latency["iommu_l2"] + avg_walk
    del first_probe  # folded into the per-level terms above

    stall = sum(counts[level] * latency[level] for level in SERVICE_LEVELS)
    issue = model.instructions / (config.gpu.num_cus * config.gpu.simds_per_cu)
    walker_bound = walks * avg_walk / iommu.num_walkers
    width = max(1, model.peak_waves_per_cu) * config.gpu.num_cus
    return max(issue, walker_bound) + stall / width


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------


def estimate_app(
    app_name: str, config: SystemConfig, scale: float = 1.0
) -> Estimate:
    """Estimate one application × configuration without simulation."""

    app = make_app(app_name, scale=scale, page_size=config.page_size)
    model = FunctionalReachModel(config)
    model.run(app)
    estimate = Estimate(
        app_name=app.name,
        scheme=config.scheme.value,
        instructions=model.instructions,
        translations=model.translations,
        serviced=dict(model.counts),
        pte_accesses=model.pte_accesses,
        peak_waves_per_cu=model.peak_waves_per_cu,
    )
    estimate.est_cycles = _roofline_cycles(config, model)
    return estimate


def estimate_speedups(
    app_name: str,
    schemes: List[TxScheme],
    scale: float = 1.0,
    base_config: Optional[SystemConfig] = None,
) -> Dict[str, float]:
    """Estimated speedup of each scheme over the baseline configuration."""

    if base_config is None:
        base_config = table1_config()
    baseline = estimate_app(app_name, base_config, scale)
    speedups = {}
    for scheme in schemes:
        candidate = estimate_app(
            app_name, base_config.with_scheme(scheme), scale
        )
        speedups[scheme.value] = (
            baseline.est_cycles / candidate.est_cycles
            if candidate.est_cycles else 1.0
        )
    return speedups
