"""Result records and summary helpers."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.sim.stats import BoxStats


@dataclass
class KernelResult:
    """Per-kernel-invocation record (kernel-granularity counters)."""

    kernel_name: str
    invocation: int
    start_cycle: int
    end_cycle: int
    counters: Dict[str, float] = field(default_factory=dict)

    @property
    def cycles(self) -> int:
        return self.end_cycle - self.start_cycle


@dataclass
class SimResult:
    """End-to-end result of simulating one application on one config."""

    app_name: str
    scheme: str
    cycles: int
    counters: Dict[str, float] = field(default_factory=dict)
    kernels: List[KernelResult] = field(default_factory=list)
    distributions: Dict[str, Optional[BoxStats]] = field(default_factory=dict)

    def counter(self, name: str, default: float = 0.0) -> float:
        return self.counters.get(name, default)

    @property
    def instructions(self) -> float:
        return self.counter("instructions")

    @property
    def page_walks(self) -> float:
        return self.counter("iommu.walks")

    @property
    def ptw_pki(self) -> float:
        """Page table walks per kilo-instruction (Table 2 metric)."""

        instructions = self.instructions
        if not instructions:
            return 0.0
        return 1000.0 * self.page_walks / instructions

    def hit_ratio(self, structure: str) -> float:
        hits = self.counter(f"{structure}.hits")
        misses = self.counter(f"{structure}.misses")
        total = hits + misses
        return hits / total if total else 0.0


def speedup(baseline: SimResult, candidate: SimResult) -> float:
    """Relative performance of ``candidate`` vs ``baseline`` (1.0 = equal)."""

    if candidate.cycles == 0:
        raise ValueError("candidate simulated zero cycles")
    return baseline.cycles / candidate.cycles


def geomean(values: Iterable[float]) -> float:
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
