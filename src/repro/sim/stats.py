"""Statistics collection.

Three primitives cover everything the paper reports:

- :class:`Stats`: a named bag of integer/float counters with hierarchical
  dotted names ("l1_tlb.hits"), supporting snapshots and deltas so the same
  counters can be reported per kernel and for the whole application.
- :class:`Distribution`: an online sample collector that produces the
  box-and-whisker statistics used by Figures 4 and 5 (min, max, quartiles,
  mean).
- :class:`PortIdleTracker`: records gaps between consecutive accesses to a
  port, the "idle cycles at each port" metric of Figures 4b and 5b.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional


class Stats:
    """A bag of named counters."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = defaultdict(float)

    def add(self, name: str, amount: float = 1.0) -> None:
        self._counters[name] += amount

    def set(self, name: str, value: float) -> None:
        self._counters[name] = value

    def get(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def __getitem__(self, name: str) -> float:
        return self.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def names(self) -> List[str]:
        return sorted(self._counters)

    def snapshot(self) -> Dict[str, float]:
        return dict(self._counters)

    def delta_since(self, snapshot: Dict[str, float]) -> Dict[str, float]:
        """Counters accumulated since ``snapshot`` (zero entries omitted)."""

        out = {}
        for name, value in self._counters.items():
            diff = value - snapshot.get(name, 0.0)
            if diff:
                out[name] = diff
        return out

    def merge(self, other: "Stats") -> None:
        for name, value in other._counters.items():
            self._counters[name] += value

    def ratio(self, numerator: str, denominator: str) -> float:
        """Safe ratio of two counters; 0.0 when the denominator is zero."""

        denom = self.get(denominator)
        if denom == 0:
            return 0.0
        return self.get(numerator) / denom

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v:g}" for k, v in sorted(self._counters.items()))
        return f"Stats({body})"


@dataclass(frozen=True)
class BoxStats:
    """Box-and-whisker summary of a sample set (Figures 4a, 4b, 5a, 5b)."""

    count: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1


def _percentile(sorted_samples: List[float], fraction: float) -> float:
    """Linear-interpolation percentile on a pre-sorted sample list."""

    if not sorted_samples:
        raise ValueError("no samples")
    if len(sorted_samples) == 1:
        return sorted_samples[0]
    rank = fraction * (len(sorted_samples) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_samples) - 1)
    weight = rank - low
    low_value = sorted_samples[low]
    # Formulated as base + scaled difference so subnormal samples do not
    # underflow to zero when multiplied by the interpolation weights.
    return low_value + (sorted_samples[high] - low_value) * weight


class Distribution:
    """Online sample collector producing :class:`BoxStats`."""

    def __init__(self, max_samples: int = 200_000) -> None:
        self._samples: List[float] = []
        self._max_samples = max_samples
        self._overflow_count = 0
        self._total = 0.0
        self._count = 0

    def add(self, value: float) -> None:
        self._count += 1
        self._total += value
        if len(self._samples) < self._max_samples:
            self._samples.append(value)
        else:
            # Reservoir-free decimation: drop every other retained sample
            # once full. Exact quantiles are not needed for box plots.
            self._overflow_count += 1
            if self._overflow_count % 2 == 0:
                index = (self._overflow_count // 2) % self._max_samples
                self._samples[index] = value

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    def box_stats(self) -> Optional[BoxStats]:
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        # The running-sum mean can round one ULP past the extremes (and
        # under decimation the exact mean may fall outside the retained
        # samples' range); a box summary must stay internally ordered.
        mean = min(max(self.mean, ordered[0]), ordered[-1])
        return BoxStats(
            count=self._count,
            minimum=ordered[0],
            q1=_percentile(ordered, 0.25),
            median=_percentile(ordered, 0.50),
            q3=_percentile(ordered, 0.75),
            maximum=ordered[-1],
            mean=mean,
        )


class PortIdleTracker:
    """Tracks the distribution of idle gaps between accesses to a port.

    Same-cycle back-to-back accesses are a real zero-idle gap and are
    recorded as 0 (silently dropping them biased the Figure 4b/5b idle
    distributions upward). A time-regressing access cannot yield a
    meaningful gap: it is clamped — not recorded, clock unchanged — and
    counted in :attr:`regressions` so a misbehaving caller is visible.
    """

    def __init__(self) -> None:
        self._last_access: Optional[int] = None
        self.gaps = Distribution()
        self.accesses = 0
        self.regressions = 0

    def record_access(self, cycle: int) -> None:
        self.accesses += 1
        if self._last_access is None:
            self._last_access = cycle
            return
        if cycle < self._last_access:
            self.regressions += 1
            return
        self.gaps.add(cycle - self._last_access)
        self._last_access = cycle

    def box_stats(self) -> Optional[BoxStats]:
        return self.gaps.box_stats()
