"""Parallel sweep runner: fan independent simulations across processes.

Every reproduced figure is a grid of independent ``(app, config, scale)``
simulations — the embarrassingly-parallel shape of TLB-sweep
characterization (Figures 2–3), the main-results grid (Figure 13), and the
DUCATI-style sensitivity sweeps (Figure 16). :class:`SweepRunner` executes
such a grid:

- **Deduplicated**: jobs are identified by the experiment cache key
  (:func:`repro.experiments.common.cache_key`); duplicate submissions and
  already-cached results are never simulated twice.
- **Parallel**: unique, uncached jobs fan across a
  ``concurrent.futures.ProcessPoolExecutor``. Worker count comes from the
  ``jobs`` argument, else the ``REPRO_JOBS`` environment variable, else
  ``os.cpu_count()``. At one worker the runner degrades to a plain
  in-process loop, so ``REPRO_JOBS=1`` keeps pdb/coverage/profiling usable.
- **Deterministic**: the simulator itself is deterministic, workers share
  nothing mutable, and results are reassembled by submission index — a
  parallel sweep returns byte-identical results to a serial one, in
  submission order (``tests/sim/test_runner.py`` enforces this).
- **Observable**: each run produces a :class:`SweepReport` (jobs run,
  cache hits, wall clock, per-job p50/p95) and optional ``log``-style
  progress lines.

The runner warms both the in-process and on-disk caches, so experiment
harnesses can enumerate their grid, push it through the runner, and then
assemble rows with ordinary :func:`repro.experiments.common.run_app` calls
that all hit the cache.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.config import SystemConfig
from repro.sim.results import SimResult

#: Environment variable controlling the default worker count.
JOBS_ENV = "REPRO_JOBS"


@dataclass(frozen=True)
class SweepJob:
    """One simulation of ``app_name`` under ``config`` at ``scale``."""

    app_name: str
    config: SystemConfig
    scale: float

    def key(self) -> str:
        from repro.experiments.common import cache_key

        return cache_key(self.app_name, self.config, self.scale)


#: Anything accepted as a job: a :class:`SweepJob` or a plain
#: ``(app_name, config, scale)`` tuple (config/scale may be ``None`` for
#: the Table 1 / ``REPRO_SCALE`` defaults).
JobLike = Union[SweepJob, Tuple[str, Optional[SystemConfig], Optional[float]]]


@dataclass
class JobTiming:
    """Wall-clock record of one unique job within a sweep."""

    key: str
    app_name: str
    scheme: str
    duration_s: float
    cached: bool


@dataclass
class SweepReport:
    """What one :meth:`SweepRunner.run` did, and how long it took."""

    jobs_submitted: int = 0
    unique_jobs: int = 0
    cache_hits: int = 0
    jobs_simulated: int = 0
    workers: int = 1
    wall_clock_s: float = 0.0
    timings: List[JobTiming] = field(default_factory=list)

    @property
    def duplicate_jobs(self) -> int:
        return self.jobs_submitted - self.unique_jobs

    def _simulated_durations(self) -> List[float]:
        return sorted(t.duration_s for t in self.timings if not t.cached)

    @staticmethod
    def _percentile(sorted_values: List[float], fraction: float) -> float:
        if not sorted_values:
            return 0.0
        index = min(
            len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1)))
        )
        return sorted_values[index]

    @property
    def p50_s(self) -> float:
        return self._percentile(self._simulated_durations(), 0.50)

    @property
    def p95_s(self) -> float:
        return self._percentile(self._simulated_durations(), 0.95)

    def summary(self) -> str:
        """One ``log``-style line describing the whole sweep."""

        return (
            f"[sweep] {self.jobs_submitted} jobs "
            f"({self.unique_jobs} unique, {self.cache_hits} cache hits, "
            f"{self.jobs_simulated} simulated) on {self.workers} worker(s) "
            f"in {self.wall_clock_s:.2f}s "
            f"(per-job p50 {self.p50_s:.2f}s, p95 {self.p95_s:.2f}s)"
        )


def default_workers() -> int:
    """Worker count from ``REPRO_JOBS``, else ``os.cpu_count()``."""

    env = os.environ.get(JOBS_ENV, "").strip()
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ValueError(f"{JOBS_ENV} must be an integer, got {env!r}")
        if value < 1:
            raise ValueError(f"{JOBS_ENV} must be >= 1, got {value}")
        return value
    return os.cpu_count() or 1


def _normalize(job: JobLike) -> SweepJob:
    from repro.config import table1_config
    from repro.experiments.common import DEFAULT_SCALE

    if isinstance(job, SweepJob):
        app_name, config, scale = job.app_name, job.config, job.scale
    else:
        app_name, config, scale = job
    if config is None:
        config = table1_config()
    if scale is None:
        scale = DEFAULT_SCALE
    return SweepJob(app_name=app_name, config=config, scale=float(scale))


def _simulate(job: SweepJob, cache_dir: str) -> Tuple[SimResult, float]:
    """Worker-side body: simulate one job, honouring the disk cache.

    Runs in a separate process under the pool executor (or inline in the
    serial fallback). ``cache_dir`` is passed explicitly rather than relying
    on a forked copy of module state, so spawn-based platforms and
    monkeypatched test environments behave identically.
    """

    from repro.experiments import common

    common._CACHE_DIR = cache_dir
    started = time.perf_counter()
    # The worker's in-process cache is empty (fresh process) or stale by
    # definition; the disk cache is authoritative across processes.
    result = common.run_app(job.app_name, job.config, job.scale)
    return result, time.perf_counter() - started


class SweepRunner:
    """Execute a job grid, deduplicated and (optionally) in parallel.

    Parameters
    ----------
    jobs:
        Worker count. ``None`` defers to ``REPRO_JOBS`` /
        ``os.cpu_count()``; ``1`` forces the serial in-process path.
    progress:
        Optional callable receiving human-readable progress lines
        (e.g. ``print``). ``None`` silences progress output.
    use_cache:
        When ``False`` every submitted job is re-simulated (duplicates are
        still collapsed within the one call).
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        progress: Optional[Callable[[str], None]] = None,
        use_cache: bool = True,
    ) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.workers = jobs if jobs is not None else default_workers()
        self.progress = progress
        self.use_cache = use_cache
        self.last_report: Optional[SweepReport] = None

    def _log(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    def run(self, jobs: Sequence[JobLike]) -> List[SimResult]:
        """Run ``jobs``; returns results in submission order.

        The detailed :class:`SweepReport` is available as
        :attr:`last_report` afterwards (or use :meth:`run_with_report`).
        """

        results, _ = self.run_with_report(jobs)
        return results

    def run_with_report(
        self, jobs: Sequence[JobLike]
    ) -> Tuple[List[SimResult], SweepReport]:
        from repro.experiments import common

        started = time.perf_counter()
        normalized = [_normalize(job) for job in jobs]
        report = SweepReport(jobs_submitted=len(normalized), workers=self.workers)

        # Deduplicate by cache key, keeping first-submission order.
        unique: Dict[str, SweepJob] = {}
        keys: List[str] = []
        for job in normalized:
            key = job.key()
            keys.append(key)
            if key not in unique:
                unique[key] = job
        report.unique_jobs = len(unique)

        resolved: Dict[str, SimResult] = {}
        pending: List[SweepJob] = []
        for key, job in unique.items():
            cached = self._probe_cache(common, key) if self.use_cache else None
            if cached is not None:
                resolved[key] = cached
                report.cache_hits += 1
                report.timings.append(
                    JobTiming(
                        key=key,
                        app_name=job.app_name,
                        scheme=job.config.scheme.value,
                        duration_s=0.0,
                        cached=True,
                    )
                )
            else:
                pending.append(job)

        if pending:
            self._log(
                f"[sweep] {len(pending)} job(s) to simulate "
                f"({report.cache_hits} cache hit(s)) on "
                f"{min(self.workers, len(pending))} worker(s)"
            )
            if self.workers == 1 or len(pending) == 1:
                self._run_serial(common, pending, resolved, report)
            else:
                self._run_parallel(common, pending, resolved, report)

        report.jobs_simulated = len(pending)
        report.wall_clock_s = time.perf_counter() - started
        self.last_report = report
        self._log(report.summary())
        return [resolved[key] for key in keys], report

    # -- cache plumbing ----------------------------------------------------

    @staticmethod
    def _probe_cache(common, key: str) -> Optional[SimResult]:
        cached = common._CACHE.get(key)
        if cached is not None:
            return cached
        cached = common._load_disk(key)
        if cached is not None:
            common._CACHE[key] = cached
        return cached

    def _absorb(self, common, job: SweepJob, key: str, result: SimResult) -> None:
        """Fold a finished result into the parent-process caches."""

        if not self.use_cache:
            return
        if key not in common._CACHE:
            common._CACHE[key] = result
        # Serial runs store to disk inside run_app; a pool worker stores
        # from its own process. Either way the file exists by now unless
        # caching is disabled or the worker raced a quarantine — storing
        # again is an atomic, idempotent overwrite.
        path = common._disk_path(key)
        if path is not None and not os.path.exists(path):
            common._store_disk(key, result)

    # -- execution strategies ----------------------------------------------

    def _run_serial(self, common, pending, resolved, report) -> None:
        total = len(pending)
        for index, job in enumerate(pending, start=1):
            key = job.key()
            job_started = time.perf_counter()
            result = common.run_app(
                job.app_name, job.config, job.scale, use_cache=self.use_cache
            )
            duration = time.perf_counter() - job_started
            resolved[key] = result
            self._absorb(common, job, key, result)
            report.timings.append(
                JobTiming(
                    key=key,
                    app_name=job.app_name,
                    scheme=job.config.scheme.value,
                    duration_s=duration,
                    cached=False,
                )
            )
            self._log(
                f"[sweep] {index}/{total} {job.app_name} "
                f"{job.config.scheme.value} {duration:.2f}s"
            )

    def _run_parallel(self, common, pending, resolved, report) -> None:
        total = len(pending)
        done_count = 0
        cache_dir = common._CACHE_DIR if self.use_cache else ""
        workers = min(self.workers, total)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_simulate, job, cache_dir): job for job in pending
            }
            outstanding = set(futures)
            while outstanding:
                finished, outstanding = wait(
                    outstanding, return_when=FIRST_COMPLETED
                )
                for future in finished:
                    job = futures[future]
                    key = job.key()
                    result, duration = future.result()
                    resolved[key] = result
                    self._absorb(common, job, key, result)
                    done_count += 1
                    report.timings.append(
                        JobTiming(
                            key=key,
                            app_name=job.app_name,
                            scheme=job.config.scheme.value,
                            duration_s=duration,
                            cached=False,
                        )
                    )
                    self._log(
                        f"[sweep] {done_count}/{total} {job.app_name} "
                        f"{job.config.scheme.value} {duration:.2f}s"
                    )


def run_sweep(
    jobs: Sequence[JobLike],
    workers: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[SimResult]:
    """Convenience wrapper: one-shot :class:`SweepRunner` execution.

    Experiment harnesses call this to warm the caches for an enumerated
    grid before assembling their rows.
    """

    return SweepRunner(jobs=workers, progress=progress).run(jobs)
