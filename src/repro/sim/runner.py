"""Parallel sweep runner: fan independent simulations across processes.

Every reproduced figure is a grid of independent ``(app, config, scale)``
simulations — the embarrassingly-parallel shape of TLB-sweep
characterization (Figures 2–3), the main-results grid (Figure 13), and the
DUCATI-style sensitivity sweeps (Figure 16). :class:`SweepRunner` executes
such a grid:

- **Deduplicated**: jobs are identified by the experiment cache key
  (:func:`repro.experiments.common.cache_key`); duplicate submissions and
  already-cached results are never simulated twice.
- **Parallel**: unique, uncached jobs fan across a
  ``concurrent.futures.ProcessPoolExecutor``. Worker count comes from the
  ``jobs`` argument, else the ``REPRO_JOBS`` environment variable, else
  ``os.cpu_count()``. At one worker the runner degrades to a plain
  in-process loop, so ``REPRO_JOBS=1`` keeps pdb/coverage/profiling usable.
- **Deterministic**: the simulator itself is deterministic, workers share
  nothing mutable, and results are reassembled by submission index — a
  parallel sweep returns byte-identical results to a serial one, in
  submission order (``tests/sim/test_runner.py`` enforces this).
- **Fault-tolerant**: transient worker exceptions are retried with
  exponential backoff (``max_retries``), hung jobs are bounded by a
  per-job ``timeout``, and a crashed worker (``BrokenProcessPool``) does
  not abort the sweep: the pool is rebuilt and the lost jobs re-submitted.
  Jobs that repeatedly coincide with pool crashes are re-run one at a
  time in a fresh single-worker pool, so an innocent bystander of a
  crashing neighbour still completes and the true culprit is attributed
  precisely. A job that still fails after all of that becomes a terminal
  :class:`JobFailure` record; with ``keep_going=True`` the sweep finishes
  every other job and returns ``None`` at the failed slots, otherwise
  :class:`SweepAbort` is raised (completed results survive in the caches
  either way).
- **Observable**: each run produces a :class:`SweepReport` (jobs run,
  cache hits, retries, failures, wall clock, per-job p50/p95) and optional
  ``log``-style progress lines. Every job carries per-job telemetry — wall
  time, cache hit/miss, attempts, executing worker pid — rendered by
  ``python -m repro sweep --telemetry`` and the report module's warm-up
  section. With ``REPRO_PROFILE`` set (see :mod:`repro.sim.profiling`),
  each simulated job additionally contributes cProfile hotspots that are
  merged across workers into ``SweepReport.hotspots``.

Fault injection (tests / CI): pass a picklable ``fault`` callable to
:class:`SweepRunner` — invoked as ``fault(job, attempt)`` in the executing
process right before the simulation — or set the ``REPRO_FAULT_SPEC``
environment variable (see :func:`parse_fault_spec`) to inject exceptions,
hangs, and hard crashes deterministically.

The runner warms both the in-process and on-disk caches, so experiment
harnesses can enumerate their grid, push it through the runner, and then
assemble rows with ordinary :func:`repro.experiments.common.run_app` calls
that all hit the cache.
"""

from __future__ import annotations

import fnmatch
import os
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.config import SystemConfig
from repro.sim.profiling import (
    DEFAULT_TOP as DEFAULT_PROFILE_TOP,
    Hotspot,
    HotspotProfiler,
    merge_hotspots,
    profile_top,
)
from repro.sim.results import SimResult
from repro.sim.stats import _percentile as _linear_percentile

#: Environment variable controlling the default worker count.
JOBS_ENV = "REPRO_JOBS"
#: Per-job timeout in seconds (parallel sweeps only).
TIMEOUT_ENV = "REPRO_TIMEOUT"
#: Extra attempts granted to a failing job beyond the first.
MAX_RETRIES_ENV = "REPRO_MAX_RETRIES"
#: "1"/"true" makes terminal failures non-fatal (None placeholders).
KEEP_GOING_ENV = "REPRO_KEEP_GOING"
#: Deterministic fault-injection spec (see :func:`parse_fault_spec`).
FAULT_SPEC_ENV = "REPRO_FAULT_SPEC"
#: Default executor backend name ("serial" | "pool"; "remote" needs a
#: live coordinator and must be passed as an instance).
EXECUTOR_ENV = "REPRO_EXECUTOR"

DEFAULT_MAX_RETRIES = 2
DEFAULT_BACKOFF_S = 0.05
_BACKOFF_CAP_S = 2.0

#: Version tag of :meth:`SweepReport.to_json` payloads. Bump whenever the
#: serialized shape of the report (or of its timing/failure/hotspot rows)
#: changes, so service clients and archived telemetry never misparse.
REPORT_SCHEMA = "repro-sweepreport-v1"


@dataclass(frozen=True)
class SweepJob:
    """One simulation of ``app_name`` under ``config`` at ``scale``."""

    app_name: str
    config: SystemConfig
    scale: float

    def key(self) -> str:
        from repro.experiments.common import cache_key

        return cache_key(self.app_name, self.config, self.scale)


#: Anything accepted as a job: a :class:`SweepJob` or a plain
#: ``(app_name, config, scale)`` tuple (config/scale may be ``None`` for
#: the Table 1 / ``REPRO_SCALE`` defaults).
JobLike = Union[SweepJob, Tuple[str, Optional[SystemConfig], Optional[float]]]


def jobs_with_engine(
    jobs: List[SweepJob], engine: Optional[str]
) -> List[SweepJob]:
    """Re-target a job grid onto a simulation engine.

    ``None`` leaves the grid untouched. The engine is a pure speed knob
    (byte-identical results, same cache identity — see
    tests/sim/test_engine_equivalence.py), so re-targeting never changes
    what a sweep computes, only how fast it computes it.
    """

    if engine is None:
        return jobs
    return [
        replace(job, config=job.config.with_engine(engine)) for job in jobs
    ]


@dataclass
class JobTiming:
    """Per-job telemetry record of one unique job within a sweep.

    ``attempts`` counts executions including the successful one (0 for a
    cache hit); ``worker_pid`` is the pid of the process that ran the
    winning attempt (the parent's own pid on the serial path, 0 for a
    cache hit).
    """

    key: str
    app_name: str
    scheme: str
    duration_s: float
    cached: bool
    attempts: int = 1
    worker_pid: int = 0


@dataclass
class JobFailure:
    """Terminal record of one job the sweep could not complete.

    ``disposition`` says how the last attempt died: ``"exception"`` (the
    worker raised), ``"timeout"`` (exceeded the per-job timeout), or
    ``"crash"`` (the worker process died, confirmed in isolation).
    """

    key: str
    app_name: str
    scheme: str
    attempts: int
    error: str
    disposition: str

    def describe(self) -> str:
        return (
            f"{self.app_name} {self.scheme} failed after "
            f"{self.attempts} attempt(s) [{self.disposition}]: {self.error}"
        )


class SweepAbort(RuntimeError):
    """A job failed terminally and the runner was not ``keep_going``.

    Carries the offending :class:`JobFailure` and the partial
    :class:`SweepReport`; everything completed before the abort has
    already been absorbed into the in-process and on-disk caches.
    """

    def __init__(self, failure: JobFailure, report: "SweepReport") -> None:
        super().__init__(f"sweep aborted: {failure.describe()}")
        self.failure = failure
        self.report = report


class FaultInjection(RuntimeError):
    """Raised by an injected ``exc`` fault (and by ``crash`` faults that
    would otherwise kill the parent process in the serial path)."""


@dataclass
class SweepReport:
    """What one :meth:`SweepRunner.run` did, and how long it took."""

    jobs_submitted: int = 0
    unique_jobs: int = 0
    cache_hits: int = 0
    jobs_simulated: int = 0
    workers: int = 1
    wall_clock_s: float = 0.0
    retries: int = 0
    timings: List[JobTiming] = field(default_factory=list)
    failures: List[JobFailure] = field(default_factory=list)
    #: True when ``REPRO_PROFILE`` was active for this sweep.
    profiled: bool = False
    #: Cross-worker cProfile top-N (empty unless ``profiled``).
    hotspots: List[Hotspot] = field(default_factory=list)
    #: Disk-store counter increments during this sweep (hits, misses,
    #: stores, quarantined, ...; see :mod:`repro.sim.store`). Counted in
    #: the runner's process only — pool/remote workers keep their own
    #: process-wide counters — and empty when no disk cache is configured.
    store: Dict[str, int] = field(default_factory=dict)

    @property
    def duplicate_jobs(self) -> int:
        return self.jobs_submitted - self.unique_jobs

    def _simulated_durations(self) -> List[float]:
        return sorted(t.duration_s for t in self.timings if not t.cached)

    @staticmethod
    def _percentile(sorted_values: List[float], fraction: float) -> float:
        # Shared linear-interpolation percentile (repro.sim.stats), so
        # sweep p50/p95 agree with every other percentile in the repo.
        if not sorted_values:
            return 0.0
        return _linear_percentile(sorted_values, fraction)

    @property
    def p50_s(self) -> float:
        return self._percentile(self._simulated_durations(), 0.50)

    @property
    def p95_s(self) -> float:
        return self._percentile(self._simulated_durations(), 0.95)

    def failure_lines(self) -> List[str]:
        """One ``log``-style line per terminal failure."""

        return [f"[sweep] FAILED {failure.describe()}" for failure in self.failures]

    def to_json(self) -> Dict:
        """The versioned, JSON-ready form of this report.

        Everything downstream consumers need is structured here — counts,
        wall clock, per-job timings, terminal failures, merged hotspots —
        and both the service's result endpoint and ``repro sweep``'s
        ``--telemetry``/``--json`` output are rendered from this one form
        (see :meth:`telemetry_rows` / :meth:`from_json`).
        """

        return {
            "schema": REPORT_SCHEMA,
            "jobs_submitted": self.jobs_submitted,
            "unique_jobs": self.unique_jobs,
            "cache_hits": self.cache_hits,
            "jobs_simulated": self.jobs_simulated,
            "workers": self.workers,
            "wall_clock_s": self.wall_clock_s,
            "retries": self.retries,
            "profiled": self.profiled,
            # Derived, included for consumers that only see the payload.
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "timings": [asdict(timing) for timing in self.timings],
            "failures": [asdict(failure) for failure in self.failures],
            "hotspots": [asdict(hotspot) for hotspot in self.hotspots],
            "store": dict(self.store),
        }

    @classmethod
    def from_json(cls, payload: Dict) -> "SweepReport":
        """Inverse of :meth:`to_json`. Raises ``ValueError`` on payloads
        that are not a well-formed report of the current schema."""

        if not isinstance(payload, dict):
            raise ValueError(f"sweep-report payload must be an object, got {type(payload).__name__}")
        if payload.get("schema") != REPORT_SCHEMA:
            raise ValueError(
                f"sweep-report payload has schema {payload.get('schema')!r} "
                f"(want {REPORT_SCHEMA!r})"
            )
        try:
            return cls(
                jobs_submitted=payload["jobs_submitted"],
                unique_jobs=payload["unique_jobs"],
                cache_hits=payload["cache_hits"],
                jobs_simulated=payload["jobs_simulated"],
                workers=payload["workers"],
                wall_clock_s=payload["wall_clock_s"],
                retries=payload["retries"],
                profiled=payload["profiled"],
                timings=[JobTiming(**timing) for timing in payload["timings"]],
                failures=[JobFailure(**failure) for failure in payload["failures"]],
                hotspots=[Hotspot(**hotspot) for hotspot in payload["hotspots"]],
                # Tolerant read: archived v1 payloads predate the store
                # counters (additive key, same schema tag).
                store=dict(payload.get("store", {})),
            )
        except (KeyError, TypeError) as error:
            raise ValueError(f"malformed sweep-report payload: {error!r}") from None

    def telemetry_rows(self) -> List[Dict]:
        """Per-job telemetry as table rows (``--telemetry`` / report.py).

        One row per unique job in recording order: app, scheme, cache
        hit/miss, wall seconds, attempts, worker pid; terminal failures
        append rows of their own so the table covers every unique job.
        Rendered from the structured :meth:`to_json` form so the CLI table
        and the service payload can never drift apart.
        """

        return telemetry_rows_from_json(self.to_json())

    def slowest_jobs(self, count: int = 5) -> List[JobTiming]:
        """The ``count`` slowest simulated (non-cached) jobs."""

        simulated = [t for t in self.timings if not t.cached]
        simulated.sort(key=lambda t: -t.duration_s)
        return simulated[:count]

    def hotspot_lines(self) -> List[str]:
        """One line per merged cProfile hotspot (empty unless profiled)."""

        return [hotspot.describe() for hotspot in self.hotspots]

    def summary(self) -> str:
        """One ``log``-style line describing the whole sweep."""

        line = (
            f"[sweep] {self.jobs_submitted} jobs "
            f"({self.unique_jobs} unique, {self.cache_hits} cache hits, "
            f"{self.jobs_simulated} simulated) on {self.workers} worker(s) "
            f"in {self.wall_clock_s:.2f}s "
            f"(per-job p50 {self.p50_s:.2f}s, p95 {self.p95_s:.2f}s)"
        )
        if self.retries:
            line += f", {self.retries} retr{'y' if self.retries == 1 else 'ies'}"
        if self.failures:
            line += f", {len(self.failures)} FAILED"
        return line


def telemetry_rows_from_json(payload: Dict) -> List[Dict]:
    """Table rows (the ``--telemetry`` format) from a :meth:`SweepReport.to_json`
    payload — shared by the CLI and service clients that only hold the
    serialized report."""

    rows: List[Dict] = []
    for timing in payload.get("timings", []):
        rows.append(
            {
                "app": timing["app_name"],
                "scheme": timing["scheme"],
                "cached": "hit" if timing["cached"] else "miss",
                "wall_s": f"{timing['duration_s']:.3f}",
                "attempts": timing["attempts"] if not timing["cached"] else 0,
                "worker": timing["worker_pid"] if timing["worker_pid"] else "-",
            }
        )
    for failure in payload.get("failures", []):
        rows.append(
            {
                "app": failure["app_name"],
                "scheme": failure["scheme"],
                "cached": "FAILED",
                "wall_s": "-",
                "attempts": failure["attempts"],
                "worker": "-",
            }
        )
    return rows


#: Guards the process-wide telemetry accumulators below. Concurrent
#: sweeps (the service runs them from executor threads while request
#: handlers drain) must never interleave a drain with an append — a
#: drain must observe and clear an atomic snapshot.
_TELEMETRY_LOCK = threading.Lock()

#: Process-wide log of terminal failures across all sweeps, so callers
#: that drive many sweeps (the report module) can surface one combined
#: failure summary. Drained by :func:`drain_failures`.
_FAILURE_LOG: List[JobFailure] = []


def drain_failures() -> List[JobFailure]:
    """Return and clear the process-wide terminal-failure log."""

    with _TELEMETRY_LOCK:
        drained = list(_FAILURE_LOG)
        _FAILURE_LOG.clear()
    return drained


#: Process-wide log of completed sweep reports, mirroring the failure
#: log: callers that drive many sweeps (the report module's warm-up)
#: surface one combined telemetry summary. Drained by
#: :func:`drain_reports`.
_REPORT_LOG: List[SweepReport] = []


def drain_reports() -> List[SweepReport]:
    """Return and clear the process-wide sweep-report log."""

    with _TELEMETRY_LOCK:
        drained = list(_REPORT_LOG)
        _REPORT_LOG.clear()
    return drained


def _env_float(name: str) -> Optional[float]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}")


def _env_int(name: str) -> Optional[int]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}")


def _env_flag(name: str) -> Optional[bool]:
    raw = os.environ.get(name, "").strip().lower()
    if not raw:
        return None
    return raw not in ("0", "false", "no", "off")


def default_workers() -> int:
    """Worker count from ``REPRO_JOBS``, else ``os.cpu_count()``."""

    env = os.environ.get(JOBS_ENV, "").strip()
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ValueError(f"{JOBS_ENV} must be an integer, got {env!r}")
        if value < 1:
            raise ValueError(f"{JOBS_ENV} must be >= 1, got {value}")
        return value
    return os.cpu_count() or 1


# -- fault injection ---------------------------------------------------------


@dataclass(frozen=True)
class _FaultRule:
    app: str
    scheme: str
    kind: str  # "exc" | "hang" | "crash"
    arg: float
    max_attempt: Optional[int]


class SpecFault:
    """Picklable fault hook built from a ``REPRO_FAULT_SPEC`` string.

    Invoked as ``fault(job, attempt)`` in the executing process. ``crash``
    rules hard-kill that process with ``os._exit`` — but never the parent
    runner process (the serial path degrades them to
    :class:`FaultInjection` so a misconfigured spec cannot take down the
    whole sweep, let alone pytest).
    """

    def __init__(self, rules: Sequence[_FaultRule], parent_pid: int) -> None:
        self.rules = list(rules)
        self.parent_pid = parent_pid

    def __call__(self, job: SweepJob, attempt: int) -> None:
        for rule in self.rules:
            if not fnmatch.fnmatchcase(job.app_name, rule.app):
                continue
            if not fnmatch.fnmatchcase(job.config.scheme.value, rule.scheme):
                continue
            if rule.max_attempt is not None and attempt > rule.max_attempt:
                continue
            if rule.kind == "exc":
                raise FaultInjection(
                    f"injected exception for {job.app_name} "
                    f"{job.config.scheme.value} (attempt {attempt})"
                )
            if rule.kind == "hang":
                time.sleep(rule.arg)
                return
            if rule.kind == "crash":
                if os.getpid() == self.parent_pid:
                    raise FaultInjection(
                        f"injected crash for {job.app_name} demoted to an "
                        "exception (would have killed the parent process)"
                    )
                os._exit(42)


def parse_fault_spec(text: str, parent_pid: Optional[int] = None) -> SpecFault:
    """Parse a deterministic fault-injection spec into a fault callable.

    Grammar (rules separated by ``;``)::

        rule := APP ":" SCHEME ":" KIND [":" SECONDS] ["@" MAX_ATTEMPT]
        KIND := "exc" | "crash" | "hang"

    ``APP`` and ``SCHEME`` are ``fnmatch`` patterns (``*`` matches all).
    ``SECONDS`` only applies to ``hang`` (default 30). ``@N`` fires the
    rule only while the job's attempt number is <= N, so
    ``"ATAX:*:exc@1"`` fails ATAX's first attempt and lets the retry
    succeed — deterministic across processes with no shared state.
    """

    rules: List[_FaultRule] = []
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) < 3:
            raise ValueError(f"bad fault rule {chunk!r}: want APP:SCHEME:KIND")
        app, scheme, tail = parts[0], parts[1], ":".join(parts[2:])
        max_attempt: Optional[int] = None
        if "@" in tail:
            tail, raw = tail.rsplit("@", 1)
            max_attempt = int(raw)
        kind_parts = tail.split(":")
        kind = kind_parts[0]
        if kind not in ("exc", "crash", "hang"):
            raise ValueError(f"bad fault kind {kind!r} in {chunk!r}")
        if len(kind_parts) > 1:
            arg = float(kind_parts[1])
        else:
            arg = 30.0 if kind == "hang" else 0.0
        rules.append(
            _FaultRule(
                app=app, scheme=scheme, kind=kind, arg=arg, max_attempt=max_attempt
            )
        )
    if not rules:
        raise ValueError(f"empty fault spec {text!r}")
    return SpecFault(rules, parent_pid if parent_pid is not None else os.getpid())


# -- job plumbing ------------------------------------------------------------


def _normalize(job: JobLike) -> SweepJob:
    from repro.config import table1_config
    from repro.experiments.common import DEFAULT_SCALE

    if isinstance(job, SweepJob):
        app_name, config, scale = job.app_name, job.config, job.scale
    else:
        app_name, config, scale = job
    if config is None:
        config = table1_config()
    if scale is None:
        scale = DEFAULT_SCALE
    return SweepJob(app_name=app_name, config=config, scale=float(scale))


@dataclass
class WorkerOutcome:
    """Everything a successful simulation attempt reports back.

    Picklable: crosses the process-pool boundary on the parallel path and
    is built in-process on the serial path, so both paths feed identical
    telemetry into :class:`JobTiming` / :class:`SweepReport`.
    """

    result: SimResult
    duration_s: float
    worker_pid: int
    hotspots: Optional[List[Hotspot]] = None


def _simulate(
    job: SweepJob,
    cache_dir: str,
    use_cache: bool = True,
    attempt: int = 1,
    fault: Optional[Callable[[SweepJob, int], None]] = None,
) -> WorkerOutcome:
    """Worker-side body: simulate one job, honouring the disk cache.

    Runs in a separate process under the pool executor. ``cache_dir`` and
    ``use_cache`` are passed explicitly rather than relying on a forked
    copy of module state: under the fork start method a worker inherits
    the parent's populated in-process ``_CACHE``, which must never be
    consulted when the runner was built with ``use_cache=False`` (and is
    stale by definition otherwise — the disk cache is authoritative
    across processes).
    """

    from repro.experiments import common

    common._CACHE_DIR = cache_dir
    if not use_cache:
        common._CACHE = {}
    started = time.perf_counter()
    if fault is not None:
        fault(job, attempt)
    top_n = profile_top()
    if top_n:
        with HotspotProfiler(top_n) as profiler:
            result = common.run_app(
                job.app_name, job.config, job.scale, use_cache=use_cache
            )
        hotspots = profiler.hotspots()
    else:
        result = common.run_app(
            job.app_name, job.config, job.scale, use_cache=use_cache
        )
        hotspots = None
    return WorkerOutcome(
        result=result,
        duration_s=time.perf_counter() - started,
        worker_pid=os.getpid(),
        hotspots=hotspots,
    )


class PoolHost:
    """Owns the :class:`ProcessPoolExecutor` lifecycle for a parallel sweep.

    :class:`SweepRunner` historically created one private pool per
    ``run()`` and tore it down afterwards. The service front-end
    (:mod:`repro.service`) instead batches many requests onto one
    long-lived pool — so the pool lifecycle is lifted into this
    executor-facing contract:

    - :meth:`acquire` — lease a pool for one sweep. Returns the pool and
      the effective worker count the runner may keep in flight (a shared
      host may cap below the runner's ask).
    - :meth:`recycle` — the leased pool broke (worker crash, hung job);
      replace it with a fresh one. The old pool must be abandoned with
      ``shutdown(wait=False, cancel_futures=True)``.
    - :meth:`release` — the sweep is done with the pool. ``dirty=True``
      means futures may still be in flight (the sweep aborted mid-run);
      a reusing host must not hand that pool to the next sweep.

    The default :class:`PrivatePoolHost` reproduces the historical
    behaviour exactly; :class:`repro.service.executor.SharedProcessPool`
    keeps the pool across leases and evicts it after an idle period.
    """

    def acquire(self, workers: int) -> Tuple[ProcessPoolExecutor, int]:
        raise NotImplementedError

    def recycle(
        self, pool: ProcessPoolExecutor, workers: int, reason: str
    ) -> ProcessPoolExecutor:
        raise NotImplementedError

    def release(self, pool: ProcessPoolExecutor, dirty: bool = False) -> None:
        raise NotImplementedError


class PrivatePoolHost(PoolHost):
    """One fresh pool per sweep, torn down when the sweep finishes."""

    def acquire(self, workers: int) -> Tuple[ProcessPoolExecutor, int]:
        return ProcessPoolExecutor(max_workers=workers), workers

    def recycle(
        self, pool: ProcessPoolExecutor, workers: int, reason: str
    ) -> ProcessPoolExecutor:
        pool.shutdown(wait=False, cancel_futures=True)
        return ProcessPoolExecutor(max_workers=workers)

    def release(self, pool: ProcessPoolExecutor, dirty: bool = False) -> None:
        pool.shutdown(wait=False, cancel_futures=True)


@dataclass
class _Pending:
    """Mutable retry state of one unique job awaiting execution."""

    job: SweepJob
    attempt: int = 1
    not_before: float = 0.0  # monotonic gate implementing retry backoff


class SweepRunner:
    """Execute a job grid, deduplicated and (optionally) in parallel.

    Parameters
    ----------
    jobs:
        Worker count. ``None`` defers to ``REPRO_JOBS`` /
        ``os.cpu_count()``; ``1`` forces the serial in-process path.
    progress:
        Optional callable receiving human-readable progress lines
        (e.g. ``print``). ``None`` silences progress output.
    use_cache:
        When ``False`` every submitted job is re-simulated (duplicates are
        still collapsed within the one call).
    timeout:
        Per-job wall-clock budget in seconds (``None`` = unbounded;
        default from ``REPRO_TIMEOUT``). Enforced on the parallel path
        only — a single in-process simulation cannot be preempted.
    max_retries:
        Extra attempts granted to a failing job beyond the first
        (default from ``REPRO_MAX_RETRIES``, else 2).
    retry_backoff_s:
        Base of the exponential backoff between attempts (capped at 2s).
    keep_going:
        When ``True``, a terminally failed job becomes a
        :class:`JobFailure` record plus a ``None`` result placeholder and
        the sweep continues; when ``False`` (default, from
        ``REPRO_KEEP_GOING``) the first terminal failure raises
        :class:`SweepAbort`.
    fault:
        Optional picklable fault-injection hook ``fault(job, attempt)``
        run in the executing process before each simulation attempt.
        Defaults to ``REPRO_FAULT_SPEC`` (parsed) when set.
    pool_host:
        Optional :class:`PoolHost` owning the process pool's lifecycle.
        ``None`` (default) gives every sweep a private pool, torn down
        when the sweep finishes; the service passes a shared host so
        concurrent requests batch onto one long-lived pool. Only
        meaningful with the ``"pool"`` executor.
    executor:
        Which backend executes attempts (see :mod:`repro.sim.executors`):
        ``"pool"`` (default, from ``REPRO_EXECUTOR``) fans across a local
        process pool, degrading to the in-process serial path at one
        worker; ``"serial"`` forces the in-process path regardless of
        worker count; or a :class:`~repro.sim.executors.base.SweepExecutor`
        *instance* (the only way to select ``"remote"``, which needs a
        live coordinator — ``repro sweep --executor remote`` builds one).
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        progress: Optional[Callable[[str], None]] = None,
        use_cache: bool = True,
        timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
        retry_backoff_s: Optional[float] = None,
        keep_going: Optional[bool] = None,
        fault: Optional[Callable[[SweepJob, int], None]] = None,
        pool_host: Optional[PoolHost] = None,
        executor: Union[str, "SweepExecutor", None] = None,
    ) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.workers = jobs if jobs is not None else default_workers()
        self.progress = progress
        self.use_cache = use_cache
        self.timeout = timeout if timeout is not None else _env_float(TIMEOUT_ENV)
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")
        resolved_retries = (
            max_retries if max_retries is not None else _env_int(MAX_RETRIES_ENV)
        )
        self.max_retries = (
            resolved_retries if resolved_retries is not None else DEFAULT_MAX_RETRIES
        )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        self.retry_backoff_s = (
            retry_backoff_s if retry_backoff_s is not None else DEFAULT_BACKOFF_S
        )
        resolved_keep_going = (
            keep_going if keep_going is not None else _env_flag(KEEP_GOING_ENV)
        )
        self.keep_going = bool(resolved_keep_going)
        if fault is None:
            spec = os.environ.get(FAULT_SPEC_ENV, "").strip()
            if spec:
                fault = parse_fault_spec(spec)
        self.fault = fault
        self.pool_host = pool_host
        if executor is None:
            executor = os.environ.get(EXECUTOR_ENV, "").strip() or "pool"
        if isinstance(executor, str):
            if executor not in ("serial", "pool", "remote"):
                raise ValueError(
                    f"executor must be one of serial/pool/remote (or a "
                    f"SweepExecutor instance), got {executor!r}"
                )
            if executor == "remote":
                raise ValueError(
                    "the remote executor needs a live coordinator: pass "
                    "executor=repro.sim.executors.remote.RemoteExecutor(...) "
                    "(repro sweep --executor remote builds one)"
                )
        self.executor = executor
        self.last_report: Optional[SweepReport] = None
        self._hotspot_groups: List[List[Hotspot]] = []

    def _log(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    def run(self, jobs: Sequence[JobLike]) -> List[Optional[SimResult]]:
        """Run ``jobs``; returns results in submission order.

        Failed jobs (only possible with ``keep_going=True``) appear as
        ``None`` placeholders at their submission slots. The detailed
        :class:`SweepReport` is available as :attr:`last_report`
        afterwards (or use :meth:`run_with_report`).
        """

        results, _ = self.run_with_report(jobs)
        return results

    def run_with_report(
        self, jobs: Sequence[JobLike]
    ) -> Tuple[List[Optional[SimResult]], SweepReport]:
        from repro.experiments import common
        from repro.sim import store as result_store

        started = time.perf_counter()
        store_before = result_store.counters_snapshot()
        normalized = [_normalize(job) for job in jobs]
        report = SweepReport(
            jobs_submitted=len(normalized),
            workers=self.workers,
            profiled=bool(profile_top()),
        )
        self._hotspot_groups: List[List[Hotspot]] = []

        # Deduplicate by cache key, keeping first-submission order.
        unique: Dict[str, SweepJob] = {}
        keys: List[str] = []
        for job in normalized:
            key = job.key()
            keys.append(key)
            if key not in unique:
                unique[key] = job
        report.unique_jobs = len(unique)

        resolved: Dict[str, Optional[SimResult]] = {}
        pending: List[SweepJob] = []
        for key, job in unique.items():
            cached = self._probe_cache(common, key) if self.use_cache else None
            if cached is not None:
                resolved[key] = cached
                report.cache_hits += 1
                report.timings.append(
                    JobTiming(
                        key=key,
                        app_name=job.app_name,
                        scheme=job.config.scheme.value,
                        duration_s=0.0,
                        cached=True,
                        attempts=0,
                        worker_pid=0,
                    )
                )
            else:
                pending.append(job)

        try:
            if pending:
                self._log(
                    f"[sweep] {len(pending)} job(s) to simulate "
                    f"({report.cache_hits} cache hit(s)) on "
                    f"{min(self.workers, len(pending))} worker(s)"
                )
                executor = self._resolve_executor(len(pending))
                if executor is None:
                    self._run_serial(common, pending, resolved, report)
                else:
                    self._run_parallel(common, pending, resolved, report, executor)
        finally:
            report.jobs_simulated = len(pending)
            report.wall_clock_s = time.perf_counter() - started
            if common._CACHE_DIR:
                report.store = result_store.counters_delta(store_before)
            if self._hotspot_groups:
                report.hotspots = merge_hotspots(
                    self._hotspot_groups, profile_top() or DEFAULT_PROFILE_TOP
                )
            self.last_report = report
            with _TELEMETRY_LOCK:
                _REPORT_LOG.append(report)
            self._log(report.summary())
        return [resolved[key] for key in keys], report

    def _resolve_executor(self, pending_count: int):
        """The executor backend for this run, or ``None`` for the
        in-process serial path.

        ``"serial"`` always runs in-process; ``"pool"`` degrades to the
        in-process path when only one worker (or one job) would be used —
        the historical behaviour that keeps ``REPRO_JOBS=1`` free of any
        pool; an explicit :class:`SweepExecutor` instance is always
        driven through the parallel collection loop.
        """

        if self.executor == "serial":
            return None
        if self.executor == "pool":
            if self.workers == 1 or pending_count == 1:
                return None
            from repro.sim.executors.local import PoolExecutor

            return PoolExecutor(self.pool_host)
        return self.executor

    # -- cache plumbing ----------------------------------------------------

    @staticmethod
    def _probe_cache(common, key: str) -> Optional[SimResult]:
        cached = common._CACHE.get(key)
        if cached is not None:
            return cached
        cached = common._load_disk(key)
        if cached is not None:
            common._CACHE[key] = cached
        return cached

    def _absorb(self, common, job: SweepJob, key: str, result: SimResult) -> None:
        """Fold a finished result into the parent-process caches."""

        if not self.use_cache:
            return
        if key not in common._CACHE:
            common._CACHE[key] = result
        # Serial runs store to disk inside run_app; a pool worker stores
        # from its own process. Either way the file exists by now unless
        # caching is disabled or the worker raced a quarantine — storing
        # again is an atomic, idempotent overwrite.
        path = common._disk_path(key)
        if path is not None and not os.path.exists(path):
            common._store_disk(key, result)

    # -- failure plumbing --------------------------------------------------

    def _backoff_delay(self, failed_attempts: int) -> float:
        if self.retry_backoff_s <= 0:
            return 0.0
        return min(
            _BACKOFF_CAP_S, self.retry_backoff_s * (2 ** max(0, failed_attempts - 1))
        )

    def _record_success(
        self,
        common,
        report,
        resolved,
        job: SweepJob,
        key: str,
        outcome: WorkerOutcome,
        attempts: int,
    ) -> None:
        resolved[key] = outcome.result
        self._absorb(common, job, key, outcome.result)
        if outcome.hotspots:
            self._hotspot_groups.append(outcome.hotspots)
        report.timings.append(
            JobTiming(
                key=key,
                app_name=job.app_name,
                scheme=job.config.scheme.value,
                duration_s=outcome.duration_s,
                cached=False,
                attempts=attempts,
                worker_pid=outcome.worker_pid,
            )
        )

    def _record_failure(
        self,
        report: SweepReport,
        resolved,
        job: SweepJob,
        key: str,
        attempts: int,
        error: BaseException,
        disposition: str,
    ) -> None:
        failure = JobFailure(
            key=key,
            app_name=job.app_name,
            scheme=job.config.scheme.value,
            attempts=attempts,
            error=repr(error),
            disposition=disposition,
        )
        report.failures.append(failure)
        with _TELEMETRY_LOCK:
            _FAILURE_LOG.append(failure)
        resolved[key] = None
        self._log(f"[sweep] FAILED {failure.describe()}")
        if not self.keep_going:
            raise SweepAbort(failure, report)

    # -- execution strategies ----------------------------------------------

    def _run_serial(self, common, pending, resolved, report) -> None:
        total = len(pending)
        for index, job in enumerate(pending, start=1):
            key = job.key()
            attempt = 1
            while True:
                job_started = time.perf_counter()
                try:
                    if self.fault is not None:
                        self.fault(job, attempt)
                    top_n = profile_top()
                    if top_n:
                        with HotspotProfiler(top_n) as profiler:
                            result = common.run_app(
                                job.app_name, job.config, job.scale,
                                use_cache=self.use_cache,
                            )
                        hotspots: Optional[List[Hotspot]] = profiler.hotspots()
                    else:
                        result = common.run_app(
                            job.app_name, job.config, job.scale,
                            use_cache=self.use_cache,
                        )
                        hotspots = None
                except Exception as error:
                    if attempt <= self.max_retries:
                        report.retries += 1
                        self._log(
                            f"[sweep] retrying {job.app_name} "
                            f"{job.config.scheme.value} "
                            f"(attempt {attempt} failed: {error!r})"
                        )
                        time.sleep(self._backoff_delay(attempt))
                        attempt += 1
                        continue
                    self._record_failure(
                        report, resolved, job, key, attempt, error, "exception"
                    )
                    break
                duration = time.perf_counter() - job_started
                outcome = WorkerOutcome(
                    result=result,
                    duration_s=duration,
                    worker_pid=os.getpid(),
                    hotspots=hotspots,
                )
                self._record_success(
                    common, report, resolved, job, key, outcome, attempt
                )
                self._log(
                    f"[sweep] {index}/{total} {job.app_name} "
                    f"{job.config.scheme.value} {duration:.2f}s"
                )
                break

    def _run_parallel(self, common, pending, resolved, report, executor) -> None:
        total = len(pending)
        done_count = 0
        cache_dir = common._CACHE_DIR if self.use_cache else ""
        queue: deque = deque(_Pending(job) for job in pending)
        suspects: List[_Pending] = []
        in_flight: Dict[Future, _Pending] = {}
        started_at: Dict[Future, float] = {}
        workers = executor.acquire(min(self.workers, total))

        def submit(entry: _Pending) -> bool:
            try:
                future = executor.submit(
                    entry.job,
                    cache_dir,
                    self.use_cache,
                    entry.attempt,
                    self.fault,
                )
            except (BrokenProcessPool, RuntimeError):
                return False
            in_flight[future] = entry
            started_at[future] = time.monotonic()
            return True

        def recycle_executor(reason: str) -> None:
            # A wedged or crashed execution context cannot be reclaimed:
            # have the backend replace it (the pool backend abandons the
            # pool and builds a fresh one; the remote backend drops stale
            # task ids so late results are discarded). In-flight jobs are
            # re-queued as innocent collateral — their attempt count is
            # untouched, so only genuinely failing jobs burn retries.
            for future, entry in list(in_flight.items()):
                entry.not_before = 0.0
                queue.append(entry)
            in_flight.clear()
            started_at.clear()
            executor.recycle(reason)
            self._log(f"[sweep] {reason}; executor recycled, lost jobs re-queued")

        def crash_retry(entry: _Pending, error: BaseException) -> None:
            # A worker died while this job was in flight. The culprit
            # cannot be attributed from here (every in-flight future
            # reports BrokenProcessPool), so retry; once retries are
            # exhausted, defer to the single-job isolation pass below
            # rather than declaring the job guilty.
            if entry.attempt <= self.max_retries:
                report.retries += 1
                entry.attempt += 1
                entry.not_before = time.monotonic() + self._backoff_delay(
                    entry.attempt - 1
                )
                queue.append(entry)
            else:
                suspects.append(entry)

        try:
            while queue or in_flight:
                now = time.monotonic()
                submit_failed = False
                for _ in range(len(queue)):
                    if len(in_flight) >= workers:
                        break
                    entry = queue.popleft()
                    if entry.not_before > now:
                        queue.append(entry)
                        continue
                    if not submit(entry):
                        queue.appendleft(entry)
                        submit_failed = True
                        break
                if submit_failed:
                    recycle_executor("executor broke on submit")
                    continue
                if not in_flight:
                    # Everything queued is backing off; sleep to the gate.
                    gate = min(entry.not_before for entry in queue)
                    time.sleep(max(0.0, gate - time.monotonic()))
                    continue

                wait_timeout = None
                if self.timeout is not None:
                    nearest = min(
                        started_at[future] + self.timeout for future in in_flight
                    )
                    wait_timeout = max(0.0, nearest - time.monotonic()) + 0.01
                gates = [e.not_before for e in queue if e.not_before > now]
                if gates and len(in_flight) < workers:
                    gate_wait = max(0.0, min(gates) - now) + 0.001
                    wait_timeout = (
                        gate_wait
                        if wait_timeout is None
                        else min(wait_timeout, gate_wait)
                    )
                finished, _ = wait(
                    set(in_flight), timeout=wait_timeout, return_when=FIRST_COMPLETED
                )

                pool_broken = False
                for future in finished:
                    entry = in_flight.pop(future)
                    started_at.pop(future, None)
                    job = entry.job
                    key = job.key()
                    try:
                        outcome = future.result()
                    except BrokenProcessPool as error:
                        pool_broken = True
                        crash_retry(entry, error)
                    except Exception as error:
                        if entry.attempt <= self.max_retries:
                            report.retries += 1
                            self._log(
                                f"[sweep] retrying {job.app_name} "
                                f"{job.config.scheme.value} "
                                f"(attempt {entry.attempt} failed: {error!r})"
                            )
                            entry.attempt += 1
                            entry.not_before = time.monotonic() + self._backoff_delay(
                                entry.attempt - 1
                            )
                            queue.append(entry)
                        else:
                            self._record_failure(
                                report,
                                resolved,
                                job,
                                key,
                                entry.attempt,
                                error,
                                "exception",
                            )
                    else:
                        self._record_success(
                            common, report, resolved, job, key, outcome,
                            entry.attempt,
                        )
                        done_count += 1
                        self._log(
                            f"[sweep] {done_count}/{total} {job.app_name} "
                            f"{job.config.scheme.value} "
                            f"{outcome.duration_s:.2f}s"
                        )
                if pool_broken:
                    recycle_executor("worker process crashed")
                    continue

                if self.timeout is not None:
                    now = time.monotonic()
                    hung = [
                        future
                        for future in in_flight
                        if now - started_at[future] >= self.timeout
                        and not future.done()
                    ]
                    if hung:
                        for future in hung:
                            entry = in_flight.pop(future)
                            started_at.pop(future, None)
                            job = entry.job
                            error = FuturesTimeoutError(
                                f"job exceeded the per-job timeout "
                                f"({self.timeout:.2f}s)"
                            )
                            if entry.attempt <= self.max_retries:
                                report.retries += 1
                                self._log(
                                    f"[sweep] retrying {job.app_name} "
                                    f"{job.config.scheme.value} "
                                    f"(attempt {entry.attempt} timed out)"
                                )
                                entry.attempt += 1
                                entry.not_before = (
                                    time.monotonic()
                                    + self._backoff_delay(entry.attempt - 1)
                                )
                                queue.append(entry)
                            else:
                                self._record_failure(
                                    report,
                                    resolved,
                                    job,
                                    job.key(),
                                    entry.attempt,
                                    error,
                                    "timeout",
                                )
                        recycle_executor(f"{len(hung)} job(s) timed out")

            if suspects:
                # Still inside the try so the executor (and, for the
                # remote backend, its coordinator) is alive for the
                # isolation pass.
                self._run_isolated(
                    common, suspects, resolved, report, cache_dir, executor
                )
        finally:
            # dirty: an exception (e.g. SweepAbort) left futures in
            # flight — a backend that reuses contexts must not lease
            # that context again.
            executor.close(dirty=bool(in_flight))

    def _run_isolated(
        self, common, suspects, resolved, report, cache_dir, executor
    ) -> None:
        """Crash-attribution fallback: one job at a time, isolated.

        Jobs land here when their retries were exhausted by executor
        crashes. Run serially in the backend's most isolated context (a
        fresh single-worker pool locally; a lone remote attempt), an
        innocent bystander completes normally, while a job that kills
        even its isolated context is the culprit and gets a terminal
        ``"crash"`` record.
        """

        for entry in suspects:
            job = entry.job
            key = job.key()
            self._log(
                f"[sweep] isolating {job.app_name} {job.config.scheme.value} "
                "for crash attribution"
            )
            try:
                outcome = executor.run_isolated(
                    job, cache_dir, self.use_cache, entry.attempt, self.fault,
                    self.timeout,
                )
            except BrokenProcessPool as error:
                self._record_failure(
                    report, resolved, job, key, entry.attempt, error, "crash"
                )
            except FuturesTimeoutError as error:
                self._record_failure(
                    report, resolved, job, key, entry.attempt, error, "timeout"
                )
            except Exception as error:
                self._record_failure(
                    report, resolved, job, key, entry.attempt, error, "exception"
                )
            else:
                self._record_success(
                    common, report, resolved, job, key, outcome, entry.attempt
                )
                self._log(
                    f"[sweep] isolated {job.app_name} "
                    f"{job.config.scheme.value} completed in "
                    f"{outcome.duration_s:.2f}s"
                )


def run_sweep(
    jobs: Sequence[JobLike],
    workers: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    *,
    timeout: Optional[float] = None,
    max_retries: Optional[int] = None,
    keep_going: Optional[bool] = None,
    fault: Optional[Callable[[SweepJob, int], None]] = None,
) -> List[Optional[SimResult]]:
    """Convenience wrapper: one-shot :class:`SweepRunner` execution.

    Experiment harnesses call this to warm the caches for an enumerated
    grid before assembling their rows; fault-tolerance knobs default to
    the ``REPRO_TIMEOUT`` / ``REPRO_MAX_RETRIES`` / ``REPRO_KEEP_GOING``
    environment variables.
    """

    return SweepRunner(
        jobs=workers,
        progress=progress,
        timeout=timeout,
        max_retries=max_retries,
        keep_going=keep_going,
        fault=fault,
    ).run(jobs)
