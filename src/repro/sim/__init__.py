"""Simulation engine primitives: stats, resources, the wave scheduler."""

from repro.sim.engine import Port, WaveScheduler
from repro.sim.results import KernelResult, SimResult, geomean, speedup
from repro.sim.runner import SweepJob, SweepReport, SweepRunner, run_sweep
from repro.sim.stats import BoxStats, Distribution, PortIdleTracker, Stats

__all__ = [
    "BoxStats",
    "Distribution",
    "KernelResult",
    "Port",
    "PortIdleTracker",
    "SimResult",
    "Stats",
    "SweepJob",
    "SweepReport",
    "SweepRunner",
    "WaveScheduler",
    "geomean",
    "speedup",
    "run_sweep",
]
