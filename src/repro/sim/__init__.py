"""Simulation engine primitives: stats, resources, the wave scheduler."""

from repro.sim.engine import Port, WaveScheduler
from repro.sim.results import KernelResult, SimResult, geomean, speedup
from repro.sim.runner import (
    JobFailure,
    SweepAbort,
    SweepJob,
    SweepReport,
    SweepRunner,
    parse_fault_spec,
    run_sweep,
)
from repro.sim.stats import BoxStats, Distribution, PortIdleTracker, Stats

__all__ = [
    "BoxStats",
    "Distribution",
    "JobFailure",
    "KernelResult",
    "Port",
    "PortIdleTracker",
    "SimResult",
    "Stats",
    "SweepAbort",
    "SweepJob",
    "SweepReport",
    "SweepRunner",
    "WaveScheduler",
    "geomean",
    "parse_fault_spec",
    "speedup",
    "run_sweep",
]
