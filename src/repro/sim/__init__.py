"""Simulation engine primitives: stats, resources, the wave scheduler."""

from repro.sim.engine import Port, WaveScheduler
from repro.sim.profiling import Hotspot, HotspotProfiler, merge_hotspots
from repro.sim.results import KernelResult, SimResult, geomean, speedup
from repro.sim.runner import (
    JobFailure,
    JobTiming,
    SweepAbort,
    SweepJob,
    SweepReport,
    SweepRunner,
    WorkerOutcome,
    drain_failures,
    drain_reports,
    parse_fault_spec,
    run_sweep,
)
from repro.sim.stats import BoxStats, Distribution, PortIdleTracker, Stats
from repro.sim.trace import (
    ExecutionTracer,
    TimelineSampler,
    TraceEvent,
    write_chrome_trace,
)

__all__ = [
    "BoxStats",
    "Distribution",
    "ExecutionTracer",
    "Hotspot",
    "HotspotProfiler",
    "JobFailure",
    "JobTiming",
    "KernelResult",
    "Port",
    "PortIdleTracker",
    "SimResult",
    "Stats",
    "SweepAbort",
    "SweepJob",
    "SweepReport",
    "SweepRunner",
    "TimelineSampler",
    "TraceEvent",
    "WaveScheduler",
    "WorkerOutcome",
    "drain_failures",
    "drain_reports",
    "geomean",
    "merge_hotspots",
    "parse_fault_spec",
    "speedup",
    "run_sweep",
    "write_chrome_trace",
]
