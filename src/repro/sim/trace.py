"""Optional execution tracing and timeline telemetry.

Two recorders answer "where did the cycles go?":

- :class:`ExecutionTracer` — attach via
  :meth:`~repro.system.GPUSystem.attach_tracer` to record one event per
  executed macro-op: which CU/SIMD ran it, the op kind, and its
  issue/completion times. Exports to JSON-lines for external tooling.
- :class:`TimelineSampler` — attach to any
  :class:`~repro.sim.engine.Port` (or every interesting port at once via
  :meth:`~repro.system.GPUSystem.attach_timelines`) to record the port's
  busy intervals, one lane per service unit. Back-to-back busy intervals
  coalesce, and the recorder is bounded-memory like the tracer.

Both feed :func:`write_chrome_trace`, which renders everything as Chrome
trace-event JSON — one track per CU/SIMD, per shared port, and per
page-table walker — viewable in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``. ``python -m repro trace`` is the one-shot CLI.

Tracing is off by default and costs nothing when detached (a single ``is
None`` test per op).
"""

from __future__ import annotations

import heapq
import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple


@dataclass(frozen=True)
class TraceEvent:
    """One executed macro-op."""

    cu_id: int
    simd_index: int
    kernel_name: str
    wg_id: int
    op_kind: str
    issued_at: int
    completed_at: int

    @property
    def duration(self) -> int:
        return self.completed_at - self.issued_at


class ExecutionTracer:
    """Bounded in-memory trace recorder."""

    def __init__(self, max_events: int = 1_000_000) -> None:
        if max_events < 1:
            raise ValueError("need room for at least one event")
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self.dropped = 0

    def record(
        self,
        cu_id: int,
        simd_index: int,
        kernel_name: str,
        wg_id: int,
        op_kind: str,
        issued_at: int,
        completed_at: int,
    ) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(
            TraceEvent(
                cu_id, simd_index, kernel_name, wg_id, op_kind,
                issued_at, completed_at,
            )
        )

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def by_kind(self) -> Dict[str, int]:
        """Total cycles spent per op kind (sum of durations)."""

        totals: Dict[str, int] = {}
        for event in self.events:
            totals[event.op_kind] = totals.get(event.op_kind, 0) + event.duration
        return totals

    def slowest(self, count: int = 10) -> List[TraceEvent]:
        return sorted(self.events, key=lambda e: -e.duration)[:count]

    def for_cu(self, cu_id: int) -> List[TraceEvent]:
        return [event for event in self.events if event.cu_id == cu_id]

    def to_jsonl(self, path: Optional[str] = None) -> Optional[str]:
        """Serialize events as JSON lines (to a file, or returned).

        The last line is a ``{"meta": ...}`` trailer carrying ``recorded``,
        ``dropped`` and ``max_events``, so a truncated trace is detectable
        downstream instead of silently passing for a complete one.
        """

        meta = json.dumps(
            {
                "meta": {
                    "recorded": len(self.events),
                    "dropped": self.dropped,
                    "max_events": self.max_events,
                }
            },
            sort_keys=True,
        )
        lines = [json.dumps(event.__dict__, sort_keys=True) for event in self.events]
        lines.append(meta)
        if path is None:
            return "\n".join(lines)
        with open(path, "w") as handle:
            for line in lines:
                handle.write(line + "\n")
        return None


class TimelineSampler:
    """Bounded recorder of one port's busy intervals, lane by lane.

    A :class:`~repro.sim.engine.Port` with ``units`` service units calls
    :meth:`record` once per accepted request; the sampler assigns each
    interval to the lane that frees the earliest — the same policy the
    port's own free-time heap uses — so a pool (e.g. the IOMMU's 32 page
    table walkers) renders as one timeline row per unit.

    Memory is bounded by ``max_intervals``: contiguous busy intervals on a
    lane coalesce (a saturated port costs one interval, not thousands),
    and once full, further intervals are counted in :attr:`dropped`
    rather than stored — mirroring ``ExecutionTracer.max_events``.
    """

    __slots__ = (
        "name", "max_intervals", "dropped", "intervals", "_lane_heap",
        "_lane_last",
    )

    def __init__(
        self, name: str, lanes: int = 1, max_intervals: int = 100_000
    ) -> None:
        if lanes < 1:
            raise ValueError(f"timeline {name!r} needs at least one lane")
        if max_intervals < 1:
            raise ValueError(f"timeline {name!r} needs room for one interval")
        self.name = name
        self.max_intervals = max_intervals
        self.dropped = 0
        #: Recorded ``[lane, start, end]`` triples (mutable for coalescing).
        self.intervals: List[List[int]] = []
        # (free_time, lane) min-heap mirroring Port's unit selection.
        self._lane_heap: List[Tuple[int, int]] = [(0, i) for i in range(lanes)]
        self._lane_last: List[Optional[List[int]]] = [None] * lanes

    @property
    def lanes(self) -> int:
        return len(self._lane_heap)

    def record(self, start: int, end: int) -> None:
        """Record one busy interval ``[start, end)`` on the freest lane."""

        _, lane = self._lane_heap[0]
        heapq.heapreplace(self._lane_heap, (end, lane))
        last = self._lane_last[lane]
        if last is not None and last[2] == start:
            last[2] = end  # contiguous with the lane's previous interval
            return
        if len(self.intervals) >= self.max_intervals:
            self.dropped += 1
            self._lane_last[lane] = None
            return
        interval = [lane, start, end]
        self.intervals.append(interval)
        self._lane_last[lane] = interval

    def busy_time(self) -> int:
        """Total recorded busy cycles across all lanes."""

        return sum(end - start for _, start, end in self.intervals)

    def __len__(self) -> int:
        return len(self.intervals)


# ---------------------------------------------------------------------------
# Chrome trace-event export
# ---------------------------------------------------------------------------

#: Process id hosting every shared-port / walker track; CU ``n`` gets
#: process id ``n + 1`` (pid 0 is reserved by the trace viewers).
PORTS_PID = 1001


def chrome_trace_events(
    tracer: Optional[ExecutionTracer] = None,
    timelines: Optional[Mapping[str, TimelineSampler]] = None,
) -> List[Dict]:
    """Flatten a tracer and/or port timelines into trace-event dicts.

    Complete events (``"ph": "X"``) carry ``ts``/``dur`` in simulated
    cycles; metadata events name one process per CU (threads = SIMDs) and
    one shared process whose threads are the ports, with one thread per
    lane for multi-unit pools (the page-table walkers).
    """

    events: List[Dict] = []
    if tracer is not None and tracer.events:
        seen_cus: Dict[int, set] = {}
        for event in tracer.events:
            seen_cus.setdefault(event.cu_id, set()).add(event.simd_index)
        for cu_id in sorted(seen_cus):
            pid = cu_id + 1
            events.append(_meta(pid, 0, "process_name", f"CU {cu_id}"))
            for simd in sorted(seen_cus[cu_id]):
                events.append(_meta(pid, simd, "thread_name", f"SIMD {simd}"))
        for event in tracer.events:
            events.append(
                {
                    "name": event.op_kind,
                    "cat": "op",
                    "ph": "X",
                    "pid": event.cu_id + 1,
                    "tid": event.simd_index,
                    "ts": event.issued_at,
                    "dur": event.duration,
                    "args": {"kernel": event.kernel_name, "wg": event.wg_id},
                }
            )
    if timelines:
        events.append(_meta(PORTS_PID, 0, "process_name", "shared ports"))
        tid = 0
        for name in sorted(timelines):
            sampler = timelines[name]
            if not sampler.intervals:
                continue
            lane_tids: Dict[int, int] = {}
            for lane, start, end in sampler.intervals:
                lane_tid = lane_tids.get(lane)
                if lane_tid is None:
                    lane_tid = lane_tids[lane] = tid
                    track = name if sampler.lanes == 1 else f"{name}[{lane}]"
                    events.append(_meta(PORTS_PID, lane_tid, "thread_name", track))
                    tid += 1
                events.append(
                    {
                        "name": name,
                        "cat": "port",
                        "ph": "X",
                        "pid": PORTS_PID,
                        "tid": lane_tid,
                        "ts": start,
                        "dur": end - start,
                        "args": {"lane": lane},
                    }
                )
    return events


def _meta(pid: int, tid: int, kind: str, name: str) -> Dict:
    return {
        "name": kind,
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "args": {"name": name},
    }


def write_chrome_trace(
    path: str,
    tracer: Optional[ExecutionTracer] = None,
    timelines: Optional[Mapping[str, TimelineSampler]] = None,
    metadata: Optional[Dict] = None,
) -> Dict[str, int]:
    """Write a Chrome trace-event JSON object file; returns a summary.

    The output is the standard ``{"traceEvents": [...]}`` object format,
    loadable by Perfetto and ``chrome://tracing``. ``metadata`` lands in
    ``otherData`` alongside drop counters, so truncated recordings stay
    detectable after export. Returns ``{"events": N, "tracks": M}``.
    """

    events = chrome_trace_events(tracer=tracer, timelines=timelines)
    other: Dict = dict(metadata or {})
    if tracer is not None:
        other["op_events_recorded"] = len(tracer.events)
        other["op_events_dropped"] = tracer.dropped
    if timelines:
        other["timeline_intervals"] = sum(len(s) for s in timelines.values())
        other["timeline_intervals_dropped"] = sum(
            s.dropped for s in timelines.values()
        )
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": other,
    }
    with open(path, "w") as handle:
        json.dump(payload, handle)
    tracks = sum(1 for event in events if event["ph"] == "M")
    return {"events": len(events), "tracks": tracks}
