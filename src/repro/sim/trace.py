"""Optional execution tracing.

Attach an :class:`ExecutionTracer` to a :class:`~repro.system.GPUSystem`
before running to record one event per executed macro-op: which CU/SIMD ran
it, the op kind, and its issue/completion times. Traces answer "where did
the cycles go?" at wave granularity — the question every calibration session
starts with — and export to JSON-lines for external tooling.

Tracing is off by default and costs nothing when detached (a single ``is
None`` test per op).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One executed macro-op."""

    cu_id: int
    simd_index: int
    kernel_name: str
    wg_id: int
    op_kind: str
    issued_at: int
    completed_at: int

    @property
    def duration(self) -> int:
        return self.completed_at - self.issued_at


class ExecutionTracer:
    """Bounded in-memory trace recorder."""

    def __init__(self, max_events: int = 1_000_000) -> None:
        if max_events < 1:
            raise ValueError("need room for at least one event")
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self.dropped = 0

    def record(
        self,
        cu_id: int,
        simd_index: int,
        kernel_name: str,
        wg_id: int,
        op_kind: str,
        issued_at: int,
        completed_at: int,
    ) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(
            TraceEvent(
                cu_id, simd_index, kernel_name, wg_id, op_kind,
                issued_at, completed_at,
            )
        )

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def by_kind(self) -> Dict[str, int]:
        """Total cycles spent per op kind (sum of durations)."""

        totals: Dict[str, int] = {}
        for event in self.events:
            totals[event.op_kind] = totals.get(event.op_kind, 0) + event.duration
        return totals

    def slowest(self, count: int = 10) -> List[TraceEvent]:
        return sorted(self.events, key=lambda e: -e.duration)[:count]

    def for_cu(self, cu_id: int) -> List[TraceEvent]:
        return [event for event in self.events if event.cu_id == cu_id]

    def to_jsonl(self, path: Optional[str] = None) -> Optional[str]:
        """Serialize events as JSON lines (to a file, or returned)."""

        lines = (json.dumps(event.__dict__, sort_keys=True) for event in self.events)
        if path is None:
            return "\n".join(lines)
        with open(path, "w") as handle:
            for line in lines:
                handle.write(line + "\n")
        return None
