"""Opt-in cProfile hotspot capture for sweeps (``REPRO_PROFILE``).

Set ``REPRO_PROFILE=1`` to wrap every sweep-job simulation — in the parent
process on the serial path, inside each worker on the parallel path — in a
``cProfile.Profile``. Each job contributes its top-N functions by
cumulative time as picklable :class:`Hotspot` records; the runner merges
them across workers into ``SweepReport.hotspots``, so one sweep answers
"which functions dominate the grid?" without re-running anything under a
profiler by hand. ``REPRO_PROFILE=<N>`` (N > 1) widens the per-job top-N.

Profiling costs roughly 1.3-2x per simulated job; it is strictly opt-in
and has zero cost when the variable is unset (one environment lookup per
job).
"""

from __future__ import annotations

import cProfile
import os
import pstats
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

#: Environment variable enabling hotspot capture.
PROFILE_ENV = "REPRO_PROFILE"

#: Per-job top-N when ``REPRO_PROFILE`` is a bare truthy flag.
DEFAULT_TOP = 20

_FALSEY = ("", "0", "false", "no", "off")


@dataclass(frozen=True)
class Hotspot:
    """One function's aggregate cost: ``file:line(name)``, calls, seconds."""

    function: str
    calls: int
    cumulative_s: float

    def describe(self) -> str:
        return f"{self.cumulative_s:8.3f}s {self.calls:>9} calls  {self.function}"


def profile_top() -> int:
    """Top-N from ``REPRO_PROFILE``; 0 means profiling is disabled."""

    raw = os.environ.get(PROFILE_ENV, "").strip().lower()
    if raw in _FALSEY:
        return 0
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_TOP
    if value <= 0:
        return 0
    return value if value > 1 else DEFAULT_TOP


class HotspotProfiler:
    """Context manager capturing one job's top-N cumulative functions."""

    def __init__(self, top_n: int = DEFAULT_TOP) -> None:
        if top_n < 1:
            raise ValueError(f"top_n must be >= 1, got {top_n}")
        self.top_n = top_n
        self._profile = cProfile.Profile()

    def __enter__(self) -> "HotspotProfiler":
        self._profile.enable()
        return self

    def __exit__(self, *exc_info) -> None:
        self._profile.disable()

    def hotspots(self) -> List[Hotspot]:
        stats = pstats.Stats(self._profile)
        entries: List[Hotspot] = []
        for func, (_, ncalls, _, cumtime, _) in stats.stats.items():  # type: ignore[attr-defined]
            filename, line, name = func
            if filename == "~":  # built-ins have no file
                label = name
            else:
                label = f"{os.path.basename(filename)}:{line}({name})"
            entries.append(
                Hotspot(function=label, calls=ncalls, cumulative_s=cumtime)
            )
        entries.sort(key=lambda h: (-h.cumulative_s, h.function))
        return entries[: self.top_n]


def merge_hotspots(
    groups: Iterable[Iterable[Hotspot]], top_n: int = DEFAULT_TOP
) -> List[Hotspot]:
    """Aggregate per-job hotspot lists into one cross-worker top-N.

    Cumulative seconds and call counts sum per function label; the result
    is the sweep-wide ranking (note cumulative time counts a function and
    its callees, so totals across functions over-add by design, exactly
    as in a single ``cProfile`` report).
    """

    totals: Dict[str, Tuple[float, int]] = {}
    for group in groups:
        for hotspot in group:
            cum, calls = totals.get(hotspot.function, (0.0, 0))
            totals[hotspot.function] = (
                cum + hotspot.cumulative_s, calls + hotspot.calls
            )
    merged = [
        Hotspot(function=function, calls=calls, cumulative_s=cum)
        for function, (cum, calls) in totals.items()
    ]
    merged.sort(key=lambda h: (-h.cumulative_s, h.function))
    return merged[:top_n]
