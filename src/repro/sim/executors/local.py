"""Local executor backends: in-process serial and process pool.

:class:`SerialExecutor` runs every attempt inline in the runner's own
process — no pool, no pickling, pdb/coverage/profiling-friendly — and
:class:`PoolExecutor` adapts any :class:`~repro.sim.runner.PoolHost`
(the default private per-sweep pool, or the service's long-lived
:class:`~repro.service.executor.SharedProcessPool`) to the
:class:`~repro.sim.executors.base.SweepExecutor` contract. Both produce
byte-identical results to each other and to the remote backend: the
simulator is deterministic and all three feed the same
:func:`~repro.sim.runner._simulate` semantics.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Future, ProcessPoolExecutor
from typing import List, Optional

from repro.sim.executors.base import FaultHook, SweepExecutor
from repro.sim.profiling import Hotspot, HotspotProfiler, profile_top
from repro.sim.runner import (
    PoolHost,
    PrivatePoolHost,
    SweepJob,
    WorkerOutcome,
    _simulate,
)


def execute_inline(
    job: SweepJob, use_cache: bool, attempt: int, fault: FaultHook
) -> WorkerOutcome:
    """One attempt in the current process.

    Mirrors :func:`~repro.sim.runner._simulate` (fault hook, optional
    profiling, timing) but deliberately does NOT touch
    ``common._CACHE_DIR`` / ``common._CACHE``: worker processes reset
    those to escape stale fork-inherited state, while the parent process
    must keep its module state intact.
    """

    from repro.experiments import common

    started = time.perf_counter()
    if fault is not None:
        fault(job, attempt)
    top_n = profile_top()
    if top_n:
        with HotspotProfiler(top_n) as profiler:
            result = common.run_app(
                job.app_name, job.config, job.scale, use_cache=use_cache
            )
        hotspots: Optional[List[Hotspot]] = profiler.hotspots()
    else:
        result = common.run_app(
            job.app_name, job.config, job.scale, use_cache=use_cache
        )
        hotspots = None
    return WorkerOutcome(
        result=result,
        duration_s=time.perf_counter() - started,
        worker_pid=os.getpid(),
        hotspots=hotspots,
    )


class SerialExecutor(SweepExecutor):
    """Everything inline, width 1. ``submit`` runs the attempt before
    returning, so the returned future is always already resolved; the
    runner's collection loop degenerates to one attempt at a time.

    Crash semantics match the historical serial path: an injected
    ``crash`` fault is demoted to an exception by
    :class:`~repro.sim.runner.SpecFault`'s parent-pid guard rather than
    killing the sweep (there is no worker process to sacrifice).
    """

    name = "serial"

    def acquire(self, workers: int) -> int:
        return 1

    def submit(
        self,
        job: SweepJob,
        cache_dir: str,
        use_cache: bool,
        attempt: int,
        fault: FaultHook,
    ) -> "Future[WorkerOutcome]":
        future: "Future[WorkerOutcome]" = Future()
        try:
            outcome = execute_inline(job, use_cache, attempt, fault)
        except BaseException as error:
            future.set_exception(error)
        else:
            future.set_result(outcome)
        return future

    def recycle(self, reason: str) -> None:
        pass  # nothing to rebuild: the "context" is this process

    def close(self, dirty: bool = False) -> None:
        pass

    def run_isolated(
        self,
        job: SweepJob,
        cache_dir: str,
        use_cache: bool,
        attempt: int,
        fault: FaultHook,
        timeout: Optional[float],
    ) -> WorkerOutcome:
        # No isolation (and no preemption) is possible in-process; the
        # timeout is unenforceable here, exactly like the serial path.
        return execute_inline(job, use_cache, attempt, fault)


class PoolExecutor(SweepExecutor):
    """The local process pool behind the executor contract.

    The pool's *lifecycle* stays with the :class:`PoolHost` — a private
    per-sweep pool by default, the service's shared leased pool when one
    is passed — so ``SharedProcessPool`` is an implementation of the same
    executor backend, not a parallel code path.
    """

    name = "pool"

    def __init__(self, host: Optional[PoolHost] = None) -> None:
        self.host = host if host is not None else PrivatePoolHost()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._workers = 0

    def acquire(self, workers: int) -> int:
        self._pool, self._workers = self.host.acquire(workers)
        return self._workers

    def submit(
        self,
        job: SweepJob,
        cache_dir: str,
        use_cache: bool,
        attempt: int,
        fault: FaultHook,
    ) -> "Future[WorkerOutcome]":
        assert self._pool is not None, "acquire() first"
        return self._pool.submit(_simulate, job, cache_dir, use_cache, attempt, fault)

    def recycle(self, reason: str) -> None:
        assert self._pool is not None, "acquire() first"
        self._pool = self.host.recycle(self._pool, self._workers, reason)

    def close(self, dirty: bool = False) -> None:
        if self._pool is not None:
            self.host.release(self._pool, dirty=dirty)
            self._pool = None

    def run_isolated(
        self,
        job: SweepJob,
        cache_dir: str,
        use_cache: bool,
        attempt: int,
        fault: FaultHook,
        timeout: Optional[float],
    ) -> WorkerOutcome:
        # A fresh single-worker pool, independent of the leased one: if
        # the job kills even its private pool it is the culprit.
        solo = ProcessPoolExecutor(max_workers=1)
        try:
            future = solo.submit(_simulate, job, cache_dir, use_cache, attempt, fault)
            return future.result(timeout=timeout)
        finally:
            solo.shutdown(wait=False, cancel_futures=True)
