"""The pluggable executor contract :class:`~repro.sim.runner.SweepRunner`
drives.

An executor owns *where* simulation attempts run — in-process, on a local
process pool, or on remote worker processes — while the runner keeps
owning *what* runs: dedup, retries with backoff, per-job timeouts, crash
attribution, and report assembly. The contract is deliberately shaped so
the runner's fault-tolerance loop is backend-agnostic:

- :meth:`submit` returns a ``concurrent.futures.Future``; the runner
  collects with ``wait(FIRST_COMPLETED)`` regardless of backend.
- A dead execution context — crashed pool worker, disconnected remote
  worker — surfaces as ``BrokenProcessPool`` (raised by ``submit`` or set
  on the in-flight future), so crash handling is identical everywhere.
- :meth:`recycle` discards the broken context and any stale in-flight
  work; the runner re-queues what it had in flight and re-submits.
- :meth:`run_isolated` is the crash-attribution fallback: run one job in
  the most isolated context the backend can offer and let the exception
  type name the disposition.
"""

from __future__ import annotations

from concurrent.futures import Future
from typing import Callable, Optional

from repro.sim.runner import SweepJob, WorkerOutcome

#: The selector vocabulary (``SweepRunner(executor=...)``, CLI
#: ``--executor``, ``REPRO_EXECUTOR``).
EXECUTOR_NAMES = ("serial", "pool", "remote")

FaultHook = Optional[Callable[[SweepJob, int], None]]


class SweepExecutor:
    """Abstract backend executing simulation attempts for one sweep."""

    #: Selector name of the backend (informational).
    name = "abstract"

    def acquire(self, workers: int) -> int:
        """Prepare the backend for a sweep that wants up to ``workers``
        concurrent attempts; returns the width the runner may actually
        keep in flight. A backend may cap below the ask, or exceed it
        when the ask reflects local capacity that does not apply (the
        remote backend uses its connected worker count)."""

        raise NotImplementedError

    def submit(
        self,
        job: SweepJob,
        cache_dir: str,
        use_cache: bool,
        attempt: int,
        fault: FaultHook,
    ) -> "Future[WorkerOutcome]":
        """Start one attempt; the future resolves to a
        :class:`~repro.sim.runner.WorkerOutcome` or raises. May raise
        ``BrokenProcessPool``/``RuntimeError`` when the backend is broken
        at submission time (the runner recycles and re-submits)."""

        raise NotImplementedError

    def recycle(self, reason: str) -> None:
        """The execution context broke (crash, hang): replace it. Work
        still in flight is stale — late results must be dropped, not
        delivered against re-submitted attempts."""

        raise NotImplementedError

    def close(self, dirty: bool = False) -> None:
        """The sweep is over. ``dirty=True`` means futures may still be
        in flight (the sweep aborted mid-run); a backend that reuses
        contexts across sweeps must not lease that context again."""

        raise NotImplementedError

    def run_isolated(
        self,
        job: SweepJob,
        cache_dir: str,
        use_cache: bool,
        attempt: int,
        fault: FaultHook,
        timeout: Optional[float],
    ) -> WorkerOutcome:
        """Crash-attribution fallback: run ``job`` in the most isolated
        context available and block for the outcome. Raises
        ``BrokenProcessPool`` (the job really does kill its executor —
        disposition ``"crash"``), ``concurrent.futures.TimeoutError``
        (disposition ``"timeout"``), or the job's own exception."""

        raise NotImplementedError
