"""Pluggable sweep-executor backends.

:class:`~repro.sim.runner.SweepRunner` drives one
:class:`~repro.sim.executors.base.SweepExecutor` per sweep; the backend
decides where attempts execute, the runner keeps dedup, retries,
timeouts, crash attribution, and reporting. Three backends:

- ``serial`` (:class:`SerialExecutor`) — inline in the runner's process.
- ``pool`` (:class:`PoolExecutor`) — local ``ProcessPoolExecutor``,
  lifecycle owned by a :class:`~repro.sim.runner.PoolHost` (private per
  sweep, or the service's shared leased pool).
- ``remote`` (:class:`RemoteExecutor`) — ``repro worker`` processes
  pulling jobs from a :class:`Coordinator` over stdlib sockets.

All three produce byte-identical results for the same grid
(``tests/sim/test_executors.py`` enforces this on the fig13 smoke grid)
and share the runner's failure semantics.
"""

from repro.sim.executors.base import EXECUTOR_NAMES, SweepExecutor
from repro.sim.executors.local import PoolExecutor, SerialExecutor
from repro.sim.executors.remote import (
    Coordinator,
    RemoteExecutor,
    WorkerFleet,
    worker_main,
)

__all__ = [
    "EXECUTOR_NAMES",
    "SweepExecutor",
    "SerialExecutor",
    "PoolExecutor",
    "RemoteExecutor",
    "Coordinator",
    "WorkerFleet",
    "worker_main",
]


def executor_names():
    """The valid ``--executor`` / ``REPRO_EXECUTOR`` selector values."""

    return list(EXECUTOR_NAMES)
