"""Remote executor backend: stdlib-socket workers pulling from a coordinator.

Topology — one :class:`Coordinator` in the sweep process, N ``repro
worker --connect HOST:PORT`` processes (any host that can reach the
coordinator and, for cache sharing, the store directory):

    SweepRunner ── RemoteExecutor ── Coordinator ══socket══ worker pull loop
                                                            └─ _simulate(...)

Protocol: length-prefixed pickles (4-byte big-endian size, then a
pickled tuple) over one long-lived TCP connection per worker:

    worker → ("hello", PROTOCOL_VERSION, {"pid": ..., "host": ...})
    coord  → ("job", task_id, job, cache_dir, use_cache, attempt, fault)
    worker → ("ok", task_id, WorkerOutcome) | ("err", task_id, exception)
    coord  → ("shutdown",)

Workers *pull*: each connection's handler thread hands out the next
queued task only when that worker is idle, so a slow host never queues
work a fast host could take.

Fault semantics match the local pool byte-for-byte at the runner level:

- A worker that disconnects mid-job surfaces as ``BrokenProcessPool`` on
  the in-flight future — exactly what a crashed pool worker raises — so
  the runner's crash retry / isolation / attribution machinery is
  unchanged.
- :meth:`RemoteExecutor.recycle` drops all queued and in-flight tasks
  (matching the pool's recycle, which abandons the whole pool): the
  runner re-queues what it had in flight, and any late result from a
  worker that was still computing a dropped task is discarded by
  ``task_id`` (``stale_results`` counter), never delivered twice.
- Per-job timeouts are enforced by the runner from submission time, so
  the executor caps in-flight width at the number of *connected* workers
  — a task never burns its timeout budget sitting in the coordinator
  queue behind other tasks.

Results and the cache: workers run the same
:func:`~repro.sim.runner._simulate` body as pool workers, against the
``cache_dir`` the coordinator sends (overridable per worker with
``--cache-dir`` for hosts that mount the shared store elsewhere), so N
remote workers populate the same content-addressed store entries a
serial run would.
"""

from __future__ import annotations

import os
import pickle
import socket
import struct
import subprocess
import sys
import threading
import time
from collections import deque
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool
from itertools import count as _counter
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.sim.executors.base import FaultHook, SweepExecutor
from repro.sim.runner import SweepJob, WorkerOutcome, _simulate

PROTOCOL_VERSION = 1

#: Worker exit codes (the ``--respawn`` supervisor keys off these).
EXIT_CLEAN = 0          # shutdown message / coordinator gone: do not respawn
EXIT_PROTOCOL = 2       # coordinator spoke a different protocol
EXIT_CONNECT_FAILED = 3  # could not connect within the retry window

_LEN = struct.Struct(">I")
_MAX_MSG_BYTES = 256 * 1024 * 1024


class ProtocolError(RuntimeError):
    """The peer sent something that is not a valid protocol message."""


def _send_msg(sock: socket.socket, message: Tuple) -> None:
    try:
        blob = pickle.dumps(message)
    except Exception as error:
        # Unpicklable payload (exotic exception object, say): degrade to
        # a picklable stand-in rather than wedging the connection.
        kind = message[0] if message else "?"
        task_id = message[1] if len(message) > 1 else None
        blob = pickle.dumps(
            ("err", task_id, RuntimeError(f"unpicklable {kind} payload: {error!r}"))
        )
    sock.sendall(_LEN.pack(len(blob)) + blob)


def _recv_exact(sock: socket.socket, size: int) -> bytes:
    chunks = []
    remaining = size
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise EOFError("peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_msg(sock: socket.socket) -> Tuple:
    (size,) = _LEN.unpack(_recv_exact(sock, _LEN.size))
    if size > _MAX_MSG_BYTES:
        raise ProtocolError(f"message of {size} bytes exceeds the protocol limit")
    message = pickle.loads(_recv_exact(sock, size))
    if not isinstance(message, tuple) or not message:
        raise ProtocolError(f"expected a non-empty tuple, got {type(message).__name__}")
    return message


def parse_address(address: str) -> Tuple[str, int]:
    """``"HOST:PORT"`` → ``(host, port)`` (host defaults to 127.0.0.1)."""

    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"bad address {address!r}: want HOST:PORT")
    return host or "127.0.0.1", int(port)


class _RemoteTask:
    """One queued/in-flight attempt with the future the runner holds."""

    __slots__ = ("task_id", "payload", "future")

    def __init__(self, task_id: int, payload: Tuple) -> None:
        self.task_id = task_id
        self.payload = payload
        self.future: "Future[WorkerOutcome]" = Future()


class Coordinator:
    """Listens for workers, queues tasks, routes results back to futures.

    Threads: one accept loop plus one handler per connected worker, all
    daemons. All shared state (task queue, live-task table, worker
    registry, counters) is guarded by one condition variable.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._sock = socket.create_server((host, port))
        self._sock.settimeout(0.2)  # lets the accept loop observe close()
        bound = self._sock.getsockname()
        self.host, self.port = bound[0], bound[1]
        self.address = f"{self.host}:{self.port}"
        self._cond = threading.Condition()
        self._queue: Deque[_RemoteTask] = deque()
        self._live: Dict[int, _RemoteTask] = {}
        self._workers: Dict[int, Dict] = {}
        self._closed = False
        self._task_ids = _counter(1)
        self._worker_ids = _counter(1)
        self.counters = {
            "workers_connected": 0,
            "workers_disconnected": 0,
            "tasks_dispatched": 0,
            "results_delivered": 0,
            "stale_results": 0,
            "recycles": 0,
        }
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-coordinator-accept", daemon=True
        )
        self._accept_thread.start()

    # -- the executor-facing side ------------------------------------------

    def worker_count(self) -> int:
        with self._cond:
            return len(self._workers)

    def wait_for_workers(self, minimum: int, timeout_s: float) -> int:
        """Block until ``minimum`` workers are connected; returns the
        count, raising ``RuntimeError`` past ``timeout_s``."""

        deadline = time.monotonic() + timeout_s
        with self._cond:
            while len(self._workers) < minimum:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise RuntimeError(
                        f"only {len(self._workers)} of {minimum} remote worker(s) "
                        f"connected to {self.address} within {timeout_s:.0f}s; "
                        f"start workers with: repro worker --connect {self.address}"
                    )
                self._cond.wait(timeout=min(remaining, 0.5))
            return len(self._workers)

    def submit_task(
        self,
        job: SweepJob,
        cache_dir: str,
        use_cache: bool,
        attempt: int,
        fault: FaultHook,
    ) -> _RemoteTask:
        with self._cond:
            if self._closed:
                raise RuntimeError("coordinator is closed")
            task = _RemoteTask(
                next(self._task_ids), (job, cache_dir, use_cache, attempt, fault)
            )
            self._live[task.task_id] = task
            self._queue.append(task)
            self._cond.notify_all()
        return task

    def drop_task(self, task: _RemoteTask) -> None:
        """Forget one task (timeout in ``run_isolated``): a late result
        for it is discarded as stale."""

        with self._cond:
            self._live.pop(task.task_id, None)
            try:
                self._queue.remove(task)
            except ValueError:
                pass

    def recycle(self, reason: str) -> None:
        """Drop every queued and in-flight task. The runner re-queues its
        in-flight entries and re-submits; results for dropped task ids
        that later arrive from still-healthy workers are discarded."""

        with self._cond:
            self._queue.clear()
            self._live.clear()
            self.counters["recycles"] += 1

    def close(self) -> None:
        """Stop accepting, tell idle workers to shut down, drop tasks."""

        with self._cond:
            self._closed = True
            self._queue.clear()
            self._live.clear()
            self._cond.notify_all()
        try:
            self._sock.close()
        except OSError:
            pass

    def stats(self) -> Dict:
        with self._cond:
            return {
                "address": self.address,
                "workers": len(self._workers),
                "queued": len(self._queue),
                "in_flight": len(self._live) - len(self._queue),
                **self.counters,
            }

    # -- socket side -------------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _addr = self._sock.accept()
            except socket.timeout:
                with self._cond:
                    if self._closed:
                        return
                continue
            except OSError:
                return  # socket closed
            threading.Thread(
                target=self._serve_worker,
                args=(conn,),
                name="repro-coordinator-worker",
                daemon=True,
            ).start()

    def _take_task(self) -> Optional[_RemoteTask]:
        with self._cond:
            while True:
                if self._closed:
                    return None
                while self._queue:
                    task = self._queue.popleft()
                    if self._live.get(task.task_id) is task:
                        return task
                    # Dropped (recycle) while queued: skip silently.
                self._cond.wait(timeout=0.5)

    def _serve_worker(self, conn: socket.socket) -> None:
        worker_id = None
        try:
            conn.settimeout(None)
            try:
                hello = _recv_msg(conn)
                if hello[0] != "hello" or hello[1] != PROTOCOL_VERSION:
                    raise ProtocolError(f"bad hello {hello[:2]!r}")
            except (OSError, EOFError, pickle.UnpicklingError, ProtocolError,
                    IndexError):
                return
            with self._cond:
                worker_id = next(self._worker_ids)
                self._workers[worker_id] = dict(hello[2]) if len(hello) > 2 else {}
                self.counters["workers_connected"] += 1
                self._cond.notify_all()
            while True:
                task = self._take_task()
                if task is None:
                    try:
                        _send_msg(conn, ("shutdown",))
                    except OSError:
                        pass
                    return
                try:
                    _send_msg(conn, ("job", task.task_id) + task.payload)
                    with self._cond:
                        self.counters["tasks_dispatched"] += 1
                    reply = _recv_msg(conn)
                except (OSError, EOFError, pickle.UnpicklingError,
                        ProtocolError) as error:
                    self._worker_died(task, error)
                    return
                self._deliver(reply)
        finally:
            if worker_id is not None:
                with self._cond:
                    self._workers.pop(worker_id, None)
                    self.counters["workers_disconnected"] += 1
                    self._cond.notify_all()
            try:
                conn.close()
            except OSError:
                pass

    def _worker_died(self, task: _RemoteTask, error: Exception) -> None:
        """A worker vanished mid-job: the remote analogue of a crashed
        pool worker, surfaced as the same ``BrokenProcessPool``."""

        with self._cond:
            live = self._live.pop(task.task_id, None)
        if live is task:
            task.future.set_exception(
                BrokenProcessPool(
                    f"remote worker disconnected mid-job ({error!r})"
                )
            )
        else:
            with self._cond:
                self.counters["stale_results"] += 1

    def _deliver(self, reply: Tuple) -> None:
        if reply[0] not in ("ok", "err") or len(reply) < 3:
            raise ProtocolError(f"bad reply {reply[:1]!r}")
        task_id, payload = reply[1], reply[2]
        with self._cond:
            task = self._live.pop(task_id, None)
            if task is None:
                self.counters["stale_results"] += 1
                return
            self.counters["results_delivered"] += 1
        if reply[0] == "ok":
            task.future.set_result(payload)
        else:
            error = (
                payload
                if isinstance(payload, BaseException)
                else RuntimeError(str(payload))
            )
            task.future.set_exception(error)


class RemoteExecutor(SweepExecutor):
    """The remote backend the runner drives; owns one coordinator.

    ``close()`` closes the coordinator (which tells idle workers to shut
    down — under ``repro worker --respawn`` that ends the supervisor
    too), so one executor serves one sweep, mirroring the private pool's
    lifecycle.
    """

    name = "remote"

    def __init__(
        self,
        coordinator: Optional[Coordinator] = None,
        *,
        bind: str = "127.0.0.1:0",
        min_workers: int = 1,
        start_timeout_s: float = 120.0,
        width: Optional[int] = None,
    ) -> None:
        if min_workers < 1:
            raise ValueError(f"min_workers must be >= 1, got {min_workers}")
        if width is not None and width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if coordinator is None:
            host, port = parse_address(bind)
            coordinator = Coordinator(host, port)
        self.coordinator = coordinator
        self.min_workers = min_workers
        self.start_timeout_s = start_timeout_s
        self.width = width

    def acquire(self, workers: int) -> int:
        connected = self.coordinator.wait_for_workers(
            self.min_workers, self.start_timeout_s
        )
        # The runner's ask is derived from the *local* core count, which
        # says nothing about remote capacity — the natural width is the
        # connected worker count (or the explicit ``width`` override),
        # capped at connected either way: per-job timeouts are measured
        # from submission, so work must never sit queued behind other
        # tasks burning its budget.
        width = self.width if self.width is not None else connected
        return max(1, min(width, connected))

    def submit(
        self,
        job: SweepJob,
        cache_dir: str,
        use_cache: bool,
        attempt: int,
        fault: FaultHook,
    ) -> "Future[WorkerOutcome]":
        return self.coordinator.submit_task(
            job, cache_dir, use_cache, attempt, fault
        ).future

    def recycle(self, reason: str) -> None:
        self.coordinator.recycle(reason)

    def close(self, dirty: bool = False) -> None:
        self.coordinator.close()

    def run_isolated(
        self,
        job: SweepJob,
        cache_dir: str,
        use_cache: bool,
        attempt: int,
        fault: FaultHook,
        timeout: Optional[float],
    ) -> WorkerOutcome:
        # The strongest isolation the backend offers: the task runs alone
        # on whichever worker takes it; a disconnect during it raises
        # BrokenProcessPool here, naming the job the crash culprit.
        task = self.coordinator.submit_task(job, cache_dir, use_cache, attempt, fault)
        try:
            return task.future.result(timeout=timeout)
        except BaseException:
            self.coordinator.drop_task(task)
            raise


# -- worker side (repro worker) ----------------------------------------------


def connect_with_retry(
    address: str, retry_s: float = 15.0
) -> Optional[socket.socket]:
    """Dial ``HOST:PORT``, retrying within ``retry_s`` (the coordinator
    may still be booting); ``None`` when the window closes."""

    host, port = parse_address(address)
    deadline = time.monotonic() + retry_s
    while True:
        try:
            return socket.create_connection((host, port), timeout=10.0)
        except OSError:
            if time.monotonic() >= deadline:
                return None
            time.sleep(0.2)


def worker_main(
    address: str,
    cache_dir: Optional[str] = None,
    retry_s: float = 15.0,
    log: Optional[Callable[[str], None]] = None,
) -> int:
    """The ``repro worker --connect`` pull loop; returns an exit code.

    Runs jobs with the exact pool-worker body (:func:`_simulate`), against
    the coordinator-sent cache dir unless ``cache_dir`` overrides it (a
    host mounting the shared store at a different path). An injected
    ``crash`` fault kills this process mid-job — the coordinator sees the
    disconnect and raises ``BrokenProcessPool``, same as a pool crash.
    """

    def _log(message: str) -> None:
        if log is not None:
            log(message)

    sock = connect_with_retry(address, retry_s)
    if sock is None:
        _log(f"[worker] could not connect to {address} within {retry_s:.0f}s")
        return EXIT_CONNECT_FAILED
    try:
        _send_msg(
            sock,
            ("hello", PROTOCOL_VERSION,
             {"pid": os.getpid(), "host": socket.gethostname()}),
        )
        _log(f"[worker] pid {os.getpid()} connected to {address}")
        while True:
            try:
                message = _recv_msg(sock)
            except (OSError, EOFError):
                _log("[worker] coordinator closed the connection; exiting")
                return EXIT_CLEAN
            except (pickle.UnpicklingError, ProtocolError) as error:
                _log(f"[worker] protocol error: {error!r}")
                return EXIT_PROTOCOL
            if message[0] == "shutdown":
                _log("[worker] shutdown requested; exiting")
                return EXIT_CLEAN
            if message[0] != "job" or len(message) != 7:
                _log(f"[worker] unexpected message {message[:1]!r}")
                return EXIT_PROTOCOL
            _kind, task_id, job, job_cache_dir, use_cache, attempt, fault = message
            effective_cache_dir = cache_dir if cache_dir is not None else job_cache_dir
            try:
                outcome = _simulate(job, effective_cache_dir, use_cache, attempt, fault)
                reply: Tuple = ("ok", task_id, outcome)
            except BaseException as error:
                reply = ("err", task_id, error)
            try:
                _send_msg(sock, reply)
            except OSError:
                _log("[worker] coordinator went away mid-reply; exiting")
                return EXIT_CLEAN
            _log(
                f"[worker] {job.app_name} {job.config.scheme.value} "
                f"-> {reply[0]} (task {task_id})"
            )
    finally:
        try:
            sock.close()
        except OSError:
            pass


def supervise_worker(
    address: str,
    cache_dir: Optional[str] = None,
    retry_s: float = 15.0,
    log: Optional[Callable[[str], None]] = None,
) -> int:
    """``repro worker --respawn``: re-exec the worker until it exits
    cleanly, so a crash fault (or a real simulator crash) costs one job,
    not the whole worker slot."""

    command = [
        sys.executable, "-m", "repro", "worker",
        "--connect", address, "--retry-s", str(retry_s),
    ]
    if cache_dir is not None:
        command += ["--cache-dir", cache_dir]
    while True:
        returncode = subprocess.call(command)
        if returncode in (EXIT_CLEAN, EXIT_CONNECT_FAILED, EXIT_PROTOCOL):
            return returncode
        if log is not None:
            log(f"[worker] worker exited with {returncode}; respawning")


class WorkerFleet:
    """N local ``repro worker`` subprocesses (tests and the CI smoke).

    Workers connect to ``address`` and exit when the coordinator closes;
    :meth:`stop` reaps them (terminating stragglers). ``respawn=True``
    runs each worker under the supervisor so crash-fault tests keep their
    worker count.
    """

    def __init__(
        self,
        address: str,
        count: int = 2,
        cache_dir: Optional[str] = None,
        respawn: bool = True,
    ) -> None:
        self.address = address
        self.count = count
        self.cache_dir = cache_dir
        self.respawn = respawn
        self._procs: List[subprocess.Popen] = []

    def start(self) -> "WorkerFleet":
        import repro

        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        command = [sys.executable, "-m", "repro", "worker", "--connect", self.address]
        if self.respawn:
            command.append("--respawn")
        if self.cache_dir is not None:
            command += ["--cache-dir", self.cache_dir]
        for _ in range(self.count):
            self._procs.append(
                subprocess.Popen(
                    command,
                    env=env,
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                    start_new_session=True,
                )
            )
        return self

    def stop(self, timeout_s: float = 20.0) -> None:
        deadline = time.monotonic() + timeout_s
        for proc in self._procs:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=5.0)
        self._procs.clear()

    def __enter__(self) -> "WorkerFleet":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
