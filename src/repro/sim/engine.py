"""Latency/occupancy simulation engine.

The simulator is trace-driven and latency-based rather than cycle-by-cycle:

- Every shared hardware structure with finite bandwidth (TLB ports, LDS and
  I-cache ports, page table walkers, DRAM banks) is a :class:`Port` — a pool
  of one or more units, each busy for an *occupancy* after accepting a
  request. A request arriving at time ``t`` starts at
  ``max(t, earliest_free_unit)``; queuing delay therefore emerges naturally
  when a structure is oversubscribed, which is the mechanism behind the
  paper's walk-storm slowdowns.
- Wavefronts are independent timelines that interleave through the
  :class:`WaveScheduler`, a min-heap ordered by each wave's local time. The
  scheduler always advances the globally-oldest runnable wave, so shared
  ports are accessed in (approximately) nondecreasing time order and the
  occupancy model stays consistent.

This style of model reproduces throughput and queuing behaviour — who wins
and by what factor — at a tiny fraction of the cost of a cycle-accurate
simulator, which is the appropriate trade-off for this reproduction (see
DESIGN.md Section 2).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.sim.stats import PortIdleTracker


class Port:
    """A pool of ``units`` service units, each with a fixed occupancy.

    ``request`` returns the service *start* time; callers add their own
    access latency on top. The port optionally records idle-gap statistics
    via an attached :class:`PortIdleTracker`, and busy-interval timelines
    via an attached :class:`~repro.sim.trace.TimelineSampler` (see
    :meth:`attach_timeline`); both cost a single ``is None`` test per
    request when detached.
    """

    __slots__ = (
        "name", "occupancy", "_free_times", "idle_tracker", "busy_cycles",
        "timeline",
    )

    def __init__(
        self,
        name: str,
        units: int = 1,
        occupancy: int = 1,
        track_idle: bool = False,
    ) -> None:
        if units < 1:
            raise ValueError(f"port {name!r} needs at least one unit")
        if occupancy < 0:
            raise ValueError(f"port {name!r} occupancy must be non-negative")
        self.name = name
        self.occupancy = occupancy
        self._free_times: List[int] = [0] * units
        heapq.heapify(self._free_times)
        self.idle_tracker: Optional[PortIdleTracker] = (
            PortIdleTracker() if track_idle else None
        )
        self.busy_cycles = 0
        # Optional TimelineSampler (repro.sim.trace); None costs nothing.
        self.timeline = None

    @property
    def units(self) -> int:
        return len(self._free_times)

    def request(self, now: int, occupancy: Optional[int] = None) -> int:
        """Claim a unit at or after ``now``; returns the start time.

        A per-call ``occupancy`` overrides the port's default (pools with
        variable service times, e.g. page-table walkers, pass the actual
        latency). It is validated like the constructor's: a negative
        override would free a unit before it started, silently corrupting
        the queuing model.
        """

        if occupancy is None:
            occupancy = self.occupancy
        elif occupancy < 0:
            raise ValueError(
                f"port {self.name!r} occupancy override must be "
                f"non-negative, got {occupancy}"
            )
        earliest = self._free_times[0]
        start = now if now > earliest else earliest
        heapq.heapreplace(self._free_times, start + occupancy)
        self.busy_cycles += occupancy
        if self.idle_tracker is not None:
            self.idle_tracker.record_access(start)
        if self.timeline is not None:
            self.timeline.record(start, start + occupancy)
        return start

    def attach_timeline(self, sampler) -> None:
        """Record busy intervals into ``sampler``
        (:class:`repro.sim.trace.TimelineSampler`); pass None to detach."""

        self.timeline = sampler

    def earliest_free(self) -> int:
        return self._free_times[0]

    def reset(self) -> None:
        """Restore the port to its just-constructed state.

        Besides the free-time heap and busy-cycle counter this detaches any
        attached timeline sampler and replaces the idle tracker with a fresh
        one: back-to-back in-process runs (the engine-equivalence battery
        compares two engines inside one process) must each start from
        identical port state, and a stale sampler or tracker would leak the
        first run's history into the second run's distributions.
        """

        units = len(self._free_times)
        self._free_times = [0] * units
        heapq.heapify(self._free_times)
        self.busy_cycles = 0
        if self.idle_tracker is not None:
            self.idle_tracker = PortIdleTracker()
        self.timeline = None


class WaveScheduler:
    """Min-heap scheduler interleaving wave timelines.

    Each entry is ``(time, sequence, payload, step)`` where ``step`` is a
    callable ``step(payload, time) -> Optional[int]`` returning the wave's
    next ready time, or ``None`` when the wave has retired. The ``sequence``
    tiebreaker keeps scheduling deterministic.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, object, Callable]] = []
        self._sequence = 0
        self.now = 0

    def add(self, time: int, payload: object, step: Callable) -> None:
        heapq.heappush(self._heap, (time, self._sequence, payload, step))
        self._sequence += 1

    def __len__(self) -> int:
        return len(self._heap)

    def run(self) -> int:
        """Drive all waves to completion; returns the final time."""

        final = self.now
        while self._heap:
            time, _, payload, step = heapq.heappop(self._heap)
            if time > self.now:
                self.now = time
            next_time = step(payload, time)
            if next_time is None:
                if time > final:
                    final = time
            else:
                if next_time < time:
                    next_time = time
                self.add(next_time, payload, step)
        if self.now > final:
            final = self.now
        return final
