"""Vectorized engine fast path.

:class:`VectorWavefront` is a drop-in replacement for
:class:`~repro.gpu.wavefront.Wavefront` selected via
``SystemConfig.engine == "vectorized"``. It produces **byte-identical**
results to the event engine (enforced by ``tests/sim/test_engine_equivalence.py``)
while running several times faster, by attacking the two measured costs of
the event path:

1. **Compile, don't iterate.** At construction the wave's program iterator
   is materialized once, and every memory op's page-access stream is
   coalesced in bulk: per-op first-touch-unique VPN lists (the coalescer's
   semantics, via C-level ``dict.fromkeys``) and the pure page-offset term
   ``((vpn * 797) % max(1, page_size // 64)) * 64`` are computed for the
   wave's whole access stream up front, instead of per-access dict loops
   at run time. A numpy batch variant (:func:`_coalesce_batch`) exists and
   is equivalence-tested, but the measured win belongs to the C dict path
   at every realistic chunk size.
2. **Flatten the hot path.** Profiling shows the simulator is bound by
   Python call layering (wavefront → translation service → victim caches →
   IOMMU → walker → DRAM), not by algorithmic work. ``step`` executes the
   same per-op state machine with the leaf structures' bodies inlined:
   direct OrderedDict LRU operations, direct heap manipulation for port
   occupancy, and counter increments written straight into the shared
   ``Stats`` dict. Every increment is an integer or dyadic rational, so the
   batched counter arithmetic is exact and order-independent; the two
   order-sensitive ``Distribution`` collectors (walk latency, walker queue
   delay) keep their sequential ``add`` calls in place.

Interleave equivalence: one scheduler step still executes exactly one op,
so the global wave interleave — and therefore every shared-structure state
transition — is identical to the event engine's.

Observability fallback: ports can carry an idle tracker or an attached
timeline sampler (``repro trace``). The flattened path would bypass those
hooks, so whenever any port on the translate/data path is observed the op
is executed through the event-engine code path instead (same results,
event-engine speed). Rare or stateful flows — victim fill flow, DUCATI,
page-walk caches, I-cache fetches, LDS app accesses — always go through
the original methods.
"""

from __future__ import annotations

from collections import OrderedDict
from heapq import heapreplace
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.config import ICacheReplacement
from repro.gpu.instructions import ALU, LDS, LINE, MEM
from repro.gpu.lds import SegmentMode
from repro.gpu.wavefront import IB_LINES, MAX_TIMED_LINES_PER_PAGE, Wavefront
from repro.pagetable.page_table import _FRAME_STRIDE
from repro.tlb.base import TranslationEntry

#: Physical frame space of PageTable._allocate_frame (16M frames).
_FRAME_SPACE = 1 << 24

try:  # numpy is an optional accelerant; the pure-python compile is identical
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI images
    _np = None


# ----------------------------------------------------------------------
# Program compilation
# ----------------------------------------------------------------------

def _packable_keep(tags: List[int], new_tag: int, limit: int) -> List[int]:
    """BaseDeltaCodec.packable_subset with can_pack unrolled.

    Same elimination order as the codec: keep residents within ``limit`` of
    the incoming tag, then drop the farthest (first on ties) until the
    group's spread fits the delta width.
    """

    keep = [tag for tag in tags if -limit < tag - new_tag < limit]
    while keep:
        lo = min(keep)
        hi = max(keep)
        if new_tag < lo:
            lo = new_tag
        elif new_tag > hi:
            hi = new_tag
        if hi - lo < limit:
            break
        far_index = 0
        far_distance = -1
        for index, tag in enumerate(keep):
            distance = tag - new_tag
            if distance < 0:
                distance = -distance
            if distance > far_distance:
                far_distance = distance
                far_index = index
        del keep[far_index]
    return keep


def _coalesce_python(vpn_chunks: Sequence[Sequence[int]], page_div: int):
    """Batch coalescing: first-touch-unique VPNs + page offsets.

    ``dict.fromkeys`` is CPython's C-level first-touch dedup — measured
    faster than both a hand-rolled dict loop and the numpy variant below
    at every realistic chunk size (the numpy round-trips through
    ``fromiter``/``unique``/``tolist`` cost more than they save), so this
    is the compile path and :func:`_coalesce_batch` is kept as an
    equivalence-checked alternative for very wide waves.
    """

    out = []
    for chunk in vpn_chunks:
        unique = list(dict.fromkeys(chunk))
        out.append((unique, [((vpn * 797) % page_div) * 64 for vpn in unique]))
    return out


def _coalesce_batch(vpn_chunks: Sequence[Sequence[int]], page_div: int):
    """Numpy-batched equivalent of :func:`_coalesce_python`.

    The whole access stream is flattened into one int64 array; per-op
    uniques come from ``np.unique(return_index=True)`` re-ordered to
    first-touch order, and the page-offset term is one vectorized
    expression over every unique VPN of the wave.
    """

    if _np is None:
        return _coalesce_python(vpn_chunks, page_div)
    try:
        total = sum(len(chunk) for chunk in vpn_chunks)
        flat = _np.fromiter(
            (vpn for chunk in vpn_chunks for vpn in chunk),
            dtype=_np.int64, count=total,
        )
    except (OverflowError, TypeError, ValueError):
        # VPNs outside int64 (or non-integer test inputs): exact fallback.
        return _coalesce_python(vpn_chunks, page_div)
    uniques: List = []
    pos = 0
    for chunk in vpn_chunks:
        arr = flat[pos:pos + len(chunk)]
        pos += len(chunk)
        values, first_index = _np.unique(arr, return_index=True)
        if len(values) > 1:
            values = values[_np.argsort(first_index, kind="stable")]
        uniques.append(values)
    all_unique = _np.concatenate(uniques) if len(uniques) != 1 else uniques[0]
    all_offsets = ((all_unique * 797) % page_div) * 64
    out = []
    pos = 0
    for values in uniques:
        count = len(values)
        out.append((
            all_unique[pos:pos + count].tolist(),
            all_offsets[pos:pos + count].tolist(),
        ))
        pos += count
    return out


# ----------------------------------------------------------------------
# Per-CU inline context
# ----------------------------------------------------------------------

class _CUContext:
    """Pre-resolved references and counter keys for one CU's fast path.

    Built lazily on first use and cached on the ComputeUnit; everything
    cached here is structurally stable for the system's lifetime (LRU
    dicts are mutated in place, never replaced). Port free-time heaps are
    the one exception — ``Port.reset`` swaps the list — so ports are
    cached as objects and their ``_free_times`` fetched at use.
    """

    def __init__(self, cu) -> None:
        tr = cu.translation
        self.counters = cu.stats._counters
        self.page_size = cu.page_size
        self.sharing_masks = tr.sharing._masks
        self.cu_bit = 1 << tr.cu_id
        self.page_table = tr.page_table

        l1 = tr.l1_tlb
        self.l1_entries = l1._entries
        self.l1_cap = l1.capacity
        self.k_l1_hits = l1.name + ".hits"
        self.k_l1_misses = l1.name + ".misses"
        self.k_l1_evictions = l1.name + ".evictions"
        self.k_l1_fills = l1.name + ".fills"
        self.l1_port = tr.l1_port
        self.l1_occ = tr.l1_port.occupancy
        self.l1_lat = tr.config.tlb.l1_latency

        self.mshr = tr.mshr
        self.in_flight = tr.mshr._in_flight
        self.k_mshr_merges = tr.mshr.name + ".merges"
        self.k_mshr_registered = tr.mshr.name + ".registered"

        self.pt_mappings = tr.page_table._mappings

        # VictimFillFlow (fill order mirrors lookup order by construction)
        fill_flow = tr.fill_flow
        self.fill_flow = fill_flow
        self.ff_counters = fill_flow.stats._counters
        self.ff_ducati = fill_flow.ducati
        sharing = fill_flow._sharing
        self.ff_sharing_masks = None if sharing is None else sharing._masks
        ff_name = fill_flow.name
        self.k_ff_victims = ff_name + ".victims"
        self.k_ff_skip_shared = ff_name + ".lds_skipped_shared"
        self.k_ff_to_l2 = ff_name + ".to_l2_tlb"
        self.ff_keys = {
            label: (
                f"{ff_name}.{label}_installed",
                f"{ff_name}.{label}_installed_with_victim",
                f"{ff_name}.{label}_bypassed",
            )
            for label in ("lds", "icache")
        }

        # Victim-cache probe order, reconstructed from the service's own
        # stage list so the lds_before_icache ablation stays honoured.
        self.stages = [
            (label, tr.lds_tx if label == "lds" else tr.icache_tx)
            for label, _ in tr._lookup_stages
        ]
        lds_tx = tr.lds_tx
        self.lds_tx = lds_tx
        if lds_tx is not None:
            self.lds_segments = lds_tx._segments
            self.lds_num_segments = lds_tx.num_segments
            self.lds_mode = lds_tx.lds.mode
            self.lds_tx_port = lds_tx.tx_port
            self.lds_probe = lds_tx.config.tx_probe_latency
            self.lds_hit = lds_tx.config.tx_hit_latency
            self.k_ldstx_hits = lds_tx.name + ".hits"
            self.k_ldstx_misses = lds_tx.name + ".misses"
            self.lds_counters = lds_tx.stats._counters
            self.lds_index_bits = lds_tx._index_bits
            self.lds_ways = lds_tx.ways
            self.lds_delta_limit = lds_tx.codec._delta_limit
            self.k_ldstx_bypass = lds_tx.name + ".bypass_lds_mode"
            self.k_ldstx_refills = lds_tx.name + ".refills"
            self.k_ldstx_cevictions = lds_tx.name + ".compression_evictions"
            self.k_ldstx_evictions = lds_tx.name + ".evictions"
            self.k_ldstx_fills = lds_tx.name + ".fills"
        icache_tx = tr.icache_tx
        self.icache_tx = icache_tx
        if icache_tx is not None:
            self.ic_num_lines = icache_tx.num_lines
            self.ic_num_sets = icache_tx.num_sets
            self.ic_sets = icache_tx._sets
            self.ic_tx_port = icache_tx.tx_port
            txc = icache_tx.tx_config
            self.ic_probe = txc.tx_probe_latency
            self.ic_hit = txc.tx_hit_latency
            self.ic_tag_miss = (
                txc.tx_tag_latency + txc.tx_serial_compare_latency
                + txc.mux_latency + txc.extra_wire_latency
            )
            self.k_ictx_hits = icache_tx.name + ".tx_hits"
            self.k_ictx_misses = icache_tx.name + ".tx_misses"
            self.ic_counters = icache_tx.stats._counters
            self.ic_index_bits = icache_tx._index_bits
            self.ic_ways = txc.tx_per_line
            self.ic_delta_limit = icache_tx.codec._delta_limit
            self.ic_instruction_aware = (
                txc.replacement is ICacheReplacement.INSTRUCTION_AWARE
            )
            self.k_ictx_bypass = icache_tx.name + ".tx_bypass_ic_mode"
            self.k_ictx_ievicted = icache_tx.name + ".instructions_evicted_by_tx"
            self.k_ictx_refills = icache_tx.name + ".tx_refills"
            self.k_ictx_cevictions = icache_tx.name + ".tx_compression_evictions"
            self.k_ictx_evictions = icache_tx.name + ".tx_evictions"
            self.k_ictx_fills = icache_tx.name + ".tx_fills"

        l2 = tr.l2_tlb
        self.l2_perfect = l2.perfect
        self.l2_sets = l2._sets
        self.l2_num_sets = l2.num_sets
        self.l2_ways = l2.ways
        self.k_l2_hits = l2.name + ".hits"
        self.k_l2_misses = l2.name + ".misses"
        self.k_l2_evictions = l2.name + ".evictions"
        self.k_l2_fills = l2.name + ".fills"
        self.l2_port = tr.l2_tlb_port
        self.l2_occ = tr.l2_tlb_port.occupancy
        self.l2_lat = tr.config.tlb.l2_latency
        self.ducati = tr.ducati

        io = tr.iommu
        self.iommu = io
        self.io_overhead = io.config.request_overhead
        self.io_l1_entries = io.l1_tlb._entries
        self.io_l1_cap = io.l1_tlb.capacity
        self.io_l1_lat = io.config.l1_tlb_latency
        self.k_io_l1_hits = io.l1_tlb.name + ".hits"
        self.k_io_l1_misses = io.l1_tlb.name + ".misses"
        self.k_io_l1_evictions = io.l1_tlb.name + ".evictions"
        self.k_io_l1_fills = io.l1_tlb.name + ".fills"
        self.io_l2_sets = io.l2_tlb._sets
        self.io_l2_num_sets = io.l2_tlb.num_sets
        self.io_l2_ways = io.l2_tlb.ways
        self.io_l2_lat = io.config.l2_tlb_latency
        self.k_io_l2_hits = io.l2_tlb.name + ".hits"
        self.k_io_l2_misses = io.l2_tlb.name + ".misses"
        self.k_io_l2_evictions = io.l2_tlb.name + ".evictions"
        self.k_io_l2_fills = io.l2_tlb.name + ".fills"
        # The device L2 TLB is never "perfect" in the assembled system; the
        # inline walk path assumes real lookups, so bail to the event path
        # if a test wires it otherwise. Likewise the subregion-coalescing
        # store (a "fallback"-support plugin scheme) is only modelled by
        # the event-exact slow path — never mispredict, always fall back.
        self.supported = not io.l2_tlb.perfect and tr.subregion is None

        walker = io.walker
        pwc = walker.pwc
        self.pwc = pwc
        self.pwc_counters = pwc.stats._counters
        self.pwc_levels = pwc.levels
        self.pwc_pgd = pwc._pgd._entries
        self.pwc_pgd_cap = pwc._pgd.capacity
        self.pwc_pud = pwc._pud._entries
        self.pwc_pud_cap = pwc._pud.capacity
        self.pwc_pmd = pwc._pmd._entries
        self.pwc_pmd_cap = pwc._pmd.capacity
        self.pwc_pgd_shift = 9 * (pwc.levels - 1)
        self.pwc_pud_shift = 9 * (pwc.levels - 2)
        self.pwc_pmd_shift = 9 * (pwc.levels - 3)
        self.k_pwc_pmd = pwc.name + ".pmd_hits"
        self.k_pwc_pud = pwc.name + ".pud_hits"
        self.k_pwc_pgd = pwc.name + ".pgd_hits"
        self.k_pwc_miss = pwc.name + ".misses"
        self.pwc_latency = io.config.pwc_latency
        self.walk_latency_dist = walker.walk_latency
        self.k_walker_pte = walker.name + ".pte_accesses"
        self.k_walker_walks = walker.name + ".walks"
        self.k_walker_skipped = walker.name + ".levels_skipped"
        self.walker_pool = io.walker_pool
        self.queue_delay_dist = io.queue_delay
        self.k_io_queue = io.name + ".walk_queue_cycles"
        self.k_io_walks = io.name + ".walks"

        dram = walker.shared_l2.dram
        self.dram_busy = dram._busy_until
        self.dram_open = dram._open_row
        self.dram_banks = dram._num_banks
        self.dram_lat = dram.config.access_latency
        self.dram_occ = dram.config.bank_occupancy
        self.dram_counters = dram.stats._counters
        self.k_dram_reads = dram.name + ".reads"
        self.k_dram_writes = dram.name + ".writes"
        self.k_dram_activates = dram.name + ".activates"
        self.k_dram_queue = dram.name + ".queue_cycles"
        # walk_addresses is pure in (vmid, vpn); memoized on the (shared)
        # page table so every CU benefits.
        memo = getattr(tr.page_table, "_vec_walk_memo", None)
        if memo is None:
            memo = {}
            tr.page_table._vec_walk_memo = memo
        self.walk_memo = memo

        mem = cu.memory
        self.l1c_sets = mem.l1._sets
        self.l1c_num_sets = mem.l1.num_sets
        self.l1c_ways = mem.l1.effective_ways
        self.l1c_line = mem.l1.line_bytes
        self.l1c_lat = mem.config.l1_latency
        self.k_l1c_hits = mem.l1.name + ".hits"
        self.k_l1c_misses = mem.l1.name + ".misses"
        self.k_l1c_evictions = mem.l1.name + ".evictions"
        shared = mem.shared_l2
        self.sh_port = shared.port
        self.sh_occ = shared.port.occupancy
        self.l2c_sets = shared.cache._sets
        self.l2c_num_sets = shared.cache.num_sets
        self.l2c_ways = shared.cache.effective_ways
        self.l2c_line = shared.cache.line_bytes
        self.l2c_lat = shared.config.l2_latency
        self.k_l2c_hits = shared.cache.name + ".hits"
        self.k_l2c_misses = shared.cache.name + ".misses"
        self.k_l2c_evictions = shared.cache.name + ".evictions"

        guards = [tr.l1_port, tr.l2_tlb_port, shared.port, io.walker_pool]
        if lds_tx is not None:
            guards.append(lds_tx.tx_port)
        if icache_tx is not None:
            guards.append(icache_tx.tx_port)
        self.guard_ports = guards

    def observed(self) -> bool:
        """True when any fast-path port carries telemetry hooks."""

        for port in self.guard_ports:
            if port.idle_tracker is not None or port.timeline is not None:
                return True
        return False


# ----------------------------------------------------------------------
# The wavefront
# ----------------------------------------------------------------------

class VectorWavefront(Wavefront):
    """Event-equivalent wavefront with a compiled, flattened hot path."""

    __slots__ = ("_records", "_index", "_simd_port")

    def __init__(self, cu, simd_index: int, workgroup, ops: Iterator[tuple]) -> None:
        super().__init__(cu, simd_index, workgroup, ops)
        self._simd_port = cu.simd_ports[simd_index]
        self._records = self._compile(self._ops)
        self._index = 0

    def _compile(self, ops: Iterator[tuple]) -> List[tuple]:
        records: List = []
        mem_slots: List[int] = []
        mem_ops: List[tuple] = []
        for op in ops:
            if op[0] == MEM:
                mem_slots.append(len(records))
                mem_ops.append(op)
                records.append(None)
            else:
                records.append(op)
        if mem_ops:
            page_div = max(1, self.cu.page_size // 64)
            coalesced = _coalesce_python([op[1] for op in mem_ops], page_div)
            for slot, op, (unique, offsets) in zip(mem_slots, mem_ops, coalesced):
                _, vpns, instr_count, is_write, lines_per_page = op
                timed = (
                    lines_per_page
                    if lines_per_page < MAX_TIMED_LINES_PER_PAGE
                    else MAX_TIMED_LINES_PER_PAGE
                )
                records[slot] = (
                    MEM, unique, offsets, len(vpns), instr_count,
                    bool(is_write), timed, lines_per_page - timed,
                )
        return records

    # The WaveScheduler step callback.
    def step(self, now: int) -> Optional[int]:
        index = self._index
        records = self._records
        if index >= len(records):
            self.workgroup.wave_done(self, now)
            return None
        self._index = index + 1
        rec = records[index]
        kind = rec[0]
        cu = self.cu
        if kind == MEM:
            ctx = getattr(cu, "_vector_ctx", None)
            if ctx is None:
                ctx = _CUContext(cu)
                cu._vector_ctx = ctx
            simd = self._simd_port
            if (
                ctx.supported
                and simd.idle_tracker is None and simd.timeline is None
                and not ctx.observed()
            ):
                done = self._mem_fast(rec, now, ctx)
            else:
                done = self._mem_slow(rec, now)
        elif kind == ALU:
            count = rec[1]
            simd = self._simd_port
            if simd.idle_tracker is None and simd.timeline is None:
                free_times = simd._free_times
                root = free_times[0]
                start = now if now > root else root
                heapreplace(free_times, start + count)
                simd.busy_cycles += count
            else:
                start = simd.request(now, count)
            cu.stats._counters["instructions"] += count
            done = start + count
        elif kind == LINE:
            line_id = rec[1]
            ib = self._ib
            if line_id in ib:
                cu.stats._counters["ib.hits"] += 1
                done = now
            else:
                cu.stats._counters["ib.misses"] += 1
                done = cu.icache.fetch(self._kernel_code_base + line_id, now)
                ib.append(line_id)
                if len(ib) > IB_LINES:
                    ib.pop(0)
        elif kind == LDS:
            count = rec[1]
            simd = self._simd_port
            if simd.idle_tracker is None and simd.timeline is None:
                free_times = simd._free_times
                root = free_times[0]
                start = now if now > root else root
                heapreplace(free_times, start + count)
                simd.busy_cycles += count
            else:
                start = simd.request(now, count)
            cu.stats._counters["instructions"] += count
            done = start
            app_access = cu.lds.app_access
            for _ in range(count):
                finished = app_access(done)
                if finished > done:
                    done = finished
        else:
            raise ValueError(f"unknown op kind {kind!r}")
        tracer = cu.tracer
        if tracer is not None:
            tracer.record(
                cu.cu_id, self.simd_index, self.workgroup.kernel_name,
                self.workgroup.wg_id, kind, now, done,
            )
        return done

    # ------------------------------------------------------------------
    # Event-path fallback (observed ports): same results, original code.
    # ------------------------------------------------------------------

    def _mem_slow(self, rec: tuple, now: int) -> int:
        _, unique, offsets, raw, instr_count, is_write, timed, bulk_lines = rec
        cu = self.cu
        start = cu.simd_ports[self.simd_index].request(now, instr_count)
        stats = cu.stats
        stats.add("instructions", instr_count)
        stats.add("mem_instructions", instr_count)
        # The coalescer ran at compile time; report its stats identically.
        stats.add("coalescer.raw_accesses", raw)
        stats.add("coalescer.coalesced_accesses", len(unique))
        if raw > len(unique):
            stats.add("coalescer.merged", raw - len(unique))
        page_size = cu.page_size
        worst = start + instr_count
        translate = cu.translation.translate
        access = cu.memory.access_ex
        for position, vpn in enumerate(unique):
            tx_done, pfn = translate(vpn, start)
            base_addr = pfn * page_size + offsets[position]
            done = tx_done
            missed_l2 = False
            for line_index in range(timed):
                finished, level = access(
                    base_addr + line_index * 64, start, is_write
                )
                chained = tx_done + (finished - start)
                if chained > done:
                    done = chained
                if level == "dram":
                    missed_l2 = True
            if bulk_lines and missed_l2:
                cu.note_bulk_dram(bulk_lines, is_write)
            if done > worst:
                worst = done
        cu.translation.note_locality_hits((instr_count - len(unique)) // 8)
        return worst

    # ------------------------------------------------------------------
    # Flattened hot path. Each block mirrors a named method; the
    # equivalence battery asserts byte-identity against those sources.
    # ------------------------------------------------------------------

    def _mem_fast(self, rec: tuple, now: int, ctx: _CUContext) -> int:
        _, unique, offsets, raw, instr_count, is_write, timed, bulk_lines = rec
        counters = ctx.counters
        simd = self._simd_port

        # Wavefront._run_mem: issue + coalescer accounting
        free_times = simd._free_times
        root = free_times[0]
        start = now if now > root else root
        heapreplace(free_times, start + instr_count)
        simd.busy_cycles += instr_count
        counters["instructions"] += instr_count
        counters["mem_instructions"] += instr_count
        num_unique = len(unique)
        counters["coalescer.raw_accesses"] += raw
        counters["coalescer.coalesced_accesses"] += num_unique
        if raw > num_unique:
            counters["coalescer.merged"] += raw - num_unique

        page_size = ctx.page_size
        vmid = self.cu.translation.vmid
        masks = ctx.sharing_masks
        cu_bit = ctx.cu_bit
        l1_port = ctx.l1_port
        l1_occ = ctx.l1_occ
        l1_lat = ctx.l1_lat
        l1_entries = ctx.l1_entries
        in_flight = ctx.in_flight
        k_l1_hits = ctx.k_l1_hits
        pt_mappings = ctx.pt_mappings

        l1c_sets = ctx.l1c_sets
        l1c_num_sets = ctx.l1c_num_sets
        l1c_ways = ctx.l1c_ways
        l1c_line = ctx.l1c_line
        l1c_lat = ctx.l1c_lat
        k_l1c_hits = ctx.k_l1c_hits
        k_l1c_misses = ctx.k_l1c_misses
        k_l1c_evictions = ctx.k_l1c_evictions
        sh_port = ctx.sh_port
        sh_occ = ctx.sh_occ
        l2c_sets = ctx.l2c_sets
        l2c_num_sets = ctx.l2c_num_sets
        l2c_ways = ctx.l2c_ways
        l2c_line = ctx.l2c_line
        l2c_lat = ctx.l2c_lat
        dram_counters = ctx.dram_counters
        dram_busy = ctx.dram_busy
        dram_open = ctx.dram_open
        dram_banks = ctx.dram_banks
        dram_lat = ctx.dram_lat
        dram_occ = ctx.dram_occ
        k_dram_line = ctx.k_dram_writes if is_write else ctx.k_dram_reads

        worst = start + instr_count
        for position in range(num_unique):
            vpn = unique[position]

            # TranslationService.translate(vpn, start)
            counters["translations"] += 1
            masks[vpn] = masks.get(vpn, 0) | cu_bit
            key = (vmid, 0, vpn)
            free_times = l1_port._free_times
            root = free_times[0]
            port_start = start if start > root else root
            heapreplace(free_times, port_start + l1_occ)
            l1_port.busy_cycles += l1_occ
            latency = (port_start - start) + l1_lat
            entry = l1_entries.get(key)
            if entry is not None:
                l1_entries.move_to_end(key)
                counters[k_l1_hits] += 1
                tx_done = start + latency
                pfn = entry.pfn
            else:
                counters[ctx.k_l1_misses] += 1
                done_at = in_flight.get(key)
                if done_at is not None and done_at > start + latency:
                    counters[ctx.k_mshr_merges] += 1
                    tx_done = done_at
                    # PageTable.translate(vmid, vpn)
                    pt_key = (vmid, vpn)
                    pfn = pt_mappings.get(pt_key)
                    if pfn is None:
                        page_table = ctx.page_table
                        frame = page_table._next_frame
                        page_table._next_frame = frame + 1
                        pfn = (frame * _FRAME_STRIDE) % _FRAME_SPACE
                        pt_mappings[pt_key] = pfn
                else:
                    tx_done, pfn = self._miss_fast(ctx, key, vpn, start, latency)

            base_addr = pfn * page_size + offsets[position]
            done = tx_done
            missed_l2 = False
            for line_index in range(timed):
                # MemoryHierarchy.access_ex(addr, start, is_write)
                addr = base_addr + line_index * 64
                line_addr = addr // l1c_line
                cache_set = l1c_sets[line_addr % l1c_num_sets]
                if line_addr in cache_set:
                    cache_set.move_to_end(line_addr)
                    counters[k_l1c_hits] += 1
                    finished = start + l1c_lat
                else:
                    counters[k_l1c_misses] += 1
                    if len(cache_set) >= l1c_ways:
                        cache_set.popitem(last=False)
                        counters[k_l1c_evictions] += 1
                    cache_set[line_addr] = True
                    at_l2 = start + l1c_lat
                    free_times = sh_port._free_times
                    root = free_times[0]
                    port_start = at_l2 if at_l2 > root else root
                    heapreplace(free_times, port_start + sh_occ)
                    sh_port.busy_cycles += sh_occ
                    line2 = addr // l2c_line
                    cache_set = l2c_sets[line2 % l2c_num_sets]
                    if line2 in cache_set:
                        cache_set.move_to_end(line2)
                        counters[ctx.k_l2c_hits] += 1
                        finished = port_start + l2c_lat
                    else:
                        counters[ctx.k_l2c_misses] += 1
                        if len(cache_set) >= l2c_ways:
                            cache_set.popitem(last=False)
                            counters[ctx.k_l2c_evictions] += 1
                        cache_set[line2] = True
                        # DRAM.access(addr, port_start + l2_latency)
                        at_dram = port_start + l2c_lat
                        bank = (
                            (addr >> 6) ^ (addr >> 12) ^ (addr >> 18)
                        ) % dram_banks
                        row = addr >> 14
                        busy = dram_busy[bank]
                        dram_start = at_dram if at_dram > busy else busy
                        access_lat = dram_lat
                        if dram_open[bank] != row:
                            dram_open[bank] = row
                            dram_counters[ctx.k_dram_activates] += 1
                            access_lat += dram_occ
                        dram_busy[bank] = dram_start + dram_occ
                        dram_counters[k_dram_line] += 1
                        if dram_start > at_dram:
                            dram_counters[ctx.k_dram_queue] += dram_start - at_dram
                        finished = dram_start + access_lat
                        missed_l2 = True
                chained = tx_done + (finished - start)
                if chained > done:
                    done = chained
            if bulk_lines and missed_l2:
                # ComputeUnit.note_bulk_dram
                dram_counters[k_dram_line] += bulk_lines
                dram_counters[ctx.k_dram_activates] += bulk_lines / 16.0
            if done > worst:
                worst = done
        # TranslationService.note_locality_hits
        locality = (instr_count - num_unique) // 8
        if locality > 0:
            counters[k_l1_hits] += locality
        return worst

    def _miss_fast(
        self, ctx: _CUContext, key: tuple, vpn: int, anchor: int, latency: int
    ) -> Tuple[int, int]:
        """TranslationService._miss_path + mshr.register, flattened."""

        counters = ctx.counters
        entry = None
        for label, victim_cache in ctx.stages:
            if label == "lds":
                # LDSTxCache.lookup
                segment_index = vpn % ctx.lds_num_segments
                port = ctx.lds_tx_port
                free_times = port._free_times
                root = free_times[0]
                port_start = anchor if anchor > root else root
                heapreplace(free_times, port_start + port.occupancy)
                port.busy_cycles += port.occupancy
                queue = port_start - anchor
                segment = ctx.lds_segments.get(segment_index)
                entry = None if segment is None else segment.get(key)
                if entry is None:
                    counters[ctx.k_ldstx_misses] += 1
                    latency += queue + ctx.lds_probe
                else:
                    del segment[key]
                    if not segment:
                        del ctx.lds_segments[segment_index]
                        ctx.lds_mode[segment_index] = SegmentMode.FREE
                    victim_cache._entry_count -= 1
                    counters[ctx.k_ldstx_hits] += 1
                    latency += queue + ctx.lds_hit
                    counters["tx_serviced_by.lds"] += 1
            else:
                # ReconfigurableICache.tx_lookup
                port = ctx.ic_tx_port
                free_times = port._free_times
                root = free_times[0]
                port_start = anchor if anchor > root else root
                heapreplace(free_times, port_start + port.occupancy)
                port.busy_cycles += port.occupancy
                queue = port_start - anchor
                line_index = vpn % ctx.ic_num_lines
                cache_line = ctx.ic_sets[line_index % ctx.ic_num_sets][
                    line_index // ctx.ic_num_sets
                ]
                if not cache_line.is_tx or not cache_line.tx_entries:
                    counters[ctx.k_ictx_misses] += 1
                    latency += queue + ctx.ic_probe
                    entry = None
                else:
                    entry = cache_line.tx_entries.get(key)
                    if entry is None:
                        counters[ctx.k_ictx_misses] += 1
                        latency += queue + ctx.ic_tag_miss
                    else:
                        del cache_line.tx_entries[key]
                        victim_cache._tx_entry_count -= 1
                        if not cache_line.tx_entries:
                            cache_line.make_invalid()
                        counters[ctx.k_ictx_hits] += 1
                        latency += queue + ctx.ic_hit
                        counters["tx_serviced_by.icache"] += 1
            if entry is not None:
                self._promote_fast(ctx, entry, anchor)
                completion = anchor + latency
                self._register_fast(ctx, key, completion, anchor)
                return completion, entry.pfn

        # Shared L2 TLB
        port = ctx.l2_port
        free_times = port._free_times
        root = free_times[0]
        port_start = anchor if anchor > root else root
        heapreplace(free_times, port_start + ctx.l2_occ)
        port.busy_cycles += ctx.l2_occ
        latency += (port_start - anchor) + ctx.l2_lat
        if ctx.l2_perfect:
            counters[ctx.k_l2_hits] += 1
            entry = TranslationEntry(vpn=vpn, pfn=vpn, vmid=key[0], vrf_id=key[1])
        else:
            tlb_set = ctx.l2_sets[vpn % ctx.l2_num_sets]
            entry = tlb_set.get(key)
            if entry is None:
                counters[ctx.k_l2_misses] += 1
            else:
                tlb_set.move_to_end(key)
                counters[ctx.k_l2_hits] += 1
        if entry is not None:
            counters["tx_serviced_by.l2_tlb"] += 1
            self._promote_fast(ctx, entry, anchor)
            completion = anchor + latency
            self._register_fast(ctx, key, completion, anchor)
            return completion, entry.pfn

        if ctx.ducati is not None:
            entry, stage = ctx.ducati.lookup(key, anchor)
            latency += stage
            if entry is not None:
                counters["tx_serviced_by.ducati"] += 1
                self._promote_fast(ctx, entry, anchor)
                self._l2_insert_fast(ctx, entry)
                completion = anchor + latency
                self._register_fast(ctx, key, completion, anchor)
                return completion, entry.pfn

        # IOMMU.translate(vmid, vpn, anchor)
        vmid = key[0]
        io_latency = ctx.io_overhead
        io_l1 = ctx.io_l1_entries
        entry = io_l1.get(key)
        if entry is not None:
            io_l1.move_to_end(key)
            counters[ctx.k_io_l1_hits] += 1
            stage = io_latency + ctx.io_l1_lat
        else:
            counters[ctx.k_io_l1_misses] += 1
            io_latency += ctx.io_l1_lat
            tlb_set = ctx.io_l2_sets[vpn % ctx.io_l2_num_sets]
            entry = tlb_set.get(key)
            if entry is not None:
                tlb_set.move_to_end(key)
                counters[ctx.k_io_l2_hits] += 1
                # iommu.l1_tlb.insert(entry); eviction victim is discarded
                if key in io_l1:
                    io_l1[key] = entry
                    io_l1.move_to_end(key)
                else:
                    if len(io_l1) >= ctx.io_l1_cap:
                        io_l1.popitem(last=False)
                        counters[ctx.k_io_l1_evictions] += 1
                    io_l1[key] = entry
                    counters[ctx.k_io_l1_fills] += 1
                stage = io_latency + ctx.io_l2_lat
            else:
                counters[ctx.k_io_l2_misses] += 1
                io_latency += ctx.io_l2_lat
                # PageWalker.walk(vmid, vpn, anchor)
                # SplitPageWalkCache.lookup: deepest cache first.
                pwc_counters = ctx.pwc_counters
                levels = ctx.pwc_levels
                skipped = 0
                if levels >= 4:
                    pwc_key = (vmid, vpn >> ctx.pwc_pmd_shift)
                    cache = ctx.pwc_pmd
                    if pwc_key in cache:
                        cache.move_to_end(pwc_key)
                        pwc_counters[ctx.k_pwc_pmd] += 1
                        skipped = 3
                if not skipped and levels >= 3:
                    pwc_key = (vmid, vpn >> ctx.pwc_pud_shift)
                    cache = ctx.pwc_pud
                    if pwc_key in cache:
                        cache.move_to_end(pwc_key)
                        pwc_counters[ctx.k_pwc_pud] += 1
                        skipped = 2
                if not skipped:
                    pwc_key = (vmid, vpn >> ctx.pwc_pgd_shift)
                    cache = ctx.pwc_pgd
                    if pwc_key in cache:
                        cache.move_to_end(pwc_key)
                        pwc_counters[ctx.k_pwc_pgd] += 1
                        skipped = 1
                    else:
                        pwc_counters[ctx.k_pwc_miss] += 1
                walk_latency = ctx.pwc_latency
                memo_key = (vmid, vpn)
                addresses = ctx.walk_memo.get(memo_key)
                if addresses is None:
                    addresses = ctx.page_table.walk_addresses(vmid, vpn)
                    ctx.walk_memo[memo_key] = addresses
                dram_counters = ctx.dram_counters
                dram_busy = ctx.dram_busy
                dram_open = ctx.dram_open
                for address in addresses[skipped:]:
                    # DRAM.access(address, anchor), read
                    bank = (
                        (address >> 6) ^ (address >> 12) ^ (address >> 18)
                    ) % ctx.dram_banks
                    row = address >> 14
                    busy = dram_busy[bank]
                    dram_start = anchor if anchor > busy else busy
                    access_lat = ctx.dram_lat
                    if dram_open[bank] != row:
                        dram_open[bank] = row
                        dram_counters[ctx.k_dram_activates] += 1
                        access_lat += ctx.dram_occ
                    dram_busy[bank] = dram_start + ctx.dram_occ
                    dram_counters[ctx.k_dram_reads] += 1
                    if dram_start > anchor:
                        dram_counters[ctx.k_dram_queue] += dram_start - anchor
                    walk_latency += (dram_start + access_lat) - anchor
                    counters[ctx.k_walker_pte] += 1
                # SplitPageWalkCache.fill
                cache = ctx.pwc_pgd
                pwc_key = (vmid, vpn >> ctx.pwc_pgd_shift)
                if pwc_key in cache:
                    cache.move_to_end(pwc_key)
                else:
                    if len(cache) >= ctx.pwc_pgd_cap:
                        cache.popitem(last=False)
                    cache[pwc_key] = True
                if levels >= 3:
                    cache = ctx.pwc_pud
                    pwc_key = (vmid, vpn >> ctx.pwc_pud_shift)
                    if pwc_key in cache:
                        cache.move_to_end(pwc_key)
                    else:
                        if len(cache) >= ctx.pwc_pud_cap:
                            cache.popitem(last=False)
                        cache[pwc_key] = True
                if levels >= 4:
                    cache = ctx.pwc_pmd
                    pwc_key = (vmid, vpn >> ctx.pwc_pmd_shift)
                    if pwc_key in cache:
                        cache.move_to_end(pwc_key)
                    else:
                        if len(cache) >= ctx.pwc_pmd_cap:
                            cache.popitem(last=False)
                        cache[pwc_key] = True
                # PageTable.translate(vmid, vpn)
                pt_key = (vmid, vpn)
                pt_mappings = ctx.pt_mappings
                pfn = pt_mappings.get(pt_key)
                if pfn is None:
                    page_table = ctx.page_table
                    frame = page_table._next_frame
                    page_table._next_frame = frame + 1
                    pfn = (frame * _FRAME_STRIDE) % _FRAME_SPACE
                    pt_mappings[pt_key] = pfn
                counters[ctx.k_walker_walks] += 1
                counters[ctx.k_walker_skipped] += skipped
                # Distribution.add(walk_latency)
                dist = ctx.walk_latency_dist
                dist._count += 1
                dist._total += walk_latency
                samples = dist._samples
                if len(samples) < dist._max_samples:
                    samples.append(walk_latency)
                else:
                    dist._overflow_count += 1
                    if dist._overflow_count % 2 == 0:
                        samples[
                            (dist._overflow_count // 2) % dist._max_samples
                        ] = walk_latency
                # walker_pool.request(anchor, walk_latency)
                pool = ctx.walker_pool
                free_times = pool._free_times
                root = free_times[0]
                pool_start = anchor if anchor > root else root
                heapreplace(free_times, pool_start + walk_latency)
                pool.busy_cycles += walk_latency
                queue = pool_start - anchor
                if queue:
                    counters[ctx.k_io_queue] += queue
                # Distribution.add(queue)
                dist = ctx.queue_delay_dist
                dist._count += 1
                dist._total += queue
                samples = dist._samples
                if len(samples) < dist._max_samples:
                    samples.append(queue)
                else:
                    dist._overflow_count += 1
                    if dist._overflow_count % 2 == 0:
                        samples[
                            (dist._overflow_count // 2) % dist._max_samples
                        ] = queue
                counters[ctx.k_io_walks] += 1
                io_latency += queue + walk_latency
                entry = TranslationEntry(vpn=vpn, pfn=pfn, vmid=vmid, vrf_id=key[1])
                if key in io_l1:
                    io_l1[key] = entry
                    io_l1.move_to_end(key)
                else:
                    if len(io_l1) >= ctx.io_l1_cap:
                        io_l1.popitem(last=False)
                        counters[ctx.k_io_l1_evictions] += 1
                    io_l1[key] = entry
                    counters[ctx.k_io_l1_fills] += 1
                # iommu.l2_tlb.insert(entry)
                tlb_set = ctx.io_l2_sets[vpn % ctx.io_l2_num_sets]
                if key in tlb_set:
                    tlb_set[key] = entry
                    tlb_set.move_to_end(key)
                else:
                    if len(tlb_set) >= ctx.io_l2_ways:
                        tlb_set.popitem(last=False)
                        counters[ctx.k_io_l2_evictions] += 1
                    tlb_set[key] = entry
                    counters[ctx.k_io_l2_fills] += 1
                stage = io_latency

        latency += stage
        counters["tx_serviced_by.iommu"] += 1
        # Order matters: the event path inserts into the shared L2 TLB
        # *before* promoting (the promotion's victim fill flow can touch
        # the same L2 set).
        self._l2_insert_fast(ctx, entry)
        self._promote_fast(ctx, entry, anchor)
        completion = anchor + latency
        self._register_fast(ctx, key, completion, anchor)
        return completion, entry.pfn

    # -- small inlined building blocks ---------------------------------

    @classmethod
    def _promote_fast(cls, ctx: _CUContext, entry, anchor: int) -> None:
        """TranslationService._promote: L1 insert, victim into fill flow."""

        counters = ctx.counters
        key = (entry.vmid, entry.vrf_id, entry.vpn)
        l1_entries = ctx.l1_entries
        if key in l1_entries:
            l1_entries[key] = entry
            l1_entries.move_to_end(key)
            return
        victim = None
        if len(l1_entries) >= ctx.l1_cap:
            _, victim = l1_entries.popitem(last=False)
            counters[ctx.k_l1_evictions] += 1
        l1_entries[key] = entry
        counters[ctx.k_l1_fills] += 1
        if victim is not None:
            cls._fill_flow_fast(ctx, victim)

    @classmethod
    def _fill_flow_fast(cls, ctx: _CUContext, candidate) -> None:
        """VictimFillFlow.fill: LDS → I-cache → L2 TLB (Figure 12)."""

        ff_counters = ctx.ff_counters
        ff_counters[ctx.k_ff_victims] += 1
        sharing_masks = ctx.ff_sharing_masks
        for label, _victim_cache in ctx.stages:
            if label == "lds":
                if sharing_masks is not None:
                    # PageSharingTracker.is_shared(candidate.vpn)
                    mask = sharing_masks.get(candidate.vpn, 0)
                    if mask & (mask - 1):
                        ff_counters[ctx.k_ff_skip_shared] += 1
                        continue
                accepted, displaced = cls._lds_fill_fast(ctx, candidate)
            else:
                accepted, displaced = cls._ic_fill_fast(ctx, candidate)
            installed, installed_with_victim, bypassed = ctx.ff_keys[label]
            if accepted:
                if displaced is None:
                    ff_counters[installed] += 1
                    return
                ff_counters[installed_with_victim] += 1
                candidate = displaced
            else:
                ff_counters[bypassed] += 1
        ff_counters[ctx.k_ff_to_l2] += 1
        l2_victim = cls._l2_insert_fast(ctx, candidate)
        if l2_victim is not None and ctx.ff_ducati is not None:
            ctx.ff_ducati.fill(l2_victim)

    @staticmethod
    def _lds_fill_fast(ctx: _CUContext, entry) -> Tuple[bool, object]:
        """LDSTxCache.fill(entry); returns (accepted, displaced)."""

        counters = ctx.lds_counters
        vpn = entry.vpn
        segment_index = vpn % ctx.lds_num_segments
        mode = ctx.lds_mode
        if mode[segment_index] == SegmentMode.LDS:
            counters[ctx.k_ldstx_bypass] += 1
            return False, None
        segments = ctx.lds_segments
        segment = segments.get(segment_index)
        if segment is None:
            segment = OrderedDict()
            segments[segment_index] = segment
            mode[segment_index] = SegmentMode.TX
        key = (entry.vmid, entry.vrf_id, vpn)
        if key in segment:
            segment[key] = entry
            segment.move_to_end(key)
            counters[ctx.k_ldstx_refills] += 1
            return True, None

        lds_tx = ctx.lds_tx
        victim = None
        index_bits = ctx.lds_index_bits
        new_tag = ((vpn >> index_bits) << 4) | (entry.vmid << 2) | entry.vrf_id
        if segment:
            resident_keys = []
            resident_tags = []
            for resident_key, resident in segment.items():
                resident_keys.append(resident_key)
                resident_tags.append(
                    ((resident.vpn >> index_bits) << 4)
                    | (resident.vmid << 2) | resident.vrf_id
                )
            packable = set(
                _packable_keep(resident_tags, new_tag, ctx.lds_delta_limit)
            )
            for position, resident_key in enumerate(resident_keys):
                if resident_tags[position] not in packable:
                    victim = segment.pop(resident_key)
                    lds_tx._entry_count -= 1
                    counters[ctx.k_ldstx_cevictions] += 1
                    break
        if victim is None and len(segment) >= ctx.lds_ways:
            _, victim = segment.popitem(last=False)
            lds_tx._entry_count -= 1
            counters[ctx.k_ldstx_evictions] += 1

        segment[key] = entry
        lds_tx._entry_count += 1
        if lds_tx._entry_count > lds_tx.peak_entries:
            lds_tx.peak_entries = lds_tx._entry_count
        counters[ctx.k_ldstx_fills] += 1
        return True, victim

    @staticmethod
    def _ic_fill_fast(ctx: _CUContext, entry) -> Tuple[bool, object]:
        """ReconfigurableICache.tx_fill(entry); returns (accepted, displaced)."""

        counters = ctx.ic_counters
        vpn = entry.vpn
        line_index = vpn % ctx.ic_num_lines
        cache_line = ctx.ic_sets[line_index % ctx.ic_num_sets][
            line_index // ctx.ic_num_sets
        ]
        if cache_line.valid and not cache_line.is_tx:
            if ctx.ic_instruction_aware:
                counters[ctx.k_ictx_bypass] += 1
                return False, None
            cache_line.make_invalid()
            counters[ctx.k_ictx_ievicted] += 1
        if not cache_line.is_tx:
            cache_line.valid = True
            cache_line.is_tx = True
            cache_line.tx_entries = OrderedDict()
        tx_entries = cache_line.tx_entries
        key = (entry.vmid, entry.vrf_id, vpn)
        if key in tx_entries:
            tx_entries[key] = entry
            tx_entries.move_to_end(key)
            counters[ctx.k_ictx_refills] += 1
            return True, None

        icache_tx = ctx.icache_tx
        victim = None
        index_bits = ctx.ic_index_bits
        new_tag = ((vpn >> index_bits) << 4) | (entry.vmid << 2) | entry.vrf_id
        if tx_entries:
            resident_keys = []
            resident_tags = []
            for resident_key, resident in tx_entries.items():
                resident_keys.append(resident_key)
                resident_tags.append(
                    ((resident.vpn >> index_bits) << 4)
                    | (resident.vmid << 2) | resident.vrf_id
                )
            packable = set(
                _packable_keep(resident_tags, new_tag, ctx.ic_delta_limit)
            )
            for position, resident_key in enumerate(resident_keys):
                if resident_tags[position] not in packable:
                    victim = tx_entries.pop(resident_key)
                    icache_tx._tx_entry_count -= 1
                    counters[ctx.k_ictx_cevictions] += 1
                    break
        if victim is None and len(tx_entries) >= ctx.ic_ways:
            _, victim = tx_entries.popitem(last=False)
            icache_tx._tx_entry_count -= 1
            counters[ctx.k_ictx_evictions] += 1

        tx_entries[key] = entry
        icache_tx._tx_entry_count += 1
        if icache_tx._tx_entry_count > icache_tx.peak_tx_entries:
            icache_tx.peak_tx_entries = icache_tx._tx_entry_count
        counters[ctx.k_ictx_fills] += 1
        return True, victim

    @staticmethod
    def _l2_insert_fast(ctx: _CUContext, entry):
        """SetAssociativeTLB.insert on the shared L2; returns the victim."""

        if ctx.l2_perfect:
            return None
        counters = ctx.counters
        key = (entry.vmid, entry.vrf_id, entry.vpn)
        tlb_set = ctx.l2_sets[entry.vpn % ctx.l2_num_sets]
        if key in tlb_set:
            tlb_set[key] = entry
            tlb_set.move_to_end(key)
            return None
        victim = None
        if len(tlb_set) >= ctx.l2_ways:
            _, victim = tlb_set.popitem(last=False)
            counters[ctx.k_l2_evictions] += 1
        tlb_set[key] = entry
        counters[ctx.k_l2_fills] += 1
        return victim

    @staticmethod
    def _register_fast(ctx: _CUContext, key: tuple, completion: int, anchor: int) -> None:
        """InFlightTable.register(key, completion, anchor)."""

        ctx.in_flight[key] = completion
        ctx.counters[ctx.k_mshr_registered] += 1
        mshr = ctx.mshr
        mshr._ops_since_prune += 1
        if mshr._ops_since_prune >= mshr._prune_interval:
            mshr.prune(anchor)
