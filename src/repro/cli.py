"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``list``     — available applications and translation schemes.
- ``run``      — simulate one application on one configuration.
- ``compare``  — run several schemes on one application, show speedups.
- ``config``   — print (or save) a configuration as JSON.
- ``report``   — regenerate EXPERIMENTS.md (all tables and figures).
- ``sweep``    — run a named figure's job grid through the parallel
  sweep runner (``--jobs``, ``--scale``, ``--cache-dir``, plus the
  fault-tolerance knobs ``--timeout``, ``--max-retries``,
  ``--keep-going``; ``--telemetry`` prints the per-job table and, with
  ``REPRO_PROFILE`` set, the merged cProfile hotspots).
- ``estimate`` — analytical model (``repro.sim.analytical``): predict
  PTW-PKI and scheme speedups from a functional replay of the wave
  programs, with no timing simulation; ``--compare`` validates the
  prediction against the simulator inline.
- ``trace``    — simulate one application with the execution tracer and
  port timelines attached and export Chrome trace-event JSON (one track
  per CU/SIMD, per shared port, per page-table walker) for Perfetto /
  ``chrome://tracing``.
- ``worker``   — remote sweep worker: connect to the coordinator printed
  by ``sweep --executor remote`` and pull jobs until shutdown
  (``--respawn`` supervises and restarts after crashes).
- ``cache``    — inspect and maintain the content-addressed result store
  (``stats``, ``gc``, ``verify``; ``verify --fingerprints`` emits
  diffable digest/fingerprint lines for cross-backend byte comparison).
- ``serve``    — run the simulation service (:mod:`repro.service`): an
  asyncio HTTP API that accepts job specs, deduplicates them against
  in-flight jobs and the disk cache, batches concurrent requests onto
  one shared worker pool, and streams NDJSON progress.
- ``submit``   — client for a running service: validate a job spec
  locally (same checks the server applies), POST it, optionally wait
  for completion and print the result/telemetry.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro import schemes as scheme_registry
from repro.analysis.charts import bar_chart
from repro.analysis.tables import format_plain
from repro.config import SystemConfig, table1_config
from repro.config_io import config_to_json, load_config
from repro.system import GPUSystem
from repro.workloads.registry import CATEGORIES, app_names, make_app

_SUMMARY_COUNTERS = (
    ("page walks", "iommu.walks"),
    ("L1 TLB hits", "l1_tlb.hits"),
    ("L1 TLB misses", "l1_tlb.misses"),
    ("LDS Tx hits", "tx_serviced_by.lds"),
    ("I-cache Tx hits", "tx_serviced_by.icache"),
    ("L2 TLB hits", "tx_serviced_by.l2_tlb"),
    ("DRAM reads", "dram.reads"),
)


def _build_config(args) -> SystemConfig:
    if getattr(args, "config", None):
        config = load_config(args.config)
    else:
        config = table1_config()
    if getattr(args, "scheme", None):
        # Registry lookup: applies the scheme's configure transform (e.g.
        # perfect-l2-tlb also sets tlb.perfect_l2) and raises a SchemeError
        # listing the valid names on a typo.
        config = scheme_registry.apply_scheme(config, args.scheme)
    if getattr(args, "page_size", None):
        config = config.with_page_size(args.page_size)
    if getattr(args, "l2_tlb_entries", None):
        config = config.with_l2_tlb_entries(args.l2_tlb_entries)
    if getattr(args, "engine", None):
        config = config.with_engine(args.engine)
    return config


def _run_one(app_name: str, config: SystemConfig, scale: float):
    app = make_app(app_name, scale=scale, page_size=config.page_size)
    return GPUSystem(config).run(app)


def cmd_list(args) -> int:
    print("Applications (Table 2):")
    for name in app_names():
        print(f"  {name:6s} category {CATEGORIES[name]}")
    print("\nSchemes:")
    for spec in scheme_registry.schemes():
        origin = "" if spec.builtin else "  [plugin]"
        print(f"  {spec.name:22s} {spec.description}{origin}")
    return 0


def cmd_run(args) -> int:
    try:
        config = _build_config(args)
    except ValueError as error:
        print(f"repro run: error: {error}", file=sys.stderr)
        return 2
    result = _run_one(args.app, config, args.scale)
    if args.json:
        print(
            json.dumps(
                {
                    "app": result.app_name,
                    "scheme": result.scheme,
                    "cycles": result.cycles,
                    "ptw_pki": result.ptw_pki,
                    "counters": result.counters,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    print(f"{result.app_name} on scheme '{result.scheme}' (scale {args.scale}):")
    print(f"  cycles        {result.cycles:>14,}")
    print(f"  instructions  {result.instructions:>14,.0f}")
    print(f"  PTW-PKI       {result.ptw_pki:>14.2f}")
    print(f"  L1 TLB HR     {100 * result.hit_ratio('l1_tlb'):>13.1f}%")
    print()
    rows = [
        {"counter": label, "value": int(result.counter(name))}
        for label, name in _SUMMARY_COUNTERS
        if result.counter(name)
    ]
    print(format_plain(rows))
    return 0


def cmd_compare(args) -> int:
    try:
        # Validate every scheme up front (actionable error, not a bare
        # ValueError deep in the loop) and build the baseline config.
        specs = [scheme_registry.get(value) for value in args.schemes]
        baseline_cfg = _build_config(args)
        configs = [
            scheme_registry.apply_scheme(baseline_cfg, spec.name)
            for spec in specs
        ]
    except ValueError as error:
        print(f"repro compare: error: {error}", file=sys.stderr)
        return 2
    baseline = _run_one(args.app, baseline_cfg, args.scale)
    print(
        f"{args.app}: baseline {baseline.cycles:,} cycles "
        f"(PTW-PKI {baseline.ptw_pki:.2f})\n"
    )
    speedups = {}
    rows = []
    for spec, config in zip(specs, configs):
        result = _run_one(args.app, config, args.scale)
        speedup = baseline.cycles / result.cycles
        speedups[spec.name] = speedup
        walk_ratio = (
            result.page_walks / baseline.page_walks if baseline.page_walks else 1.0
        )
        rows.append(
            {
                "scheme": spec.name,
                "speedup": speedup,
                "walks_vs_baseline": walk_ratio,
                "cycles": result.cycles,
            }
        )
    print(format_plain(rows))
    print()
    print(bar_chart(speedups, baseline=1.0, title="speedup vs baseline"))
    return 0


def cmd_config(args) -> int:
    try:
        config = _build_config(args)
    except ValueError as error:
        print(f"repro config: error: {error}", file=sys.stderr)
        return 2
    text = config_to_json(config)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def cmd_report(args) -> int:
    from repro.experiments.report import main as report_main

    return report_main([args.output])


def cmd_trace(args) -> int:
    from repro.sim.trace import ExecutionTracer, write_chrome_trace

    try:
        config = _build_config(args)
    except ValueError as error:
        print(f"repro trace: error: {error}", file=sys.stderr)
        return 2
    app = make_app(args.app, scale=args.scale, page_size=config.page_size)
    system = GPUSystem(config)
    tracer = ExecutionTracer(max_events=args.max_events)
    system.attach_tracer(tracer)
    timelines = system.attach_timelines(max_intervals=args.max_intervals)
    result = system.run(app)
    summary = write_chrome_trace(
        args.out,
        tracer=tracer,
        timelines=timelines,
        metadata={
            "app": result.app_name,
            "scheme": result.scheme,
            "scale": args.scale,
            "cycles": result.cycles,
        },
    )
    print(f"{result.app_name} on scheme '{result.scheme}' (scale {args.scale}):")
    print(f"  cycles            {result.cycles:>14,}")
    print(f"  op events         {len(tracer):>14,}  (dropped {tracer.dropped:,})")
    intervals = sum(len(sampler) for sampler in timelines.values())
    print(f"  port intervals    {intervals:>14,}")
    print(f"  exported          {summary['events']:>14,}  events on "
          f"{summary['tracks']:,} tracks")
    by_kind = sorted(tracer.by_kind().items(), key=lambda item: -item[1])
    for kind, cycles in by_kind[:5]:
        print(f"    {kind:6s} {cycles:>14,} cycles")
    print(f"wrote {args.out} (open in https://ui.perfetto.dev)")
    return 0


def cmd_sweep(args) -> int:
    from repro.experiments import common
    from repro.experiments.report import SWEEP_GRIDS
    from repro.sim.runner import SweepAbort, SweepRunner

    if args.cache_dir:
        common._CACHE_DIR = args.cache_dir
    from repro.sim.runner import jobs_with_engine

    grid = SWEEP_GRIDS[args.figure]
    jobs = jobs_with_engine(grid(args.scale), getattr(args, "engine", None))
    executor = getattr(args, "executor", None)
    remote_executor = None
    if executor == "remote":
        from repro.sim.executors.remote import (
            Coordinator,
            RemoteExecutor,
            parse_address,
        )

        try:
            host, port = parse_address(args.bind)
        except ValueError as error:
            print(f"repro sweep: error: {error}", file=sys.stderr)
            return 2
        coordinator = Coordinator(host=host, port=port)
        print(f"[sweep] coordinator listening on {coordinator.address}")
        print(f"[sweep] start workers with: repro worker "
              f"--connect {coordinator.address}")
        remote_executor = RemoteExecutor(
            coordinator,
            min_workers=args.min_workers,
            start_timeout_s=args.start_timeout,
            width=args.jobs,
        )
        executor = remote_executor
    try:
        runner = SweepRunner(
            jobs=args.jobs,
            progress=print,
            timeout=args.timeout,
            max_retries=args.max_retries,
            keep_going=args.keep_going,
            executor=executor,
        )
    except ValueError as error:
        print(f"repro sweep: error: {error}", file=sys.stderr)
        return 2
    try:
        _, report = runner.run_with_report(jobs)
    except SweepAbort as error:
        print(f"repro sweep: error: {error}", file=sys.stderr)
        print("repro sweep: completed results were kept in the cache; "
              "re-run with --keep-going to record failures and continue",
              file=sys.stderr)
        return 1
    except RuntimeError as error:
        # e.g. the remote coordinator timed out waiting for workers.
        print(f"repro sweep: error: {error}", file=sys.stderr)
        return 1
    finally:
        if remote_executor is not None:
            remote_executor.close()
    print(
        f"{args.figure}: {report.jobs_submitted} jobs, "
        f"{report.unique_jobs} unique, {report.cache_hits} cache hits, "
        f"{report.jobs_simulated} simulated in {report.wall_clock_s:.2f}s"
    )
    if report.store:
        counters = ", ".join(
            f"{name} {count}" for name, count in sorted(report.store.items())
        )
        print(f"{args.figure}: result store: {counters}")
    if report.failures:
        print(f"{args.figure}: {len(report.failures)} job(s) failed terminally:")
        for line in report.failure_lines():
            print(f"  {line}")
    if args.telemetry:
        print()
        print("Per-job telemetry:")
        print(format_plain(report.telemetry_rows()))
        if report.hotspots:
            print()
            print("Hotspots (cProfile cumulative, merged across workers):")
            for line in report.hotspot_lines():
                print(f"  {line}")
        elif report.profiled:
            print()
            print("REPRO_PROFILE set but no jobs were simulated "
                  "(all cache hits) — no hotspots to report.")
    if getattr(args, "report_json", None):
        with open(args.report_json, "w") as handle:
            json.dump(report.to_json(), handle, indent=2, sort_keys=True)
        print(f"wrote {args.report_json}")
    return 0


def cmd_worker(args) -> int:
    from repro.sim.executors.remote import supervise_worker, worker_main

    if args.respawn:
        return supervise_worker(
            args.connect, cache_dir=args.cache_dir, retry_s=args.retry_s,
            log=print,
        )
    return worker_main(
        args.connect, cache_dir=args.cache_dir, retry_s=args.retry_s,
        log=print,
    )


def _cache_store(args):
    from repro.experiments import common
    from repro.sim.store import ResultStore

    cache_dir = args.cache_dir or common._CACHE_DIR
    if not cache_dir:
        print("repro cache: error: no cache directory (pass --cache-dir or "
              "set REPRO_CACHE_DIR)", file=sys.stderr)
        return None
    return ResultStore(cache_dir)


def cmd_cache_stats(args) -> int:
    store = _cache_store(args)
    if store is None:
        return 2
    print(json.dumps(store.stats(), indent=2, sort_keys=True))
    return 0


def cmd_cache_gc(args) -> int:
    store = _cache_store(args)
    if store is None:
        return 2
    removed = store.gc(
        max_age_s=args.max_age_s,
        tmp_grace_s=args.tmp_grace_s,
        dry_run=args.dry_run,
    )
    verb = "would remove" if args.dry_run else "removed"
    total = sum(
        count for bucket, count in removed.items() if bucket != "dry_run"
    )
    detail = ", ".join(
        f"{count} {bucket}"
        for bucket, count in sorted(removed.items())
        if bucket != "dry_run" and count
    )
    print(f"repro cache gc: {verb} {total} file(s)"
          + (f" ({detail})" if detail else ""))
    return 0


def cmd_cache_verify(args) -> int:
    store = _cache_store(args)
    if store is None:
        return 2
    outcome = store.verify(fingerprints=args.fingerprints)
    if args.fingerprints:
        for digest, fingerprint in outcome["fingerprints"]:
            print(f"{digest} {fingerprint}")
    print(
        f"repro cache verify: {outcome['checked']} checked, "
        f"{outcome['ok']} ok, {len(outcome['stale'])} stale, "
        f"{len(outcome['corrupt'])} corrupt",
        file=sys.stderr if args.fingerprints else sys.stdout,
    )
    for path in outcome["corrupt"]:
        print(f"  corrupt: {path}", file=sys.stderr)
    for path in outcome["stale"]:
        print(f"  stale: {path}", file=sys.stderr)
    return 1 if outcome["corrupt"] else 0


def cmd_serve(args) -> int:
    from repro.experiments import common
    from repro.service.http import serve
    from repro.service.manager import JobManager

    if args.cache_dir:
        common._CACHE_DIR = args.cache_dir
    try:
        manager = JobManager(
            workers=args.jobs,
            idle_timeout_s=args.idle_timeout,
            timeout=args.timeout,
            max_retries=args.max_retries,
            log=print,
        )
    except ValueError as error:
        print(f"repro serve: error: {error}", file=sys.stderr)
        return 2
    if common._CACHE_DIR:
        print(f"[service] disk cache: {common._CACHE_DIR}")
    else:
        print("[service] no disk cache configured (set --cache-dir or "
              "REPRO_CACHE_DIR to persist and share results)")
    serve(manager, host=args.host, port=args.port, log=print)
    return 0


def _submit_spec(args) -> dict:
    spec: dict = {}
    if args.figure:
        spec["figure"] = args.figure
    if args.apps:
        spec["apps"] = args.apps
    if args.schemes:
        spec["schemes"] = args.schemes
    if args.scale is not None:
        spec["scale"] = args.scale
    if args.engine:
        spec["engine"] = args.engine
    if args.timeout is not None:
        spec["timeout"] = args.timeout
    if args.max_retries is not None:
        spec["max_retries"] = args.max_retries
    return spec


def cmd_submit(args) -> int:
    from repro.service.client import ServiceClient, ServiceError
    from repro.service.jobs import SpecError, validate_spec
    from repro.sim.runner import telemetry_rows_from_json

    if args.status:
        return cmd_submit_status(args)
    spec = _submit_spec(args)
    try:
        # The same validation the server applies, run before any network
        # round-trip, so typos fail here with the valid choices listed.
        validate_spec(spec)
    except SpecError as error:
        print(f"repro submit: error: {error}", file=sys.stderr)
        return 2
    client = ServiceClient(args.url)
    try:
        submitted = client.submit(spec)
    except (ServiceError, OSError) as error:
        print(f"repro submit: error: {error}", file=sys.stderr)
        return 2
    job_id = submitted["job_id"]
    dedup = " (deduplicated onto an existing job)" if submitted["deduplicated"] else ""
    print(f"job {job_id}: {submitted['state']}, "
          f"{submitted['jobs']} sim job(s){dedup}")
    if not args.wait:
        print(f"poll with: repro submit --url {args.url} --status {job_id}")
        return 0
    try:
        status = client.wait(job_id, timeout=args.wait_timeout)
    except (ServiceError, OSError, TimeoutError) as error:
        print(f"repro submit: error: {error}", file=sys.stderr)
        return 2
    report = status.get("report")
    print(f"job {job_id}: {status['state']}")
    if report:
        print(
            f"  {report['jobs_submitted']} jobs, {report['unique_jobs']} unique, "
            f"{report['cache_hits']} cache hits, {report['jobs_simulated']} "
            f"simulated in {report['wall_clock_s']:.2f}s"
        )
        if args.telemetry:
            print()
            print("Per-job telemetry:")
            print(format_plain(telemetry_rows_from_json(report)))
        for failure in report.get("failures", []):
            print(f"  FAILED {failure['app_name']} {failure['scheme']} "
                  f"[{failure['disposition']}]: {failure['error']}")
    return 0 if status["state"] == "done" else 1


def cmd_submit_status(args) -> int:
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        payload = client.status(args.status)
    except (ServiceError, OSError) as error:
        print(f"repro submit: error: {error}", file=sys.stderr)
        return 2
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _estimate_figures() -> dict:
    """Scheme arms estimated per figure by ``repro estimate``.

    Derived from the scheme registry: fig13's arms are a baseline column
    plus the ``fig13-victim`` tag, restricted to schemes the analytical
    model supports (plugins may opt out and require simulation).
    """

    fig13 = ("baseline",) + tuple(
        spec.name for spec in scheme_registry.schemes_for_tag("fig13-victim")
    )
    figures = {"table2": ("baseline",), "fig13": fig13}
    return {
        figure: tuple(
            name for name in names if scheme_registry.get(name).analytical
        )
        for figure, names in figures.items()
    }


_ESTIMATE_FIGURES = _estimate_figures()


def cmd_estimate(args) -> int:
    from repro.experiments.common import gmean_speedup
    from repro.sim.analytical import estimate_app

    schemes = _ESTIMATE_FIGURES[args.figure]
    apps = [name.upper() for name in args.apps] if args.apps else app_names()
    try:
        base_config = _build_config(args)
    except ValueError as error:
        print(f"repro estimate: error: {error}", file=sys.stderr)
        return 2
    rows = []
    est_speedups = {name: [] for name in schemes}
    sim_speedups = {name: [] for name in schemes}
    for app in apps:
        base_est = None
        base_sim = None
        for name in schemes:
            config = scheme_registry.apply_scheme(base_config, name)
            estimate = estimate_app(app, config, args.scale)
            if base_est is None:
                base_est = estimate
            speedup = (
                base_est.est_cycles / estimate.est_cycles
                if estimate.est_cycles else 1.0
            )
            est_speedups[name].append(speedup)
            row = {
                "app": app,
                "scheme": name,
                "est_ptw_pki": estimate.ptw_pki,
                "est_walks": estimate.page_walks,
                "est_speedup": speedup,
            }
            if args.compare:
                # The vectorized engine is byte-identical to the event
                # engine and shares its cache identity, so comparing
                # against it compares against the simulator, faster.
                result = _run_one(
                    app, config.with_engine("vectorized"), args.scale
                )
                if base_sim is None:
                    base_sim = result
                sim_speedup = base_sim.cycles / result.cycles
                sim_speedups[name].append(sim_speedup)
                row["sim_ptw_pki"] = result.ptw_pki
                row["pki_err_pct"] = (
                    100.0 * (estimate.ptw_pki - result.ptw_pki) / result.ptw_pki
                    if result.ptw_pki else 0.0
                )
                row["sim_speedup"] = sim_speedup
            rows.append(row)
    if len(schemes) > 1:
        for name in schemes:
            row = {
                "app": "GMEAN",
                "scheme": name,
                "est_speedup": gmean_speedup(est_speedups[name]),
            }
            if args.compare:
                row["sim_speedup"] = gmean_speedup(sim_speedups[name])
            rows.append(row)
    if getattr(args, "json_out", None):
        with open(args.json_out, "w") as handle:
            json.dump(
                {"figure": args.figure, "scale": args.scale, "rows": rows},
                handle,
                indent=2,
            )
    print(f"Analytical estimate for {args.figure} (scale {args.scale}; "
          f"no timing simulation):")
    print(format_plain(rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Increasing GPU Translation Reach by Leveraging "
            "Under-Utilized On-Chip Resources' (MICRO 2021)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list applications and schemes").set_defaults(
        func=cmd_list
    )

    def add_common(p):
        p.add_argument("--scale", type=float, default=1.0,
                       help="workload scale factor (default 1.0)")
        p.add_argument("--scheme", choices=scheme_registry.scheme_names(),
                       help="translation scheme (registry name)")
        p.add_argument("--page-size", type=int, dest="page_size",
                       help="page size in bytes (4096/65536/2097152)")
        p.add_argument("--l2-tlb-entries", type=int, dest="l2_tlb_entries",
                       help="override the shared L2 TLB size")
        p.add_argument("--engine", choices=["event", "vectorized"],
                       help="simulation engine (byte-identical results; "
                            "'vectorized' is the compiled fast path)")
        p.add_argument("--config", help="JSON configuration file to start from")

    run_parser = sub.add_parser("run", help="simulate one application")
    run_parser.add_argument("app", choices=app_names())
    add_common(run_parser)
    run_parser.add_argument("--json", action="store_true",
                            help="machine-readable output")
    run_parser.set_defaults(func=cmd_run)

    compare_parser = sub.add_parser(
        "compare", help="compare schemes on one application"
    )
    compare_parser.add_argument("app", choices=app_names())
    add_common(compare_parser)
    compare_parser.add_argument(
        "--schemes",
        nargs="+",
        default=["lds", "icache", "icache+lds"],
        choices=scheme_registry.scheme_names(),
    )
    compare_parser.set_defaults(func=cmd_compare)

    config_parser = sub.add_parser("config", help="print a configuration as JSON")
    add_common(config_parser)
    config_parser.add_argument("--output", help="write to a file instead")
    config_parser.set_defaults(func=cmd_config)

    report_parser = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    report_parser.add_argument("--output", default="EXPERIMENTS.md")
    report_parser.set_defaults(func=cmd_report)

    trace_parser = sub.add_parser(
        "trace",
        help="simulate one application and export a Chrome/Perfetto trace",
    )
    trace_parser.add_argument("app", type=str.upper, choices=app_names())
    add_common(trace_parser)
    trace_parser.add_argument(
        "--out", default="trace.json",
        help="output path for the Chrome trace-event JSON (default trace.json)",
    )
    trace_parser.add_argument(
        "--max-events", type=int, dest="max_events", default=1_000_000,
        help="execution-tracer event capacity (default 1,000,000)",
    )
    trace_parser.add_argument(
        "--max-intervals", type=int, dest="max_intervals", default=100_000,
        help="per-port timeline interval capacity (default 100,000)",
    )
    trace_parser.set_defaults(func=cmd_trace)

    estimate_parser = sub.add_parser(
        "estimate",
        help="analytically estimate PTW-PKI and speedups (no simulation)",
    )
    estimate_parser.add_argument("figure", choices=sorted(_ESTIMATE_FIGURES))
    add_common(estimate_parser)
    estimate_parser.add_argument(
        "--apps", nargs="+", metavar="APP",
        help="restrict to these applications (default: all)",
    )
    estimate_parser.add_argument(
        "--compare", action="store_true",
        help="also simulate each job (vectorized engine) and show the "
             "estimator's PTW-PKI error and the simulated speedups",
    )
    estimate_parser.add_argument(
        "--json", dest="json_out", metavar="PATH",
        help="also write the estimate rows to PATH as JSON",
    )
    estimate_parser.set_defaults(func=cmd_estimate)

    from repro.experiments.report import SWEEP_GRIDS

    sweep_parser = sub.add_parser(
        "sweep", help="run a figure's job grid through the parallel runner"
    )
    sweep_parser.add_argument("figure", choices=sorted(SWEEP_GRIDS))
    sweep_parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: REPRO_JOBS or all cores; 1 = serial)",
    )
    sweep_parser.add_argument(
        "--scale", type=float, default=None,
        help="workload scale factor (default: REPRO_SCALE or 1.0)",
    )
    sweep_parser.add_argument(
        "--cache-dir", dest="cache_dir",
        help="on-disk result cache directory (default: REPRO_CACHE_DIR)",
    )
    sweep_parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-job timeout in seconds, parallel sweeps only "
             "(default: REPRO_TIMEOUT or unbounded)",
    )
    sweep_parser.add_argument(
        "--max-retries", type=int, dest="max_retries", default=None,
        help="extra attempts for a failing job beyond the first "
             "(default: REPRO_MAX_RETRIES or 2)",
    )
    sweep_parser.add_argument(
        "--keep-going", dest="keep_going", action="store_true", default=None,
        help="record terminal job failures and keep sweeping instead of "
             "aborting (failed slots resolve to None)",
    )
    sweep_parser.add_argument(
        "--engine", choices=["event", "vectorized"],
        help="simulation engine for every job in the grid (byte-identical "
             "results and shared cache identity)",
    )
    sweep_parser.add_argument(
        "--telemetry", action="store_true",
        help="print the per-job telemetry table (wall time, cache hit/miss, "
             "attempts, worker pid) and, with REPRO_PROFILE set, the merged "
             "cProfile hotspots",
    )
    sweep_parser.add_argument(
        "--json", dest="report_json", metavar="PATH",
        help="also write the structured SweepReport (timings, failures, "
             "hotspots) to PATH — the same payload the service's result "
             "endpoint returns",
    )
    sweep_parser.add_argument(
        "--executor", choices=["serial", "pool", "remote"], default=None,
        help="execution backend (default: REPRO_EXECUTOR or pool). serial "
             "runs in-process; pool uses local worker processes; remote "
             "starts a coordinator that repro worker processes connect to",
    )
    sweep_parser.add_argument(
        "--bind", default="127.0.0.1:0", metavar="HOST:PORT",
        help="remote executor only: coordinator listen address "
             "(default: 127.0.0.1:0 — an ephemeral port, printed at start)",
    )
    sweep_parser.add_argument(
        "--min-workers", dest="min_workers", type=int, default=1,
        help="remote executor only: wait for this many connected workers "
             "before dispatching (default: 1)",
    )
    sweep_parser.add_argument(
        "--start-timeout", dest="start_timeout", type=float, default=120.0,
        help="remote executor only: seconds to wait for --min-workers "
             "connections before giving up (default: 120)",
    )
    sweep_parser.set_defaults(func=cmd_sweep)

    worker_parser = sub.add_parser(
        "worker",
        help="remote sweep worker: connect to a coordinator and pull jobs",
    )
    worker_parser.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="coordinator address printed by repro sweep --executor remote",
    )
    worker_parser.add_argument(
        "--cache-dir", dest="cache_dir", default=None,
        help="on-disk result cache directory (default: the cache dir the "
             "coordinator sends with each job)",
    )
    worker_parser.add_argument(
        "--retry-s", dest="retry_s", type=float, default=15.0,
        help="seconds to keep retrying the initial connection (default: 15)",
    )
    worker_parser.add_argument(
        "--respawn", action="store_true",
        help="supervise the worker and respawn it after a crash (a crash "
             "then costs one job, not the worker slot)",
    )
    worker_parser.set_defaults(func=cmd_worker)

    cache_parser = sub.add_parser(
        "cache", help="inspect and maintain the content-addressed result store"
    )
    cache_sub = cache_parser.add_subparsers(dest="cache_command", required=True)
    for name, func, help_text in (
        ("stats", cmd_cache_stats,
         "entry/debris counts, layout, and process-local hit/miss counters"),
        ("gc", cmd_cache_gc,
         "remove debris (orphan temp files, quarantined corrupt files, "
         "stale-schema entries) and optionally age-expired results"),
        ("verify", cmd_cache_verify,
         "parse every stored result; exit 1 if any is corrupt"),
    ):
        cache_cmd = cache_sub.add_parser(name, help=help_text)
        cache_cmd.add_argument(
            "--cache-dir", dest="cache_dir", default=None,
            help="store directory (default: REPRO_CACHE_DIR)",
        )
        cache_cmd.set_defaults(func=func)
        if name == "gc":
            cache_cmd.add_argument(
                "--max-age-s", dest="max_age_s", type=float, default=None,
                help="also evict results older than this many seconds",
            )
            cache_cmd.add_argument(
                "--tmp-grace-s", dest="tmp_grace_s", type=float, default=3600.0,
                help="age before an orphan temp file counts as debris "
                     "(default: 3600)",
            )
            cache_cmd.add_argument(
                "--dry-run", dest="dry_run", action="store_true",
                help="report what would be removed without removing it",
            )
        elif name == "verify":
            cache_cmd.add_argument(
                "--fingerprints", action="store_true",
                help="print one 'digest fingerprint' line per entry (sorted) "
                     "for diffing two stores byte-for-byte",
            )

    serve_parser = sub.add_parser(
        "serve",
        help="run the simulation service (async job-queue HTTP API over "
             "the sweep runner)",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    serve_parser.add_argument(
        "--port", type=int, default=8000,
        help="listen port (default 8000; 0 picks a free port)",
    )
    serve_parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the shared pool "
             "(default: REPRO_JOBS or all cores; 1 = serial, no pool)",
    )
    serve_parser.add_argument(
        "--cache-dir", dest="cache_dir",
        help="on-disk result cache directory (default: REPRO_CACHE_DIR); "
             "completed specs resubmitted later are served from here",
    )
    serve_parser.add_argument(
        "--idle-timeout", dest="idle_timeout", type=float, default=60.0,
        help="seconds of quiet after which the shared worker pool is "
             "evicted (default 60; it is recreated on the next job)",
    )
    serve_parser.add_argument(
        "--timeout", type=float, default=None,
        help="default per-sim-job timeout for specs that do not set one",
    )
    serve_parser.add_argument(
        "--max-retries", type=int, dest="max_retries", default=None,
        help="default retry budget for specs that do not set one",
    )
    serve_parser.set_defaults(func=cmd_serve)

    submit_parser = sub.add_parser(
        "submit",
        help="submit a job spec to a running service (client side)",
    )
    submit_parser.add_argument(
        "figure", nargs="?", choices=sorted(SWEEP_GRIDS),
        help="named grid to run (or use --apps/--schemes for a custom grid)",
    )
    submit_parser.add_argument(
        "--apps", nargs="+", metavar="APP", type=str.upper,
        help="custom grid: application names",
    )
    submit_parser.add_argument(
        "--schemes", nargs="+", metavar="SCHEME",
        help="custom grid: translation schemes (default: all)",
    )
    submit_parser.add_argument(
        "--scale", type=float, default=None,
        help="workload scale factor (default: server-side REPRO_SCALE)",
    )
    submit_parser.add_argument(
        "--engine", choices=["event", "vectorized"],
        help="simulation engine for every job in the grid",
    )
    submit_parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-sim-job timeout in seconds for this spec",
    )
    submit_parser.add_argument(
        "--max-retries", type=int, dest="max_retries", default=None,
        help="retry budget for this spec",
    )
    submit_parser.add_argument(
        "--url", default="http://127.0.0.1:8000",
        help="service base URL (default http://127.0.0.1:8000)",
    )
    submit_parser.add_argument(
        "--wait", action="store_true",
        help="poll until the job finishes and print its report",
    )
    submit_parser.add_argument(
        "--wait-timeout", dest="wait_timeout", type=float, default=600.0,
        help="give up waiting after this many seconds (default 600)",
    )
    submit_parser.add_argument(
        "--telemetry", action="store_true",
        help="with --wait: print the per-job telemetry table",
    )
    submit_parser.add_argument(
        "--status", metavar="JOB_ID",
        help="instead of submitting, print the status payload of JOB_ID",
    )
    submit_parser.set_defaults(func=cmd_submit)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
