"""Full-system assembly and end-to-end application simulation.

:class:`GPUSystem` wires every substrate together according to a
:class:`~repro.config.SystemConfig` — including which reconfigurable
translation scheme is active — and runs an :class:`~repro.workloads.base.AppSpec`
kernel-by-kernel, producing a :class:`~repro.sim.results.SimResult` with the
counters and distributions every experiment in the paper reports.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.baselines.ducati import DucatiStore, ducati_reserved_ways
from repro.config import SystemConfig, TxScheme
from repro.core.reconfig_icache import ReconfigurableICache
from repro.core.reconfig_lds import LDSTxCache
from repro.core.translation import SharingTracker, TranslationService
from repro.gpu.command_processor import CommandProcessor
from repro.gpu.cu import ComputeUnit
from repro.gpu.dispatcher import WorkGroupDispatcher
from repro.gpu.icache import InstructionCache
from repro.gpu.lds import LocalDataShare
from repro.memory.dram import DRAM
from repro.memory.energy import DRAMEnergyModel
from repro.memory.hierarchy import SharedL2
from repro.pagetable.iommu import IOMMU
from repro.pagetable.page_table import PageTable
from repro.sim.engine import Port, WaveScheduler
from repro.sim.results import KernelResult, SimResult
from repro.sim.stats import Stats
from repro.tlb.set_assoc import SetAssociativeTLB
from repro.workloads.base import AppSpec

#: Fixed host-side cost between consecutive kernel launches.
KERNEL_LAUNCH_OVERHEAD = 1000

#: Static-code address stride between distinct kernels (I-cache lines).
_CODE_REGION_LINES = 8192


class GPUSystem:
    """One simulated APU, fully assembled from a :class:`SystemConfig`."""

    def __init__(self, config: SystemConfig) -> None:
        gpu = config.gpu
        if gpu.num_cus % config.icache.cus_per_icache:
            raise ValueError(
                f"{config.icache.cus_per_icache} CUs per I-cache does not "
                f"divide {gpu.num_cus} CUs"
            )
        self.config = config
        scheme = config.scheme
        self.stats = Stats()

        # --- Memory-side substrates -----------------------------------
        self.page_table = PageTable(config.page_size, config.va_bits)
        self.dram = DRAM(config.dram, stats=self.stats)
        reserved_ways = (
            ducati_reserved_ways(config.ducati, config.data_cache)
            if scheme.uses_ducati
            else 0
        )
        self.shared_l2 = SharedL2(
            config.data_cache, self.dram, stats=self.stats,
            reserved_ways=reserved_ways,
        )
        self.iommu = IOMMU(
            config.iommu, self.page_table, self.shared_l2, stats=self.stats
        )
        self.ducati: Optional[DucatiStore] = (
            DucatiStore(config.ducati, config.data_cache, self.shared_l2,
                        stats=self.stats)
            if scheme.uses_ducati
            else None
        )
        if getattr(scheme, "uses_subregion", False):
            from repro.schemes.subregion import SubregionStore

            self.subregion: Optional[SubregionStore] = SubregionStore(
                config.subregion, self.page_table, stats=self.stats
            )
        else:
            self.subregion = None

        # --- Shared GPU translation structures ------------------------
        l2_ways = min(config.tlb.l2_ways, config.tlb.l2_entries)
        self.l2_tlb = SetAssociativeTLB(
            config.tlb.l2_entries, l2_ways, name="l2_tlb", stats=self.stats,
            perfect=config.tlb.perfect_l2,
        )
        self.l2_tlb_port = Port(
            "l2_tlb.port", units=2, occupancy=config.tlb.l2_port_occupancy
        )
        self.sharing = SharingTracker()

        # --- I-caches (one per CU group) -------------------------------
        num_groups = gpu.num_cus // config.icache.cus_per_icache
        self.icaches: List[InstructionCache] = []
        for _ in range(num_groups):
            if scheme.uses_icache_tx:
                icache: InstructionCache = ReconfigurableICache(
                    config.icache, config.icache_tx, stats=self.stats,
                    name="icache",
                )
                icache.spill_target = self.l2_tlb
            else:
                icache = InstructionCache(
                    config.icache, stats=self.stats, name="icache"
                )
            self.icaches.append(icache)

        # --- Per-CU structures -----------------------------------------
        self.cus: List[ComputeUnit] = []
        for cu_id in range(gpu.num_cus):
            lds = LocalDataShare(
                config.lds, config.lds_tx, stats=self.stats, name="lds"
            )
            lds_tx = (
                LDSTxCache(lds, config.lds_tx, stats=self.stats, name="lds_tx")
                if scheme.uses_lds_tx
                else None
            )
            group_icache = self.icaches[cu_id // config.icache.cus_per_icache]
            icache_tx = group_icache if scheme.uses_icache_tx else None
            translation = TranslationService(
                cu_id,
                config,
                self.page_table,
                self.l2_tlb,
                self.l2_tlb_port,
                self.iommu,
                self.sharing,
                stats=self.stats,
                lds_tx=lds_tx,
                icache_tx=icache_tx,  # type: ignore[arg-type]
                ducati=self.ducati,
                subregion=self.subregion,
            )
            self.cus.append(
                ComputeUnit(
                    cu_id, config, group_icache, lds, translation,
                    self.shared_l2, stats=self.stats,
                )
            )

        if config.engine == "vectorized":
            from repro.sim.vectorized import VectorWavefront

            self._wave_factory: type = VectorWavefront
        else:
            from repro.gpu.wavefront import Wavefront

            self._wave_factory = Wavefront
        self.dispatcher = WorkGroupDispatcher(
            self.cus, stats=self.stats, wave_factory=self._wave_factory
        )
        self.energy_model = DRAMEnergyModel(config.dram_energy)
        self.command_processor = CommandProcessor(
            invalidate_fn=self.shootdown,
            flush_fn=lambda: sum(ic.flush_instructions() for ic in self.icaches),
            stats=self.stats,
        )
        self._code_bases: Dict[str, int] = {}

    # ------------------------------------------------------------------

    def _code_base(self, kernel_name: str) -> int:
        base = self._code_bases.get(kernel_name)
        if base is None:
            base = len(self._code_bases) * _CODE_REGION_LINES
            self._code_bases[kernel_name] = base
        return base

    def run(self, app: AppSpec) -> SimResult:
        """Simulate ``app`` end-to-end (all kernel launches, in order)."""

        app_snapshot = self.stats.snapshot()
        kernel_results: List[KernelResult] = []
        invocation_counts: Dict[str, int] = {}
        now = 0

        for index, kernel in enumerate(app.kernels):
            if index > 0:
                same = kernel.name == app.kernels[index - 1].name
                for icache in self.icaches:
                    icache.on_kernel_boundary(same)
                now += KERNEL_LAUNCH_OVERHEAD
            invocation = invocation_counts.get(kernel.name, 0)
            invocation_counts[kernel.name] = invocation + 1

            snapshot = self.stats.snapshot()
            scheduler = WaveScheduler()
            scheduler.now = now
            self.dispatcher.start_kernel(
                app.name, kernel, invocation, self._code_base(kernel.name),
                scheduler, now,
            )
            end = scheduler.run()
            kernel_results.append(
                KernelResult(
                    kernel_name=kernel.name,
                    invocation=invocation,
                    start_cycle=now,
                    end_cycle=end,
                    counters=self.stats.delta_since(snapshot),
                )
            )
            now = end

        counters = self.stats.delta_since(app_snapshot)
        cycles = now
        self._finalize_counters(counters, cycles)
        return SimResult(
            app_name=app.name,
            scheme=self.config.scheme.value,
            cycles=cycles,
            counters=counters,
            kernels=kernel_results,
            distributions=self._collect_distributions(),
        )

    def _finalize_counters(self, counters: Dict[str, float], cycles: int) -> None:
        breakdown = self.energy_model.estimate(self.stats, cycles)
        counters["energy.total_nj"] = breakdown.total_nj
        counters["energy.read_nj"] = breakdown.read_nj
        counters["energy.write_nj"] = breakdown.write_nj
        counters["energy.activate_nj"] = breakdown.activate_nj
        counters["energy.background_nj"] = breakdown.background_nj
        counters["tx_sharing.total_pages"] = self.sharing.total_pages
        counters["tx_sharing.shared_pages"] = self.sharing.shared_pages
        lds_peak = sum(
            cu.translation.lds_tx.peak_entries
            for cu in self.cus
            if cu.translation.lds_tx is not None
        )
        icache_peak = sum(
            icache.peak_tx_entries
            for icache in self.icaches
            if isinstance(icache, ReconfigurableICache)
        )
        counters["tx_entries.lds_peak"] = lds_peak
        counters["tx_entries.icache_peak"] = icache_peak
        counters["icache.total_lines"] = (
            self.config.icache.num_lines * len(self.icaches)
        )

    def _collect_distributions(self):
        distributions = {
            "lds_bytes_per_wg": self.dispatcher.lds_request_bytes.box_stats(),
            "walk_latency": self.iommu.walker.walk_latency.box_stats(),
            "walk_queue_delay": self.iommu.queue_delay.box_stats(),
        }
        lds_gaps = _merged_box_stats(
            cu.lds.port.idle_tracker.gaps for cu in self.cus
            if cu.lds.port.idle_tracker is not None
        )
        icache_gaps = _merged_box_stats(
            icache.port.idle_tracker.gaps for icache in self.icaches
            if icache.port.idle_tracker is not None
        )
        distributions["lds_port_idle"] = lds_gaps
        distributions["icache_port_idle"] = icache_gaps
        return distributions

    # ------------------------------------------------------------------

    # ------------------------------------------------------------------
    # Multi-application scenario (paper Section 7.2)
    # ------------------------------------------------------------------

    def run_concurrent(
        self,
        apps: List[AppSpec],
        cu_partitions: List[List[int]],
    ) -> List[SimResult]:
        """Run several applications concurrently on disjoint CU partitions.

        Each application receives its own address space (VM-ID) and its own
        CU partition — the isolation Section 7.2 assumes for security. The
        per-CU LDS therefore only ever holds its own application's
        translations, while the I-cache (and its Tx capacity) may be shared
        between applications whose partitions fall in the same CU group.

        Returns one :class:`SimResult` per application; ``cycles`` is the
        application's own completion time. Counters are system-wide
        (structures are shared), so per-app counter attribution is limited
        to what the CU partitioning itself separates — but each result
        carries its *own* counters dict (and distributions), so mutating
        one result can never alias into another.
        """

        if len(apps) != len(cu_partitions):
            raise ValueError("one CU partition per application required")
        seen: set = set()
        for partition in cu_partitions:
            if not partition:
                raise ValueError("empty CU partition")
            for cu_id in partition:
                if cu_id in seen:
                    raise ValueError(f"CU {cu_id} assigned to two applications")
                if not 0 <= cu_id < len(self.cus):
                    raise ValueError(f"no such CU {cu_id}")
                seen.add(cu_id)

        scheduler = WaveScheduler()
        app_snapshot = self.stats.snapshot()
        progresses = []
        for vmid, (app, partition) in enumerate(zip(apps, cu_partitions)):
            cus = [self.cus[cu_id] for cu_id in partition]
            for cu in cus:
                cu.translation.vmid = vmid
            dispatcher = WorkGroupDispatcher(
                cus, stats=self.stats, wave_factory=self._wave_factory
            )
            progress = _AppProgress(self, app, dispatcher, scheduler)
            dispatcher.on_kernel_complete = progress.kernel_completed
            progresses.append(progress)

        for progress in progresses:
            progress.launch_next(0)
        scheduler.run()

        counters = self.stats.delta_since(app_snapshot)
        total_cycles = max(progress.finished_at for progress in progresses)
        self._finalize_counters(counters, total_cycles)
        distributions = self._collect_distributions()
        return [
            SimResult(
                app_name=progress.app.name,
                scheme=self.config.scheme.value,
                cycles=progress.finished_at,
                counters=dict(counters),
                kernels=progress.kernel_results,
                distributions=dict(distributions),
            )
            for progress in progresses
        ]

    def shootdown(self, vpn: int) -> int:
        """GPU-wide TLB shootdown including the reconfigurable structures
        (Section 7.1). Returns the number of invalidated entries."""

        count = self.l2_tlb.invalidate_vpn(vpn)
        for cu in self.cus:
            count += cu.translation.shootdown(vpn)
        count += self.iommu.invalidate_vpn(vpn)
        if self.ducati is not None:
            count += self.ducati.invalidate_vpn(vpn)
        if self.subregion is not None:
            count += self.subregion.invalidate_vpn(vpn)
        self.stats.add("shootdowns")
        return count

    def attach_tracer(self, tracer) -> None:
        """Record every executed macro-op into ``tracer``
        (:class:`repro.sim.trace.ExecutionTracer`); pass None to detach."""

        for cu in self.cus:
            cu.tracer = tracer

    def telemetry_ports(self) -> Dict[str, "Port"]:
        """Every shared port worth a timeline track, under a unique name.

        Structure constructors reuse generic names ("lds.port" on every
        CU), so this map synthesizes stable, unique track names: the
        shared L2 TLB port, the IOMMU walker pool (one lane per walker),
        each CU group's I-cache fetch port, and each CU's LDS port.
        """

        ports: Dict[str, Port] = {
            "l2_tlb.port": self.l2_tlb_port,
            "iommu.walkers": self.iommu.walker_pool,
        }
        for index, icache in enumerate(self.icaches):
            ports[f"icache{index}.port"] = icache.port
        for cu in self.cus:
            ports[f"cu{cu.cu_id}.lds.port"] = cu.lds.port
        return ports

    def attach_timelines(self, max_intervals: int = 100_000):
        """Attach a bounded busy/idle timeline sampler to every telemetry
        port (:meth:`telemetry_ports`); returns ``{name: sampler}`` ready
        for :func:`repro.sim.trace.write_chrome_trace`."""

        from repro.sim.trace import TimelineSampler

        samplers = {}
        for name, port in self.telemetry_ports().items():
            sampler = TimelineSampler(
                name, lanes=port.units, max_intervals=max_intervals
            )
            port.attach_timeline(sampler)
            samplers[name] = sampler
        return samplers

    def detach_timelines(self) -> None:
        """Detach all timeline samplers (ports go back to zero-cost)."""

        for port in self.telemetry_ports().values():
            port.attach_timeline(None)

    def driver_shootdown(self, vpns, now: int = 0):
        """Driver-initiated shootdown through the PM4-style command path.

        Enqueues one shootdown packet for ``vpns`` and drains the command
        processor (Section 7.1); returns the packet results, whose
        ``completed_at`` reflects packet decode + per-page broadcast time.
        """

        self.command_processor.enqueue_shootdown(vpns)
        return self.command_processor.drain(now)


class _AppProgress:
    """Drives one application's kernel sequence in concurrent mode."""

    def __init__(self, system: GPUSystem, app: AppSpec, dispatcher, scheduler) -> None:
        self.system = system
        self.app = app
        self.dispatcher = dispatcher
        self.scheduler = scheduler
        self.next_kernel = 0
        self.finished_at = 0
        self.kernel_results: List[KernelResult] = []
        self._invocations: Dict[str, int] = {}
        self._kernel_started_at = 0
        # The I-caches this app's partition fetches through (a group's
        # I-cache may be shared with a neighbouring partition; the
        # kernel-boundary flush then affects co-resident lines exactly as
        # the shared hardware would).
        self.icaches: List = []
        for cu in dispatcher.cus:
            if cu.icache not in self.icaches:
                self.icaches.append(cu.icache)

    def launch_next(self, now: int) -> None:
        kernel = self.app.kernels[self.next_kernel]
        invocation = self._invocations.get(kernel.name, 0)
        self._invocations[kernel.name] = invocation + 1
        self.next_kernel += 1
        self._kernel_started_at = now
        self.dispatcher.start_kernel(
            self.app.name,
            kernel,
            invocation,
            self.system._code_base(kernel.name),
            self.scheduler,
            now,
        )

    def kernel_completed(self, now: int) -> None:
        kernel = self.app.kernels[self.next_kernel - 1]
        self.kernel_results.append(
            KernelResult(
                kernel_name=kernel.name,
                invocation=self._invocations[kernel.name] - 1,
                start_cycle=self._kernel_started_at,
                end_cycle=now,
            )
        )
        if self.next_kernel < len(self.app.kernels):
            # Mirror GPUSystem.run's inter-kernel step: fire the Section
            # 4.3.3 kernel-boundary I-cache hook (the flush policy was
            # silently inert in concurrent mode before this) on this
            # app's I-caches, then launch after the host-side overhead.
            same = self.app.kernels[self.next_kernel].name == kernel.name
            for icache in self.icaches:
                icache.on_kernel_boundary(same)
            self.launch_next(now + KERNEL_LAUNCH_OVERHEAD)
        else:
            self.finished_at = now


def _merged_box_stats(distributions):
    from repro.sim.stats import Distribution

    merged = Distribution()
    for distribution in distributions:
        merged.extend(distribution._samples)  # noqa: SLF001 - same module family
    return merged.box_stats()


def simulate(app: AppSpec, config: Optional[SystemConfig] = None) -> SimResult:
    """Convenience one-shot: build a system and run ``app`` on it."""

    from repro.config import table1_config

    system = GPUSystem(config if config is not None else table1_config())
    return system.run(app)
