"""DUCATI comparator (Jaleel et al., TACO 2019; paper Section 6.3.4).

DUCATI extends TLB reach by spilling translations into the *last-level data
cache* and, behind it, a very large part-of-memory (POM) TLB carved out of
GPU device memory. Unlike the paper's proposal it does not use idle
capacity: translation lines live in the shared L2 *contending with data* —
a data miss that evicts a translation line silently kills the fast copy —
and every DUCATI probe claims the L2 port. Entries always remain available
in the POM TLB, but a POM hit pays an off-chip DRAM access.

That contention — translations churned out of the LLC by data traffic, hits
served from memory — is why DUCATI alone gains only ~4.9% while remaining
complementary to the reconfigurable design (Figure 16c): the paper's scheme
keeps hot translations *on chip* in capacity nobody else wants.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from repro.config import DataCacheConfig, DucatiConfig
from repro.memory.hierarchy import SharedL2
from repro.sim.stats import Stats
from repro.tlb.base import TranslationEntry

#: Physical region where DUCATI's translation lines live.
_TX_LINE_REGION = 1 << 41

#: Translations per 64-byte L2 line (8-byte entries).
_TX_PER_LINE = 8


def ducati_reserved_ways(ducati: DucatiConfig, cache: DataCacheConfig) -> int:
    """L2 data-cache ways ceded to translation lines under DUCATI.

    Modelled as reserved ways so the *data* side of the L2 loses the
    capacity translations occupy on average.
    """

    reserved = int(round(cache.l2_ways * ducati.l2_capacity_fraction))
    return max(1, min(cache.l2_ways - 1, reserved))


class DucatiStore:
    """LLC-resident translation lines backed by a part-of-memory TLB."""

    def __init__(
        self,
        config: DucatiConfig,
        cache_config: DataCacheConfig,
        shared_l2: SharedL2,
        stats: Optional[Stats] = None,
        name: str = "ducati",
    ) -> None:
        self.config = config
        self.name = name
        self.stats = stats if stats is not None else Stats()
        self.shared_l2 = shared_l2
        # Fast-path directory: which entries *might* still have their line
        # in the L2. The line itself lives in the shared L2 cache model and
        # can be evicted by data at any time.
        self._directory: "OrderedDict[tuple, TranslationEntry]" = OrderedDict()
        self._directory_capacity = 4 * (
            cache_config.l2_size_bytes // cache_config.line_bytes
        )
        self._pom: "OrderedDict[tuple, TranslationEntry]" = OrderedDict()
        self.pom_capacity = config.pom_tlb_entries

    def _line_addr(self, key: tuple) -> int:
        # Eight translations share one line; adjacent VPNs pack together.
        return _TX_LINE_REGION + (key[2] // _TX_PER_LINE) * 64 + (key[0] << 30)

    def lookup(self, key: tuple, anchor: int) -> Tuple[Optional[TranslationEntry], int]:
        """Probe the L2-resident line, then the POM TLB.

        Returns ``(entry_or_None, stage_latency)``; port and DRAM occupancy
        is charged at ``anchor`` (see :mod:`repro.core.translation`).
        """

        start = self.shared_l2.port.request(anchor)
        latency = (start - anchor) + self.config.l2_tx_latency
        entry = self._directory.get(key)
        if entry is not None and self.shared_l2.cache.probe(self._line_addr(key)):
            self._directory.move_to_end(key)
            self.stats.add(f"{self.name}.l2_hits")
            return entry, latency
        self.stats.add(f"{self.name}.l2_misses")
        if entry is not None:
            # The line was evicted by data traffic; only the POM copy is
            # left.
            del self._directory[key]
            self.stats.add(f"{self.name}.l2_lines_lost")

        entry = self._pom.get(key)
        if entry is not None:
            self._pom.move_to_end(key)
            self.stats.add(f"{self.name}.pom_hits")
            # A POM hit is an access to device memory; the refill also
            # re-installs the line in the L2 (contending with data).
            _, done = self.shared_l2.dram.access(self._line_addr(key), anchor)
            latency += (done - anchor) + self.config.pom_tlb_latency
            self._install_l2(entry)
            return entry, latency
        self.stats.add(f"{self.name}.pom_misses")
        return None, latency

    def _install_l2(self, entry: TranslationEntry) -> None:
        key = entry.key
        # Claim the line in the shared L2 at low priority: translation
        # lines contend with data and are the first victims when data
        # traffic needs the set (the contention Section 6.3.4 describes).
        self.shared_l2.cache.fill_low_priority(self._line_addr(key))
        self._directory[key] = entry
        self._directory.move_to_end(key)
        while len(self._directory) > self._directory_capacity:
            self._directory.popitem(last=False)

    def _install_pom(self, entry: TranslationEntry) -> None:
        key = entry.key
        if key in self._pom:
            self._pom.move_to_end(key)
            return
        if len(self._pom) >= self.pom_capacity:
            self._pom.popitem(last=False)
        self._pom[key] = entry

    def fill(self, entry: TranslationEntry) -> None:
        """Install an L2-TLB victim end-to-end (LLC line + POM copy)."""

        self.stats.add(f"{self.name}.fills")
        self._install_pom(entry)
        self._install_l2(entry)

    @property
    def l2_entry_count(self) -> int:
        return len(self._directory)

    @property
    def pom_entry_count(self) -> int:
        return len(self._pom)

    def invalidate_vpn(self, vpn: int) -> int:
        doomed = [key for key in self._directory if key[2] == vpn]
        for key in doomed:
            del self._directory[key]
        doomed_pom = [key for key in self._pom if key[2] == vpn]
        for key in doomed_pom:
            del self._pom[key]
        return len(doomed) + len(doomed_pom)
