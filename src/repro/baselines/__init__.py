"""Comparator schemes: DUCATI and the Perfect-L2-TLB upper bound."""

from repro.baselines.ducati import DucatiStore
from repro.baselines.perfect import perfect_l2_config

__all__ = ["DucatiStore", "perfect_l2_config"]
