"""Perfect-L2-TLB upper bound (Section 3.1 motivation study).

A configuration whose shared L2 TLB hits on every lookup: zero page walks,
hence the best-case performance an infinitely large TLB could deliver.
"""

from __future__ import annotations

from repro.config import SystemConfig, table1_config


def perfect_l2_config(base: SystemConfig = None) -> SystemConfig:
    """Table 1 configuration with a perfect (always-hit) L2 TLB."""

    if base is None:
        base = table1_config()
    return base.with_perfect_l2_tlb()
