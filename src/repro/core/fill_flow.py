"""Victim fill flows (Figure 12).

An entry evicted from a CU's L1 TLB is offered to the reconfigurable
structures in order: first the CU-private LDS (lowest latency), then the
shared I-cache, and finally the L2 TLB. Each structure either *accepts* the
candidate (possibly displacing a resident translation, which becomes the new
candidate for the next stage) or *bypasses* it (its target segment/line is
application-owned). The class also counts which of the paper's numbered
flows each fill took.
"""

from __future__ import annotations

from typing import Optional

from repro.core.reconfig_icache import ReconfigurableICache
from repro.core.reconfig_lds import LDSTxCache
from repro.sim.stats import Stats
from repro.tlb.base import TranslationEntry
from repro.tlb.set_assoc import SetAssociativeTLB


class VictimFillFlow:
    """Routes L1-TLB victims through LDS → I-cache → L2 TLB."""

    def __init__(
        self,
        l2_tlb: SetAssociativeTLB,
        lds_tx: Optional[LDSTxCache] = None,
        icache_tx: Optional[ReconfigurableICache] = None,
        ducati=None,
        stats: Optional[Stats] = None,
        name: str = "fill_flow",
        lds_first: bool = True,
        sharing=None,
        dedup_shared: bool = False,
    ) -> None:
        self.l2_tlb = l2_tlb
        self.lds_tx = lds_tx
        self.icache_tx = icache_tx
        self.ducati = ducati
        self.stats = stats if stats is not None else Stats()
        self.name = name
        # Fill order mirrors the lookup order (Section 4.4; an ablation
        # can reverse it via SystemConfig.lds_before_icache).
        stages = []
        if lds_tx is not None:
            stages.append(("lds", lds_tx.fill))
        if icache_tx is not None:
            stages.append(("icache", icache_tx.tx_fill))
        if not lds_first:
            stages.reverse()
        self._stages = stages
        # Duplication filter (the paper's future-work extension): victims
        # for pages already seen by 2+ CUs skip the private LDS so the one
        # copy lives in the shared I-cache instead of N private copies.
        self._sharing = sharing if dedup_shared else None

    def fill(self, entry: TranslationEntry, now: int) -> None:
        """Route one L1-TLB victim through the Figure 12 flow."""

        self.stats.add(f"{self.name}.victims")
        candidate: Optional[TranslationEntry] = entry

        # Figure 12: offer the candidate to each reconfigurable structure
        # in order. An *accepted* fill may displace a resident translation,
        # which becomes the candidate for the next stage (flows 1→2→4→5 and
        # …→6→7→8); a *bypassed* fill (target segment/line is
        # application-owned) forwards the candidate unchanged (flows 1→2→3
        # and …→6→9).
        for label, fill in self._stages:
            if candidate is None:
                return
            if (
                label == "lds"
                and self._sharing is not None
                and self._sharing.is_shared(candidate.vpn)
            ):
                self.stats.add(f"{self.name}.lds_skipped_shared")
                continue
            accepted, displaced = fill(candidate, now)
            if accepted:
                if displaced is None:
                    self.stats.add(f"{self.name}.{label}_installed")
                    return
                self.stats.add(f"{self.name}.{label}_installed_with_victim")
                candidate = displaced
            else:
                self.stats.add(f"{self.name}.{label}_bypassed")

        if candidate is not None:
            self.stats.add(f"{self.name}.to_l2_tlb")
            l2_victim = self.l2_tlb.insert(candidate)
            if l2_victim is not None and self.ducati is not None:
                self.ducati.fill(l2_victim)
