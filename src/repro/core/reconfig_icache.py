"""Reconfigurable I-cache: Tx victim cache in idle I-cache lines (§4.3).

Design points reproduced from the paper:

- *Packing*: either one translation per line (Figure 8b, the naive design
  whose reach is too small to matter) or eight per 64-byte line (Figure 8c),
  selected by ``ICacheTxConfig.tx_per_line``.
- *Direct-mapped translation indexing* (Figure 9): a translation may live in
  exactly one line (``vpn % num_lines``), reusing the existing per-way
  comparators; the sub-entries within a line are compared serially, which
  costs 16 extra cycles on top of the Tx tag access (Table 1).
- *Replacement* (Section 4.3.2): the NAIVE policy lets translation fills
  claim the direct-mapped line even when it holds instructions; the
  INSTRUCTION_AWARE policy only lets translations claim invalid lines or
  lines already in Tx-mode, while instruction fills prefer Tx-mode victims
  over LRU instruction lines.
- *Kernel-boundary flush* (Section 4.3.3): when enabled, the runtime flushes
  IC-mode lines at a kernel boundary unless the same kernel runs
  back-to-back, freeing dead instruction lines for translations.
- *Widened, base-delta-compressed tags* (Figure 10c): eight 39-bit tags fit
  the widened 12-byte tag via a 32-bit base and 8-bit deltas; fills that
  cannot pack evict incompatible residents first.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

from repro.config import ICacheConfig, ICacheReplacement, ICacheTxConfig
from repro.core.compression import BaseDeltaCodec
from repro.gpu.icache import CacheLine, InstructionCache
from repro.sim.stats import Stats
from repro.tlb.base import TranslationEntry


class ReconfigurableICache(InstructionCache):
    """I-cache that opportunistically stores L1-TLB victim translations."""

    def __init__(
        self,
        config: ICacheConfig,
        tx_config: ICacheTxConfig,
        stats: Optional[Stats] = None,
        name: str = "icache",
        track_idle: bool = True,
    ) -> None:
        super().__init__(config, stats=stats, name=name, track_idle=track_idle)
        self.tx_config = tx_config
        self._index_bits = max(1, (self.num_lines - 1).bit_length())
        self.codec = BaseDeltaCodec(tx_config.tag_base_bits, tx_config.tag_delta_bits)
        self._tx_entry_count = 0
        self.peak_tx_entries = 0
        self._current_kernel: Optional[str] = None
        # Where translations displaced by an instruction fill are forwarded
        # (the L2 TLB in the full system); None drops them silently.
        self.spill_target = None
        # Tx traffic is arbitrated at lower priority than instruction
        # fetches: the motivation data (Figure 5b) shows the fetch port is
        # idle 10-20+ cycles between accesses, so translation accesses slot
        # into idle cycles and never delay fetches. Tx accesses queue only
        # behind other Tx accesses, modelled by a separate port.
        from repro.sim.engine import Port as _Port

        self.tx_port = _Port(f"{name}.tx_port", units=1, occupancy=1)

    # ------------------------------------------------------------------
    # Direct-mapped translation indexing (Figure 9)
    # ------------------------------------------------------------------

    def _line_for(self, vpn: int) -> CacheLine:
        line_index = vpn % self.num_lines
        return self._sets[line_index % self.num_sets][line_index // self.num_sets]

    # ------------------------------------------------------------------
    # Victim-cache interface
    # ------------------------------------------------------------------

    def tx_lookup(self, key: tuple, anchor: int) -> Tuple[Optional[TranslationEntry], int]:
        """Probe for ``key``; a hit removes the entry (promotion to L1).

        Returns ``(entry_or_None, stage_latency)`` with port queuing delay
        folded into the latency.
        """

        start = self.tx_port.request(anchor)
        queue = start - anchor
        cache_line = self._line_for(key[2])
        if not cache_line.is_tx or not cache_line.tx_entries:
            # The target way's mode bit says IC-mode/invalid: cheap miss.
            self.stats.add(f"{self.name}.tx_misses")
            return None, queue + self.tx_config.tx_probe_latency
        entry = cache_line.tx_entries.get(key)
        if entry is None:
            # Tx-mode way but no tag match: pays the serial tag compare.
            self.stats.add(f"{self.name}.tx_misses")
            tag_miss = (
                self.tx_config.tx_tag_latency
                + self.tx_config.tx_serial_compare_latency
                + self.tx_config.mux_latency
                + self.tx_config.extra_wire_latency
            )
            return None, queue + tag_miss
        del cache_line.tx_entries[key]
        self._tx_entry_count -= 1
        if not cache_line.tx_entries:
            cache_line.make_invalid()
        self.stats.add(f"{self.name}.tx_hits")
        return entry, queue + self.tx_config.tx_hit_latency

    def tx_fill(self, entry: TranslationEntry, now: int
                ) -> Tuple[bool, Optional[TranslationEntry]]:
        """Install a victim translation; returns (accepted, displaced)."""

        cache_line = self._line_for(entry.vpn)
        if cache_line.valid and not cache_line.is_tx:
            if self.tx_config.replacement is ICacheReplacement.INSTRUCTION_AWARE:
                # Translations may never evict instructions.
                self.stats.add(f"{self.name}.tx_bypass_ic_mode")
                return False, None
            # Naive policy: claim the instruction line for translations.
            cache_line.make_invalid()
            self.stats.add(f"{self.name}.instructions_evicted_by_tx")
        # Fills are buffered and drained during idle port cycles; the L1
        # victim write-back is off every wave's critical path, so fills
        # charge no port occupancy and add no latency.
        if not cache_line.is_tx:
            cache_line.valid = True
            cache_line.is_tx = True
            cache_line.tx_entries = OrderedDict()
        tx_entries = cache_line.tx_entries
        assert tx_entries is not None
        if entry.key in tx_entries:
            tx_entries[entry.key] = entry
            tx_entries.move_to_end(entry.key)
            self.stats.add(f"{self.name}.tx_refills")
            return True, None

        victim = None
        new_tag = entry.tag_bits(self._index_bits)
        resident_tags = {
            key: resident.tag_bits(self._index_bits)
            for key, resident in tx_entries.items()
        }
        packable = set(self.codec.packable_subset(list(resident_tags.values()), new_tag))
        incompatible = [key for key, tag in resident_tags.items() if tag not in packable]
        if incompatible:
            for key in tx_entries:
                if key in incompatible:
                    victim = tx_entries.pop(key)
                    break
            self._tx_entry_count -= 1
            self.stats.add(f"{self.name}.tx_compression_evictions")
        if victim is None and len(tx_entries) >= self.tx_config.tx_per_line:
            _, victim = tx_entries.popitem(last=False)
            self._tx_entry_count -= 1
            self.stats.add(f"{self.name}.tx_evictions")

        tx_entries[entry.key] = entry
        self._tx_entry_count += 1
        if self._tx_entry_count > self.peak_tx_entries:
            self.peak_tx_entries = self._tx_entry_count
        self.stats.add(f"{self.name}.tx_fills")
        return True, victim

    # ------------------------------------------------------------------
    # Instruction-side policy overrides
    # ------------------------------------------------------------------

    def _choose_instruction_victim(self, cache_set: List[CacheLine]) -> CacheLine:
        """Instruction fills prefer invalid lines, then Tx-mode LRU lines.

        Under the NAIVE policy this matches the baseline (mode-oblivious
        LRU); under INSTRUCTION_AWARE it implements the Section 4.3.2 rules.
        """

        for cache_line in cache_set:
            if not cache_line.valid:
                return cache_line
        if self.tx_config.replacement is ICacheReplacement.INSTRUCTION_AWARE:
            tx_lines = [line for line in cache_set if line.is_tx]
            if tx_lines:
                return min(tx_lines, key=lambda line: line.lru)
        return min(cache_set, key=lambda line: line.lru)

    def _on_instruction_claim(self, cache_line: CacheLine) -> None:
        """An instruction fill reclaims a whole Tx line (Section 4.3.2).

        The displaced translations are counted and forwarded to the L2 TLB
        (flow 8 of Figure 12) rather than silently invalidated.
        """

        if not cache_line.is_tx or not cache_line.tx_entries:
            return
        count = len(cache_line.tx_entries)
        self._tx_entry_count -= count
        self.stats.add(f"{self.name}.tx_dropped_by_ifill", count)
        if self.spill_target is not None:
            for entry in cache_line.tx_entries.values():
                self.spill_target.insert(entry)
            self.stats.add(f"{self.name}.tx_spilled_by_ifill", count)

    # ------------------------------------------------------------------
    # Kernel-boundary flush optimization (Section 4.3.3)
    # ------------------------------------------------------------------

    def on_kernel_boundary(self, next_kernel_same: bool) -> None:
        if not self.tx_config.flush_on_kernel_boundary:
            return
        if next_kernel_same:
            # The runtime suppresses the flush for back-to-back launches of
            # the same kernel (e.g. NW's nw_kernel1).
            self.stats.add(f"{self.name}.flush_suppressed")
            return
        self.flush_instructions()

    def tx_entry_count(self) -> int:
        return self._tx_entry_count

    def invalidate_vpn(self, vpn: int) -> int:
        """Shootdown support (Section 7.1)."""

        cache_line = self._line_for(vpn)
        if not cache_line.is_tx or not cache_line.tx_entries:
            return 0
        doomed = [key for key in cache_line.tx_entries if key[2] == vpn]
        for key in doomed:
            del cache_line.tx_entries[key]
        self._tx_entry_count -= len(doomed)
        if not cache_line.tx_entries:
            cache_line.make_invalid()
        if doomed:
            self.stats.add(f"{self.name}.tx_invalidations", len(doomed))
        return len(doomed)
