"""Base-delta compression of co-resident translation tags.

Both reconfigurable structures squeeze several translation tags into the
space of one (Figures 7b and 10c):

- LDS: three 32-bit tags compressed into one 8-byte word using a 16-bit base
  plus three 16-bit deltas;
- I-cache: eight 39-bit tags into the widened 12-byte tag using a 32-bit
  base plus eight 8-bit deltas.

The functional model: a group of tags is packable iff every tag's delta from
the group's minimum tag fits in the per-tag delta width. A fill whose tag
cannot pack with the resident tags must first evict residents until the
group packs again (the paper does not detail this corner; eviction of the
LRU incompatible resident is the natural hardware behaviour and we count how
often it happens).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


class BaseDeltaCodec:
    """Packability test for base-delta-compressed tag groups."""

    def __init__(self, base_bits: int, delta_bits: int) -> None:
        if base_bits < 1 or delta_bits < 1:
            raise ValueError("base and delta widths must be positive")
        self.base_bits = base_bits
        self.delta_bits = delta_bits
        self._delta_limit = 1 << delta_bits

    def can_pack(self, tags: Sequence[int]) -> bool:
        """Whether ``tags`` can co-reside in one compressed tag group.

        The base field anchors the group's shared upper bits (whatever they
        are), so packability depends only on the spread between the tags:
        every delta from the group minimum must fit ``delta_bits``.
        """

        if not tags:
            return True
        lo = min(tags)
        if lo < 0:
            raise ValueError("tags must be non-negative")
        return (max(tags) - lo) < self._delta_limit

    def packable_subset(self, resident: Sequence[int], incoming: int) -> List[int]:
        """Residents (values) that remain packable alongside ``incoming``.

        Keeps the residents closest to the incoming tag; the caller evicts
        the rest.
        """

        keep = [tag for tag in resident if abs(tag - incoming) < self._delta_limit]
        while keep and not self.can_pack(keep + [incoming]):
            # Drop the resident farthest from the incoming tag.
            keep.remove(max(keep, key=lambda tag: abs(tag - incoming)))
        return keep

    def compressed_bits(self, count: int) -> int:
        """Size of a compressed group of ``count`` tags, in bits."""

        return self.base_bits + count * self.delta_bits
