"""Reconfigurable LDS: a per-CU Tx victim cache over idle segments (§4.2).

Translations map direct-mapped onto 32-byte segments by VPN (Figure 6c); a
segment in Tx-mode co-locates one 8-byte base-delta-compressed tag word with
three 8-byte translations, giving a 3-way set-associative victim cache. A
segment currently allocated to an application (LDS-mode) can never be
claimed by a translation: fills to such segments are rejected and bypass to
the I-cache per the Figure 12 flow. Conversely a new work-group allocation
silently reclaims Tx-mode segments (translations dropped).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.config import LDSTxConfig
from repro.core.compression import BaseDeltaCodec
from repro.gpu.lds import LocalDataShare, SegmentMode
from repro.sim.stats import Stats
from repro.tlb.base import TranslationEntry


class LDSTxCache:
    """Translation overlay on one CU's LDS."""

    def __init__(
        self,
        lds: LocalDataShare,
        config: LDSTxConfig,
        stats: Optional[Stats] = None,
        name: str = "lds_tx",
    ) -> None:
        self.lds = lds
        self.config = config
        self.name = name
        self.stats = stats if stats is not None else Stats()
        self.ways = config.ways_per_segment
        self.num_segments = lds.num_segments
        self._index_bits = max(1, (self.num_segments - 1).bit_length())
        self.codec = BaseDeltaCodec(config.tag_base_bits, config.tag_delta_bits)
        # Only Tx-mode segments appear here: segment index -> key -> entry.
        self._segments: Dict[int, "OrderedDict[tuple, TranslationEntry]"] = {}
        self._entry_count = 0
        self.peak_entries = 0
        # Like the reconfigurable I-cache, Tx traffic uses idle LDS port
        # bandwidth (Figure 4b) at lower priority than application
        # accesses: it queues only behind other Tx accesses.
        from repro.sim.engine import Port as _Port

        self.tx_port = _Port(f"{name}.tx_port", units=1, occupancy=1)
        lds.tx_overwrite_callback = self._segment_reclaimed

    # ------------------------------------------------------------------
    # Mode interactions with the application allocator
    # ------------------------------------------------------------------

    def _segment_reclaimed(self, segment_index: int) -> None:
        """An application allocation overwrote a Tx-mode segment."""

        dropped = self._segments.pop(segment_index, None)
        if dropped:
            self._entry_count -= len(dropped)
            self.stats.add(f"{self.name}.dropped_by_allocation", len(dropped))

    def _segment_for(self, vpn: int) -> int:
        return vpn % self.num_segments

    # ------------------------------------------------------------------
    # Victim-cache interface
    # ------------------------------------------------------------------

    def lookup(self, key: tuple, anchor: int) -> Tuple[Optional[TranslationEntry], int]:
        """Probe for ``key``; on a hit the entry is removed (promotion).

        Returns ``(entry_or_None, stage_latency)`` where the latency
        includes any port queuing delay. A probe of an LDS-mode segment
        costs only the 2-cycle mode check.
        """

        segment_index = self._segment_for(key[2])
        start = self.tx_port.request(anchor)
        queue = start - anchor
        segment = self._segments.get(segment_index)
        if segment is None:
            # LDS-mode or free segment: quick mode-bit check, miss.
            self.stats.add(f"{self.name}.misses")
            return None, queue + self.config.tx_probe_latency
        entry = segment.get(key)
        if entry is None:
            self.stats.add(f"{self.name}.misses")
            return None, queue + self.config.tx_probe_latency
        del segment[key]
        if not segment:
            del self._segments[segment_index]
            self.lds.mode[segment_index] = SegmentMode.FREE
        self._entry_count -= 1
        self.stats.add(f"{self.name}.hits")
        return entry, queue + self.config.tx_hit_latency

    def fill(self, entry: TranslationEntry, now: int
             ) -> Tuple[bool, Optional[TranslationEntry]]:
        """Install an L1-TLB victim; returns (accepted, displaced_victim)."""

        segment_index = self._segment_for(entry.vpn)
        mode = self.lds.mode[segment_index]
        if mode == SegmentMode.LDS:
            # Tx-mode may never overwrite LDS-mode (Section 4.2.4).
            self.stats.add(f"{self.name}.bypass_lds_mode")
            return False, None
        # Fills drain opportunistically during idle port cycles (off the
        # critical path) and charge no port occupancy.
        segment = self._segments.get(segment_index)
        if segment is None:
            segment = OrderedDict()
            self._segments[segment_index] = segment
            self.lds.mode[segment_index] = SegmentMode.TX
        if entry.key in segment:
            segment[entry.key] = entry
            segment.move_to_end(entry.key)
            self.stats.add(f"{self.name}.refills")
            return True, None

        victim = None
        new_tag = entry.tag_bits(self._index_bits)
        resident_tags = {
            key: resident.tag_bits(self._index_bits)
            for key, resident in segment.items()
        }
        packable = set(self.codec.packable_subset(list(resident_tags.values()), new_tag))
        incompatible = [key for key, tag in resident_tags.items() if tag not in packable]
        if incompatible:
            # Evict the LRU incompatible resident to restore packability.
            for key in segment:
                if key in incompatible:
                    victim = segment.pop(key)
                    break
            self._entry_count -= 1
            self.stats.add(f"{self.name}.compression_evictions")
        if victim is None and len(segment) >= self.ways:
            _, victim = segment.popitem(last=False)
            self._entry_count -= 1
            self.stats.add(f"{self.name}.evictions")

        segment[entry.key] = entry
        self._entry_count += 1
        if self._entry_count > self.peak_entries:
            self.peak_entries = self._entry_count
        self.stats.add(f"{self.name}.fills")
        return True, victim

    def invalidate_vpn(self, vpn: int) -> int:
        """Shootdown support (Section 7.1)."""

        segment_index = self._segment_for(vpn)
        segment = self._segments.get(segment_index)
        if not segment:
            return 0
        doomed = [key for key in segment if key[2] == vpn]
        for key in doomed:
            del segment[key]
        self._entry_count -= len(doomed)
        if not segment:
            del self._segments[segment_index]
            self.lds.mode[segment_index] = SegmentMode.FREE
        if doomed:
            self.stats.add(f"{self.name}.invalidations", len(doomed))
        return len(doomed)

    @property
    def entry_count(self) -> int:
        return self._entry_count

    @property
    def capacity_entries(self) -> int:
        """Upper bound on entries given current application allocations."""

        free = sum(1 for mode in self.lds.mode if mode != SegmentMode.LDS)
        return free * self.ways
