"""The paper's primary contribution: reconfigurable Tx victim caches.

- :mod:`repro.core.compression` — base-delta tag compression (Figs 7, 10).
- :mod:`repro.core.reconfig_lds` — LDS as a Tx victim cache (Section 4.2).
- :mod:`repro.core.reconfig_icache` — I-cache as a Tx victim cache (4.3).
- :mod:`repro.core.fill_flow` — the Figure 12 victim fill flows.
- :mod:`repro.core.translation` — per-CU translation lookup path (4.4).
"""

from repro.core.compression import BaseDeltaCodec
from repro.core.fill_flow import VictimFillFlow
from repro.core.reconfig_icache import ReconfigurableICache
from repro.core.reconfig_lds import LDSTxCache
from repro.core.translation import TranslationService

__all__ = [
    "BaseDeltaCodec",
    "LDSTxCache",
    "ReconfigurableICache",
    "TranslationService",
    "VictimFillFlow",
]
