"""Per-CU translation lookup path (Section 4.4).

On an L1-TLB miss the reconfigurable structures are probed *in order of
proximity*: the CU-private LDS first (2-cycle mode probe), then the shared
I-cache, then the shared L2 TLB, then (under DUCATI) the L2-resident and
in-memory translation stores, and finally the IOMMU walk. A hit in the LDS
or I-cache removes the entry there and promotes it to the L1 TLB; the L1
victim re-enters the Figure 12 fill flow.

Timing discipline: every shared-port occupancy along the path is charged at
the *anchor* (the time the wave issued the request). Wave anchors are
globally nondecreasing under the scheduler, which keeps the occupancy model
consistent; stage latencies and queue delays accumulate separately into the
returned completion time. (Charging a downstream stage at its derived
future time would reserve ports in the future and falsely block every
slower wave behind the reservation.)

The service also owns the in-flight merge table (requests to a page whose
translation is already being resolved wait on the existing request instead
of issuing a duplicate walk) and the CU-sharing tracker behind Figure 14a.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.config import SystemConfig
from repro.core.fill_flow import VictimFillFlow
from repro.core.reconfig_icache import ReconfigurableICache
from repro.core.reconfig_lds import LDSTxCache
from repro.pagetable.iommu import IOMMU
from repro.pagetable.page_table import PageTable
from repro.sim.engine import Port
from repro.sim.stats import Stats
from repro.tlb.base import TranslationEntry
from repro.tlb.coalescer import InFlightTable
from repro.tlb.fully_assoc import FullyAssociativeTLB
from repro.tlb.set_assoc import SetAssociativeTLB


class SharingTracker:
    """Which CUs translated each page (Figure 14a).

    Per-VPN bitmask of requesting CUs; cheap enough to keep exactly.
    """

    def __init__(self) -> None:
        self._masks: Dict[int, int] = {}

    def record(self, cu_id: int, vpn: int) -> None:
        self._masks[vpn] = self._masks.get(vpn, 0) | (1 << cu_id)

    @property
    def total_pages(self) -> int:
        return len(self._masks)

    @property
    def shared_pages(self) -> int:
        return sum(1 for mask in self._masks.values() if mask & (mask - 1))

    @property
    def shared_fraction(self) -> float:
        total = self.total_pages
        return self.shared_pages / total if total else 0.0

    def is_shared(self, vpn: int) -> bool:
        """Whether 2+ CUs have translated ``vpn`` so far."""

        mask = self._masks.get(vpn, 0)
        return bool(mask & (mask - 1))


class TranslationService:
    """One CU's address-translation front end."""

    def __init__(
        self,
        cu_id: int,
        config: SystemConfig,
        page_table: PageTable,
        l2_tlb: SetAssociativeTLB,
        l2_tlb_port: Port,
        iommu: IOMMU,
        sharing: SharingTracker,
        stats: Optional[Stats] = None,
        lds_tx: Optional[LDSTxCache] = None,
        icache_tx: Optional[ReconfigurableICache] = None,
        ducati=None,
        subregion=None,
        vmid: int = 0,
    ) -> None:
        self.cu_id = cu_id
        self.config = config
        self.page_table = page_table
        self.stats = stats if stats is not None else Stats()
        self.name = f"cu{cu_id}"
        self.l1_tlb = FullyAssociativeTLB(
            config.tlb.l1_entries, name="l1_tlb", stats=self.stats
        )
        self.l1_port = Port(
            f"{self.name}.l1_tlb_port", units=2,
            occupancy=config.tlb.l1_port_occupancy,
        )
        self.l2_tlb = l2_tlb
        self.l2_tlb_port = l2_tlb_port
        self.iommu = iommu
        self.sharing = sharing
        self.lds_tx = lds_tx
        self.icache_tx = icache_tx
        self.ducati = ducati
        self.subregion = subregion
        self.vmid = vmid
        self.mshr = InFlightTable(stats=self.stats, name="tx_mshr")
        self.fill_flow = VictimFillFlow(
            l2_tlb, lds_tx=lds_tx, icache_tx=icache_tx, ducati=ducati,
            stats=self.stats, lds_first=config.lds_before_icache,
            sharing=sharing, dedup_shared=config.dedup_shared_fills,
        )
        # Victim-cache probe order on an L1 miss (Section 4.4; reversible
        # for the ordering ablation).
        stages = []
        if lds_tx is not None:
            stages.append(("lds", lds_tx.lookup))
        if icache_tx is not None:
            stages.append(("icache", icache_tx.tx_lookup))
        if not config.lds_before_icache:
            stages.reverse()
        self._lookup_stages = stages

    # ------------------------------------------------------------------

    def _promote(self, entry: TranslationEntry, anchor: int) -> None:
        """Install in the L1 TLB; the displaced entry enters the fill flow."""

        victim = self.l1_tlb.insert(entry)
        if victim is not None:
            self.fill_flow.fill(victim, anchor)

    def translate(self, vpn: int, now: int) -> Tuple[int, int]:
        """Translate ``vpn``; returns (completion_time, pfn)."""

        self.stats.add("translations")
        self.sharing.record(self.cu_id, vpn)
        key = (self.vmid, 0, vpn)
        tlb_cfg = self.config.tlb

        start = self.l1_port.request(now)
        latency = (start - now) + tlb_cfg.l1_latency
        entry = self.l1_tlb.lookup(key)
        if entry is not None:
            return now + latency, entry.pfn

        merged = self.mshr.check(key, now + latency)
        if merged is not None:
            return merged, self.page_table.translate(self.vmid, vpn)

        completion, pfn = self._miss_path(key, vpn, now, latency)
        self.mshr.register(key, completion, now)
        return completion, pfn

    def _miss_path(
        self, key: tuple, vpn: int, anchor: int, latency: int
    ) -> Tuple[int, int]:
        """L1-miss path: LDS → I-cache → L2 TLB → subregion → DUCATI → IOMMU.

        ``anchor`` is the wave's issue time (used for all port occupancy);
        ``latency`` is the delay accumulated so far.
        """

        for label, lookup in self._lookup_stages:
            entry, stage = lookup(key, anchor)
            latency += stage
            if entry is not None:
                self.stats.add(f"tx_serviced_by.{label}")
                self._promote(entry, anchor)
                return anchor + latency, entry.pfn

        start = self.l2_tlb_port.request(anchor)
        latency += (start - anchor) + self.config.tlb.l2_latency
        entry = self.l2_tlb.lookup(key)
        if entry is not None:
            self.stats.add("tx_serviced_by.l2_tlb")
            self._promote(entry, anchor)
            return anchor + latency, entry.pfn

        if self.subregion is not None:
            entry, stage = self.subregion.lookup(key, anchor)
            latency += stage
            if entry is not None:
                self.stats.add("tx_serviced_by.subregion")
                self._promote(entry, anchor)
                self.l2_tlb.insert(entry)
                return anchor + latency, entry.pfn

        if self.ducati is not None:
            entry, stage = self.ducati.lookup(key, anchor)
            latency += stage
            if entry is not None:
                self.stats.add("tx_serviced_by.ducati")
                self._promote(entry, anchor)
                self.l2_tlb.insert(entry)
                return anchor + latency, entry.pfn

        stage, entry = self.iommu.translate(self.vmid, vpn, anchor)
        latency += stage
        self.stats.add("tx_serviced_by.iommu")
        if self.subregion is not None:
            # The walker path just resolved this page: learn contiguity
            # around it (read-only on the page table) and coalesce.
            self.subregion.observe(key, entry.pfn)
        # A resolved walk fills both TLB levels (the L2 keeps its copy when
        # the L1 victim later moves into the LDS/I-cache victim caches).
        self.l2_tlb.insert(entry)
        self._promote(entry, anchor)
        return anchor + latency, entry.pfn

    # ------------------------------------------------------------------

    def note_locality_hits(self, count: int) -> None:
        """Credit L1-TLB hits from the remaining instructions of a strip.

        A macro-op's strip of instructions re-touches the pages the first
        instruction translated; those lookups hit the L1 TLB and contribute
        to its hit ratio (Table 2) without further timing effect.
        """

        if count > 0:
            self.stats.add("l1_tlb.hits", count)

    def shootdown(self, vpn: int) -> int:
        """Invalidate ``vpn`` everywhere this CU caches it (Section 7.1)."""

        count = self.l1_tlb.invalidate_vpn(vpn)
        if self.lds_tx is not None:
            count += self.lds_tx.invalidate_vpn(vpn)
        if self.icache_tx is not None:
            count += self.icache_tx.invalidate_vpn(vpn)
        return count
