"""Dependency-free ASCII charts for terminal reports.

The paper's figures are bar charts (per-app speedups) and series (TLB-size
sweeps); these renderers make the reproduced figures legible directly in a
terminal or a markdown code block.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

_BAR = "█"
_HALF = "▌"


def bar_chart(
    values: Dict[str, float],
    width: int = 48,
    baseline: Optional[float] = None,
    value_format: str = ".3f",
    title: str = "",
) -> str:
    """Horizontal bar chart, one labelled bar per entry.

    With ``baseline`` set, a marker column shows where the baseline value
    falls (e.g. 1.0 for speedup charts).
    """

    if not values:
        raise ValueError("nothing to chart")
    label_width = max(len(label) for label in values)
    peak = max(max(values.values()), baseline or 0.0)
    if peak <= 0:
        raise ValueError("bar charts need a positive maximum")
    scale = width / peak

    lines = [title] if title else []
    marker = int(round(baseline * scale)) if baseline is not None else None
    for label, value in values.items():
        units = value * scale
        filled = int(units)
        bar = _BAR * filled + (_HALF if units - filled >= 0.5 else "")
        if marker is not None and len(bar) < marker:
            bar = bar.ljust(marker - 1) + "|"
        lines.append(
            f"{label.rjust(label_width)}  {bar.ljust(width)} {value:{value_format}}"
        )
    return "\n".join(lines)


def series_chart(
    points: Sequence[Tuple[object, float]],
    height: int = 10,
    width_per_point: int = 6,
    value_format: str = ".2f",
    title: str = "",
) -> str:
    """A column chart for sweeps (x label -> value)."""

    if not points:
        raise ValueError("nothing to chart")
    values = [value for _, value in points]
    peak = max(values)
    if peak <= 0:
        raise ValueError("series charts need a positive maximum")

    rows = []
    for level in range(height, 0, -1):
        threshold = peak * level / height
        cells = []
        for value in values:
            cells.append((_BAR if value >= threshold else " ").center(width_per_point))
        rows.append("".join(cells))
    labels = "".join(str(label)[: width_per_point - 1].center(width_per_point)
                     for label, _ in points)
    numbers = "".join(
        format(value, value_format)[: width_per_point - 1].center(width_per_point)
        for value in values
    )
    lines = [title] if title else []
    lines.extend(rows)
    lines.append("-" * (width_per_point * len(points)))
    lines.append(labels)
    lines.append(numbers)
    return "\n".join(lines)
