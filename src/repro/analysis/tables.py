"""Row-oriented table rendering (markdown / plain text / CSV).

All experiment harnesses produce lists of dict rows; these helpers render
them for terminals, EXPERIMENTS.md, and spreadsheet export without pulling
in any plotting dependency.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, List, Optional, Sequence


def _columns(rows: Sequence[Dict], columns: Optional[Sequence[str]]) -> List[str]:
    if columns is not None:
        return list(columns)
    ordered: List[str] = []
    for row in rows:
        for name in row:
            if name not in ordered:
                ordered.append(name)
    return ordered


def _cell(value, float_format: str) -> str:
    if isinstance(value, float):
        return format(value, float_format)
    if value is None:
        return ""
    return str(value)


def format_markdown(
    rows: Sequence[Dict],
    columns: Optional[Sequence[str]] = None,
    float_format: str = ".3f",
) -> str:
    """GitHub-flavoured markdown table."""

    names = _columns(rows, columns)
    lines = [
        "| " + " | ".join(names) + " |",
        "| " + " | ".join("---" for _ in names) + " |",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(_cell(row.get(n), float_format) for n in names) + " |"
        )
    return "\n".join(lines)


def format_plain(
    rows: Sequence[Dict],
    columns: Optional[Sequence[str]] = None,
    float_format: str = ".3f",
) -> str:
    """Aligned fixed-width text table for terminals."""

    names = _columns(rows, columns)
    rendered = [
        [_cell(row.get(name), float_format) for name in names] for row in rows
    ]
    widths = [
        max(len(name), *(len(line[i]) for line in rendered)) if rendered else len(name)
        for i, name in enumerate(names)
    ]
    header = "  ".join(name.ljust(width) for name, width in zip(names, widths))
    divider = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(cell.rjust(width) for cell, width in zip(line, widths))
        for line in rendered
    ]
    return "\n".join([header, divider, *body])


def format_csv(
    rows: Sequence[Dict], columns: Optional[Sequence[str]] = None
) -> str:
    """RFC-4180 CSV (raw values, no float rounding)."""

    names = _columns(rows, columns)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=names, extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow({name: row.get(name, "") for name in names})
    return buffer.getvalue()
