"""Result analysis: comparison tables, ASCII charts, CSV export."""

from repro.analysis.charts import bar_chart, series_chart
from repro.analysis.summary import compare_schemes, counter_diff, speedup_summary
from repro.analysis.tables import format_csv, format_markdown, format_plain

__all__ = [
    "bar_chart",
    "compare_schemes",
    "counter_diff",
    "format_csv",
    "format_markdown",
    "format_plain",
    "series_chart",
    "speedup_summary",
]
