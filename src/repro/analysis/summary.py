"""SimResult comparison helpers.

Everything a user needs to answer "what did the scheme change?" for their
own runs: per-app scheme comparisons, speedup summaries by Table 2
category, and structured counter diffs between two results.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.sim.results import SimResult, geomean


def speedup_summary(
    baselines: Mapping[str, SimResult],
    candidates: Mapping[str, SimResult],
    categories: Optional[Mapping[str, str]] = None,
) -> Dict[str, object]:
    """Summarize candidate-vs-baseline speedups across applications.

    Returns per-app speedups, the overall gmean, and per-category gmeans
    when ``categories`` (app -> "H"/"M"/"L") is provided.
    """

    missing = set(baselines) ^ set(candidates)
    if missing:
        raise ValueError(f"apps without both runs: {sorted(missing)}")
    per_app = {
        name: baselines[name].cycles / candidates[name].cycles
        for name in baselines
    }
    summary: Dict[str, object] = {
        "per_app": per_app,
        "gmean": geomean(per_app.values()),
        "best": max(per_app, key=per_app.get),
        "worst": min(per_app, key=per_app.get),
    }
    if categories:
        by_category: Dict[str, List[float]] = {}
        for name, value in per_app.items():
            by_category.setdefault(categories.get(name, "?"), []).append(value)
        summary["category_gmeans"] = {
            category: geomean(values) for category, values in by_category.items()
        }
    return summary


def compare_schemes(
    results: Mapping[str, Mapping[str, SimResult]],
    baseline_scheme: str = "baseline",
) -> List[Dict[str, object]]:
    """Build per-app comparison rows from {scheme: {app: SimResult}}.

    Each row carries the app name plus one speedup column per non-baseline
    scheme — directly renderable with :mod:`repro.analysis.tables`.
    """

    if baseline_scheme not in results:
        raise ValueError(f"missing baseline scheme {baseline_scheme!r}")
    baselines = results[baseline_scheme]
    rows: List[Dict[str, object]] = []
    for app, base in baselines.items():
        row: Dict[str, object] = {"app": app}
        for scheme, sims in results.items():
            if scheme == baseline_scheme:
                continue
            if app in sims:
                row[scheme] = base.cycles / sims[app].cycles
        rows.append(row)
    return rows


def counter_diff(
    before: SimResult,
    after: SimResult,
    prefixes: Optional[Iterable[str]] = None,
    min_relative_change: float = 0.01,
) -> List[Tuple[str, float, float, float]]:
    """Counters that changed between two results.

    Returns (name, before, after, relative_change) sorted by magnitude of
    relative change, filtered to ``prefixes`` when given.
    """

    names = set(before.counters) | set(after.counters)
    if prefixes is not None:
        prefixes = tuple(prefixes)
        names = {n for n in names if n.startswith(prefixes)}
    diffs = []
    for name in names:
        old = before.counters.get(name, 0.0)
        new = after.counters.get(name, 0.0)
        base = max(abs(old), abs(new), 1e-12)
        change = (new - old) / base
        if abs(change) >= min_relative_change:
            diffs.append((name, old, new, change))
    diffs.sort(key=lambda item: -abs(item[3]))
    return diffs
