"""DRAM timing model with banks and an open-row buffer.

Addresses map to banks by line interleaving; each bank keeps a busy-until
time (queuing) and its open row (activate counting for the energy model).
The granularity is deliberately coarse — the paper's results depend on how
many DRAM accesses occur (page walks vs data), not on DDR protocol detail.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.config import DRAMConfig
from repro.sim.stats import Stats

_ROW_SHIFT = 14  # 16KB rows
_LINE_SHIFT = 6  # 64B interleave granule


class DRAM:
    """Banked DRAM with per-bank occupancy and row-buffer tracking."""

    def __init__(self, config: DRAMConfig, stats: Optional[Stats] = None,
                 name: str = "dram") -> None:
        self.config = config
        self.name = name
        self.stats = stats if stats is not None else Stats()
        banks = config.total_banks
        self._busy_until = [0] * banks
        self._open_row = [-1] * banks
        self._num_banks = banks

    def access(self, addr: int, now: int, is_write: bool = False) -> Tuple[int, int]:
        """Issue one DRAM access; returns (start_time, completion_time)."""

        # XOR-fold higher address bits into the bank index so page-aligned
        # strides (pfn*page_size keeps the low line bits constant) spread
        # across banks instead of hammering one.
        bank = (
            (addr >> _LINE_SHIFT) ^ (addr >> 12) ^ (addr >> 18)
        ) % self._num_banks
        row = addr >> _ROW_SHIFT
        start = now if now > self._busy_until[bank] else self._busy_until[bank]
        latency = self.config.access_latency
        if self._open_row[bank] != row:
            self._open_row[bank] = row
            self.stats.add(f"{self.name}.activates")
            latency += self.config.bank_occupancy  # precharge + activate
        self._busy_until[bank] = start + self.config.bank_occupancy
        self.stats.add(f"{self.name}.writes" if is_write else f"{self.name}.reads")
        if start > now:
            self.stats.add(f"{self.name}.queue_cycles", start - now)
        return start, start + latency

    @property
    def total_accesses(self) -> float:
        return self.stats.get(f"{self.name}.reads") + self.stats.get(f"{self.name}.writes")
