"""Memory substrate: data caches, DRAM timing, DRAM energy model."""

from repro.memory.cache import SetAssociativeCache
from repro.memory.dram import DRAM
from repro.memory.energy import DRAMEnergyModel
from repro.memory.hierarchy import MemoryHierarchy

__all__ = ["DRAM", "DRAMEnergyModel", "MemoryHierarchy", "SetAssociativeCache"]
