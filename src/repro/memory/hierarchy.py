"""Two-level data cache hierarchy in front of DRAM.

Each CU owns a private L1; the L2 is shared GPU-wide (with a port modelling
its finite bandwidth) and backed by the banked DRAM model. Page-table
accesses from the IOMMU walkers enter at the shared L2 (:meth:`SharedL2.access`),
matching the paper's setup where walks are cached but miss the per-CU L1s.
"""

from __future__ import annotations

from typing import Optional

from repro.config import DataCacheConfig
from repro.memory.cache import SetAssociativeCache
from repro.memory.dram import DRAM
from repro.sim.engine import Port
from repro.sim.stats import Stats


class SharedL2:
    """The GPU-wide shared L2 data cache plus its DRAM backing."""

    def __init__(
        self,
        config: DataCacheConfig,
        dram: DRAM,
        stats: Optional[Stats] = None,
        reserved_ways: int = 0,
        port_units: int = 4,
    ) -> None:
        self.config = config
        self.stats = stats if stats is not None else Stats()
        self.cache = SetAssociativeCache(
            config.l2_size_bytes,
            config.l2_ways,
            config.line_bytes,
            name="l2_cache",
            stats=self.stats,
            reserved_ways=reserved_ways,
        )
        self.port = Port("l2_port", units=port_units, occupancy=1)
        self.dram = dram

    def access(self, addr: int, now: int, is_write: bool = False) -> int:
        """Access entering at the L2; returns the completion time."""

        start = self.port.request(now)
        if self.cache.access(addr, is_write):
            return start + self.config.l2_latency
        _, done = self.dram.access(addr, start + self.config.l2_latency, is_write)
        return done


class MemoryHierarchy:
    """A CU's view of the data memory system: private L1 over shared L2."""

    def __init__(
        self,
        config: DataCacheConfig,
        shared_l2: SharedL2,
        stats: Optional[Stats] = None,
        name: str = "l1_cache",
    ) -> None:
        self.config = config
        self.stats = stats if stats is not None else Stats()
        self.l1 = SetAssociativeCache(
            config.l1_size_bytes,
            config.l1_ways,
            config.line_bytes,
            name=name,
            stats=self.stats,
        )
        self.shared_l2 = shared_l2

    def access(self, addr: int, now: int, is_write: bool = False) -> int:
        """Access from a SIMD lane group; returns the completion time."""

        return self.access_ex(addr, now, is_write)[0]

    def access_ex(self, addr: int, now: int, is_write: bool = False):
        """Like :meth:`access` but also reports the servicing level.

        Returns ``(completion_time, level)`` with level in
        ``("l1", "l2", "dram")``.
        """

        if self.l1.access(addr, is_write):
            return now + self.config.l1_latency, "l1"
        now += self.config.l1_latency
        shared = self.shared_l2
        start = shared.port.request(now)
        if shared.cache.access(addr, is_write):
            return start + shared.config.l2_latency, "l2"
        _, done = shared.dram.access(addr, start + shared.config.l2_latency, is_write)
        return done, "dram"
