"""Set-associative data caches (L1 per-CU, L2 shared; Table 1)."""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.sim.stats import Stats


class SetAssociativeCache:
    """An LRU set-associative cache tracked at cache-line granularity.

    Only presence is modelled (no data payloads); the timing contribution is
    supplied by the enclosing :class:`~repro.memory.hierarchy.MemoryHierarchy`.
    ``reserved_ways`` models DUCATI-style capacity contention: ways claimed
    by translations are unavailable to data lines (Section 6.3.4).
    """

    def __init__(
        self,
        size_bytes: int,
        ways: int,
        line_bytes: int = 64,
        name: str = "cache",
        stats: Optional[Stats] = None,
        reserved_ways: int = 0,
    ) -> None:
        if size_bytes % (ways * line_bytes):
            raise ValueError("cache size must be a multiple of ways*line size")
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (ways * line_bytes)
        if self.num_sets < 1:
            raise ValueError("cache has no sets")
        if not 0 <= reserved_ways < ways:
            raise ValueError("reserved_ways must leave at least one data way")
        self.effective_ways = ways - reserved_ways
        self.name = name
        self.stats = stats if stats is not None else Stats()
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def _index(self, line_addr: int) -> int:
        return line_addr % self.num_sets

    def access(self, addr: int, is_write: bool = False) -> bool:
        """Access the line containing ``addr``; returns hit/miss and fills."""

        line_addr = addr // self.line_bytes
        cache_set = self._sets[self._index(line_addr)]
        if line_addr in cache_set:
            cache_set.move_to_end(line_addr)
            self.stats.add(f"{self.name}.hits")
            return True
        self.stats.add(f"{self.name}.misses")
        if len(cache_set) >= self.effective_ways:
            cache_set.popitem(last=False)
            self.stats.add(f"{self.name}.evictions")
        cache_set[line_addr] = True
        return False

    def fill_low_priority(self, addr: int) -> None:
        """Install a line at the LRU position (non-demand, low-priority fill).

        Used by DUCATI's translation lines: they claim capacity but are the
        first victims when data traffic needs the set.
        """

        line_addr = addr // self.line_bytes
        cache_set = self._sets[self._index(line_addr)]
        if line_addr in cache_set:
            cache_set.move_to_end(line_addr, last=False)
            return
        if len(cache_set) >= self.effective_ways:
            cache_set.popitem(last=False)
            self.stats.add(f"{self.name}.evictions")
        cache_set[line_addr] = True
        cache_set.move_to_end(line_addr, last=False)

    def probe(self, addr: int) -> bool:
        return (addr // self.line_bytes) in self._sets[self._index(addr // self.line_bytes)]

    def invalidate_all(self) -> None:
        for cache_set in self._sets:
            cache_set.clear()
