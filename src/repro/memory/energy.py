"""DRAMPower-style energy estimation (Figure 13c substrate).

The paper fed simulator command traces to the DRAMPower tool; here the same
accounting is done directly from the DRAM model's event counters: per-event
energies for reads, writes and activates, plus background and refresh power
integrated over the simulated cycle count. Figure 13c reports *normalized*
energy, so only the relative weights matter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DRAMEnergyConfig
from repro.sim.stats import Stats


@dataclass(frozen=True)
class EnergyBreakdown:
    """DRAM energy in nanojoules, split by source."""

    read_nj: float
    write_nj: float
    activate_nj: float
    background_nj: float
    refresh_nj: float

    @property
    def total_nj(self) -> float:
        return (
            self.read_nj
            + self.write_nj
            + self.activate_nj
            + self.background_nj
            + self.refresh_nj
        )


class DRAMEnergyModel:
    """Computes an :class:`EnergyBreakdown` from DRAM counters."""

    def __init__(self, config: DRAMEnergyConfig) -> None:
        self.config = config

    def estimate(self, dram_stats: Stats, cycles: int, name: str = "dram") -> EnergyBreakdown:
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        cfg = self.config
        return EnergyBreakdown(
            read_nj=dram_stats.get(f"{name}.reads") * cfg.read_nj,
            write_nj=dram_stats.get(f"{name}.writes") * cfg.write_nj,
            activate_nj=dram_stats.get(f"{name}.activates") * cfg.activate_nj,
            background_nj=cycles * cfg.background_nj_per_cycle,
            refresh_nj=cycles * cfg.refresh_nj_per_cycle,
        )
