"""Set-associative LRU TLB (the shared L2 TLB and IOMMU device TLBs)."""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.sim.stats import Stats
from repro.tlb.base import TranslationEntry


class SetAssociativeTLB:
    """A set-associative, LRU-replacement TLB.

    Supports the "perfect" mode of the motivation study (Section 3.1): a
    perfect TLB hits on every lookup and never walks.
    """

    def __init__(
        self,
        entries: int,
        ways: int,
        name: str = "l2_tlb",
        stats: Optional[Stats] = None,
        perfect: bool = False,
    ) -> None:
        if entries < 1 or ways < 1:
            raise ValueError("TLB needs positive entries and ways")
        if entries % ways:
            raise ValueError(f"{entries} entries not divisible by {ways} ways")
        self.capacity = entries
        self.ways = ways
        self.num_sets = entries // ways
        self.name = name
        self.perfect = perfect
        self.stats = stats if stats is not None else Stats()
        self._sets: List["OrderedDict[tuple, TranslationEntry]"] = [
            OrderedDict() for _ in range(self.num_sets)
        ]

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def _set_for(self, key: tuple) -> "OrderedDict[tuple, TranslationEntry]":
        return self._sets[key[2] % self.num_sets]

    def lookup(self, key: tuple) -> Optional[TranslationEntry]:
        if self.perfect:
            self.stats.add(f"{self.name}.hits")
            return TranslationEntry(vpn=key[2], pfn=key[2], vmid=key[0], vrf_id=key[1])
        tlb_set = self._set_for(key)
        entry = tlb_set.get(key)
        if entry is None:
            self.stats.add(f"{self.name}.misses")
            return None
        tlb_set.move_to_end(key)
        self.stats.add(f"{self.name}.hits")
        return entry

    def probe(self, key: tuple) -> bool:
        return self.perfect or key in self._set_for(key)

    def insert(self, entry: TranslationEntry) -> Optional[TranslationEntry]:
        if self.perfect:
            return None
        key = entry.key
        tlb_set = self._set_for(key)
        if key in tlb_set:
            tlb_set[key] = entry
            tlb_set.move_to_end(key)
            return None
        victim = None
        if len(tlb_set) >= self.ways:
            _, victim = tlb_set.popitem(last=False)
            self.stats.add(f"{self.name}.evictions")
        tlb_set[key] = entry
        self.stats.add(f"{self.name}.fills")
        return victim

    def invalidate(self, key: tuple) -> bool:
        tlb_set = self._set_for(key)
        if key in tlb_set:
            del tlb_set[key]
            self.stats.add(f"{self.name}.invalidations")
            return True
        return False

    def invalidate_vpn(self, vpn: int) -> int:
        count = 0
        for tlb_set in self._sets:
            doomed = [key for key in tlb_set if key[2] == vpn]
            for key in doomed:
                del tlb_set[key]
            count += len(doomed)
        if count:
            self.stats.add(f"{self.name}.invalidations", count)
        return count

    def flush(self) -> int:
        count = len(self)
        for tlb_set in self._sets:
            tlb_set.clear()
        if count:
            self.stats.add(f"{self.name}.flushes")
        return count
