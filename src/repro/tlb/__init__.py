"""TLB structures: fully-associative L1, set-associative L2, coalescer."""

from repro.tlb.base import TranslationEntry
from repro.tlb.coalescer import AccessCoalescer, InFlightTable
from repro.tlb.fully_assoc import FullyAssociativeTLB
from repro.tlb.set_assoc import SetAssociativeTLB

__all__ = [
    "AccessCoalescer",
    "FullyAssociativeTLB",
    "InFlightTable",
    "SetAssociativeTLB",
    "TranslationEntry",
]
