"""Shared translation-entry record.

Every TLB level, the reconfigurable LDS/I-cache victim caches, the IOMMU
device TLBs, and DUCATI's in-memory TLB all store the same
:class:`TranslationEntry`: a virtual page number, the physical frame it maps
to, and the address-space identifiers the paper carries in its tags
(Figure 7a: a 2-bit VM-ID and a 2-bit VRF-ID for SR-IOV virtualization).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TranslationEntry:
    """One cached virtual-to-physical translation."""

    vpn: int
    pfn: int
    vmid: int = 0
    vrf_id: int = 0

    @property
    def key(self) -> tuple:
        return (self.vmid, self.vrf_id, self.vpn)

    def tag_bits(self, index_bits: int) -> int:
        """The tag the paper stores: VA tag bits above the index, plus IDs.

        Used by the base-delta compression model to decide whether a set of
        co-resident translations is compressible (Figures 7 and 10).
        """

        return ((self.vpn >> index_bits) << 4) | (self.vmid << 2) | self.vrf_id
