"""Translation request coalescing.

The paper's gem5 model "accurately models L1/L2 TLB coalescers" (Section 5):
lane accesses within a SIMD instruction targeting the same page are merged
before reaching the L1 TLB, and translation misses to a page that already has
a walk (or victim-cache lookup) in flight are merged onto that in-flight
request rather than issuing a duplicate.

- :class:`AccessCoalescer` performs the intra-instruction merge.
- :class:`InFlightTable` is the MSHR-like inter-instruction merge.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.sim.stats import Stats


class AccessCoalescer:
    """Merges per-lane page accesses within one SIMT memory instruction."""

    def __init__(self, stats: Optional[Stats] = None, name: str = "coalescer") -> None:
        self.stats = stats if stats is not None else Stats()
        self.name = name

    def coalesce(self, vpns: Iterable[int]) -> List[int]:
        """Unique pages touched, in first-touch order."""

        materialized = vpns if isinstance(vpns, (list, tuple)) else list(vpns)
        seen = {}
        for vpn in materialized:
            if vpn not in seen:
                seen[vpn] = None
        unique = list(seen)
        raw = len(materialized)
        self.stats.add(f"{self.name}.raw_accesses", raw)
        self.stats.add(f"{self.name}.coalesced_accesses", len(unique))
        if raw > len(unique):
            self.stats.add(f"{self.name}.merged", raw - len(unique))
        return unique


class InFlightTable:
    """Tracks translation requests currently being resolved.

    A lookup that finds its key in flight returns the in-flight completion
    time instead of issuing a duplicate walk. Entries whose completion time
    has passed are pruned lazily.
    """

    def __init__(
        self,
        stats: Optional[Stats] = None,
        name: str = "tx_mshr",
        prune_interval: int = 256,
    ) -> None:
        self.stats = stats if stats is not None else Stats()
        self.name = name
        self._in_flight: Dict[Tuple, int] = {}
        self._ops_since_prune = 0
        self._prune_interval = prune_interval

    def __len__(self) -> int:
        return len(self._in_flight)

    def check(self, key: tuple, now: int) -> Optional[int]:
        """If ``key`` resolves in the future, return its completion time."""

        done_at = self._in_flight.get(key)
        if done_at is not None and done_at > now:
            self.stats.add(f"{self.name}.merges")
            return done_at
        return None

    def register(self, key: tuple, completes_at: int, now: Optional[int] = None) -> None:
        self._in_flight[key] = completes_at
        self.stats.add(f"{self.name}.registered")
        self._ops_since_prune += 1
        if self._ops_since_prune >= self._prune_interval:
            self.prune(now if now is not None else completes_at)

    def prune(self, now: int) -> None:
        """Drop entries that completed long enough ago to be irrelevant."""

        self._ops_since_prune = 0
        stale = [key for key, done in self._in_flight.items() if done <= now]
        # Keep the table bounded without walking it on every access.
        if len(stale) > len(self._in_flight) // 2 or len(self._in_flight) > 4096:
            for key in stale:
                del self._in_flight[key]
