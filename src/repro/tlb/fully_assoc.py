"""Fully-associative LRU TLB (the per-CU L1 TLB, Table 1)."""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.sim.stats import Stats
from repro.tlb.base import TranslationEntry


class FullyAssociativeTLB:
    """A fully-associative, LRU-replacement TLB.

    ``insert`` returns the evicted entry (if any) so the caller can route it
    into the Figure 12 victim fill flow. ``invalidate`` supports shootdowns
    (Section 7.1).
    """

    def __init__(self, entries: int, name: str = "l1_tlb", stats: Optional[Stats] = None):
        if entries < 1:
            raise ValueError("TLB needs at least one entry")
        self.capacity = entries
        self.name = name
        self.stats = stats if stats is not None else Stats()
        self._entries: "OrderedDict[tuple, TranslationEntry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: tuple) -> Optional[TranslationEntry]:
        entry = self._entries.get(key)
        if entry is None:
            self.stats.add(f"{self.name}.misses")
            return None
        self._entries.move_to_end(key)
        self.stats.add(f"{self.name}.hits")
        return entry

    def probe(self, key: tuple) -> bool:
        """Presence check with no LRU update and no stats."""

        return key in self._entries

    def insert(self, entry: TranslationEntry) -> Optional[TranslationEntry]:
        key = entry.key
        if key in self._entries:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            return None
        victim = None
        if len(self._entries) >= self.capacity:
            _, victim = self._entries.popitem(last=False)
            self.stats.add(f"{self.name}.evictions")
        self._entries[key] = entry
        self.stats.add(f"{self.name}.fills")
        return victim

    def invalidate(self, key: tuple) -> bool:
        if key in self._entries:
            del self._entries[key]
            self.stats.add(f"{self.name}.invalidations")
            return True
        return False

    def invalidate_vpn(self, vpn: int) -> int:
        """Shootdown: drop every entry for ``vpn`` across address spaces."""

        doomed = [key for key in self._entries if key[2] == vpn]
        for key in doomed:
            del self._entries[key]
        if doomed:
            self.stats.add(f"{self.name}.invalidations", len(doomed))
        return len(doomed)

    def flush(self) -> int:
        count = len(self._entries)
        self._entries.clear()
        if count:
            self.stats.add(f"{self.name}.flushes")
        return count
