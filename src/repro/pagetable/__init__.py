"""Page-table substrate: x86-style table, split walk caches, IOMMU."""

from repro.pagetable.iommu import IOMMU
from repro.pagetable.page_table import PageTable
from repro.pagetable.walk_cache import SplitPageWalkCache

__all__ = ["IOMMU", "PageTable", "SplitPageWalkCache"]
