"""IOMMU model: device TLBs, a pool of concurrent walkers, walk queuing.

L2-TLB misses from the GPU are serviced by an IOMMU (Section 2.1) that has
its own small L1/L2 device TLBs, 32 concurrent page-table walkers, and split
page-walk caches (Table 1). The walker pool is the key throughput limiter:
when an irregular app floods the IOMMU with misses, requests queue for a
free walker, and that queuing delay is what makes GPU page walks an order of
magnitude more expensive than CPU walks (Section 3.1).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.config import IOMMUConfig
from repro.memory.hierarchy import SharedL2
from repro.pagetable.page_table import PageTable
from repro.pagetable.walker import PageWalker
from repro.sim.engine import Port
from repro.sim.stats import Distribution, Stats
from repro.tlb.base import TranslationEntry
from repro.tlb.fully_assoc import FullyAssociativeTLB
from repro.tlb.set_assoc import SetAssociativeTLB


class IOMMU:
    """Front door for all GPU translation misses."""

    def __init__(
        self,
        config: IOMMUConfig,
        page_table: PageTable,
        shared_l2: SharedL2,
        stats: Optional[Stats] = None,
        name: str = "iommu",
    ) -> None:
        self.config = config
        self.name = name
        self.stats = stats if stats is not None else Stats()
        self.page_table = page_table
        self.l1_tlb = FullyAssociativeTLB(
            config.l1_tlb_entries, name=f"{name}.l1_tlb", stats=self.stats
        )
        l2_ways = min(8, config.l2_tlb_entries)
        self.l2_tlb = SetAssociativeTLB(
            config.l2_tlb_entries, l2_ways, name=f"{name}.l2_tlb", stats=self.stats
        )
        self.walker = PageWalker(config, page_table, shared_l2, stats=self.stats)
        # The walker pool is a Port: one unit per concurrent walker, with
        # the per-walk occupancy passed at request time. Modelling it as a
        # Port (rather than a bare free-time heap) gives it the shared
        # observability surface — busy-cycle accounting and attachable
        # busy/idle timelines — for free.
        self.walker_pool = Port(f"{name}.walkers", units=config.num_walkers,
                                occupancy=0)
        self.queue_delay = Distribution(max_samples=50_000)

    def translate(self, vmid: int, vpn: int, anchor: int, vrf_id: int = 0
                  ) -> Tuple[int, TranslationEntry]:
        """Resolve a translation; returns ``(latency, entry)``.

        ``anchor`` is the requesting wave's issue time; walker-pool slots
        and PTE memory traffic are reserved at the anchor so queuing delay
        (the dominant cost under a walk storm) emerges from walker
        occupancy without future-time reservations.
        """

        key = (vmid, vrf_id, vpn)
        latency = self.config.request_overhead

        entry = self.l1_tlb.lookup(key)
        if entry is not None:
            return latency + self.config.l1_tlb_latency, entry
        latency += self.config.l1_tlb_latency

        entry = self.l2_tlb.lookup(key)
        if entry is not None:
            self.l1_tlb.insert(entry)
            return latency + self.config.l2_tlb_latency, entry
        latency += self.config.l2_tlb_latency

        # Full page-table walk: claim a walker slot (queuing if all busy).
        # The walk itself never touches the pool, so computing its latency
        # first and then claiming the slot for exactly that occupancy is
        # equivalent to the reservation preceding the walk.
        walk_latency, pfn = self.walker.walk(vmid, vpn, anchor)
        start = self.walker_pool.request(anchor, walk_latency)
        queue = start - anchor
        if queue:
            self.stats.add(f"{self.name}.walk_queue_cycles", queue)
        self.queue_delay.add(queue)
        self.stats.add(f"{self.name}.walks")
        latency += queue + walk_latency

        entry = TranslationEntry(vpn=vpn, pfn=pfn, vmid=vmid, vrf_id=vrf_id)
        self.l1_tlb.insert(entry)
        self.l2_tlb.insert(entry)
        return latency, entry

    def invalidate_vpn(self, vpn: int) -> int:
        """Device-TLB part of a shootdown (Section 7.1)."""

        count = self.l1_tlb.invalidate_vpn(vpn)
        count += self.l2_tlb.invalidate_vpn(vpn)
        self.walker.pwc.flush()
        return count
