"""Split page-walk caches (PGD/PUD/PMD), per Barr et al. "Skip, Don't Walk".

The IOMMU keeps three small translation-path caches, one per intermediate
page-table level (Table 1: 4/8/32 entries). A walk consults the deepest
cache first: a PMD-cache hit skips straight to the leaf PTE access, a
PUD-cache hit skips two levels, a PGD-cache hit skips one. This is the
"split page-walk caches for intermediate page table translations" the
paper's gem5 model implements (Section 5).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.config import IOMMUConfig
from repro.sim.stats import Stats

_LEVEL_BITS = 9


class _PrefixCache:
    """Tiny fully-associative LRU cache keyed by a VPN prefix."""

    __slots__ = ("capacity", "_entries")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: OrderedDict = OrderedDict()

    def lookup(self, key) -> bool:
        if key in self._entries:
            self._entries.move_to_end(key)
            return True
        return False

    def fill(self, key) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
        self._entries[key] = True

    def flush(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class SplitPageWalkCache:
    """The PGD/PUD/PMD cache trio with skip-level lookup semantics."""

    def __init__(
        self,
        config: IOMMUConfig,
        levels: int = 4,
        stats: Optional[Stats] = None,
        name: str = "pwc",
    ) -> None:
        self.levels = levels
        self.stats = stats if stats is not None else Stats()
        self.name = name
        self._pgd = _PrefixCache(config.pgd_cache_entries)
        self._pud = _PrefixCache(config.pud_cache_entries)
        self._pmd = _PrefixCache(config.pmd_cache_entries)

    def _prefixes(self, vmid: int, vpn: int):
        """(pgd, pud, pmd) prefix keys for a walk of ``self.levels`` levels.

        A cache at depth d holds the translation produced after d levels of
        the walk, i.e. it is keyed by the VPN bits those levels consumed.
        """

        pgd = (vmid, vpn >> (_LEVEL_BITS * (self.levels - 1)))
        pud = (vmid, vpn >> (_LEVEL_BITS * (self.levels - 2)))
        pmd = (vmid, vpn >> (_LEVEL_BITS * (self.levels - 3)))
        return pgd, pud, pmd

    def lookup(self, vmid: int, vpn: int) -> int:
        """Number of walk levels that can be skipped (0..levels-1)."""

        pgd, pud, pmd = self._prefixes(vmid, vpn)
        # A cache at intermediate depth d holds the translation produced by
        # the first d levels of the walk, so a hit skips d accesses. Check
        # the deepest cache first ("skip, don't walk").
        if self.levels >= 4 and self._pmd.lookup(pmd):
            self.stats.add(f"{self.name}.pmd_hits")
            return 3
        if self.levels >= 3 and self._pud.lookup(pud):
            self.stats.add(f"{self.name}.pud_hits")
            return 2
        if self._pgd.lookup(pgd):
            self.stats.add(f"{self.name}.pgd_hits")
            return 1
        self.stats.add(f"{self.name}.misses")
        return 0

    def fill(self, vmid: int, vpn: int) -> None:
        """Install the intermediate translations produced by a full walk."""

        pgd, pud, pmd = self._prefixes(vmid, vpn)
        self._pgd.fill(pgd)
        if self.levels >= 3:
            self._pud.fill(pud)
        if self.levels >= 4:
            self._pmd.fill(pmd)

    def flush(self) -> None:
        self._pgd.flush()
        self._pud.flush()
        self._pmd.flush()
