"""Page-table walk execution.

A :class:`PageWalker` performs the serial chain of PTE memory accesses for
one walk, consulting the split page-walk caches to skip already-cached upper
levels. PTE accesses go through the *shared L2 data cache* (and DRAM on a
miss), matching the paper's model where walk traffic is cached but radically
slower than a TLB hit.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.config import IOMMUConfig
from repro.memory.hierarchy import SharedL2
from repro.pagetable.page_table import PageTable
from repro.pagetable.walk_cache import SplitPageWalkCache
from repro.sim.stats import Distribution, Stats


class PageWalker:
    """Executes walks; shared by all walker slots in the IOMMU pool."""

    def __init__(
        self,
        config: IOMMUConfig,
        page_table: PageTable,
        shared_l2: SharedL2,
        stats: Optional[Stats] = None,
        name: str = "walker",
    ) -> None:
        self.config = config
        self.page_table = page_table
        self.shared_l2 = shared_l2
        self.stats = stats if stats is not None else Stats()
        self.name = name
        self.pwc = SplitPageWalkCache(config, levels=page_table.levels, stats=self.stats)
        self.walk_latency = Distribution(max_samples=50_000)

    def walk(self, vmid: int, vpn: int, anchor: int) -> Tuple[int, int]:
        """Run one walk; returns ``(walk_latency, pfn)``.

        The walk serially accesses one PTE per non-skipped level (a pointer
        chase), so the latencies of the individual accesses add up. Port and
        DRAM-bank occupancy for the PTE accesses is charged at ``anchor``
        (the requesting wave's issue time) to keep the shared occupancy
        model monotone; see the timing-discipline note in
        :mod:`repro.core.translation`.
        """

        skipped = self.pwc.lookup(vmid, vpn)
        latency = self.config.pwc_latency
        addresses = self.page_table.walk_addresses(vmid, vpn)
        dram = self.shared_l2.dram
        for address in addresses[skipped:]:
            # IOMMU walkers fetch PTEs from system memory directly (they sit
            # outside the GPU's L1/L2 data hierarchy); this is a large part
            # of why GPU page walks are an order of magnitude slower than
            # on-chip translation hits (Section 3.1).
            _, done = dram.access(address, anchor)
            latency += done - anchor
            self.stats.add(f"{self.name}.pte_accesses")
        self.pwc.fill(vmid, vpn)
        pfn = self.page_table.translate(vmid, vpn)
        self.stats.add(f"{self.name}.walks")
        self.stats.add(f"{self.name}.levels_skipped", skipped)
        self.walk_latency.add(latency)
        return latency, pfn
