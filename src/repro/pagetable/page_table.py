"""A four-level x86-style page table with lazy frame allocation.

The simulated system shares one unified virtual memory between CPU and GPU
(Section 5): on a TLB miss the IOMMU walks a standard four-level x86 table.
This module provides:

- lazy, deterministic virtual→physical frame allocation (frames are assigned
  in first-touch order and scattered across DRAM rows);
- the *physical addresses of the page-table entries themselves* for every
  level of a walk, so walk memory traffic flows through the shared L2 data
  cache and DRAM models exactly like the paper's gem5 setup;
- multiple page sizes (Section 6.2): 4KB and 64KB pages walk four levels,
  2MB pages terminate at the PMD (three levels).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.tlb.base import TranslationEntry

#: Bits of VPN consumed by each radix level of the x86 table.
_LEVEL_BITS = 9

#: Physical region where page-table pages themselves live (above 64GB so
#: they never collide with data frames).
_PT_REGION_BASE = 1 << 36

#: Spread consecutively-allocated frames across DRAM rows/banks.
_FRAME_STRIDE = 7


class PageTable:
    """Unified CPU/GPU page table for one simulated machine."""

    def __init__(self, page_size: int = 4096, va_bits: int = 48) -> None:
        if page_size & (page_size - 1):
            raise ValueError("page size must be a power of two")
        if page_size not in (4096, 64 * 1024, 2 * 1024 * 1024):
            raise ValueError(f"unsupported page size {page_size}")
        self.page_size = page_size
        self.va_bits = va_bits
        # 2MB pages terminate the walk one level early (PMD leaf).
        self.levels = 3 if page_size == 2 * 1024 * 1024 else 4
        self._mappings: Dict[Tuple[int, int], int] = {}
        self._next_frame = 1

    def __len__(self) -> int:
        return len(self._mappings)

    @property
    def page_offset_bits(self) -> int:
        return self.page_size.bit_length() - 1

    def translate(self, vmid: int, vpn: int) -> int:
        """Resolve (and on first touch, establish) the mapping for ``vpn``."""

        if vpn < 0:
            raise ValueError("negative virtual page number")
        key = (vmid, vpn)
        pfn = self._mappings.get(key)
        if pfn is None:
            pfn = self._allocate_frame()
            self._mappings[key] = pfn
        return pfn

    def _allocate_frame(self) -> int:
        frame = self._next_frame
        self._next_frame += 1
        # Multiply by an odd stride so successive allocations land in
        # different DRAM rows/banks; wrap within a 16M-frame physical space.
        return (frame * _FRAME_STRIDE) % (1 << 24)

    def is_mapped(self, vmid: int, vpn: int) -> bool:
        return (vmid, vpn) in self._mappings

    def unmap(self, vmid: int, vpn: int) -> bool:
        """Remove a mapping (page swap/migration; drives shootdowns)."""

        return self._mappings.pop((vmid, vpn), None) is not None

    def entry_for(self, vmid: int, vpn: int, vrf_id: int = 0) -> TranslationEntry:
        return TranslationEntry(vpn=vpn, pfn=self.translate(vmid, vpn), vmid=vmid, vrf_id=vrf_id)

    def walk_addresses(self, vmid: int, vpn: int) -> List[int]:
        """Physical addresses of the PTEs touched by a full walk, root first.

        Each level's table page is deterministically placed in the PT region
        based on the VPN prefix it serves, so walks to nearby pages share
        upper-level table lines (this is what makes page-walk caches and the
        L2 data cache effective for walk traffic, as in the paper's model).
        """

        addresses = []
        for level in range(self.levels):
            # Prefix of the VPN resolved *before* this level's index.
            prefix_shift = _LEVEL_BITS * (self.levels - level)
            prefix = vpn >> prefix_shift
            index = (vpn >> (prefix_shift - _LEVEL_BITS)) & ((1 << _LEVEL_BITS) - 1)
            table_page = (hash((vmid, level, prefix)) & 0x3FFFFF)
            addresses.append(_PT_REGION_BASE + table_page * 4096 + index * 8)
        return addresses
