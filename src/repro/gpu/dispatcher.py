"""Work-group scheduling unit (Section 2.2).

The front-end dispatcher assigns work-groups to CUs, reserving each
work-group's LDS requirement as one contiguous block *before* dispatch and
returning the whole allocation when the work-group completes. Free wave
slots (``waves_per_simd`` per SIMD) and LDS capacity gate dispatch; the
contiguous-block policy is what produces LDS fragmentation.

The dispatcher also samples LDS bytes requested per work-group — the
Figure 4a distribution.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from repro.gpu.workgroup import WorkGroup
from repro.sim.engine import WaveScheduler
from repro.sim.stats import Distribution, Stats
from repro.gpu.wavefront import Wavefront
from repro.workloads.base import KernelSpec, ProgramContext

#: Fixed front-end cost to launch a work-group's waves.
DISPATCH_LATENCY = 16


class WorkGroupDispatcher:
    """Dispatches one kernel invocation's work-groups across the CUs."""

    def __init__(
        self,
        cus: List,
        stats: Optional[Stats] = None,
        wave_factory: Optional[type] = None,
    ) -> None:
        self.cus = cus
        self.stats = stats if stats is not None else Stats()
        # Which wavefront implementation to dispatch (the event-driven
        # Wavefront, or the vectorized fast path when
        # SystemConfig.engine == "vectorized"); both produce byte-identical
        # results, so this is purely a speed knob.
        self.wave_factory = Wavefront if wave_factory is None else wave_factory
        self.lds_request_bytes = Distribution()
        self._app_name = ""
        self._kernel: Optional[KernelSpec] = None
        self._invocation = 0
        self._code_base = 0
        self._pending: deque = deque()
        self._scheduler: Optional[WaveScheduler] = None
        self._outstanding = 0
        # Fired with the completion time when a kernel fully drains (all
        # work-groups dispatched and completed); used by the concurrent
        # multi-application mode (Section 7.2) to launch the next kernel.
        self.on_kernel_complete = None

    def start_kernel(
        self,
        app_name: str,
        kernel: KernelSpec,
        invocation: int,
        code_base: int,
        scheduler: WaveScheduler,
        now: int,
    ) -> None:
        """Begin dispatching ``kernel``; fills every CU greedily."""

        lds_limit = self.cus[0].lds.config.size_bytes
        if kernel.lds_bytes_per_workgroup > lds_limit:
            raise ValueError(
                f"kernel {kernel.name!r} requests {kernel.lds_bytes_per_workgroup}B "
                f"LDS per work-group but CUs have only {lds_limit}B"
            )
        self._app_name = app_name
        self._kernel = kernel
        self._invocation = invocation
        self._code_base = code_base
        self._pending = deque(range(kernel.num_workgroups))
        self._scheduler = scheduler
        self._outstanding = 0
        progressing = True
        while self._pending and progressing:
            progressing = False
            for cu in self.cus:
                if self._pending and self._try_dispatch(cu, now):
                    progressing = True

    def _try_dispatch(self, cu, now: int) -> bool:
        kernel = self._kernel
        assert kernel is not None and self._scheduler is not None
        if not self._pending:
            return False
        if cu.free_wave_slots < kernel.waves_per_workgroup:
            return False
        if not cu.lds.can_allocate(kernel.lds_bytes_per_workgroup):
            self.stats.add("dispatcher.lds_stalls")
            return False
        wg_id = self._pending.popleft()
        alloc_id = cu.lds.allocate(kernel.lds_bytes_per_workgroup)
        assert alloc_id is not None
        self.lds_request_bytes.add(kernel.lds_bytes_per_workgroup)
        self.stats.add("dispatcher.workgroups")
        workgroup = WorkGroup(
            kernel_name=kernel.name,
            kernel_code_base=self._code_base,
            wg_id=wg_id,
            cu=cu,
            dispatcher=self,
            lds_alloc_id=alloc_id,
            num_waves=kernel.waves_per_workgroup,
        )
        for wave_id in range(kernel.waves_per_workgroup):
            context = ProgramContext(
                app_name=self._app_name,
                kernel_name=kernel.name,
                invocation=self._invocation,
                wg_id=wg_id,
                wave_id=wave_id,
                num_workgroups=kernel.num_workgroups,
                waves_per_workgroup=kernel.waves_per_workgroup,
            )
            simd_index = cu.claim_wave_slot()
            wave_cls = self.wave_factory
            wave = wave_cls(
                cu, simd_index, workgroup, iter(kernel.program_factory(context))
            )
            self._scheduler.add(now + DISPATCH_LATENCY, wave, wave_cls.step)
        self._outstanding += 1
        return True

    def workgroup_completed(self, cu, now: int) -> None:
        self.stats.add("dispatcher.workgroups_completed")
        self._outstanding -= 1
        while self._pending and self._try_dispatch(cu, now):
            pass
        if not self._pending and self._outstanding == 0:
            if self.on_kernel_complete is not None:
                self.on_kernel_complete(now)
