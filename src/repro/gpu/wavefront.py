"""Wavefront execution.

A wavefront is an independent timeline that consumes its program's macro-ops
(:mod:`repro.gpu.instructions`) one event at a time under the
:class:`~repro.sim.engine.WaveScheduler`. Latency hiding across wavefronts —
the GPU's defining property, and the reason extra translation wire latency
costs little (Section 6.3.3) — falls out of the scheduler interleaving these
timelines while each one blocks on its own memory/translation stalls.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.gpu.instructions import ALU, LDS, LINE, MEM

#: Instruction-buffer capacity in cache lines per wavefront (Section 2.3).
IB_LINES = 2

#: Cap on timed data-cache accesses modelled per page of a memory strip;
#: the remainder of the strip's lines are accounted in DRAM energy only.
MAX_TIMED_LINES_PER_PAGE = 4


class Wavefront:
    """One wavefront's execution state."""

    __slots__ = (
        "cu",
        "simd_index",
        "workgroup",
        "_ops",
        "_ib",
        "_kernel_code_base",
    )

    def __init__(self, cu, simd_index: int, workgroup, ops: Iterator[tuple]) -> None:
        self.cu = cu
        self.simd_index = simd_index
        self.workgroup = workgroup
        self._ops = iter(ops)
        self._ib = []  # most-recent line ids, at most IB_LINES
        self._kernel_code_base = workgroup.kernel_code_base

    # The WaveScheduler step callback.
    def step(self, now: int) -> Optional[int]:
        op = next(self._ops, None)
        if op is None:
            self.workgroup.wave_done(self, now)
            return None
        kind = op[0]
        if kind == MEM:
            done = self._run_mem(op, now)
        elif kind == ALU:
            done = self._run_alu(op, now)
        elif kind == LINE:
            done = self._run_line(op, now)
        elif kind == LDS:
            done = self._run_lds(op, now)
        else:
            raise ValueError(f"unknown op kind {kind!r}")
        tracer = self.cu.tracer
        if tracer is not None:
            tracer.record(
                self.cu.cu_id, self.simd_index, self.workgroup.kernel_name,
                self.workgroup.wg_id, kind, now, done,
            )
        return done

    # ------------------------------------------------------------------

    def _run_alu(self, op: tuple, now: int) -> int:
        count = op[1]
        cu = self.cu
        start = cu.simd_ports[self.simd_index].request(now, count)
        cu.stats.add("instructions", count)
        return start + count

    def _run_lds(self, op: tuple, now: int) -> int:
        count = op[1]
        cu = self.cu
        start = cu.simd_ports[self.simd_index].request(now, count)
        cu.stats.add("instructions", count)
        done = start
        for _ in range(count):
            finished = cu.lds.app_access(done)
            if finished > done:
                done = finished
        return done

    def _run_line(self, op: tuple, now: int) -> int:
        line_id = op[1]
        if line_id in self._ib:
            # Serviced from the wavefront's instruction buffer.
            self.cu.stats.add("ib.hits")
            return now
        self.cu.stats.add("ib.misses")
        done = self.cu.icache.fetch(self._kernel_code_base + line_id, now)
        ib = self._ib
        ib.append(line_id)
        if len(ib) > IB_LINES:
            ib.pop(0)
        return done

    def _run_mem(self, op: tuple, now: int) -> int:
        _, vpns, instr_count, is_write, lines_per_page = op
        cu = self.cu
        start = cu.simd_ports[self.simd_index].request(now, instr_count)
        cu.stats.add("instructions", instr_count)
        cu.stats.add("mem_instructions", instr_count)

        page_size = cu.page_size
        unique = cu.coalescer.coalesce(vpns)
        timed_lines = min(MAX_TIMED_LINES_PER_PAGE, lines_per_page)
        bulk_lines = lines_per_page - timed_lines

        worst = start + instr_count
        translate = cu.translation.translate
        access = cu.memory.access_ex
        for vpn in unique:
            tx_done, pfn = translate(vpn, start)
            base_addr = pfn * page_size + ((vpn * 797) % max(1, page_size // 64)) * 64
            # The data access depends on the translation, so its latency
            # chains after tx_done; its cache/DRAM bandwidth is charged at
            # the issue anchor (see repro.core.translation's timing note).
            done = tx_done
            missed_l2 = False
            for line_index in range(timed_lines):
                finished, level = access(
                    base_addr + line_index * 64, start, is_write
                )
                chained = tx_done + (finished - start)
                if chained > done:
                    done = chained
                if level == "dram":
                    missed_l2 = True
            if bulk_lines and missed_l2:
                # Untimed tail of the strip: counts for DRAM energy only.
                cu.note_bulk_dram(bulk_lines, is_write)
            if done > worst:
                worst = done
        # Most same-page lookups within the strip are merged by the
        # coalescer before reaching the L1 TLB; credit only the residual
        # fraction as L1 hits (Table 2's L1 hit ratios).
        cu.translation.note_locality_hits((instr_count - len(unique)) // 8)
        return worst
