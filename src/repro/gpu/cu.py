"""Compute Unit assembly.

A CU bundles the structures a wavefront touches: its SIMD issue ports, the
per-CU LDS (plus its translation overlay), the private L1 data cache over
the shared L2, the translation service (L1 TLB and miss path), and a
reference to the I-cache its CU-group shares.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import SystemConfig
from repro.core.translation import TranslationService
from repro.gpu.icache import InstructionCache
from repro.gpu.lds import LocalDataShare
from repro.memory.hierarchy import MemoryHierarchy, SharedL2
from repro.sim.engine import Port
from repro.sim.stats import Stats
from repro.tlb.coalescer import AccessCoalescer


class ComputeUnit:
    """One CU and its private resources."""

    def __init__(
        self,
        cu_id: int,
        config: SystemConfig,
        icache: InstructionCache,
        lds: LocalDataShare,
        translation: TranslationService,
        shared_l2: SharedL2,
        stats: Optional[Stats] = None,
    ) -> None:
        self.cu_id = cu_id
        self.config = config
        self.stats = stats if stats is not None else Stats()
        self.icache = icache
        self.lds = lds
        self.translation = translation
        self.memory = MemoryHierarchy(
            config.data_cache, shared_l2, stats=self.stats, name="l1_cache"
        )
        self.coalescer = AccessCoalescer(stats=self.stats, name="coalescer")
        self.page_size = config.page_size
        gpu = config.gpu
        self.simd_ports: List[Port] = [
            Port(f"cu{cu_id}.simd{i}.issue", units=1, occupancy=1)
            for i in range(gpu.simds_per_cu)
        ]
        self._waves_per_simd = [0] * gpu.simds_per_cu
        self._max_waves_per_simd = gpu.waves_per_simd
        self._dram_stats = shared_l2.dram.stats
        self._dram_name = shared_l2.dram.name
        # Optional ExecutionTracer (repro.sim.trace); None costs nothing.
        self.tracer = None

    # ------------------------------------------------------------------
    # Wave-slot accounting (used by the dispatcher)
    # ------------------------------------------------------------------

    @property
    def free_wave_slots(self) -> int:
        return sum(
            self._max_waves_per_simd - count for count in self._waves_per_simd
        )

    def claim_wave_slot(self) -> int:
        """Assign a wave to the least-loaded SIMD; returns the SIMD index."""

        simd = min(
            range(len(self._waves_per_simd)), key=self._waves_per_simd.__getitem__
        )
        if self._waves_per_simd[simd] >= self._max_waves_per_simd:
            raise RuntimeError(f"cu{self.cu_id} has no free wave slots")
        self._waves_per_simd[simd] += 1
        return simd

    def release_wave_slot(self, simd_index: int) -> None:
        self._waves_per_simd[simd_index] -= 1
        if self._waves_per_simd[simd_index] < 0:
            raise RuntimeError(f"cu{self.cu_id} released more waves than claimed")

    # ------------------------------------------------------------------

    def note_bulk_dram(self, lines: int, is_write: bool) -> None:
        """Account untimed DRAM traffic from a memory strip's tail lines."""

        kind = "writes" if is_write else "reads"
        self._dram_stats.add(f"{self._dram_name}.{kind}", lines)
        # Sequential lines within a page overwhelmingly share a DRAM row;
        # charge roughly one activate per 16 lines.
        self._dram_stats.add(f"{self._dram_name}.activates", lines / 16.0)
