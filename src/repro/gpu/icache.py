"""Baseline L1 instruction cache (Section 2.3).

One I-cache is shared by a group of CUs (four in the Table 1 baseline).
Wavefronts whose next instruction is not in their instruction buffer request
a line through the shared fetch port; misses refill from the GPU L2.

Lines carry a mode flag so the reconfigurable subclass
(:class:`repro.core.reconfig_icache.ReconfigurableICache`) can repurpose
idle lines for translations; in the baseline the flag is always IC-mode.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.config import ICacheConfig
from repro.sim.engine import Port
from repro.sim.stats import Stats


class CacheLine:
    """One I-cache line: either instructions (IC-mode) or translations."""

    __slots__ = ("tag", "valid", "is_tx", "lru", "tx_entries")

    def __init__(self) -> None:
        self.tag: int = -1
        self.valid: bool = False
        self.is_tx: bool = False
        self.lru: int = 0
        # Tx-mode payload: key -> TranslationEntry, LRU-ordered.
        self.tx_entries: Optional[OrderedDict] = None

    def make_instruction(self, tag: int, lru: int) -> None:
        self.tag = tag
        self.valid = True
        self.is_tx = False
        self.lru = lru
        self.tx_entries = None

    def make_invalid(self) -> None:
        self.valid = False
        self.is_tx = False
        self.tx_entries = None


class InstructionCache:
    """Set-associative, LRU I-cache shared by ``cus_per_icache`` CUs."""

    def __init__(
        self,
        config: ICacheConfig,
        stats: Optional[Stats] = None,
        name: str = "icache",
        track_idle: bool = True,
    ) -> None:
        self.config = config
        self.name = name
        self.stats = stats if stats is not None else Stats()
        self.num_sets = config.num_sets
        self.ways = config.ways
        self.num_lines = config.num_lines
        self._sets: List[List[CacheLine]] = [
            [CacheLine() for _ in range(self.ways)] for _ in range(self.num_sets)
        ]
        self.port = Port(
            f"{name}.port", units=1, occupancy=config.port_occupancy,
            track_idle=track_idle,
        )
        self._lru_seq = 0

    # ------------------------------------------------------------------
    # Instruction path
    # ------------------------------------------------------------------

    def _next_lru(self) -> int:
        self._lru_seq += 1
        return self._lru_seq

    def fetch(self, line_addr: int, now: int) -> int:
        """Fetch one instruction line; returns the completion time."""

        start = self.port.request(now)
        set_index = line_addr % self.num_sets
        tag = line_addr // self.num_sets
        cache_set = self._sets[set_index]
        for cache_line in cache_set:
            if cache_line.valid and not cache_line.is_tx and cache_line.tag == tag:
                cache_line.lru = self._next_lru()
                self.stats.add(f"{self.name}.hits")
                return start + self.config.tag_latency
        # Miss: pick a victim and refill from the L2.
        self.stats.add(f"{self.name}.misses")
        self.stats.add(f"{self.name}.fills")
        victim = self._choose_instruction_victim(cache_set)
        self._on_instruction_claim(victim)
        victim.make_instruction(tag, self._next_lru())
        if self.config.next_line_prefetch:
            self._prefetch(line_addr + 1)
        return start + self.config.tag_latency + self.config.fill_latency

    def _on_instruction_claim(self, victim: CacheLine) -> None:
        """Hook fired when an instruction fill claims ``victim``.

        The reconfigurable subclass uses it to account for (and spill) any
        translations the claimed line held.
        """

    def _prefetch(self, line_addr: int) -> None:
        """Next-line prefetch issued alongside a demand fill.

        Prefetches happen off the requester's critical path; they count as
        fills for Equation 1's utilization metric.
        """

        set_index = line_addr % self.num_sets
        tag = line_addr // self.num_sets
        cache_set = self._sets[set_index]
        for cache_line in cache_set:
            if cache_line.valid and not cache_line.is_tx and cache_line.tag == tag:
                return  # already resident
        victim = self._choose_instruction_victim(cache_set)
        self._on_instruction_claim(victim)
        victim.make_instruction(tag, self._next_lru())
        self.stats.add(f"{self.name}.prefetches")
        self.stats.add(f"{self.name}.fills")

    def _choose_instruction_victim(self, cache_set: List[CacheLine]) -> CacheLine:
        """Baseline policy: invalid lines first, then global LRU."""

        victim = None
        for cache_line in cache_set:
            if not cache_line.valid:
                return cache_line
            if victim is None or cache_line.lru < victim.lru:
                victim = cache_line
        assert victim is not None
        return victim

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def flush_instructions(self) -> int:
        """Invalidate all IC-mode lines (the Section 4.3.3 runtime flush)."""

        count = 0
        for cache_set in self._sets:
            for cache_line in cache_set:
                if cache_line.valid and not cache_line.is_tx:
                    cache_line.make_invalid()
                    count += 1
        if count:
            self.stats.add(f"{self.name}.instruction_flushes")
            self.stats.add(f"{self.name}.lines_flushed", count)
        return count

    def on_kernel_boundary(self, next_kernel_same: bool) -> None:
        """Hook for the kernel-boundary flush; no-op in the baseline."""

    def valid_instruction_lines(self) -> int:
        return sum(
            1
            for cache_set in self._sets
            for cache_line in cache_set
            if cache_line.valid and not cache_line.is_tx
        )

    def tx_entry_count(self) -> int:
        return sum(
            len(cache_line.tx_entries)
            for cache_set in self._sets
            for cache_line in cache_set
            if cache_line.is_tx and cache_line.tx_entries
        )
