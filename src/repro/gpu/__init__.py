"""GPU substrate: CUs, SIMDs, wavefronts, dispatcher, LDS, I-cache."""

from repro.gpu.dispatcher import WorkGroupDispatcher
from repro.gpu.icache import InstructionCache
from repro.gpu.instructions import alu, lds_op, line, mem
from repro.gpu.lds import LocalDataShare, SegmentMode
from repro.gpu.wavefront import Wavefront

__all__ = [
    "InstructionCache",
    "LocalDataShare",
    "SegmentMode",
    "Wavefront",
    "WorkGroupDispatcher",
    "alu",
    "lds_op",
    "line",
    "mem",
]
