"""Wave program operations.

A wave program is an iterable of small tuples, one per *macro-op*. A macro-op
groups a strip of consecutive dynamic instructions of the same kind so the
engine processes one event per strip instead of one per instruction; the
translation stream (unique pages touched) is preserved exactly, which is what
the paper's results depend on.

Op formats (plain tuples, dispatched on the first element):

- ``("alu", count)`` — ``count`` back-to-back ALU instructions.
- ``("lds", count)`` — ``count`` LDS (application scratchpad) instructions.
- ``("line", line_id)`` — the PC crosses into I-cache line ``line_id`` of the
  kernel's static code; triggers an instruction-buffer check and possibly an
  I-cache fetch.
- ``("mem", vpns, instr_count, is_write, lines_per_page)`` — a strip of
  ``instr_count`` global-memory instructions that together touch the unique
  pages ``vpns`` (a tuple of page numbers), moving ``lines_per_page`` cache
  lines per page (1 for scattered accesses, a whole page for streaming).
  The wave stalls until the slowest page's translation + data access
  resolves (SIMT lockstep).
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

ALU = "alu"
LDS = "lds"
LINE = "line"
MEM = "mem"


def alu(count: int) -> tuple:
    if count < 1:
        raise ValueError("alu op needs a positive instruction count")
    return (ALU, count)


def lds_op(count: int) -> tuple:
    if count < 1:
        raise ValueError("lds op needs a positive instruction count")
    return (LDS, count)


def line(line_id: int) -> tuple:
    return (LINE, line_id)


def mem(
    vpns: Sequence[int],
    instr_count: int = 0,
    is_write: bool = False,
    lines_per_page: int = 1,
) -> tuple:
    vpns = tuple(vpns)
    if not vpns:
        raise ValueError("mem op touches no pages")
    if instr_count <= 0:
        instr_count = len(vpns)
    if lines_per_page < 1:
        raise ValueError("lines_per_page must be at least 1")
    return (MEM, vpns, instr_count, is_write, lines_per_page)


def count_instructions(program: Iterable[tuple]) -> int:
    """Total dynamic instructions represented by a program (test helper)."""

    total = 0
    for op in program:
        kind = op[0]
        if kind in (ALU, LDS):
            total += op[1]
        elif kind == MEM:
            total += op[2]
        # "line" ops are PC bookkeeping, not instructions.
    return total
