"""GPU command processor and PM4-style packets (paper Section 7.1).

The driver talks to the GPU by enqueuing command packets into a command
queue; the GPU's packet processor parses them and acts. The paper uses this
existing machinery for two things we model:

- **TLB shootdowns**: on a page swap, migration, or permission change the
  driver enqueues a shootdown packet; the packet processor notifies the
  TLBs *and the reconfigurable LDS/I-cache controllers* to invalidate the
  VPN (Section 7.1).
- **I-cache flush commands** at kernel boundaries (Section 4.3.3): the
  runtime inserts a flush packet when two *different* kernels are enqueued
  back-to-back. (`GPUSystem.run` drives the flush directly; the packet
  type exists here so driver-level traces can be replayed through one
  mechanism.)

Timing: the processor drains packets serially; each packet costs a decode
overhead plus a per-structure invalidation broadcast.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional, Tuple

from repro.sim.stats import Stats

#: Cycles to parse one packet (packet-processor firmware).
PACKET_DECODE_CYCLES = 32

#: Cycles to broadcast one invalidation to all translation structures.
INVALIDATE_BROADCAST_CYCLES = 16

#: Cycles to broadcast an I-cache flush command.
FLUSH_BROADCAST_CYCLES = 24


class PacketType(enum.Enum):
    TLB_SHOOTDOWN = "tlb-shootdown"
    ICACHE_FLUSH = "icache-flush"


@dataclass(frozen=True)
class CommandPacket:
    """One PM4-style packet in the command queue."""

    packet_type: PacketType
    #: Shootdowns: the virtual page numbers to invalidate.
    vpns: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.packet_type is PacketType.TLB_SHOOTDOWN and not self.vpns:
            raise ValueError("shootdown packet carries no pages")


@dataclass
class PacketResult:
    """Outcome of processing one packet."""

    packet: CommandPacket
    completed_at: int
    entries_invalidated: int = 0
    lines_flushed: int = 0


class CommandProcessor:
    """Serial packet processor in front of the translation structures.

    ``invalidate_fn(vpn) -> int`` performs a system-wide invalidation of
    one page and returns the number of entries dropped; ``flush_fn() ->
    int`` flushes instruction lines and returns how many. Both are wired
    up by :class:`~repro.system.GPUSystem`.
    """

    def __init__(
        self,
        invalidate_fn: Callable[[int], int],
        flush_fn: Callable[[], int],
        stats: Optional[Stats] = None,
        name: str = "cp",
    ) -> None:
        self._invalidate_fn = invalidate_fn
        self._flush_fn = flush_fn
        self.stats = stats if stats is not None else Stats()
        self.name = name
        self._queue: Deque[CommandPacket] = deque()
        self._busy_until = 0

    # ------------------------------------------------------------------

    def enqueue(self, packet: CommandPacket) -> None:
        self._queue.append(packet)
        self.stats.add(f"{self.name}.packets_enqueued")

    def enqueue_shootdown(self, vpns) -> None:
        self.enqueue(CommandPacket(PacketType.TLB_SHOOTDOWN, tuple(vpns)))

    def enqueue_icache_flush(self) -> None:
        self.enqueue(CommandPacket(PacketType.ICACHE_FLUSH))

    @property
    def pending(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------

    def drain(self, now: int = 0) -> List[PacketResult]:
        """Process every queued packet; returns their results in order."""

        results = []
        while self._queue:
            results.append(self._process_one(max(now, self._busy_until)))
        return results

    def _process_one(self, start: int) -> PacketResult:
        packet = self._queue.popleft()
        when = start + PACKET_DECODE_CYCLES
        self.stats.add(f"{self.name}.packets_processed")

        if packet.packet_type is PacketType.TLB_SHOOTDOWN:
            invalidated = 0
            for vpn in packet.vpns:
                invalidated += self._invalidate_fn(vpn)
                when += INVALIDATE_BROADCAST_CYCLES
            self.stats.add(f"{self.name}.shootdown_pages", len(packet.vpns))
            self.stats.add(f"{self.name}.entries_invalidated", invalidated)
            self._busy_until = when
            return PacketResult(packet, when, entries_invalidated=invalidated)

        # I-cache flush.
        flushed = self._flush_fn()
        when += FLUSH_BROADCAST_CYCLES
        self.stats.add(f"{self.name}.flush_commands")
        self._busy_until = when
        return PacketResult(packet, when, lines_flushed=flushed)
