"""Work-group state: a bundle of wavefronts sharing one LDS allocation."""

from __future__ import annotations

from typing import Optional


class WorkGroup:
    """One dispatched work-group on one CU."""

    __slots__ = (
        "kernel_name",
        "kernel_code_base",
        "wg_id",
        "cu",
        "dispatcher",
        "lds_alloc_id",
        "waves_outstanding",
    )

    def __init__(
        self,
        kernel_name: str,
        kernel_code_base: int,
        wg_id: int,
        cu,
        dispatcher,
        lds_alloc_id: Optional[int],
        num_waves: int,
    ) -> None:
        self.kernel_name = kernel_name
        self.kernel_code_base = kernel_code_base
        self.wg_id = wg_id
        self.cu = cu
        self.dispatcher = dispatcher
        self.lds_alloc_id = lds_alloc_id
        self.waves_outstanding = num_waves

    def wave_done(self, wave, now: int) -> None:
        self.cu.release_wave_slot(wave.simd_index)
        self.waves_outstanding -= 1
        if self.waves_outstanding == 0:
            if self.lds_alloc_id is not None:
                self.cu.lds.free(self.lds_alloc_id)
            self.dispatcher.workgroup_completed(self.cu, now)
