"""Local Data Share (LDS) scratchpad (Section 2.2).

The LDS is a per-CU, application-managed scratchpad. The work-group
scheduling unit reserves capacity in one contiguous block per work-group
before dispatch; a work-group's allocation is returned wholesale when it
completes. Contiguous allocation with mixed work-group sizes produces the
fragmentation and under-utilization the paper measures (Figure 4a).

The structure is divided into 32-byte *segments*, each carrying a mode bit
(Section 4.2.4): LDS-mode segments belong to applications; free segments may
be claimed by the reconfigurable translation overlay
(:class:`repro.core.reconfig_lds.LDSTxCache`), which registers a callback so
its entries are dropped when an application allocation overwrites them
(LDS-mode may overwrite Tx-mode, never the reverse).
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional, Tuple

from repro.config import LDSConfig, LDSTxConfig
from repro.sim.engine import Port
from repro.sim.stats import Stats


class SegmentMode(enum.IntEnum):
    FREE = 0
    LDS = 1
    TX = 2


class LocalDataShare:
    """One CU's LDS: segment modes, contiguous allocator, access port."""

    def __init__(
        self,
        config: LDSConfig,
        tx_config: LDSTxConfig,
        stats: Optional[Stats] = None,
        name: str = "lds",
        track_idle: bool = True,
    ) -> None:
        self.config = config
        self.tx_config = tx_config
        self.name = name
        self.stats = stats if stats is not None else Stats()
        self.segment_bytes = tx_config.segment_bytes
        self.num_segments = config.size_bytes // self.segment_bytes
        self.mode: List[SegmentMode] = [SegmentMode.FREE] * self.num_segments
        self.port = Port(
            f"{name}.port", units=1, occupancy=config.port_occupancy,
            track_idle=track_idle,
        )
        self._allocations: Dict[int, Tuple[int, int]] = {}
        self._next_alloc_id = 1
        # The Tx overlay installs this to be told when LDS-mode claims its
        # segments (translations silently dropped, per Section 4.2.4).
        self.tx_overwrite_callback: Optional[Callable[[int], None]] = None

    # ------------------------------------------------------------------
    # Allocation (work-group scheduler interface)
    # ------------------------------------------------------------------

    def segments_needed(self, nbytes: int) -> int:
        return -(-nbytes // self.segment_bytes)

    def can_allocate(self, nbytes: int) -> bool:
        if nbytes <= 0:
            return True
        return self._find_run(self.segments_needed(nbytes)) is not None

    def _find_run(self, length: int) -> Optional[int]:
        """First-fit search for ``length`` contiguous non-LDS segments."""

        run_start = None
        run_length = 0
        for index in range(self.num_segments):
            if self.mode[index] != SegmentMode.LDS:
                if run_start is None:
                    run_start = index
                run_length += 1
                if run_length >= length:
                    return run_start
            else:
                run_start = None
                run_length = 0
        return None

    def allocate(self, nbytes: int) -> Optional[int]:
        """Reserve a contiguous block; returns an allocation id, or None."""

        if nbytes <= 0:
            # Work-groups that request no LDS still get an id for symmetry.
            alloc_id = self._next_alloc_id
            self._next_alloc_id += 1
            self._allocations[alloc_id] = (0, 0)
            return alloc_id
        length = self.segments_needed(nbytes)
        start = self._find_run(length)
        if start is None:
            self.stats.add(f"{self.name}.allocation_failures")
            return None
        for index in range(start, start + length):
            if self.mode[index] == SegmentMode.TX and self.tx_overwrite_callback:
                self.tx_overwrite_callback(index)
            self.mode[index] = SegmentMode.LDS
        alloc_id = self._next_alloc_id
        self._next_alloc_id += 1
        self._allocations[alloc_id] = (start, length)
        self.stats.add(f"{self.name}.allocations")
        self.stats.add(f"{self.name}.allocated_bytes", length * self.segment_bytes)
        return alloc_id

    def free(self, alloc_id: int) -> None:
        start, length = self._allocations.pop(alloc_id)
        for index in range(start, start + length):
            self.mode[index] = SegmentMode.FREE

    # ------------------------------------------------------------------
    # Application data path
    # ------------------------------------------------------------------

    def app_access(self, now: int) -> int:
        """One application LDS instruction; returns the completion time."""

        start = self.port.request(now)
        self.stats.add(f"{self.name}.app_accesses")
        return start + self.config.lds_mode_latency

    # ------------------------------------------------------------------
    # Occupancy accounting
    # ------------------------------------------------------------------

    @property
    def allocated_segments(self) -> int:
        return sum(1 for mode in self.mode if mode == SegmentMode.LDS)

    @property
    def allocated_bytes(self) -> int:
        return self.allocated_segments * self.segment_bytes

    @property
    def free_segments(self) -> int:
        return sum(1 for mode in self.mode if mode != SegmentMode.LDS)
