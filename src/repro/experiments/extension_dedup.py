"""Extension study: limiting cross-CU translation duplication.

Section 6.1.1 observes that translations shared across CUs are replicated
in every CU's private LDS, limiting the cumulative capacity the design
gains, and explicitly leaves "optimizations to limit the translation
duplication for future investigations". This experiment implements and
evaluates one such optimization: a *shared-fill filter* that steers victims
for pages already touched by 2+ CUs past the private LDS into the shared
(deduplicating) I-cache, keeping the LDS for CU-local reuse.

Enabled by ``SystemConfig.dedup_shared_fills``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional

from repro.config import TxScheme, table1_config
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    gmean_speedup,
    run_app,
)
from repro.workloads.registry import app_names


def run(
    scale: Optional[float] = None, apps: Optional[List[str]] = None
) -> ExperimentResult:
    if scale is None:
        scale = DEFAULT_SCALE
    if apps is None:
        apps = app_names()
    result = ExperimentResult(
        experiment_id="Extension: dedup filter",
        title="Shared-fill filter vs baseline IC+LDS (paper future work)",
        paper_notes=(
            "Not a paper experiment: implements Section 6.1.1's suggested "
            "future work. Shared-heavy apps should benefit; CU-partitioned "
            "apps (GEV) should be unaffected."
        ),
    )
    combined = table1_config(TxScheme.ICACHE_LDS)
    filtered = replace(combined, dedup_shared_fills=True)
    speedups = {"icache_lds": [], "icache_lds_dedup": []}
    for app in apps:
        baseline = run_app(app, table1_config(), scale)
        plain = run_app(app, combined, scale)
        dedup = run_app(app, filtered, scale)
        row = {
            "app": app,
            "icache_lds": baseline.cycles / plain.cycles,
            "icache_lds_dedup": baseline.cycles / dedup.cycles,
            "lds_fills_skipped": int(dedup.counter("fill_flow.lds_skipped_shared")),
        }
        speedups["icache_lds"].append(row["icache_lds"])
        speedups["icache_lds_dedup"].append(row["icache_lds_dedup"])
        result.rows.append(row)
    result.rows.append(
        {"app": "GMEAN"}
        | {label: gmean_speedup(values) for label, values in speedups.items()}
    )
    return result
