"""Figure 14: translation sharing, normalized page walks, page sizes.

- 14a: fraction of translated pages touched by more than one CU. Paper:
  high for most apps; low for GEV, NW and SRAD — this duplication is what
  limits the private LDS's cumulative capacity.
- 14b: page walks under each scheme, normalized to baseline. Paper means:
  LDS −33.5%, IC −40.6%, IC+LDS −72.9%; SRAD unchanged (~0 baseline walks).
- 14c: IC+LDS speedup at 4KB / 64KB / 2MB pages. Paper: +30.1% / +18.4% /
  +5.6% — the scheme keeps helping under larger pages, less so.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import TxScheme, table1_config
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    gmean_speedup,
    run_app,
)
from repro.schemes import schemes_for_tag
from repro.sim.runner import SweepJob, jobs_with_engine, run_sweep
from repro.workloads.registry import app_names

PAGE_SIZES = (4096, 64 * 1024, 2 * 1024 * 1024)

# Figure 14b compares the same victim-cache arms as Figure 13b, so the
# grid derives from the registry's ``fig13-victim`` tag.
_SCHEMES_14B = tuple(spec.scheme for spec in schemes_for_tag("fig13-victim"))


def sweep_jobs_14ab(scale: Optional[float] = None) -> List[SweepJob]:
    if scale is None:
        scale = DEFAULT_SCALE
    configs = [table1_config()] + [table1_config(s) for s in _SCHEMES_14B]
    return [
        SweepJob(app, config, scale) for app in app_names() for config in configs
    ]


def sweep_jobs_14c(scale: Optional[float] = None) -> List[SweepJob]:
    if scale is None:
        scale = DEFAULT_SCALE
    jobs: List[SweepJob] = []
    for page_size in PAGE_SIZES:
        for config in (
            table1_config().with_page_size(page_size),
            table1_config(TxScheme.ICACHE_LDS).with_page_size(page_size),
        ):
            jobs.extend(SweepJob(app, config, scale) for app in app_names())
    return jobs


def sweep_jobs(
    scale: Optional[float] = None, engine: Optional[str] = None
) -> List[SweepJob]:
    """The full Figure 14 job grid (14a/b schemes + 14c page sizes)."""

    return jobs_with_engine(
        sweep_jobs_14ab(scale) + sweep_jobs_14c(scale), engine
    )


def run_fig14a(scale: Optional[float] = None) -> ExperimentResult:
    if scale is None:
        scale = DEFAULT_SCALE
    result = ExperimentResult(
        experiment_id="Figure 14a",
        title="Translations shared across CUs",
        paper_notes="Paper: sharing high except for GEV, NW and SRAD.",
    )
    run_sweep(
        [SweepJob(app, table1_config(), scale) for app in app_names()],
        keep_going=True,
    )
    for app in app_names():
        sim = run_app(app, table1_config(), scale)
        total = sim.counter("tx_sharing.total_pages")
        shared = sim.counter("tx_sharing.shared_pages")
        result.rows.append(
            {
                "app": app,
                "pages": int(total),
                "shared_pct": 100.0 * shared / total if total else 0.0,
            }
        )
    return result


def run_fig14b(scale: Optional[float] = None) -> ExperimentResult:
    if scale is None:
        scale = DEFAULT_SCALE
    run_sweep(sweep_jobs_14ab(scale), keep_going=True)
    schemes = _SCHEMES_14B
    result = ExperimentResult(
        experiment_id="Figure 14b",
        title="Page walks normalized to baseline",
        paper_notes=(
            "Paper means: LDS 0.665, IC 0.594, IC+LDS 0.271 of baseline "
            "walks; SRAD unchanged (~zero baseline walks)."
        ),
    )
    means = {scheme: [] for scheme in schemes}
    for app in app_names():
        baseline = run_app(app, table1_config(), scale)
        row = {"app": app, "baseline_walks": int(baseline.page_walks)}
        for scheme in schemes:
            sim = run_app(app, table1_config(scheme), scale)
            ratio = (
                sim.page_walks / baseline.page_walks
                if baseline.page_walks
                else 1.0
            )
            row[f"{scheme.value}_walks"] = ratio
            means[scheme].append(ratio)
        result.rows.append(row)
    result.rows.append(
        {"app": "MEAN", "baseline_walks": ""}
        | {
            f"{scheme.value}_walks": sum(values) / len(values)
            for scheme, values in means.items()
        }
    )
    return result


def run_fig14c(scale: Optional[float] = None) -> ExperimentResult:
    if scale is None:
        scale = DEFAULT_SCALE
    result = ExperimentResult(
        experiment_id="Figure 14c",
        title="IC+LDS speedup vs page size",
        paper_notes=(
            "Paper gmeans: +30.1% at 4KB, +18.4% at 64KB, +5.6% at 2MB. "
            "At 2MB our scaled footprints leave almost no walks, so the "
            "measured effect is ~neutral (see EXPERIMENTS.md)."
        ),
    )
    run_sweep(sweep_jobs_14c(scale), keep_going=True)
    for page_size in PAGE_SIZES:
        base_cfg = table1_config().with_page_size(page_size)
        cfg = table1_config(TxScheme.ICACHE_LDS).with_page_size(page_size)
        row = {"page_size": page_size}
        speedups = []
        for app in app_names():
            baseline = run_app(app, base_cfg, scale)
            sim = run_app(app, cfg, scale)
            speedup = baseline.cycles / sim.cycles
            row[f"{app}_speedup"] = speedup
            speedups.append(speedup)
        row["gmean_speedup"] = gmean_speedup(speedups)
        result.rows.append(row)
    return result
