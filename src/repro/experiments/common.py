"""Shared experiment infrastructure.

- A process-wide (and optional on-disk) result cache: many figures share
  the same baseline runs, and pytest-benchmark repeats harness calls.
- ``run_app``: build a fresh system + app for a configuration and simulate.
- ``ExperimentResult``: rows + formatting shared by all figure harnesses.

Scale: experiments honour the ``REPRO_SCALE`` environment variable
(default 1.0). Scaling shrinks per-wave work, keeping every mechanism
exercised while making CI-sized runs fast; the paper itself scaled its gem5
configuration down for the same reason (Section 5).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config import SystemConfig, TxScheme, table1_config
from repro.sim.results import SimResult, geomean
from repro.sim.store import ResultStore
from repro.system import GPUSystem
from repro.workloads.registry import make_app

DEFAULT_SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))

_CACHE: Dict[str, SimResult] = {}

_CACHE_DIR = os.environ.get("REPRO_CACHE_DIR", "")

#: Version tag written into every on-disk payload. Bump whenever the
#: serialized shape of :class:`SimResult` changes — or when the simulator's
#: measured semantics change (e.g. the v2 port-idle zero-gap fix), so stale
#: results never mix with fresh ones; files carrying a different tag are
#: treated as stale and re-simulated (then overwritten).
CACHE_SCHEMA = "repro-simresult-v2"

#: Kept for callers that tune cache logging by name; the store itself
#: logs under "repro.sim.store" (see :mod:`repro.sim.store`).
_LOG = logging.getLogger("repro.experiments.cache")


def clear_cache() -> None:
    _CACHE.clear()


def _config_signature(config: SystemConfig) -> str:
    # Hash the explicit serialized form, not repr(): the signature then
    # only changes when a setting's *value* changes, not when unrelated
    # fields are added to the dataclasses. The engine selection is dropped
    # before hashing: both engines produce byte-identical results (the
    # equivalence battery enforces this), so a vectorized run may serve —
    # and be served by — an event-mode cache entry.
    from repro.config_io import config_to_dict

    payload = config_to_dict(config)
    payload.pop("engine", None)
    text = json.dumps(payload, indent=2, sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def _cache_key(app_name: str, config: SystemConfig, scale: float) -> str:
    # float(scale): ``scale=1`` and ``scale=1.0`` are the same simulation
    # and must share one cache identity (an int interpolates as "1", a
    # float as "1.0", which used to split the key and miss warm caches).
    return f"{app_name}|{float(scale)}|{_config_signature(config)}"


def cache_key(app_name: str, config: SystemConfig, scale: float) -> str:
    """Public cache identity of one (app, config, scale) simulation."""

    return _cache_key(app_name, config, scale)


def _store() -> Optional[ResultStore]:
    """The content-addressed store rooted at ``_CACHE_DIR`` (the
    module-level knob tests monkeypatch), or ``None`` when no disk cache
    is configured."""

    if not _CACHE_DIR:
        return None
    return ResultStore(_CACHE_DIR)


def _disk_path(key: str) -> Optional[str]:
    store = _store()
    if store is None:
        return None
    return store.path_for(key)


def serialize_result(result: SimResult) -> Dict:
    """The versioned, JSON-ready form of a :class:`SimResult`."""

    return {
        "schema": CACHE_SCHEMA,
        "app_name": result.app_name,
        "scheme": result.scheme,
        "cycles": result.cycles,
        "counters": result.counters,
        "kernels": [
            {
                "kernel_name": kernel.kernel_name,
                "invocation": kernel.invocation,
                "start_cycle": kernel.start_cycle,
                "end_cycle": kernel.end_cycle,
                "counters": kernel.counters,
            }
            for kernel in result.kernels
        ],
        "distributions": {
            name: (stats.__dict__ if stats is not None else None)
            for name, stats in result.distributions.items()
        },
    }


def deserialize_result(payload: Dict) -> SimResult:
    """Inverse of :func:`serialize_result`. Raises on malformed payloads."""

    from repro.sim.results import KernelResult
    from repro.sim.stats import BoxStats

    kernels = [KernelResult(**kernel) for kernel in payload.get("kernels", [])]
    distributions = {
        name: (BoxStats(**stats) if stats else None)
        for name, stats in payload.get("distributions", {}).items()
    }
    return SimResult(
        app_name=payload["app_name"],
        scheme=payload["scheme"],
        cycles=payload["cycles"],
        counters=payload["counters"],
        kernels=kernels,
        distributions=distributions,
    )


def result_fingerprint(result: SimResult) -> str:
    """A stable byte-level digest of a result's serialized form.

    Two results are equivalent iff their fingerprints match; the
    determinism tests compare parallel and serial runs this way.
    """

    text = json.dumps(serialize_result(result), sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()


def _quarantine(path: str, reason: str) -> None:
    """Move a bad cache file aside (delegates to the store's unique-suffix
    quarantine, which is safe against two processes racing on one entry)."""

    store = _store()
    if store is None:
        return
    store.quarantine(path, reason)


def _load_disk(key: str) -> Optional[SimResult]:
    store = _store()
    if store is None:
        return None
    return store.load(key)


def _store_disk(key: str, result: SimResult) -> None:
    store = _store()
    if store is None:
        return
    store.store(key, result)


def run_app(
    app_name: str,
    config: Optional[SystemConfig] = None,
    scale: Optional[float] = None,
    use_cache: bool = True,
) -> SimResult:
    """Simulate ``app_name`` under ``config`` (Table 1 baseline by default)."""

    if config is None:
        config = table1_config()
    if scale is None:
        scale = DEFAULT_SCALE
    scale = float(scale)
    key = _cache_key(app_name, config, scale)
    if use_cache:
        cached = _CACHE.get(key)
        if cached is not None:
            return cached
        cached = _load_disk(key)
        if cached is not None:
            _CACHE[key] = cached
            return cached
    app = make_app(app_name, scale=scale, page_size=config.page_size)
    result = GPUSystem(config).run(app)
    if use_cache:
        _CACHE[key] = result
        _store_disk(key, result)
    return result


def scheme_config(scheme: TxScheme) -> SystemConfig:
    return table1_config(scheme)


def speedup_over_baseline(
    app_name: str, config: SystemConfig, scale: Optional[float] = None
) -> float:
    baseline = run_app(app_name, table1_config(), scale)
    candidate = run_app(app_name, config, scale)
    return baseline.cycles / candidate.cycles


@dataclass
class ExperimentResult:
    """Rows of one reproduced table/figure, plus paper reference points."""

    experiment_id: str
    title: str
    rows: List[Dict] = field(default_factory=list)
    paper_notes: str = ""

    @property
    def columns(self) -> List[str]:
        columns: List[str] = []
        for row in self.rows:
            for name in row:
                if name not in columns:
                    columns.append(name)
        return columns

    def column(self, name: str) -> List:
        return [row.get(name) for row in self.rows]

    def row_for(self, key_column: str, value) -> Dict:
        for row in self.rows:
            if row.get(key_column) == value:
                return row
        raise KeyError(f"no row with {key_column}={value!r}")

    def format_table(self) -> str:
        columns = self.columns
        header = " | ".join(columns)
        divider = " | ".join("---" for _ in columns)
        lines = [f"### {self.experiment_id}: {self.title}", ""]
        lines.append(f"| {header} |")
        lines.append(f"| {divider} |")
        for row in self.rows:
            cells = []
            for name in columns:
                value = row.get(name, "")
                if isinstance(value, float):
                    cells.append(f"{value:.3f}")
                else:
                    cells.append(str(value))
            lines.append("| " + " | ".join(cells) + " |")
        if self.paper_notes:
            lines.append("")
            lines.append(self.paper_notes)
        return "\n".join(lines)


def gmean_speedup(speedups: Sequence[float]) -> float:
    return geomean(speedups)
