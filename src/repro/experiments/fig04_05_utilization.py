"""Figures 4 and 5: the under-utilization motivation study (Section 3.2).

- Figure 4a: LDS bytes requested per work-group, per application (box
  stats). Paper: ~70% of surveyed apps request no LDS; none use the full
  per-CU capacity.
- Figure 4b: idle-cycle gaps between LDS port accesses for LDS-using apps.
- Figure 5a: I-cache utilization per kernel launch, Equation 1:
  (misses + prefetches) / lines, capped at 100%.
- Figure 5b: idle-cycle gaps between I-cache port accesses.

The paper collected 4a/5a on a real RX 580 over 54 applications; we run the
ten main benchmarks plus the synthetic survey suite (DESIGN.md Section 2).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.config import table1_config
from repro.experiments.common import DEFAULT_SCALE, ExperimentResult, run_app
from repro.sim.results import SimResult
from repro.system import GPUSystem
from repro.workloads.registry import app_names
from repro.workloads.survey import make_survey_suite

_SURVEY_CACHE: Dict[str, SimResult] = {}


def _survey_results(scale: float) -> Dict[str, SimResult]:
    key_prefix = f"{scale}|"
    missing = [
        app
        for app in make_survey_suite(scale=scale)
        if key_prefix + app.name not in _SURVEY_CACHE
    ]
    for app in missing:
        _SURVEY_CACHE[key_prefix + app.name] = GPUSystem(table1_config()).run(app)
    return {
        name[len(key_prefix):]: result
        for name, result in _SURVEY_CACHE.items()
        if name.startswith(key_prefix)
    }


def kernel_icache_utilization(sim: SimResult) -> List[float]:
    """Per-kernel Equation 1 utilization, capped at 1.0."""

    total_lines = sim.counter("icache.total_lines")
    if not total_lines:
        return []
    utilization = []
    for kernel in sim.kernels:
        fills = kernel.counters.get("icache.fills", 0.0)
        utilization.append(min(1.0, fills / total_lines))
    return utilization


def _box(values: List[float]) -> Dict[str, float]:
    if not values:
        return {"min": 0.0, "median": 0.0, "max": 0.0, "mean": 0.0}
    ordered = sorted(values)
    return {
        "min": ordered[0],
        "median": ordered[len(ordered) // 2],
        "max": ordered[-1],
        "mean": sum(values) / len(values),
    }


def run(scale: Optional[float] = None, include_survey: bool = True) -> ExperimentResult:
    if scale is None:
        scale = DEFAULT_SCALE
    result = ExperimentResult(
        experiment_id="Figures 4 + 5",
        title="LDS and I-cache capacity / port-bandwidth under-utilization",
        paper_notes=(
            "Paper (54 real apps): ~70% request no LDS, none use the full "
            "LDS; ~24% always fill the I-cache; typical port idle gaps are "
            "tens of cycles."
        ),
    )
    sims: Dict[str, SimResult] = {
        name: run_app(name, table1_config(), scale) for name in app_names()
    }
    if include_survey:
        sims.update(_survey_results(scale))

    for name, sim in sims.items():
        lds_req = sim.distributions.get("lds_bytes_per_wg")
        lds_idle = sim.distributions.get("lds_port_idle")
        ic_idle = sim.distributions.get("icache_port_idle")
        ic_util = _box(kernel_icache_utilization(sim))
        result.rows.append(
            {
                "app": name,
                "lds_bytes_per_wg_max": lds_req.maximum if lds_req else 0.0,
                "lds_bytes_per_wg_median": lds_req.median if lds_req else 0.0,
                "uses_lds": bool(lds_req and lds_req.maximum > 0),
                "lds_idle_median": lds_idle.median if lds_idle else 0.0,
                "icache_util_min": ic_util["min"],
                "icache_util_median": ic_util["median"],
                "icache_util_max": ic_util["max"],
                "icache_idle_median": ic_idle.median if ic_idle else 0.0,
            }
        )
    return result


def summarize(result: ExperimentResult) -> Dict[str, float]:
    """Suite-level summary comparable to the paper's prose claims."""

    total = len(result.rows)
    no_lds = sum(1 for row in result.rows if not row["uses_lds"])
    always_full_ic = sum(
        1 for row in result.rows if row["icache_util_min"] >= 0.999
    )
    never_full_ic = sum(
        1 for row in result.rows if row["icache_util_max"] < 0.999
    )
    return {
        "apps": total,
        "fraction_no_lds": no_lds / total if total else 0.0,
        "fraction_always_full_icache": always_full_ic / total if total else 0.0,
        "fraction_never_full_icache": never_full_ic / total if total else 0.0,
    }
