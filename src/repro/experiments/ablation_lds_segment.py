"""Section 6.3.1 ablation: LDS segment size 32B vs 64B.

Doubling the segment to 64 bytes doubles translation associativity (3 → 6
ways) while halving the number of segments; capacity is unchanged. The
paper found no performance change — translation misses are capacity
misses, not conflict misses — and this ablation verifies the same holds
in the reproduction.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.config import TxScheme, table1_config
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    gmean_speedup,
    run_app,
)
from repro.workloads.registry import app_names

SEGMENT_SIZES = (32, 64)


def run(scale: Optional[float] = None) -> ExperimentResult:
    if scale is None:
        scale = DEFAULT_SCALE
    result = ExperimentResult(
        experiment_id="Section 6.3.1",
        title="LDS segment size ablation (32B / 3-way vs 64B / 6-way)",
        paper_notes=(
            "Paper: no improvement from 64B segments — higher associativity "
            "without more capacity does not help capacity misses."
        ),
    )
    for segment_bytes in SEGMENT_SIZES:
        cfg = table1_config(TxScheme.ICACHE_LDS)
        cfg = replace(cfg, lds_tx=replace(cfg.lds_tx, segment_bytes=segment_bytes))
        speedups = []
        for app in app_names():
            baseline = run_app(app, table1_config(), scale)
            sim = run_app(app, cfg, scale)
            speedups.append(baseline.cycles / sim.cycles)
        result.rows.append(
            {
                "segment_bytes": segment_bytes,
                "tx_ways": cfg.lds_tx.ways_per_segment,
                "gmean_speedup": gmean_speedup(speedups),
            }
        )
    return result
