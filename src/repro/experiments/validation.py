"""Shape validation: does each reproduced experiment match the paper?

Absolute numbers are out of scope (DESIGN.md §2); what must hold are the
paper's *qualitative claims* — orderings, categories, crossovers,
no-degradation guarantees. This module encodes one checklist per experiment
and renders a PASS/DIVERGE summary for EXPERIMENTS.md, so a reader can see
at a glance which claims reproduce and which are known divergences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.experiments.common import ExperimentResult
from repro.workloads.registry import LOW_APPS


@dataclass(frozen=True)
class Check:
    experiment_id: str
    claim: str
    passed: bool
    detail: str = ""


def _gmean_row(result: ExperimentResult) -> Dict:
    return result.row_for("app", "GMEAN")


# ----------------------------------------------------------------------
# Per-experiment checklists
# ----------------------------------------------------------------------

def validate_table2(result: ExperimentResult) -> List[Check]:
    matches = [row for row in result.rows if row["category"] == row["paper_category"]]
    b2b = [row["app"] for row in result.rows if row["b2b"]]
    return [
        Check(
            "Table 2", "every app lands in its PTW-PKI category",
            len(matches) == len(result.rows),
            f"{len(matches)}/{len(result.rows)} match",
        ),
        Check("Table 2", "only NW launches back-to-back kernels", b2b == ["NW"],
              f"b2b: {b2b}"),
    ]


def validate_fig02_03(result: ExperimentResult) -> List[Check]:
    sizes = [row for row in result.rows if row["l2_entries"] != "perfect"]
    ratios = [row["mean_walk_ratio"] for row in sizes]
    gmeans = [row["gmean_speedup"] for row in sizes]
    perfect = result.row_for("l2_entries", "perfect")
    low_flat = all(
        sizes[-1][f"{app}_speedup"] < 1.15 for app in LOW_APPS
    )
    return [
        Check("Fig 2", "walks fall monotonically with TLB size",
              all(b <= a * 1.02 for a, b in zip(ratios, ratios[1:])),
              f"{ratios[0]:.2f} -> {ratios[-1]:.2f}"),
        Check("Fig 2", "large TLB removes most walks (paper ~-85%)",
              ratios[-1] < 0.45, f"final ratio {ratios[-1]:.2f}"),
        Check("Fig 3", "performance rises with TLB size",
              gmeans[-1] > gmeans[0] * 1.1,
              f"{gmeans[0]:.2f} -> {gmeans[-1]:.2f}"),
        Check("Fig 3", "perfect L2 TLB is the upper bound",
              perfect["gmean_speedup"] >= gmeans[-1] * 0.99,
              f"perfect {perfect['gmean_speedup']:.2f}"),
        Check("Fig 3", "SRAD/PRK/SSSP are insensitive", low_flat),
    ]


def validate_fig04_05(result: ExperimentResult) -> List[Check]:
    from repro.experiments.fig04_05_utilization import summarize

    summary = summarize(result)
    return [
        Check("Fig 4a", "most apps request no LDS (paper ~70%)",
              summary["fraction_no_lds"] >= 0.5,
              f"{100 * summary['fraction_no_lds']:.0f}% request none"),
        Check("Fig 5a", "only a minority always fill the I-cache (paper ~24%)",
              summary["fraction_always_full_icache"] <= 0.4,
              f"{100 * summary['fraction_always_full_icache']:.0f}% always full"),
    ]


def validate_fig13a(result: ExperimentResult) -> List[Check]:
    gmean = _gmean_row(result)
    srad = result.row_for("app", "SRAD")
    return [
        Check("Fig 13a", "one translation per way gains ~nothing",
              gmean["one_tx_per_way"] < 1.10,
              f"{gmean['one_tx_per_way']:.3f}"),
        Check("Fig 13a", "naive replacement < instruction-aware",
              gmean["naive_replacement"] < gmean["instruction_aware"],
              f"{gmean['naive_replacement']:.3f} vs {gmean['instruction_aware']:.3f}"),
        Check("Fig 13a", "naive replacement degrades code-heavy SRAD",
              srad["naive_replacement"] < 1.0, f"{srad['naive_replacement']:.3f}"),
        Check("Fig 13a", "kernel-boundary flush adds on top",
              gmean["instruction_aware_flush"] >= gmean["instruction_aware"] * 0.995,
              f"{gmean['instruction_aware_flush']:.3f}"),
    ]


def validate_fig13b(result: ExperimentResult) -> List[Check]:
    gmean = _gmean_row(result)
    hm = result.row_for("app", "GMEAN-H+M")
    atax = result.row_for("app", "ATAX")["icache+lds"]
    bicg = result.row_for("app", "BICG")["icache+lds"]
    gups = result.row_for("app", "GUPS")["icache+lds"]
    low_ok = all(
        result.row_for("app", app)["icache+lds"] > 0.95 for app in LOW_APPS
    )
    return [
        Check("Fig 13b", "combined design wins big (paper +30.1%)",
              gmean["icache+lds"] > 1.20, f"{gmean['icache+lds']:.3f}"),
        Check("Fig 13b", "combined > LDS-only and > IC-only",
              gmean["icache+lds"] > max(gmean["lds"], gmean["icache"]),
              f"{gmean['lds']:.3f}/{gmean['icache']:.3f}/{gmean['icache+lds']:.3f}"),
        Check("Fig 13b", "IC-only gmean > LDS-only gmean (paper +13.6 vs +8.6)",
              gmean["icache"] > gmean["lds"],
              f"{gmean['icache']:.3f} vs {gmean['lds']:.3f} "
              "(known divergence: ours are close, LDS slightly ahead)"),
        Check("Fig 13b", "H+M-only gmean exceeds the all-apps gmean",
              hm["icache+lds"] > gmean["icache+lds"], f"{hm['icache+lds']:.3f}"),
        Check("Fig 13b", "ATAX and BICG are among the biggest winners",
              min(atax, bicg) > gups, f"ATAX {atax:.2f}, BICG {bicg:.2f}"),
        Check("Fig 13b", "GUPS gains little (paper +9.14%)",
              1.0 < gups < 1.2, f"{gups:.3f}"),
        Check("Fig 13b", "Low apps are not degraded", low_ok),
    ]


def validate_fig13c(result: ExperimentResult) -> List[Check]:
    mean = result.row_for("app", "MEAN")
    best = min(
        row["icache+lds_energy"] for row in result.rows if row["app"] != "MEAN"
    )
    return [
        Check("Fig 13c", "combined design reduces mean DRAM energy",
              mean["icache+lds_energy"] < 1.0,
              f"{mean['icache+lds_energy']:.3f}"),
        Check("Fig 13c", "best per-app saving is substantial (paper -27.3%)",
              best < 0.85, f"best {best:.3f}"),
    ]


def validate_fig14a(result: ExperimentResult) -> List[Check]:
    rows = {row["app"]: row["shared_pct"] for row in result.rows}
    high = [rows[a] for a in ("ATAX", "BICG", "MVT", "GUPS", "BFS")]
    return [
        Check("Fig 14a", "GEV shares least; most apps share heavily",
              all(value > rows["GEV"] for value in high) and min(high) > 50,
              f"GEV {rows['GEV']:.0f}%, others {min(high):.0f}-{max(high):.0f}%"),
    ]


def validate_fig14b(result: ExperimentResult) -> List[Check]:
    mean = result.row_for("app", "MEAN")
    srad = result.row_for("app", "SRAD")
    return [
        Check("Fig 14b", "combined removes the most walks (paper -72.9%)",
              mean["icache+lds_walks"] < min(mean["lds_walks"], mean["icache_walks"]),
              f"{mean['lds_walks']:.2f}/{mean['icache_walks']:.2f}/"
              f"{mean['icache+lds_walks']:.2f}"),
        Check("Fig 14b", "SRAD's ~zero walks stay ~unchanged",
              0.9 <= srad["icache+lds_walks"] <= 1.1),
    ]


def validate_fig14c(result: ExperimentResult) -> List[Check]:
    by_size = {row["page_size"]: row["gmean_speedup"] for row in result.rows}
    return [
        Check("Fig 14c", "benefit shrinks with page size (paper 30/18/5.6%)",
              by_size[4096] > by_size[65536] > by_size[2097152] * 0.999,
              f"{by_size[4096]:.2f}/{by_size[65536]:.2f}/{by_size[2097152]:.2f} "
              "(2MB ~neutral here: scaled footprints leave no walks)"),
    ]


def validate_fig15(result: ExperimentResult) -> List[Check]:
    within = all(row["total_entries"] <= 16384 for row in result.rows)
    gups = result.row_for("app", "GUPS")["pct_of_max"]
    return [
        Check("Fig 15", "entries bounded by 16K (12K LDS + 4K IC)", within),
        Check("Fig 15", "reach-hungry apps drive structures near capacity",
              gups > 60.0, f"GUPS uses {gups:.0f}% of the bound"),
    ]


def validate_fig16a(result: ExperimentResult) -> List[Check]:
    by_sharers = {row["cus_per_icache"]: row["gmean_speedup"] for row in result.rows}
    return [
        Check("Fig 16a", "more sharers help (paper 17.3% -> 38.4%)",
              by_sharers[8] > by_sharers[1],
              f"{by_sharers[1]:.3f} -> {by_sharers[8]:.3f}"),
    ]


def validate_fig16b(result: ExperimentResult) -> List[Check]:
    arms = {row["arm"]: row["gmean_speedup"] for row in result.rows}
    return [
        Check("Fig 16b", "worst-case wires keep a clear win (paper +9.4%)",
              arms["ic_lds_100"] > 1.05, f"{arms['ic_lds_100']:.3f}"),
        Check("Fig 16b", "degradation grows with wire latency",
              arms["ic_lds_100"] <= arms["no_extra"] * 1.01),
    ]


def validate_fig16c(result: ExperimentResult) -> List[Check]:
    gmean = _gmean_row(result)
    return [
        Check("Fig 16c", "DUCATI alone gains little (paper +4.9%)",
              1.0 < gmean["ducati"] < gmean["icache_lds"],
              f"{gmean['ducati']:.3f} vs {gmean['icache_lds']:.3f}"),
        Check("Fig 16c", "DUCATI composes with IC+LDS (paper +40.7%)",
              gmean["ducati_icache_lds"] > gmean["icache_lds"],
              f"{gmean['ducati_icache_lds']:.3f}"),
    ]


def validate_ablation(result: ExperimentResult) -> List[Check]:
    small = result.row_for("segment_bytes", 32)["gmean_speedup"]
    large = result.row_for("segment_bytes", 64)["gmean_speedup"]
    return [
        Check("§6.3.1", "64B segments change nothing (capacity misses)",
              abs(large - small) / small < 0.05,
              f"{small:.3f} vs {large:.3f}"),
    ]


#: experiment_id (as produced by each harness) -> validator.
VALIDATORS: Dict[str, Callable[[ExperimentResult], List[Check]]] = {
    "Table 2": validate_table2,
    "Figures 2 + 3": validate_fig02_03,
    "Figures 4 + 5": validate_fig04_05,
    "Figure 13a": validate_fig13a,
    "Figure 13b": validate_fig13b,
    "Figure 13c": validate_fig13c,
    "Figure 14a": validate_fig14a,
    "Figure 14b": validate_fig14b,
    "Figure 14c": validate_fig14c,
    "Figure 15": validate_fig15,
    "Figure 16a": validate_fig16a,
    "Figure 16b": validate_fig16b,
    "Figure 16c": validate_fig16c,
    "Section 6.3.1": validate_ablation,
}


def validate(results: List[ExperimentResult]) -> List[Check]:
    """Run every applicable checklist over the produced results."""

    checks: List[Check] = []
    for result in results:
        validator = VALIDATORS.get(result.experiment_id)
        if validator is not None:
            checks.extend(validator(result))
    return checks


def render_checklist(checks: List[Check]) -> str:
    """Markdown PASS/DIVERGE table."""

    lines = [
        "## Validation summary (paper claims vs measured)",
        "",
        "| experiment | claim | status | detail |",
        "| --- | --- | --- | --- |",
    ]
    for check in checks:
        status = "PASS" if check.passed else "DIVERGE"
        lines.append(
            f"| {check.experiment_id} | {check.claim} | {status} | {check.detail} |"
        )
    passed = sum(1 for check in checks if check.passed)
    lines.append("")
    lines.append(f"**{passed}/{len(checks)} claims reproduced.**")
    return "\n".join(lines)
