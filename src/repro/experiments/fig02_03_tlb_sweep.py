"""Figures 2 and 3: L2 TLB size sweep (motivation study, Section 3.1).

Figure 2: page-table walks, normalized to the 512-entry baseline, as the
L2 TLB grows from 512 entries towards 2M, plus the Perfect-L2-TLB bound.
Figure 3: relative performance over the same sweep.

Paper headlines: walks drop ~85% on average at the largest size; 512→8K
gives +14.7% gmean performance; 2M gives up to +50.1%; SRAD/PRK/SSSP are
insensitive.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import table1_config
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    gmean_speedup,
    run_app,
)
from repro.sim.runner import SweepJob, jobs_with_engine, run_sweep
from repro.workloads.registry import app_names

#: Default sweep; the full-paper sweep (…→2M) saturates on our scaled
#: footprints beyond 64K entries.
DEFAULT_SIZES = (512, 1024, 2048, 4096, 8192, 16384, 65536, 2 * 1024 * 1024)


def sweep_jobs(
    scale: Optional[float] = None,
    sizes: Optional[List[int]] = None,
    engine: Optional[str] = None,
) -> List[SweepJob]:
    """The full Figures 2+3 job grid, enumerated up front."""

    if scale is None:
        scale = DEFAULT_SCALE
    if sizes is None:
        sizes = list(DEFAULT_SIZES)
    configs = [table1_config()]
    configs += [table1_config().with_l2_tlb_entries(entries) for entries in sizes]
    configs.append(table1_config().with_perfect_l2_tlb())
    return jobs_with_engine(
        [
            SweepJob(app, config, scale)
            for config in configs
            for app in app_names()
        ],
        engine,
    )


def run(
    scale: Optional[float] = None, sizes: Optional[List[int]] = None
) -> ExperimentResult:
    if scale is None:
        scale = DEFAULT_SCALE
    if sizes is None:
        sizes = list(DEFAULT_SIZES)
    run_sweep(sweep_jobs(scale, sizes), keep_going=True)
    result = ExperimentResult(
        experiment_id="Figures 2 + 3",
        title="Page walks and performance vs L2 TLB size",
        paper_notes=(
            "Paper: ~85% fewer walks at 2M entries; +14.7% gmean at 8K; "
            "+50.1% at 2M; SRAD/PRK/SSSP insensitive."
        ),
    )
    baselines = {name: run_app(name, table1_config(), scale) for name in app_names()}
    for entries in sizes:
        config = table1_config().with_l2_tlb_entries(entries)
        row = {"l2_entries": entries}
        speedups = []
        walk_ratios = []
        for name in app_names():
            sim = run_app(name, config, scale)
            base = baselines[name]
            speedup = base.cycles / sim.cycles
            walk_ratio = (
                sim.page_walks / base.page_walks if base.page_walks else 1.0
            )
            row[f"{name}_speedup"] = speedup
            row[f"{name}_walks"] = walk_ratio
            speedups.append(speedup)
            walk_ratios.append(walk_ratio)
        row["gmean_speedup"] = gmean_speedup(speedups)
        row["mean_walk_ratio"] = sum(walk_ratios) / len(walk_ratios)
        result.rows.append(row)

    # Perfect-L2-TLB upper bound.
    perfect = table1_config().with_perfect_l2_tlb()
    row = {"l2_entries": "perfect"}
    speedups = []
    for name in app_names():
        sim = run_app(name, perfect, scale)
        base = baselines[name]
        row[f"{name}_speedup"] = base.cycles / sim.cycles
        row[f"{name}_walks"] = 0.0
        speedups.append(base.cycles / sim.cycles)
    row["gmean_speedup"] = gmean_speedup(speedups)
    row["mean_walk_ratio"] = 0.0
    result.rows.append(row)
    return result
