"""Figure 15: additional translation entries gained per application.

The paper reports the extra entries the reconfigurable structures provide:
at most 16K in the Table 1 configuration — 12K from the LDS (8 CUs × 512
segments × 3 ways) and 4K from the I-caches (2 I-caches × 256 lines × 8).
Applications that allocate LDS or keep instructions resident gain fewer.
"""

from __future__ import annotations

from typing import Optional

from repro.config import TxScheme, table1_config
from repro.experiments.common import DEFAULT_SCALE, ExperimentResult, run_app
from repro.workloads.registry import app_names


def theoretical_max_entries(config=None) -> dict:
    if config is None:
        config = table1_config(TxScheme.ICACHE_LDS)
    lds_segments = config.lds.size_bytes // config.lds_tx.segment_bytes
    lds_max = config.gpu.num_cus * lds_segments * config.lds_tx.ways_per_segment
    num_icaches = config.gpu.num_cus // config.icache.cus_per_icache
    icache_max = num_icaches * config.icache.num_lines * config.icache_tx.tx_per_line
    return {"lds": lds_max, "icache": icache_max, "total": lds_max + icache_max}


def run(scale: Optional[float] = None) -> ExperimentResult:
    if scale is None:
        scale = DEFAULT_SCALE
    limits = theoretical_max_entries()
    result = ExperimentResult(
        experiment_id="Figure 15",
        title="Additional translation entries gained (peak)",
        paper_notes=(
            f"Config maximum: {limits['total']} entries "
            f"({limits['lds']} LDS + {limits['icache']} I-cache); the paper "
            "reports the same 16K bound (12K + 4K)."
        ),
    )
    config = table1_config(TxScheme.ICACHE_LDS)
    for app in app_names():
        sim = run_app(app, config, scale)
        lds_peak = sim.counter("tx_entries.lds_peak")
        icache_peak = sim.counter("tx_entries.icache_peak")
        result.rows.append(
            {
                "app": app,
                "lds_entries": int(lds_peak),
                "icache_entries": int(icache_peak),
                "total_entries": int(lds_peak + icache_peak),
                "pct_of_max": 100.0 * (lds_peak + icache_peak) / limits["total"],
            }
        )
    return result
