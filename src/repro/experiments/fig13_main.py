"""Figure 13: the paper's main results.

- 13a: reconfigurable I-cache design variants — one translation per way,
  naive replacement, instruction-aware packing (8/way), and the kernel-
  boundary flush. Paper gmeans: ~0%, −1.65%, +12.4%, +13.6% (flush adds
  +1.2%; +35.4% extra for ATAX).
- 13b: reconfigurable LDS, and LDS + I-cache. Paper gmeans: LDS +8.6%
  (ATAX max +128.4%), IC+LDS +30.1% (ATAX +443.3%, BICG +442.3%, GUPS
  +9.14%); High+Medium-only gmeans 25.9% / 36.5% / 147.2%.
- 13c: normalized DRAM energy. Paper: −4.1% (LDS), −5.2% (IC), −9.2%
  (IC+LDS); GEV best at −27.3%.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from repro.config import ICacheReplacement, SystemConfig, TxScheme, table1_config
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    gmean_speedup,
    run_app,
)
from repro.schemes import schemes_for_tag
from repro.sim.runner import SweepJob, jobs_with_engine, run_sweep
from repro.workloads.registry import CATEGORIES, app_names

#: Figure 13b/13c scheme arms, derived from the scheme registry (the
#: ``fig13-victim`` tag); registration order matches the paper's bars.
SCHEMES = tuple(spec.scheme for spec in schemes_for_tag("fig13-victim"))


def icache_variant_configs() -> Dict[str, SystemConfig]:
    """The four Figure 13a experiment arms, in the paper's bar order."""

    base = table1_config(TxScheme.ICACHE_ONLY)
    return {
        "one_tx_per_way": replace(
            base, icache_tx=replace(base.icache_tx, tx_per_line=1)
        ),
        "naive_replacement": replace(
            base,
            icache_tx=replace(
                base.icache_tx, replacement=ICacheReplacement.NAIVE
            ),
        ),
        "instruction_aware": base,
        "instruction_aware_flush": replace(
            base, icache_tx=replace(base.icache_tx, flush_on_kernel_boundary=True)
        ),
    }


def sweep_jobs_13a(
    scale: Optional[float] = None, engine: Optional[str] = None
) -> List[SweepJob]:
    if scale is None:
        scale = DEFAULT_SCALE
    configs = [table1_config()] + list(icache_variant_configs().values())
    return jobs_with_engine(
        [SweepJob(app, config, scale) for app in app_names() for config in configs],
        engine,
    )


def sweep_jobs_13bc(
    scale: Optional[float] = None, engine: Optional[str] = None
) -> List[SweepJob]:
    if scale is None:
        scale = DEFAULT_SCALE
    configs = [table1_config()] + [table1_config(scheme) for scheme in SCHEMES]
    return jobs_with_engine(
        [SweepJob(app, config, scale) for app in app_names() for config in configs],
        engine,
    )


def sweep_jobs(
    scale: Optional[float] = None, engine: Optional[str] = None
) -> List[SweepJob]:
    """The full Figure 13 job grid (13a variants + 13b/c schemes)."""

    return sweep_jobs_13a(scale, engine) + sweep_jobs_13bc(scale, engine)


def run_fig13a(scale: Optional[float] = None) -> ExperimentResult:
    if scale is None:
        scale = DEFAULT_SCALE
    run_sweep(sweep_jobs_13a(scale), keep_going=True)
    result = ExperimentResult(
        experiment_id="Figure 13a",
        title="Reconfigurable I-cache design variants",
        paper_notes=(
            "Paper gmeans: 1-tx/way ~0%, naive −1.65%, instr-aware +12.4%, "
            "+flush +13.6%; flush gives no gain for GEV/SRAD (single "
            "kernel) and NW (back-to-back)."
        ),
    )
    configs = icache_variant_configs()
    speedups: Dict[str, list] = {name: [] for name in configs}
    for app in app_names():
        baseline = run_app(app, table1_config(), scale)
        row = {"app": app}
        for variant, config in configs.items():
            sim = run_app(app, config, scale)
            speedup = baseline.cycles / sim.cycles
            row[variant] = speedup
            speedups[variant].append(speedup)
        result.rows.append(row)
    gmean_row = {"app": "GMEAN"}
    for variant, values in speedups.items():
        gmean_row[variant] = gmean_speedup(values)
    result.rows.append(gmean_row)
    return result


def run_fig13b(scale: Optional[float] = None) -> ExperimentResult:
    if scale is None:
        scale = DEFAULT_SCALE
    run_sweep(sweep_jobs_13bc(scale), keep_going=True)
    schemes = SCHEMES
    result = ExperimentResult(
        experiment_id="Figure 13b",
        title="Overall performance: LDS / I-cache / combined victim caches",
        paper_notes=(
            "Paper gmeans (all apps): LDS +8.6%, IC +13.6%, IC+LDS +30.1%; "
            "High+Medium only: +25.9% / +36.5% / +147.2%; ATAX/BICG are "
            "the largest winners and the Low apps are unharmed."
        ),
    )
    speedups = {scheme: [] for scheme in schemes}
    hm_speedups = {scheme: [] for scheme in schemes}
    for app in app_names():
        baseline = run_app(app, table1_config(), scale)
        row = {"app": app, "category": CATEGORIES[app]}
        for scheme in schemes:
            sim = run_app(app, table1_config(scheme), scale)
            speedup = baseline.cycles / sim.cycles
            row[scheme.value] = speedup
            speedups[scheme].append(speedup)
            if CATEGORIES[app] in ("H", "M"):
                hm_speedups[scheme].append(speedup)
        result.rows.append(row)
    result.rows.append(
        {"app": "GMEAN", "category": "all"}
        | {scheme.value: gmean_speedup(values) for scheme, values in speedups.items()}
    )
    result.rows.append(
        {"app": "GMEAN-H+M", "category": "H+M"}
        | {
            scheme.value: gmean_speedup(values)
            for scheme, values in hm_speedups.items()
        }
    )
    return result


def run_fig13c(scale: Optional[float] = None) -> ExperimentResult:
    if scale is None:
        scale = DEFAULT_SCALE
    run_sweep(sweep_jobs_13bc(scale), keep_going=True)
    schemes = SCHEMES
    result = ExperimentResult(
        experiment_id="Figure 13c",
        title="Normalized DRAM energy",
        paper_notes=(
            "Paper means: LDS −4.1%, IC −5.2%, IC+LDS −9.2%; GEV largest "
            "reduction (−27.3%). Savings come from avoided page-walk DRAM "
            "traffic and shorter runtime (background energy)."
        ),
    )
    means = {scheme: [] for scheme in schemes}
    for app in app_names():
        baseline = run_app(app, table1_config(), scale)
        base_energy = baseline.counter("energy.total_nj")
        row = {"app": app}
        for scheme in schemes:
            sim = run_app(app, table1_config(scheme), scale)
            ratio = (
                sim.counter("energy.total_nj") / base_energy if base_energy else 1.0
            )
            row[f"{scheme.value}_energy"] = ratio
            means[scheme].append(ratio)
        result.rows.append(row)
    result.rows.append(
        {"app": "MEAN"}
        | {
            f"{scheme.value}_energy": sum(values) / len(values)
            for scheme, values in means.items()
        }
    )
    return result
