"""Experiment harness: one module per paper table/figure.

Every module exposes ``run(scale=None) -> ExperimentResult`` producing the
rows the paper's corresponding table or figure reports, alongside the
paper's own values where the paper states them. ``repro.experiments.report``
renders all results into EXPERIMENTS.md.
"""

from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    clear_cache,
    run_app,
)

__all__ = ["DEFAULT_SCALE", "ExperimentResult", "clear_cache", "run_app"]
