"""Export experiment results to CSV / markdown files.

EXPERIMENTS.md is the human-readable record; this module produces the
machine-readable companion (one CSV per experiment) for plotting the
figures in a spreadsheet or notebook.

Usage::

    python -m repro.experiments.export [output_dir]
"""

from __future__ import annotations

import os
import re
import sys
from typing import List, Optional

from repro.analysis.tables import format_csv, format_markdown
from repro.experiments.common import ExperimentResult


def slugify(experiment_id: str) -> str:
    slug = experiment_id.lower()
    slug = re.sub(r"[^a-z0-9]+", "_", slug)
    return slug.strip("_")


def export_result(
    result: ExperimentResult, output_dir: str, formats: tuple = ("csv", "md")
) -> List[str]:
    """Write one experiment's rows; returns the paths written."""

    os.makedirs(output_dir, exist_ok=True)
    base = os.path.join(output_dir, slugify(result.experiment_id))
    written = []
    if "csv" in formats:
        path = f"{base}.csv"
        with open(path, "w") as handle:
            handle.write(format_csv(result.rows))
        written.append(path)
    if "md" in formats:
        path = f"{base}.md"
        with open(path, "w") as handle:
            handle.write(f"# {result.experiment_id}: {result.title}\n\n")
            handle.write(format_markdown(result.rows) + "\n")
            if result.paper_notes:
                handle.write(f"\n{result.paper_notes}\n")
        written.append(path)
    return written


def export_all(output_dir: str, scale: Optional[float] = None) -> List[str]:
    """Run every registered experiment and export it."""

    from repro.experiments.report import ALL_EXPERIMENTS

    written = []
    for _, runner in ALL_EXPERIMENTS:
        result = runner(scale)
        written.extend(export_result(result, output_dir))
    return written


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    output_dir = argv[0] if argv else "experiment_data"
    written = export_all(output_dir)
    print(f"wrote {len(written)} files to {output_dir}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
