"""Figure 16: sensitivity studies (Section 6.3).

- 16a: number of CUs sharing one I-cache (total capacity constant). Paper:
  +17.3% (private) rising to +38.4% (fully shared) as duplication falls.
- 16b: extra wire latency to the reconfigurable structures (10/50/100
  cycles, IC-only / LDS-only / both). Paper: +9.4% remains at the
  worst-case 100-cycle point — GPUs are latency-tolerant.
- 16c: DUCATI. Paper: DUCATI alone +4.9%; DUCATI + IC+LDS +40.7% vs the
  +30.1% of IC+LDS alone (the schemes are complementary).
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import TxScheme, table1_config
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    gmean_speedup,
    run_app,
)
from repro.schemes import schemes_for_tag
from repro.sim.runner import SweepJob, jobs_with_engine, run_sweep
from repro.workloads.registry import app_names

SHARER_COUNTS = (1, 2, 4, 8)
WIRE_LATENCIES = (10, 50, 100)


def _fig16c_schemes():
    # Membership derives from the registry's ``fig16-ducati`` tag; the
    # paper's bar order (DUCATI, IC+LDS, combined) is kept for the arms
    # it names, with any future tag members appended.
    specs = {spec.name: spec.scheme for spec in schemes_for_tag("fig16-ducati")}
    preferred = ("ducati", "icache+lds", "ducati+icache+lds")
    ordered = [specs.pop(name) for name in preferred if name in specs]
    return tuple(ordered) + tuple(specs.values())


_FIG16C_SCHEMES = _fig16c_schemes()


def _wire_latency_arms():
    arms = [(0, 0)]
    arms += [(extra, 0) for extra in WIRE_LATENCIES]
    arms += [(0, extra) for extra in WIRE_LATENCIES]
    arms += [(extra, extra) for extra in WIRE_LATENCIES]
    return arms


def sweep_jobs_16a(scale=None, apps=None):
    if scale is None:
        scale = DEFAULT_SCALE
    if apps is None:
        apps = app_names()
    jobs = []
    for sharers in SHARER_COUNTS:
        for config in (
            table1_config().with_icache_sharers(sharers),
            table1_config(TxScheme.ICACHE_ONLY).with_icache_sharers(sharers),
        ):
            jobs.extend(SweepJob(app, config, scale) for app in apps)
    return jobs


def sweep_jobs_16b(scale=None, apps=None):
    if scale is None:
        scale = DEFAULT_SCALE
    if apps is None:
        apps = app_names()
    configs = [table1_config()]
    configs += [
        table1_config(TxScheme.ICACHE_LDS).with_extra_wire_latency(ic, lds)
        for ic, lds in _wire_latency_arms()
    ]
    return [SweepJob(app, config, scale) for config in configs for app in apps]


def sweep_jobs_16c(scale=None):
    if scale is None:
        scale = DEFAULT_SCALE
    configs = [table1_config()]
    configs += [table1_config(scheme) for scheme in _FIG16C_SCHEMES]
    return [
        SweepJob(app, config, scale)
        for config in configs
        for app in app_names()
    ]


def sweep_jobs(scale=None, engine=None):
    """The full Figure 16 job grid (sharers + wire latency + DUCATI)."""

    return jobs_with_engine(
        sweep_jobs_16a(scale) + sweep_jobs_16b(scale) + sweep_jobs_16c(scale),
        engine,
    )


def run_fig16a(
    scale: Optional[float] = None, apps: Optional[List[str]] = None
) -> ExperimentResult:
    if scale is None:
        scale = DEFAULT_SCALE
    if apps is None:
        apps = app_names()
    result = ExperimentResult(
        experiment_id="Figure 16a",
        title="I-cache sharers sensitivity (IC-only, capacity constant)",
        paper_notes="Paper: +17.3% at 1 sharer rising to +38.4% at 8.",
    )
    run_sweep(sweep_jobs_16a(scale, apps), keep_going=True)
    for sharers in SHARER_COUNTS:
        base_cfg = table1_config().with_icache_sharers(sharers)
        cfg = table1_config(TxScheme.ICACHE_ONLY).with_icache_sharers(sharers)
        speedups = []
        row = {"cus_per_icache": sharers}
        for app in apps:
            baseline = run_app(app, base_cfg, scale)
            sim = run_app(app, cfg, scale)
            speedups.append(baseline.cycles / sim.cycles)
        row["gmean_speedup"] = gmean_speedup(speedups)
        result.rows.append(row)
    return result


def run_fig16b(
    scale: Optional[float] = None, apps: Optional[List[str]] = None
) -> ExperimentResult:
    if scale is None:
        scale = DEFAULT_SCALE
    if apps is None:
        apps = app_names()
    result = ExperimentResult(
        experiment_id="Figure 16b",
        title="Extra translation wire latency sensitivity (IC+LDS)",
        paper_notes=(
            "Paper: even +100 cycles on both structures retains +9.4% "
            "gmean — latency hiding across wavefronts absorbs the wires."
        ),
    )
    run_sweep(sweep_jobs_16b(scale, apps), keep_going=True)

    def sweep(label: str, icache_extra: int, lds_extra: int) -> None:
        cfg = table1_config(TxScheme.ICACHE_LDS).with_extra_wire_latency(
            icache_extra, lds_extra
        )
        speedups = []
        for app in apps:
            baseline = run_app(app, table1_config(), scale)
            sim = run_app(app, cfg, scale)
            speedups.append(baseline.cycles / sim.cycles)
        result.rows.append(
            {
                "arm": label,
                "icache_extra": icache_extra,
                "lds_extra": lds_extra,
                "gmean_speedup": gmean_speedup(speedups),
            }
        )

    sweep("no_extra", 0, 0)
    for extra in WIRE_LATENCIES:
        sweep(f"ic_only_{extra}", extra, 0)
    for extra in WIRE_LATENCIES:
        sweep(f"lds_only_{extra}", 0, extra)
    for extra in WIRE_LATENCIES:
        sweep(f"ic_lds_{extra}", extra, extra)
    return result


def run_fig16c(scale: Optional[float] = None) -> ExperimentResult:
    if scale is None:
        scale = DEFAULT_SCALE
    result = ExperimentResult(
        experiment_id="Figure 16c",
        title="DUCATI comparison",
        paper_notes=(
            "Paper gmeans: DUCATI +4.9%; IC+LDS +30.1%; DUCATI with IC+LDS "
            "+40.7% — the proposals compose."
        ),
    )
    run_sweep(sweep_jobs_16c(scale), keep_going=True)
    arms = {
        "ducati": TxScheme.DUCATI,
        "icache_lds": TxScheme.ICACHE_LDS,
        "ducati_icache_lds": TxScheme.DUCATI_ICACHE_LDS,
    }
    speedups = {label: [] for label in arms}
    for app in app_names():
        baseline = run_app(app, table1_config(), scale)
        row = {"app": app}
        for label, scheme in arms.items():
            sim = run_app(app, table1_config(scheme), scale)
            speedup = baseline.cycles / sim.cycles
            row[label] = speedup
            speedups[label].append(speedup)
        result.rows.append(row)
    result.rows.append(
        {"app": "GMEAN"}
        | {label: gmean_speedup(values) for label, values in speedups.items()}
    )
    return result
