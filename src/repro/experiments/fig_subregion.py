"""Subregion-contiguity coalescing arm (registry plugin scheme).

A Figure-13-style grid for the first out-of-enum scheme,
``subregion-coalescing`` (after the compendium-TLB idea of arXiv
2110.08613): the walker path learns uniform-stride contiguity inside an
aligned subregion of the address space and installs one coalesced entry
covering the whole run, which later misses can resolve without a walk.

The grid compares baseline, IC+LDS (the paper's best victim-cache arm)
and subregion coalescing on PTW-PKI and speedup; arms derive from the
scheme registry's ``subregion-grid`` tag, so registering another scheme
with that tag automatically adds a column.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    gmean_speedup,
    run_app,
)
from repro.schemes import config_for, schemes_for_tag
from repro.sim.runner import SweepJob, jobs_with_engine, run_sweep
from repro.workloads.registry import CATEGORIES, app_names

#: Grid arms (includes the baseline column), in registry order.
GRID_SPECS = tuple(schemes_for_tag("subregion-grid"))


def sweep_jobs(
    scale: Optional[float] = None, engine: Optional[str] = None
) -> List[SweepJob]:
    """The subregion-coalescing comparison grid."""

    if scale is None:
        scale = DEFAULT_SCALE
    configs = [config_for(spec.name) for spec in GRID_SPECS]
    return jobs_with_engine(
        [SweepJob(app, config, scale) for app in app_names() for config in configs],
        engine,
    )


def run(scale: Optional[float] = None) -> ExperimentResult:
    if scale is None:
        scale = DEFAULT_SCALE
    run_sweep(sweep_jobs(scale), keep_going=True)
    result = ExperimentResult(
        experiment_id="Subregion coalescing",
        title="Subregion-contiguity coalesced L2-TLB entries vs victim caches",
        paper_notes=(
            "Plugin-scheme arm (not a figure of the source paper): coalesced "
            "entries learned in the walker path cut page walks wherever the "
            "allocator lays pages out at a uniform stride; IC+LDS shown for "
            "context against the paper's best victim-cache arm."
        ),
    )
    arms = [spec for spec in GRID_SPECS if spec.name != "baseline"]
    speedups = {spec.name: [] for spec in arms}
    for app in app_names():
        baseline = run_app(app, config_for("baseline"), scale)
        row = {
            "app": app,
            "category": CATEGORIES[app],
            "baseline_ptw_pki": baseline.ptw_pki,
        }
        for spec in arms:
            sim = run_app(app, config_for(spec.name), scale)
            speedup = baseline.cycles / sim.cycles
            row[f"{spec.name}_ptw_pki"] = sim.ptw_pki
            row[f"{spec.name}_speedup"] = speedup
            speedups[spec.name].append(speedup)
        result.rows.append(row)
    result.rows.append(
        {"app": "GMEAN", "category": "all", "baseline_ptw_pki": ""}
        | {
            f"{name}_speedup": gmean_speedup(values)
            for name, values in speedups.items()
        }
    )
    return result
