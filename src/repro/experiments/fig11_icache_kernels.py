"""Figure 11: I-cache utilization across kernel launches over time.

The paper plots per-kernel-launch I-cache utilization for the multi-kernel
applications to show that consecutive launches run *different* kernels
(except NW), which is what makes the kernel-boundary flush optimization
(Section 4.3.3) applicable. GEV and SRAD have a single kernel and are
omitted, exactly as in the paper.
"""

from __future__ import annotations

from typing import Optional

from repro.config import table1_config
from repro.experiments.common import DEFAULT_SCALE, ExperimentResult, run_app
from repro.experiments.fig04_05_utilization import kernel_icache_utilization
from repro.workloads.registry import app_names, make_app

#: Apps shown in Figure 11 (all multi-kernel apps).
FIGURE11_APPS = ("ATAX", "MVT", "BICG", "NW", "BFS", "SSSP", "PRK", "GUPS")

#: Cap on launches listed per app (SSSP alone has hundreds).
MAX_POINTS = 40


def run(scale: Optional[float] = None) -> ExperimentResult:
    if scale is None:
        scale = DEFAULT_SCALE
    result = ExperimentResult(
        experiment_id="Figure 11",
        title="Per-kernel I-cache utilization over time",
        paper_notes=(
            "Paper: no app here launches the same kernel back-to-back "
            "except NW (nw_kernel1), so the runtime flush applies to all "
            "but NW; GEV and SRAD are single-kernel and omitted."
        ),
    )
    for name in FIGURE11_APPS:
        sim = run_app(name, table1_config(), scale)
        app = make_app(name, scale=scale)
        utilization = kernel_icache_utilization(sim)
        series = [round(value, 4) for value in utilization[:MAX_POINTS]]
        result.rows.append(
            {
                "app": name,
                "launches": len(sim.kernels),
                "b2b": app.has_back_to_back_kernels,
                "util_series_head": series,
                "util_mean": (
                    sum(utilization) / len(utilization) if utilization else 0.0
                ),
            }
        )
    assert set(FIGURE11_APPS) <= set(app_names())
    return result
