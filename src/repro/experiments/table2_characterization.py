"""Table 2: benchmark characterization under the baseline configuration.

For every application: kernels per app, whether the same kernel launches
back-to-back, baseline L1/L2 TLB hit ratios, page-table walks per kilo
instruction (PTW-PKI), and the derived High/Medium/Low category.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import table1_config
from repro.experiments.common import DEFAULT_SCALE, ExperimentResult, run_app
from repro.sim.runner import SweepJob, jobs_with_engine, run_sweep
from repro.workloads.registry import app_names, make_app

#: The paper's Table 2 values: (kernels, b2b, l1_hr, l2_hr, ptw_pki, cat).
PAPER_TABLE2 = {
    "ATAX": (2, False, 63.1, 83.7, 37.68, "H"),
    "GEV": (1, None, 27.8, 75.1, 90.737, "H"),
    "MVT": (2, False, 29.1, 83.2, 38.76, "H"),
    "BICG": (2, False, 59.1, 83.5, 38.05, "H"),
    "NW": (255, True, 34.6, 94.7, 4.92, "M"),
    "SRAD": (1, None, 20.9, 99.9, 0.04, "L"),
    "BFS": (24, False, 54.8, 85.4, 17.23, "M"),
    "SSSP": (10504, False, 78.8, 99.8, 0.17, "L"),
    "PRK": (41, False, 81.3, 99.9, 0.16, "L"),
    "GUPS": (3, False, 25.1, 46.8, 36.65, "H"),
}


def categorize(ptw_pki: float) -> str:
    """The paper's categorization rule (Section 5)."""

    if ptw_pki >= 20:
        return "H"
    if ptw_pki > 1:
        return "M"
    return "L"


def sweep_jobs(
    scale: Optional[float] = None, engine: Optional[str] = None
) -> List[SweepJob]:
    """The Table 2 job grid: every app under the baseline configuration."""

    if scale is None:
        scale = DEFAULT_SCALE
    return jobs_with_engine(
        [SweepJob(app, table1_config(), scale) for app in app_names()], engine
    )


def run(scale: Optional[float] = None) -> ExperimentResult:
    if scale is None:
        scale = DEFAULT_SCALE
    result = ExperimentResult(
        experiment_id="Table 2",
        title="Benchmark characterization (baseline)",
        paper_notes=(
            "Paper PTW-PKI / category per app: "
            + ", ".join(
                f"{name}={values[4]:g}/{values[5]}"
                for name, values in PAPER_TABLE2.items()
            )
        ),
    )
    run_sweep(sweep_jobs(scale), keep_going=True)
    for name in app_names():
        app = make_app(name, scale=scale)
        sim = run_app(name, table1_config(), scale)
        paper = PAPER_TABLE2[name]
        result.rows.append(
            {
                "app": name,
                "kernels": len(app.kernels),
                "b2b": app.has_back_to_back_kernels,
                "l1_hr_pct": 100.0 * sim.hit_ratio("l1_tlb"),
                "l2_hr_pct": 100.0 * sim.hit_ratio("l2_tlb"),
                "ptw_pki": sim.ptw_pki,
                "category": categorize(sim.ptw_pki),
                "paper_ptw_pki": paper[4],
                "paper_category": paper[5],
            }
        )
    return result
