"""Additional design-choice ablations beyond Section 6.3.1.

DESIGN.md calls out two further choices the paper motivates but does not
sweep, both reproducible here:

- **Lookup/fill ordering** (Section 4.4): the CU-private, 2-cycle-probe
  LDS is consulted before the shared I-cache. Reversing the order probes
  the farther, shared structure first — hits migrate to the I-cache and
  the low-latency private capacity is wasted on leftovers.
- **I-cache packing density** (Figures 8b/8c): the paper jumps from one
  translation per 64-byte line to eight; sweeping the intermediate points
  shows where the reach (and the widened-tag overhead) starts paying off.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional

from repro.config import TxScheme, table1_config
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    gmean_speedup,
    run_app,
)
from repro.sim.runner import SweepJob, jobs_with_engine, run_sweep
from repro.workloads.registry import HIGH_APPS, app_names

PACKING_DENSITIES = (1, 2, 4, 8, 16)


def _lookup_order_configs():
    return [
        replace(table1_config(TxScheme.ICACHE_LDS), lds_before_icache=lds_first)
        for lds_first in (True, False)
    ]


def _packing_density_configs():
    configs = []
    for density in PACKING_DENSITIES:
        config = table1_config(TxScheme.ICACHE_ONLY)
        configs.append(
            replace(config, icache_tx=replace(config.icache_tx, tx_per_line=density))
        )
    return configs


def sweep_jobs_lookup_order(scale=None, apps=None) -> List[SweepJob]:
    if scale is None:
        scale = DEFAULT_SCALE
    if apps is None:
        apps = app_names()
    configs = [table1_config()] + _lookup_order_configs()
    return [SweepJob(app, config, scale) for config in configs for app in apps]


def sweep_jobs_packing(scale=None, apps=None) -> List[SweepJob]:
    if scale is None:
        scale = DEFAULT_SCALE
    if apps is None:
        apps = list(HIGH_APPS)
    configs = [table1_config()] + _packing_density_configs()
    return [SweepJob(app, config, scale) for config in configs for app in apps]


def sweep_jobs(scale=None, engine=None) -> List[SweepJob]:
    """The full design-choice ablation grid (lookup order + packing)."""

    return jobs_with_engine(
        sweep_jobs_lookup_order(scale) + sweep_jobs_packing(scale), engine
    )


def run_lookup_order(
    scale: Optional[float] = None, apps: Optional[List[str]] = None
) -> ExperimentResult:
    if scale is None:
        scale = DEFAULT_SCALE
    if apps is None:
        apps = app_names()
    result = ExperimentResult(
        experiment_id="Ablation: lookup order",
        title="LDS-first vs I-cache-first probe/fill ordering (Section 4.4)",
        paper_notes=(
            "The paper orders LDS first because it is CU-private and its "
            "probe costs 2 cycles; reversing sends victims to the shared "
            "structure first."
        ),
    )
    run_sweep(sweep_jobs_lookup_order(scale, apps), keep_going=True)
    for lds_first in (True, False):
        config = replace(
            table1_config(TxScheme.ICACHE_LDS), lds_before_icache=lds_first
        )
        speedups = []
        for app in apps:
            baseline = run_app(app, table1_config(), scale)
            sim = run_app(app, config, scale)
            speedups.append(baseline.cycles / sim.cycles)
        result.rows.append(
            {
                "order": "lds-first" if lds_first else "icache-first",
                "gmean_speedup": gmean_speedup(speedups),
            }
        )
    return result


def run_packing_density(
    scale: Optional[float] = None, apps: Optional[List[str]] = None
) -> ExperimentResult:
    if scale is None:
        scale = DEFAULT_SCALE
    if apps is None:
        apps = list(HIGH_APPS)
    result = ExperimentResult(
        experiment_id="Ablation: I-cache packing",
        title="Translations packed per I-cache line (Figures 8b/8c sweep)",
        paper_notes=(
            "Paper endpoints: 1/line gains ~nothing, 8/line (+widened "
            "compressed tags) delivers the IC-only result. High apps only."
        ),
    )
    run_sweep(sweep_jobs_packing(scale, apps), keep_going=True)
    for density in PACKING_DENSITIES:
        config = table1_config(TxScheme.ICACHE_ONLY)
        config = replace(
            config, icache_tx=replace(config.icache_tx, tx_per_line=density)
        )
        speedups = []
        for app in apps:
            baseline = run_app(app, table1_config(), scale)
            sim = run_app(app, config, scale)
            speedups.append(baseline.cycles / sim.cycles)
        result.rows.append(
            {
                "tx_per_line": density,
                "total_ic_entries": density * 256 * 2,  # 2 I-caches
                "gmean_speedup": gmean_speedup(speedups),
            }
        )
    return result
