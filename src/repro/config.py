"""Configuration dataclasses for the reproduction.

The defaults mirror Table 1 of the paper (the gem5 "simulated setup"): an
APU-class GPU with 8 CUs, a 32-entry fully-associative per-CU L1 TLB, a
512-entry 16-way shared L2 TLB, a 16KB 8-way I-cache shared by four CUs, a
16KB per-CU LDS organized in 32-byte segments, and an IOMMU with 32 page
table walkers and split page-walk caches.

Every structure in the simulator is constructed from these dataclasses, so a
single :class:`SystemConfig` value fully describes an experiment arm.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace


class TxScheme(enum.Enum):
    """Which reconfigurable translation scheme is active.

    The members correspond to the experiment arms in the paper's evaluation
    (Section 6): the unmodified baseline, the LDS-only design (Section 4.2),
    the I-cache-only designs (Section 4.3, with its variants selected by
    :class:`ICacheTxConfig`), the combined design (Section 4.4), the DUCATI
    comparator (Section 6.3.4) alone or combined, and the Perfect-L2-TLB
    upper bound used in the motivation study (Section 3.1).
    """

    BASELINE = "baseline"
    LDS_ONLY = "lds"
    ICACHE_ONLY = "icache"
    ICACHE_LDS = "icache+lds"
    DUCATI = "ducati"
    DUCATI_ICACHE_LDS = "ducati+icache+lds"
    PERFECT_L2_TLB = "perfect-l2-tlb"

    @property
    def uses_lds_tx(self) -> bool:
        return self in (
            TxScheme.LDS_ONLY,
            TxScheme.ICACHE_LDS,
            TxScheme.DUCATI_ICACHE_LDS,
        )

    @property
    def uses_icache_tx(self) -> bool:
        return self in (
            TxScheme.ICACHE_ONLY,
            TxScheme.ICACHE_LDS,
            TxScheme.DUCATI_ICACHE_LDS,
        )

    @property
    def uses_ducati(self) -> bool:
        return self in (TxScheme.DUCATI, TxScheme.DUCATI_ICACHE_LDS)

    @property
    def uses_subregion(self) -> bool:
        # No built-in arm wires the subregion-coalescing store; plugin
        # schemes (repro.schemes) declare this flag on their own values.
        return False


class ICacheReplacement(enum.Enum):
    """Replacement policy for the reconfigurable I-cache (Section 4.3.2).

    NAIVE lets translation fills evict LRU lines even when those lines hold
    instructions; INSTRUCTION_AWARE prioritizes instruction residency:
    instruction fills prefer Tx-mode victims, and translation fills may only
    claim invalid lines or replace other translations.
    """

    NAIVE = "naive"
    INSTRUCTION_AWARE = "instruction-aware"


@dataclass(frozen=True)
class GPUConfig:
    """Top-level GPU organization (Table 1, "GPU" row)."""

    num_cus: int = 8
    simds_per_cu: int = 4
    waves_per_simd: int = 10
    simd_width: int = 16
    threads_per_wave: int = 64
    clock_ghz: float = 2.0

    @property
    def max_waves_per_cu(self) -> int:
        return self.simds_per_cu * self.waves_per_simd


@dataclass(frozen=True)
class TLBConfig:
    """L1/L2 GPU TLB parameters (Table 1)."""

    l1_entries: int = 32
    l1_latency: int = 108
    l2_entries: int = 512
    l2_ways: int = 16
    l2_latency: int = 188
    # Port occupancy: how many cycles a lookup holds the structure's port.
    l1_port_occupancy: int = 1
    l2_port_occupancy: int = 2
    # A perfect L2 TLB never misses (motivation upper bound, Section 3.1).
    perfect_l2: bool = False


@dataclass(frozen=True)
class ICacheConfig:
    """Baseline L1 instruction cache (Table 1)."""

    size_bytes: int = 16 * 1024
    ways: int = 8
    line_bytes: int = 64
    cus_per_icache: int = 4
    tag_latency: int = 16
    fill_latency: int = 40  # L2 hit latency for an I-cache miss refill
    port_occupancy: int = 1
    instructions_per_line: int = 8
    # Next-line instruction prefetch on a miss. Off in the Table 1 baseline
    # (the paper's Equation 1 counts prefetch fills when present).
    next_line_prefetch: bool = False

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.ways


@dataclass(frozen=True)
class ICacheTxConfig:
    """Reconfigurable I-cache design knobs (Section 4.3).

    ``tx_per_line`` selects between the naive one-translation-per-way design
    (Figure 8b) and the packed eight-per-way design (Figure 8c).
    ``flush_on_kernel_boundary`` enables the runtime-issued I-cache flush
    optimization (Section 4.3.3), which is suppressed when the same kernel is
    launched back-to-back.
    """

    tx_per_line: int = 8
    replacement: ICacheReplacement = ICacheReplacement.INSTRUCTION_AWARE
    flush_on_kernel_boundary: bool = False
    tx_tag_latency: int = 20
    tx_serial_compare_latency: int = 16
    mux_latency: int = 1
    decompression_latency: int = 4
    extra_wire_latency: int = 0
    # Base-delta compression of the widened tag array (Figure 10c).
    tag_base_bits: int = 32
    tag_delta_bits: int = 8

    @property
    def tx_hit_latency(self) -> int:
        return (
            self.tx_tag_latency
            + self.tx_serial_compare_latency
            + self.mux_latency
            + self.decompression_latency
            + self.extra_wire_latency
        )

    @property
    def tx_probe_latency(self) -> int:
        """Latency to discover a Tx miss in the I-cache.

        A miss is detected from the target way's mode bit (a small separate
        array) without reading and decompressing the widened tag group, so
        it is far cheaper than a Tx hit.
        """

        return 4 + self.mux_latency + self.extra_wire_latency


@dataclass(frozen=True)
class LDSConfig:
    """Baseline LDS scratchpad (Table 1, "LDS" row)."""

    size_bytes: int = 16 * 1024
    num_banks: int = 32
    bank_bytes: int = 4
    lds_mode_latency: int = 31
    port_occupancy: int = 1


@dataclass(frozen=True)
class LDSTxConfig:
    """Reconfigurable LDS design knobs (Section 4.2).

    A 32-byte segment holds one 8-byte compressed tag word plus three 8-byte
    translations, i.e. a 3-way set-associative victim cache (Figure 6c).
    Doubling ``segment_bytes`` to 64 gives 6 ways in half as many sets
    (Section 6.3.1 sensitivity).
    """

    segment_bytes: int = 32
    tx_access_latency: int = 35
    probe_latency: int = 2
    mux_latency: int = 1
    decompression_latency: int = 4
    extra_wire_latency: int = 0
    tag_base_bits: int = 16
    tag_delta_bits: int = 16

    @property
    def ways_per_segment(self) -> int:
        # One 8-byte slot in every 32 bytes is consumed by the tags.
        return (self.segment_bytes // 8) - (self.segment_bytes // 32)

    @property
    def tx_hit_latency(self) -> int:
        return (
            self.tx_access_latency
            + self.mux_latency
            + self.decompression_latency
            + self.extra_wire_latency
        )

    @property
    def tx_probe_latency(self) -> int:
        return self.probe_latency + self.extra_wire_latency


@dataclass(frozen=True)
class DataCacheConfig:
    """L1/L2 data caches (Table 1, "Data Caches" row)."""

    l1_size_bytes: int = 32 * 1024
    l1_ways: int = 8
    l1_latency: int = 28
    l2_size_bytes: int = 4 * 1024 * 1024
    l2_ways: int = 16
    l2_latency: int = 80
    line_bytes: int = 64


@dataclass(frozen=True)
class DRAMConfig:
    """DDR3-1600-like main memory (Table 1, "DRAM" row).

    Latency is expressed in GPU cycles (2 GHz core vs 800 MHz DRAM).
    """

    channels: int = 2
    banks_per_rank: int = 16
    ranks_per_channel: int = 2
    access_latency: int = 160
    bank_occupancy: int = 24

    @property
    def total_banks(self) -> int:
        return self.channels * self.ranks_per_channel * self.banks_per_rank


@dataclass(frozen=True)
class DRAMEnergyConfig:
    """DRAMPower-style per-event energies, in nanojoules.

    The values are representative DDR3-1600 numbers; Figure 13c only uses
    energy *relative* to the baseline so only the ratios matter.
    """

    activate_nj: float = 2.5
    read_nj: float = 1.6
    write_nj: float = 1.7
    background_nj_per_cycle: float = 0.006
    refresh_nj_per_cycle: float = 0.002


@dataclass(frozen=True)
class IOMMUConfig:
    """IOMMU with device TLBs, walker pool and split PWCs (Table 1)."""

    num_walkers: int = 32
    l1_tlb_entries: int = 32
    l2_tlb_entries: int = 256
    l1_tlb_latency: int = 24
    l2_tlb_latency: int = 48
    pgd_cache_entries: int = 4
    pud_cache_entries: int = 8
    pmd_cache_entries: int = 32
    pwc_latency: int = 4
    # Fixed cost to cross the data fabric from the GPU to the IOMMU and
    # back; GPU TLB-miss handling is an order of magnitude slower than the
    # CPU's (Vesely et al. [47], Section 3.1).
    request_overhead: int = 250


@dataclass(frozen=True)
class DucatiConfig:
    """DUCATI comparator (Section 6.3.4 / TACO'19).

    Translations spill into the shared L2 data cache (contending for capacity
    and bandwidth) backed by a very large part-of-memory TLB.
    """

    l2_tx_latency: int = 90
    pom_tlb_entries: int = 1 << 20
    pom_tlb_latency: int = 220  # an off-chip access to the in-memory TLB
    # Fraction of L2 data-cache capacity translations are allowed to consume.
    l2_capacity_fraction: float = 0.25


@dataclass(frozen=True)
class SubregionConfig:
    """Subregion-contiguity TLB coalescing knobs (arXiv 2110.08613-style).

    Used by the ``subregion-coalescing`` plugin scheme
    (:mod:`repro.schemes.subregion`): the walker path detects
    uniform-stride runs of physical frames inside aligned
    ``subregion_pages``-page windows of the virtual address space and
    caches them as single coalesced entries probed after an L2-TLB miss.
    """

    subregion_pages: int = 8
    #: Minimum run length (pages) worth a coalesced entry.
    min_run: int = 2
    #: Coalesced-entry store capacity (runs, LRU).
    entries: int = 256
    #: Probe latency on the miss path (a small on-chip structure beside
    #: the L2 TLB).
    lookup_latency: int = 24


@dataclass(frozen=True)
class SystemConfig:
    """Complete description of one simulated machine.

    ``scheme`` is a :class:`TxScheme` member for the built-in arms or a
    :class:`repro.schemes.base.PluginScheme` for registered plugins;
    both expose ``.value`` plus the ``uses_*`` capability flags, which
    is all the simulator reads.
    """

    gpu: GPUConfig = field(default_factory=GPUConfig)
    tlb: TLBConfig = field(default_factory=TLBConfig)
    icache: ICacheConfig = field(default_factory=ICacheConfig)
    icache_tx: ICacheTxConfig = field(default_factory=ICacheTxConfig)
    lds: LDSConfig = field(default_factory=LDSConfig)
    lds_tx: LDSTxConfig = field(default_factory=LDSTxConfig)
    data_cache: DataCacheConfig = field(default_factory=DataCacheConfig)
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    dram_energy: DRAMEnergyConfig = field(default_factory=DRAMEnergyConfig)
    iommu: IOMMUConfig = field(default_factory=IOMMUConfig)
    ducati: DucatiConfig = field(default_factory=DucatiConfig)
    subregion: SubregionConfig = field(default_factory=SubregionConfig)
    scheme: TxScheme = TxScheme.BASELINE
    page_size: int = 4096
    va_bits: int = 48
    # Section 4.4: the CU-private, low-latency LDS is probed before the
    # shared I-cache on an L1 miss, and receives victims first. False
    # reverses both orders (an ablation of that design choice).
    lds_before_icache: bool = True
    # Extension (the paper's stated future work, Section 6.1.1): steer
    # victims for pages already touched by multiple CUs past the private
    # LDS into the shared, deduplicating I-cache, limiting the replication
    # that wastes cumulative LDS capacity.
    dedup_shared_fills: bool = False
    # Simulation engine: "event" walks each wave program op-by-op through
    # Python method dispatch; "vectorized" runs the same op sequence through
    # compiled per-wave records with batched precomputation and a flattened
    # hot path. Both produce byte-identical SimResults (enforced by
    # tests/sim/test_engine_equivalence.py), so the engine is a pure speed
    # knob and deliberately does NOT enter the experiment cache identity.
    engine: str = "event"

    def __post_init__(self) -> None:
        if self.engine not in ("event", "vectorized"):
            raise ValueError(
                f"unknown engine {self.engine!r} (want 'event' or 'vectorized')"
            )
        # Plugin schemes declare which engines they support; an
        # unsupported combination must fail here, at construction, never
        # as a silent misprediction inside an engine. TxScheme members
        # carry no such attribute (every engine supports the built-ins).
        supported = getattr(self.scheme, "supported_engines", None)
        if supported is not None and self.engine not in supported:
            raise ValueError(
                f"scheme {self.scheme.value!r} does not support engine "
                f"{self.engine!r} (supported: {list(supported)})"
            )

    def with_scheme(self, scheme: TxScheme) -> "SystemConfig":
        return replace(self, scheme=scheme)

    def with_engine(self, engine: str) -> "SystemConfig":
        return replace(self, engine=engine)

    def with_l2_tlb_entries(self, entries: int) -> "SystemConfig":
        return replace(self, tlb=replace(self.tlb, l2_entries=entries))

    def with_page_size(self, page_size: int) -> "SystemConfig":
        if page_size & (page_size - 1):
            raise ValueError(f"page size must be a power of two, got {page_size}")
        return replace(self, page_size=page_size)

    def with_perfect_l2_tlb(self) -> "SystemConfig":
        return replace(
            self,
            tlb=replace(self.tlb, perfect_l2=True),
            scheme=TxScheme.PERFECT_L2_TLB,
        )

    def with_extra_wire_latency(
        self, icache_cycles: int = 0, lds_cycles: int = 0
    ) -> "SystemConfig":
        return replace(
            self,
            icache_tx=replace(self.icache_tx, extra_wire_latency=icache_cycles),
            lds_tx=replace(self.lds_tx, extra_wire_latency=lds_cycles),
        )

    def with_icache_sharers(self, cus_per_icache: int) -> "SystemConfig":
        if self.gpu.num_cus % cus_per_icache:
            raise ValueError(
                f"{cus_per_icache} sharers does not divide {self.gpu.num_cus} CUs"
            )
        # Total I-cache capacity across the GPU is kept constant (Section
        # 6.3.2): fewer sharers means more, smaller I-caches.
        total_bytes = (
            self.icache.size_bytes * self.gpu.num_cus // self.icache.cus_per_icache
        )
        per_icache = total_bytes * cus_per_icache // self.gpu.num_cus
        return replace(
            self,
            icache=replace(
                self.icache, cus_per_icache=cus_per_icache, size_bytes=per_icache
            ),
        )


def table1_config(scheme: TxScheme = TxScheme.BASELINE) -> SystemConfig:
    """The paper's Table 1 configuration with the given scheme."""

    return SystemConfig(scheme=scheme)
