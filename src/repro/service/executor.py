"""Shared process-pool host: one pool for every request, evicted when idle.

The service must not spawn a fresh :class:`ProcessPoolExecutor` per HTTP
request — pool start-up costs dominate small jobs and concurrent requests
would multiply resident worker processes. :class:`SharedProcessPool`
implements the :class:`repro.sim.runner.PoolHost` contract with a single
long-lived pool:

- **acquire** leases the pool to one sweep at a time (creating it lazily
  on first use); a second acquirer blocks until the lease is released.
  The effective in-flight cap is ``min(ask, max_workers)``.
- **recycle** replaces a broken pool (worker crash / hung job) without
  giving up the lease.
- **release** returns the pool for reuse; a *dirty* release (the sweep
  aborted with futures still in flight) discards the pool instead, so the
  next lease starts clean.
- **evict_if_idle** shuts the pool down after ``idle_timeout_s`` seconds
  without a lease — the service stops holding worker processes (and their
  memory) across quiet periods, and transparently recreates the pool on
  the next request.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Optional, Tuple

from repro.sim.runner import PoolHost, default_workers

DEFAULT_IDLE_TIMEOUT_S = 60.0


class SharedProcessPool(PoolHost):
    """A :class:`PoolHost` whose pool outlives individual sweeps."""

    def __init__(
        self,
        max_workers: Optional[int] = None,
        idle_timeout_s: float = DEFAULT_IDLE_TIMEOUT_S,
    ) -> None:
        resolved = max_workers if max_workers is not None else default_workers()
        if resolved < 1:
            raise ValueError(f"max_workers must be >= 1, got {resolved}")
        if idle_timeout_s <= 0:
            raise ValueError(f"idle_timeout_s must be > 0, got {idle_timeout_s}")
        self.max_workers = resolved
        self.idle_timeout_s = idle_timeout_s
        self._cond = threading.Condition()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._leased = False
        self._last_release = time.monotonic()
        self._closed = False
        # Telemetry for /healthz.
        self._pools_created = 0
        self._leases = 0
        self._recycles = 0
        self._evictions = 0

    # -- PoolHost contract -------------------------------------------------

    def acquire(self, workers: int) -> Tuple[ProcessPoolExecutor, int]:
        with self._cond:
            while self._leased and not self._closed:
                self._cond.wait()
            if self._closed:
                raise RuntimeError("SharedProcessPool is closed")
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
                self._pools_created += 1
            self._leased = True
            self._leases += 1
            return self._pool, min(workers, self.max_workers)

    def recycle(
        self, pool: ProcessPoolExecutor, workers: int, reason: str
    ) -> ProcessPoolExecutor:
        with self._cond:
            pool.shutdown(wait=False, cancel_futures=True)
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
            self._recycles += 1
            return self._pool

    def release(self, pool: ProcessPoolExecutor, dirty: bool = False) -> None:
        with self._cond:
            if dirty:
                # Futures may still be running in there; never lease a
                # polluted pool to the next sweep.
                pool.shutdown(wait=False, cancel_futures=True)
                if pool is self._pool:
                    self._pool = None
            self._leased = False
            self._last_release = time.monotonic()
            self._cond.notify_all()

    # -- idle eviction / lifecycle -----------------------------------------

    def evict_if_idle(self, now: Optional[float] = None) -> bool:
        """Shut the pool down if it has been un-leased for the idle window.

        Returns ``True`` when an eviction happened. Cheap to call often —
        the manager's executor loop polls it between queue waits.
        """

        with self._cond:
            if self._pool is None or self._leased:
                return False
            now = time.monotonic() if now is None else now
            if now - self._last_release < self.idle_timeout_s:
                return False
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            self._evictions += 1
            return True

    def shutdown(self) -> None:
        """Tear everything down; subsequent :meth:`acquire` calls raise."""

        with self._cond:
            self._closed = True
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None
            self._cond.notify_all()

    def stats(self) -> Dict:
        """Pool telemetry for ``GET /healthz``."""

        with self._cond:
            return {
                "alive": self._pool is not None,
                "leased": self._leased,
                "max_workers": self.max_workers,
                "idle_timeout_s": self.idle_timeout_s,
                "pools_created": self._pools_created,
                "leases": self._leases,
                "recycles": self._recycles,
                "evictions": self._evictions,
            }
