"""Job specifications for the simulation service.

A *job spec* is the JSON body of ``POST /jobs``: either a named figure
grid (``{"figure": "fig13"}``) or a custom ``apps`` × ``schemes`` grid,
plus the scale/engine/fault-tolerance knobs the sweep CLI already exposes.
Three operations, shared by the HTTP endpoint, the ``repro submit`` CLI,
and the tests:

- :func:`validate_spec` — reject malformed specs *early*, at submission,
  with the list of valid choices in the error (not deep inside a worker
  process minutes later).
- canonicalization — :func:`validate_spec` returns the spec in canonical
  form (defaults materialized, names normalized, scale coerced to float)
  and :func:`spec_key` hashes that form, so equivalent submissions share
  one identity and deduplicate against in-flight and completed jobs.
- :func:`expand_spec` — the canonical spec's :class:`SweepJob` grid, in
  deterministic order (results are returned in this order).
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Sequence

from repro.schemes import config_for, engine_supported, scheme_names
from repro.sim.runner import SweepJob, jobs_with_engine
from repro.workloads.registry import app_names

#: Engines accepted by ``SystemConfig`` (kept in sync by a test).
VALID_ENGINES = ("event", "vectorized")

#: Every field a job spec may carry.
KNOWN_FIELDS = (
    "figure",
    "apps",
    "schemes",
    "scale",
    "engine",
    "page_size",
    "l2_tlb_entries",
    "timeout",
    "max_retries",
)


class SpecError(ValueError):
    """A job spec failed validation.

    Carries the offending ``field`` and, when the value came from a
    closed vocabulary, the full list of valid ``choices`` — the HTTP layer
    returns both so a client can self-correct without reading docs.
    """

    def __init__(
        self,
        message: str,
        field: Optional[str] = None,
        choices: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(message)
        self.field = field
        self.choices = [str(choice) for choice in choices] if choices else []

    def to_json(self) -> Dict:
        payload: Dict = {"error": str(self)}
        if self.field:
            payload["field"] = self.field
        if self.choices:
            payload["choices"] = self.choices
        return payload


def valid_figures() -> List[str]:
    """Named sweep grids accepted as ``{"figure": ...}``."""

    from repro.experiments.report import SWEEP_GRIDS

    return sorted(SWEEP_GRIDS)


def valid_schemes() -> List[str]:
    """Scheme names accepted in a custom grid (the registry universe)."""

    return scheme_names()


def _require(condition: bool, message: str, field: str, choices=None) -> None:
    if not condition:
        raise SpecError(message, field=field, choices=choices)


def _positive_number(raw, field: str) -> float:
    _require(
        isinstance(raw, (int, float)) and not isinstance(raw, bool) and raw > 0,
        f"{field} must be a positive number, got {raw!r}",
        field,
    )
    return float(raw)


def validate_spec(raw: Dict) -> Dict:
    """Validate ``raw`` and return the canonical spec.

    Raises :class:`SpecError` (with the valid choices where applicable) on
    the first problem found. The canonical form materializes defaults,
    upper-cases app names, coerces ``scale`` to float (``1`` and ``1.0``
    are the same simulation and must share one spec identity), and keeps
    only known fields — it is the exact dict :func:`spec_key` hashes and
    ``GET /jobs/<id>`` echoes back.
    """

    if not isinstance(raw, dict):
        raise SpecError(
            f"job spec must be a JSON object, got {type(raw).__name__}"
        )
    unknown = sorted(set(raw) - set(KNOWN_FIELDS))
    _require(
        not unknown,
        f"unknown spec field(s) {unknown}; valid fields: {sorted(KNOWN_FIELDS)}",
        unknown[0] if unknown else None,
        choices=sorted(KNOWN_FIELDS),
    )

    figure = raw.get("figure")
    apps = raw.get("apps")
    _require(
        (figure is None) != (apps is None),
        "spec must name exactly one of 'figure' (a named grid) or 'apps' "
        "(a custom grid)",
        "figure",
        choices=valid_figures(),
    )

    spec: Dict = {}
    if figure is not None:
        figures = valid_figures()
        _require(
            isinstance(figure, str) and figure in figures,
            f"unknown figure {figure!r}; valid figures: {figures}",
            "figure",
            choices=figures,
        )
        for field in ("schemes", "page_size", "l2_tlb_entries"):
            _require(
                field not in raw,
                f"{field!r} only applies to custom 'apps' grids; the "
                f"{figure!r} grid defines its own configurations",
                field,
            )
        spec["figure"] = figure
    else:
        known_apps = app_names()
        _require(
            isinstance(apps, list) and apps,
            f"'apps' must be a non-empty list of application names, "
            f"got {apps!r}; valid apps: {known_apps}",
            "apps",
            choices=known_apps,
        )
        normalized_apps = []
        for app in apps:
            name = app.upper() if isinstance(app, str) else app
            _require(
                name in known_apps,
                f"unknown app {app!r}; valid apps: {known_apps}",
                "apps",
                choices=known_apps,
            )
            normalized_apps.append(name)
        spec["apps"] = normalized_apps

        # One registry snapshot for the whole loop: recomputing the list
        # per element is wasteful and lets the universe drift mid-check if
        # a plugin registers concurrently.
        known_schemes = valid_schemes()
        schemes = raw.get("schemes", known_schemes)
        _require(
            isinstance(schemes, list) and schemes,
            f"'schemes' must be a non-empty list, got {schemes!r}; "
            f"valid schemes: {known_schemes}",
            "schemes",
            choices=known_schemes,
        )
        for scheme in schemes:
            _require(
                scheme in known_schemes,
                f"unknown scheme {scheme!r}; valid schemes: {known_schemes}",
                "schemes",
                choices=known_schemes,
            )
        spec["schemes"] = list(schemes)

        if "page_size" in raw:
            page_size = raw["page_size"]
            _require(
                isinstance(page_size, int)
                and not isinstance(page_size, bool)
                and page_size > 0
                and not (page_size & (page_size - 1)),
                f"page_size must be a positive power-of-two integer, "
                f"got {page_size!r}",
                "page_size",
            )
            spec["page_size"] = page_size
        if "l2_tlb_entries" in raw:
            entries = raw["l2_tlb_entries"]
            _require(
                isinstance(entries, int)
                and not isinstance(entries, bool)
                and entries > 0,
                f"l2_tlb_entries must be a positive integer, got {entries!r}",
                "l2_tlb_entries",
            )
            spec["l2_tlb_entries"] = entries

    if "scale" in raw:
        spec["scale"] = _positive_number(raw["scale"], "scale")
    else:
        from repro.experiments.common import DEFAULT_SCALE

        spec["scale"] = float(DEFAULT_SCALE)

    if raw.get("engine") is not None:
        engine = raw["engine"]
        _require(
            engine in VALID_ENGINES,
            f"unknown engine {engine!r}; valid engines: {list(VALID_ENGINES)}",
            "engine",
            choices=VALID_ENGINES,
        )
        for scheme in spec.get("schemes", ()):
            _require(
                engine_supported(scheme, engine),
                f"scheme {scheme!r} does not support engine {engine!r}; "
                f"omit 'engine' to let the runner pick a supported one",
                "engine",
                choices=VALID_ENGINES,
            )
        spec["engine"] = engine

    if raw.get("timeout") is not None:
        spec["timeout"] = _positive_number(raw["timeout"], "timeout")
    if raw.get("max_retries") is not None:
        retries = raw["max_retries"]
        _require(
            isinstance(retries, int)
            and not isinstance(retries, bool)
            and retries >= 0,
            f"max_retries must be a non-negative integer, got {retries!r}",
            "max_retries",
        )
        spec["max_retries"] = retries

    return spec


def spec_key(spec: Dict) -> str:
    """Stable identity of a canonical spec (dedup key for submissions).

    Distinct from :meth:`SweepJob.key`: the spec key identifies a whole
    submission (grid + knobs, in result order), while job keys identify
    the individual simulations — the runner deduplicates those against
    the disk cache independently.
    """

    text = json.dumps(spec, sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def expand_spec(spec: Dict) -> List[SweepJob]:
    """The canonical spec's job grid, in deterministic (result) order."""

    scale = spec["scale"]
    engine = spec.get("engine")
    if "figure" in spec:
        from repro.experiments.report import SWEEP_GRIDS

        return jobs_with_engine(SWEEP_GRIDS[spec["figure"]](scale), engine)
    jobs: List[SweepJob] = []
    for app in spec["apps"]:
        for scheme in spec["schemes"]:
            config = config_for(scheme)
            if "page_size" in spec:
                config = config.with_page_size(spec["page_size"])
            if "l2_tlb_entries" in spec:
                config = config.with_l2_tlb_entries(spec["l2_tlb_entries"])
            jobs.append(SweepJob(app, config, scale))
    return jobs_with_engine(jobs, engine)
